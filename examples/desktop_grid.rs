//! A BOINC-style desktop grid: heavy-tailed (non-Markov!) availability,
//! with the scheduler's Markov beliefs *fitted from observed traces* — the
//! model-misspecification setting the paper names as future work.
//!
//! Machines follow a semi-Markov process: long Weibull-distributed UP
//! stretches (shape < 1, as measured on real desktop grids), log-normal
//! owner interruptions, occasional crashes. The master fits a Markov chain
//! to each machine's heartbeat history and feeds it to the Section-6
//! heuristics.
//!
//! ```text
//! cargo run --release --example desktop_grid
//! ```

use volatile_grid::exp::robustness::{desktop_model, fit_belief, RobustnessParams};
use volatile_grid::markov::semi_markov::SemiMarkovModel;
use volatile_grid::platform::ProcessorSpec;
use volatile_grid::prelude::*;

fn main() {
    let rp = RobustnessParams {
        up_shape: 0.7, // heavy-tailed UP durations
        up_mean: 60.0, // one "work session" ≈ 60 slots
        training_slots: 30_000,
    };

    // --- 12 heterogeneous machines --------------------------------------
    let mut rng = SeedPath::root(99).rng();
    let mut processors = Vec::new();
    println!("machine fleet (semi-Markov truth, fitted Markov belief):");
    for q in 0..12 {
        let jitter = rng.f64_range(0.5, 2.0); // office PC … workstation
        let model: SemiMarkovModel = desktop_model(&rp, jitter);
        let belief = fit_belief(&model, rp.training_slots, SeedPath::root(500 + q));
        let w = rng.u64_range_inclusive(6, 30);
        println!(
            "  M{q:<2} w = {w:>2}  true UP occupancy = {:.2}  fitted P(u,u) = {:.4}",
            model.occupancy()[0],
            belief.p_uu()
        );
        processors.push(ProcessorConfig {
            spec: ProcessorSpec::new(w),
            avail: AvailabilityModelConfig::SemiMarkov {
                model,
                start: StartPolicy::Stationary,
            },
            believed: Some(belief),
        });
    }
    let platform = PlatformConfig {
        processors,
        ncom: 4,
    };
    let app = AppConfig {
        tasks_per_iteration: 20,
        iterations: 5,
        t_prog: 25,
        t_data: 5,
    };

    // --- Tournament on identical availability ---------------------------
    println!("\nheuristic results (identical availability for all):");
    let trace_seed = SeedPath::root(2);
    let mut results = Vec::new();
    for kind in [
        HeuristicKind::Mct,
        HeuristicKind::MctStar,
        HeuristicKind::Emct,
        HeuristicKind::EmctStar,
        HeuristicKind::Ud,
        HeuristicKind::UdStar,
        HeuristicKind::Random,
    ] {
        let report = Simulation::run_seeded(
            &platform,
            &app,
            kind.build(SeedPath::root(1).rng()),
            trace_seed,
            SimOptions::default(),
        )
        .expect("valid configuration");
        results.push((kind, report));
    }
    let best = results
        .iter()
        .map(|(_, r)| r.makespan_or_cap())
        .min()
        .expect("non-empty");
    for (kind, r) in &results {
        let mk = r.makespan_or_cap();
        println!(
            "  {:<8} makespan {:>6}  (+{:>5.1}% vs best)  crashes cost {} copies",
            kind.name(),
            mk,
            100.0 * (mk - best) as f64 / best as f64,
            r.counters.copies_lost_to_down,
        );
    }
    println!("\nNote: beliefs are *fitted*, not true — the failure-aware heuristics");
    println!("keep an edge exactly insofar as the Markov fit captures volatility.");
}
