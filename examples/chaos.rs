//! Scripted chaos: kill half the platform mid-run and watch the schedule
//! absorb it.
//!
//! Runs the same seeded instance twice — once clean, once under a fault
//! script that forces 50% of the workers `DOWN` for a window — and renders
//! both Gantt charts. The kill window shows up as a solid band of crashes
//! and re-transfers; the injected-fault counter on the report says exactly
//! how many worker-slots the script flipped.
//!
//! ```text
//! cargo run --release --example chaos
//! ```

use volatile_grid::prelude::*;

fn main() {
    let mut rng = SeedPath::root(23).rng();
    let platform = PlatformConfig {
        processors: (0..6)
            .map(|_| {
                let chain = AvailabilityChain::sample_paper(&mut rng, 0.92, 0.99);
                let w = rng.u64_range_inclusive(3, 8);
                ProcessorConfig::markov(w, chain, StartPolicy::Up)
            })
            .collect(),
        ncom: 3,
    };
    let app = AppConfig {
        tasks_per_iteration: 8,
        iterations: 2,
        t_prog: 5,
        t_data: 2,
    };
    let options = SimOptions {
        record_timeline: true,
        replication: true,
        max_extra_replicas: 2,
        ..SimOptions::default()
    };

    // The chaos DSL: plain text, compiled against the platform size.
    let script_text = "kill 50% at 30 for 25";
    let script: CompiledScript = FaultScript::parse(script_text)
        .expect("valid script")
        .compile(platform.p())
        .expect("fits the platform");

    let run = |with_chaos: bool| -> SimReport {
        let mut sim: Simulation = Simulation::new_seeded(
            &platform,
            &app,
            HeuristicKind::EmctStar.build(SeedPath::root(1).rng()),
            SeedPath::root(4),
            options,
        )
        .expect("valid configuration");
        if with_chaos {
            sim.set_overlay(ScriptedOverlay::new(script.clone()))
                .expect("matching platform");
        }
        sim.run()
    };

    let clean = run(false);
    let chaotic = run(true);

    for (label, report) in [("clean", &clean), (script_text, &chaotic)] {
        println!("=== {label} ===");
        println!("{report}");
        println!("injected faults: {}", report.counters.injected_faults);
        let timeline = report.timeline.as_ref().expect("recording was enabled");
        let end = report.slots_run.min(90);
        println!("{}", timeline.render(0, end));
        if report.slots_run > end {
            println!("(showing the first {end} of {} slots)", report.slots_run);
        }
        println!();
    }
    println!(
        "makespan {} -> {} slots under the kill window",
        clean.makespan_or_cap(),
        chaotic.makespan_or_cap()
    );
    assert!(
        chaotic.counters.injected_faults > 0,
        "the script must have flipped some states"
    );
}
