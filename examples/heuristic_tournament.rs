//! A miniature Table-2 campaign on one grid cell: all 17 heuristics,
//! several sampled scenarios and trials, degradation-from-best and wins —
//! the paper's evaluation methodology end to end through the library API.
//!
//! ```text
//! cargo run --release --example heuristic_tournament
//! ```

use volatile_grid::exp::campaign::{run_campaign, CampaignConfig};
use volatile_grid::exp::report::summary_table;
use volatile_grid::exp::scenario::ScenarioParams;
use volatile_grid::prelude::*;

fn main() {
    // One volatile cell: n = 20 tasks, ncom = 5 channels, wmin = 5 (tasks
    // long relative to availability intervals — the regime where the
    // failure-aware heuristics shine, per Figure 2).
    let cell = ScenarioParams::paper(20, 5, 5);
    let cfg = CampaignConfig {
        heuristics: HeuristicKind::ALL.to_vec(),
        scenarios_per_cell: 5,
        trials: 2,
        master_seed: 42,
        parallelism: ParallelismConfig::Auto,
        sim: SimOptions::default(),
        keep_outcomes: false,
    };
    println!(
        "tournament: 17 heuristics × {} scenarios × {} trials on (n={}, ncom={}, wmin={})\n",
        cfg.scenarios_per_cell, cfg.trials, cell.n_tasks, cell.ncom, cell.wmin
    );
    let result = run_campaign(std::slice::from_ref(&cell), &cfg);
    let summaries = result.summarize();
    println!("{}", summary_table(&summaries));

    let champion = &summaries[0];
    println!(
        "champion: {} with mean dfb {:.2}% over {} instances",
        champion.kind,
        champion.dfb.mean(),
        champion.dfb.count()
    );
}
