//! Quickstart: run one iterative application on a volatile platform and
//! compare a volatility-blind heuristic (MCT) against the paper's
//! failure-aware EMCT* on identical availability.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use volatile_grid::prelude::*;

fn main() {
    // --- Platform: 8 volatile processors sampled the paper's way --------
    // Self-loop probabilities U[0.90, 0.99], exits split evenly; speeds
    // w_q ∈ [4, 40] slots per task; master can serve 3 workers at once.
    let mut rng = SeedPath::root(2026).rng();
    let processors: Vec<ProcessorConfig> = (0..8)
        .map(|_| {
            let chain = AvailabilityChain::sample_paper(&mut rng, 0.90, 0.99);
            let w = rng.u64_range_inclusive(4, 40);
            ProcessorConfig::markov(w, chain, StartPolicy::Up)
        })
        .collect();
    let platform = PlatformConfig {
        processors,
        ncom: 3,
    };

    // --- Application: 10 iterations of 12 tasks -------------------------
    let app = AppConfig {
        tasks_per_iteration: 12,
        iterations: 10,
        t_prog: 20, // program takes 5× a data file
        t_data: 4,
    };

    println!("platform: p = {}, ncom = {}", platform.p(), platform.ncom);
    for (q, pc) in platform.processors.iter().enumerate() {
        let c = pc.believed_chain();
        println!(
            "  P{q}: w = {:>2}, P+ = {:.4}, E(w) = {:>6.2}, pi_u = {:.3}",
            pc.spec.w,
            c.p_plus(),
            c.e_w(pc.spec.w),
            c.stationary()[0]
        );
    }
    println!();

    // --- Run both heuristics on byte-identical availability -------------
    let trace_seed = SeedPath::root(7); // shared ⇒ same availability
    for kind in [HeuristicKind::Mct, HeuristicKind::EmctStar] {
        let report = Simulation::run_seeded(
            &platform,
            &app,
            kind.build(SeedPath::root(1).rng()),
            trace_seed,
            SimOptions::default(),
        )
        .expect("valid configuration");
        println!("{report}");
        println!(
            "    lost to crashes: {} copies, replicas started: {}, canceled: {}",
            report.counters.copies_lost_to_down,
            report.counters.replicas_started,
            report.counters.replicas_canceled
        );
    }
}
