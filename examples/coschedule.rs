//! Co-schedule two applications on one volatile platform: a weight-1 and a
//! weight-3 application share the workers under `SharePolicy::Weighted`,
//! and the run is rendered as the worker Gantt chart plus one **lane per
//! application** marking its iteration barriers — the per-app view that
//! the combined chart cannot show.
//!
//! ```text
//! cargo run --release --example coschedule
//! ```

use volatile_grid::prelude::*;

/// One ASCII lane for an application: `─` while the app is still running,
/// a digit at each slot where one of its iterations completed (the
/// iteration number, mod 10), blank after its last barrier.
fn app_lane(report: &AppReport, from: u64, to: u64) -> String {
    let mut lane = String::with_capacity((to - from) as usize);
    let end = report.makespan.unwrap_or(to);
    for t in from..to {
        let barrier = report
            .iteration_completed_at
            .iter()
            .position(|&b| b == t)
            .map(|i| char::from_digit(((i + 1) % 10) as u32, 10).unwrap_or('#'));
        lane.push(match barrier {
            Some(d) => d,
            None if t < end => '─',
            None => ' ',
        });
    }
    lane
}

fn main() {
    // Small, readable platform: 6 volatile processors, 2 channels.
    let mut rng = SeedPath::root(23).rng();
    let platform = PlatformConfig {
        processors: (0..6)
            .map(|_| {
                let chain = AvailabilityChain::sample_paper(&mut rng, 0.90, 0.98);
                let w = rng.u64_range_inclusive(3, 8);
                ProcessorConfig::markov(w, chain, StartPolicy::Up)
            })
            .collect(),
        ncom: 2,
    };
    // Two co-resident applications. The weighted quota split gives the
    // second app three pool placements for every one of the first when
    // both are unfinished; once one finishes, the survivor takes the
    // whole platform.
    let small = AppConfig {
        tasks_per_iteration: 4,
        iterations: 3,
        t_prog: 5,
        t_data: 2,
    };
    let big = AppConfig {
        tasks_per_iteration: 8,
        iterations: 2,
        t_prog: 5,
        t_data: 2,
    };
    let specs = [AppSpec::rigid(small), AppSpec::weighted(big, 3)];

    let report = Simulation::run_multi_seeded(
        &platform,
        &specs,
        SharePolicy::Weighted,
        HeuristicKind::EmctStar.build(SeedPath::root(1).rng()),
        SeedPath::root(6),
        SimOptions {
            record_timeline: true,
            ..SimOptions::default()
        },
    )
    .expect("valid configuration");

    println!("{}\n", report.combined);
    let timeline = report
        .combined
        .timeline
        .as_ref()
        .expect("recording was enabled");
    let end = report.combined.slots_run.min(120);
    println!("{}", timeline.render(0, end));

    // Per-application lanes, aligned under the worker chart: each digit is
    // an iteration barrier of that application.
    for (a, app) in report.apps.iter().enumerate() {
        println!("A{a}:   {}", app_lane(app, 0, end));
    }
    println!();
    for (a, app) in report.apps.iter().enumerate() {
        let mk = app
            .makespan
            .map_or_else(|| "unfinished".to_string(), |mk| format!("{mk} slots"));
        println!(
            "A{a} (weight {}): {} iterations of {} tasks in {mk} ({} task completions)",
            specs[a].weight, app.completed_iterations, app.final_m, app.tasks_completed,
        );
    }
    if report.combined.slots_run > end {
        println!(
            "(showing the first {end} of {} slots)",
            report.combined.slots_run
        );
    }
}
