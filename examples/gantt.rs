//! Visualize a schedule: record the per-slot activity timeline of a small
//! volatile run and render it as an ASCII Gantt chart — program transfers,
//! data transfers, compute/communication overlap, reclamations, crashes and
//! iteration barriers, worker by worker.
//!
//! ```text
//! cargo run --release --example gantt
//! ```

use volatile_grid::prelude::*;

fn main() {
    // Small, readable platform: 4 volatile processors, 2 channels.
    let mut rng = SeedPath::root(17).rng();
    let platform = PlatformConfig {
        processors: (0..4)
            .map(|_| {
                let chain = AvailabilityChain::sample_paper(&mut rng, 0.88, 0.97);
                let w = rng.u64_range_inclusive(3, 8);
                ProcessorConfig::markov(w, chain, StartPolicy::Up)
            })
            .collect(),
        ncom: 2,
    };
    let app = AppConfig {
        tasks_per_iteration: 6,
        iterations: 2,
        t_prog: 5,
        t_data: 2,
    };

    let report = Simulation::run_seeded(
        &platform,
        &app,
        HeuristicKind::EmctStar.build(SeedPath::root(1).rng()),
        SeedPath::root(4),
        SimOptions {
            record_timeline: true,
            placement_budget: PlacementBudget::Uncapped,
            ..SimOptions::default()
        },
    )
    .expect("valid configuration");

    println!("{report}\n");
    let timeline = report.timeline.as_ref().expect("recording was enabled");
    let end = report.slots_run.min(120);
    println!("{}", timeline.render(0, end));
    if report.slots_run > end {
        println!("(showing the first {end} of {} slots)", report.slots_run);
    }
    for q in 0..timeline.p() {
        println!(
            "P{q}: productive in {:.0}% of slots",
            100.0 * timeline.utilization(q)
        );
    }
}
