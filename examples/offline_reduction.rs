//! The NP-hardness machinery of Section 4, executable: take a 3-SAT
//! formula, build the Theorem-1 scheduling instance, solve the formula with
//! DPLL, materialize the schedule the proof constructs, and validate it
//! against every model rule. Then demonstrate the polynomial case:
//! trace-aware MCT with unbounded bandwidth, checked optimal by brute force.
//!
//! ```text
//! cargo run --release --example offline_reduction
//! ```

use volatile_grid::offline::mct::{brute_force_infinite, mct_infinite};
use volatile_grid::offline::reduction::{reduce, render_figure, schedule_from_assignment};
use volatile_grid::offline::sat::{dpll, Cnf, Lit};
use volatile_grid::offline::OfflineInstance;
use volatile_grid::prelude::*;

fn main() {
    // --- Part 1: the reduction -------------------------------------------
    // (x1 ∨ x2 ∨ x̄3) ∧ (x̄1 ∨ x3 ∨ x2) ∧ (x̄2 ∨ x̄3 ∨ x1)
    let cnf = Cnf::new(
        3,
        vec![
            vec![Lit::pos(0), Lit::pos(1), Lit::neg(2)],
            vec![Lit::neg(0), Lit::pos(2), Lit::pos(1)],
            vec![Lit::neg(1), Lit::neg(2), Lit::pos(0)],
        ],
    );
    println!("formula: {cnf}\n");

    let inst = reduce(&cnf);
    println!(
        "reduced instance: p = {} processors (one per literal), m = {} tasks,",
        inst.p(),
        inst.m
    );
    println!(
        "T_prog = {}, T_data = {}, w = 1, ncom = 1, horizon N = m(n+1) = {}\n",
        inst.t_prog, inst.t_data, inst.horizon
    );
    println!("{}", render_figure(&cnf, &inst));

    match dpll(&cnf) {
        Some(assignment) => {
            println!("DPLL assignment: {assignment:?}");
            let schedule = schedule_from_assignment(&cnf, &assignment)
                .expect("assignment satisfies the formula");
            let completion = schedule
                .validate(&inst)
                .expect("the Theorem-1 construction is feasible");
            println!(
                "schedule validates; completes at slot {completion} ≤ N = {}\n",
                inst.horizon
            );
        }
        None => println!("unsatisfiable ⇒ the instance is infeasible within N\n"),
    }

    // --- Part 2: the polynomial case (Proposition 2) ---------------------
    let traces = vec![
        Trace::parse("uuuuuuuuuuuuuuuuuuuu").unwrap(),
        Trace::parse("ruururuuruuruurvruuu".replace('v', "r").as_str()).unwrap(),
        Trace::parse("uuuurrrrruuuuuuuuuuu").unwrap(),
    ];
    let inst = OfflineInstance::uniform(5, 2, 1, 3, None, 20, traces);
    let sol = mct_infinite(&inst).expect("feasible");
    let exact = brute_force_infinite(&inst).expect("feasible");
    println!(
        "ncom = ∞ greedy MCT: makespan {}, assignment {:?}",
        sol.makespan, sol.assignment
    );
    println!("brute-force optimum: {exact}  (Proposition 2: they always agree)");
    assert_eq!(sol.makespan, exact);
}
