//! The Section-5 mathematics, hands on: for a sampled volatile processor,
//! print `P₊` (Lemma 1), `E(W)` (Theorem 2) against its naive lower bound
//! `W`, and the exact-vs-approximate `P_UD(k)` of Section 6.3.3 — then
//! confirm Theorem 2 by Monte-Carlo rejection sampling.
//!
//! This is the math that separates EMCT/UD from plain MCT: as tasks grow
//! relative to availability intervals, `E(W) − W` explodes and speed stops
//! being the right selection criterion.
//!
//! ```text
//! cargo run --release --example expectation_math
//! ```

use volatile_grid::prelude::*;

fn main() {
    let mut rng = SeedPath::root(11).rng();
    let chain = AvailabilityChain::sample_paper(&mut rng, 0.90, 0.99);
    let [pi_u, pi_r, pi_d] = chain.stationary();

    println!("sampled availability chain (paper-style):");
    for (label, row) in ["u", "r", "d"].iter().zip(chain.raw()) {
        println!(
            "  P({label},·) = [{:.4}, {:.4}, {:.4}]",
            row[0], row[1], row[2]
        );
    }
    println!("  stationary: pi_u = {pi_u:.4}, pi_r = {pi_r:.4}, pi_d = {pi_d:.4}");
    println!(
        "  Lemma 1:    P+  = {:.6}  (series check: {:.6})\n",
        chain.p_plus(),
        chain.p_plus_numeric()
    );

    println!("Theorem 2 — expected completion slots E(W) vs workload W:");
    println!(
        "  {:>6} {:>10} {:>10} {:>9}",
        "W", "E(W)", "E(W)-W", "P(no d)"
    );
    for w in [1u64, 2, 5, 10, 20, 50, 100, 200] {
        println!(
            "  {:>6} {:>10.2} {:>10.2} {:>9.4}",
            w,
            chain.e_w(w),
            chain.e_w(w) - w as f64,
            chain.success_prob(w)
        );
    }

    println!("\nSection 6.3.3 — P_UD(k): exact (matrix power) vs paper approximation:");
    println!(
        "  {:>6} {:>10} {:>10} {:>9}",
        "k", "exact", "approx", "abs err"
    );
    for k in [2u64, 3, 5, 10, 20, 40, 80] {
        let e = chain.p_ud_exact(k);
        let a = chain.p_ud_approx(k);
        println!("  {:>6} {:>10.5} {:>10.5} {:>9.5}", k, e, a, (e - a).abs());
    }

    // Monte-Carlo confirmation of Theorem 2 at W = 12.
    let w = 12;
    let mut mc_rng = SeedPath::root(77).rng();
    let (estimate, accepted) = chain.e_w_monte_carlo(w, 300_000, &mut mc_rng);
    println!(
        "\nMonte-Carlo check at W = {w}: closed form {:.3}, simulation {:.3} ({} accepted trajectories)",
        chain.e_w(w),
        estimate,
        accepted
    );
}
