//! The scheduler interface.

use crate::view::SchedView;
use vg_platform::ProcessorId;

/// An on-line scheduling heuristic (Section 6).
///
/// Once per slot the simulator presents the current [`SchedView`] and the
/// number of task instances that need placement (the `m − m′` unstarted
/// tasks of the running iteration, or a batch of replicas). The heuristic
/// appends, in placement order, the processor chosen for each instance;
/// placement order doubles as bandwidth priority among *new* transfers.
///
/// Contracts:
///
/// * only `UP` processors may be returned (the paper's heuristics all
///   require the target to be `UP`);
/// * the result may be shorter than `count` — e.g. when no processor is
///   `UP` — and the unplaced instances simply retry at the next slot;
/// * implementations must be deterministic functions of `(view, count)` and
///   their own internal RNG stream, never of wall-clock or global state, so
///   that experiment runs are exactly reproducible;
/// * implementations should reuse internal scratch space across calls so
///   that steady-state placement performs no heap allocation (the engine
///   calls [`Self::place_into`] up to a million times per run).
pub trait Scheduler: Send {
    /// Human-readable name; matches the paper's tables (`"EMCT*"`, …).
    fn name(&self) -> &str;

    /// Chooses a processor for each of `count` task instances, appending the
    /// choices to `out` (which the engine has already cleared). The engine
    /// owns `out` and reuses it across slots, so a warmed-up buffer makes
    /// this call allocation-free.
    ///
    /// When [`SchedView::room`] is `Some`, the engine is running a
    /// demand-driven round and the column is an *advisory* per-worker bind
    /// budget: implementations should avoid assigning a worker more
    /// instances than its room, because the engine's `try_bind` will
    /// reject the excess (the engine still tolerates overfull output — see
    /// the field's contract). When it is `None`, nothing about per-worker
    /// capacity is promised and implementations must not change behavior —
    /// that is what keeps historical trajectories bit-identical.
    fn place_into(&mut self, view: &SchedView<'_>, count: usize, out: &mut Vec<ProcessorId>);

    /// Allocating shim over [`Self::place_into`] for callers that predate
    /// the scratch-buffer API (tests, examples, one-shot tools).
    fn place(&mut self, view: &SchedView<'_>, count: usize) -> Vec<ProcessorId> {
        let mut out = Vec::with_capacity(count);
        self.place_into(view, count, &mut out);
        out
    }

    /// Called by the engine once before a run's first slot. Implementations
    /// must drop any cache keyed to a previous run's platform here (chain
    /// statistics, speeds, per-processor scores), so a scheduler instance
    /// reused across runs — even on a different platform with the same
    /// processor count — cannot serve stale values.
    fn begin_run(&mut self) {}
}
