//! The greedy heuristic families of Section 6.3: MCT, EMCT, LW, UD and
//! their contention-aware `*` variants.
//!
//! All four share the same skeleton — assign the `m − m′` remaining tasks
//! one at a time, each to the processor optimizing a per-candidate score —
//! and differ only in the score:
//!
//! | family | score (selection) | uses |
//! |---|---|---|
//! | MCT  | min `CT(P_q, n_q+1)` | Eq. (1)/(2) |
//! | EMCT | min `E(CT(P_q, n_q+1))` | Theorem 2 expectation of the CT workload |
//! | LW   | max `(P₊)^{CT(P_q, n_q+1)}` | Lemma 1 |
//! | UD   | max `P_UD(E(CT(P_q, n_q+1)))` | Section 6.3.3 approximation |
//!
//! The `*` variants replace `T_data` by `⌈n_active/ncom⌉·T_data` inside `CT`
//! (Equation (2)).
//!
//! ## Scratch reuse and score caching
//!
//! `place_into` keeps its buffers across calls (`ups`, `n_q`, `scores`,
//! `heap`, the score memo and the kernel copies), so steady-state placement
//! allocates nothing. Scores are cached per UP processor and recomputed
//! only when their inputs change: assigning a task to `P_j` invalidates
//! `P_j`'s score alone, except for the `*` variants where enrolling a *new*
//! processor bumps `n_active` and invalidates every score (Equation (2)
//! couples them). Every cache replays exactly the computation the naive
//! rescan performed, so decisions — including the lowest-id tie-break
//! \[D9\] — are bit-identical to the original implementation.
//!
//! ## The stale-tolerant lazy min-heap
//!
//! Selecting each placement's argmin by rescanning every UP processor makes
//! a `count`-task placement burst cost `O(count · p)` — the dominant slot
//! cost at large `p` (the post-barrier burst places `m ≈ 2p` tasks, and the
//! replica path re-places nearly every slot). `place_into` instead keeps a
//! binary min-heap of `(score, pos)` entries, one per UP candidate, ordered
//! by `f64::total_cmp` then position — so the heap minimum is exactly the
//! linear scan's winner, *including the lowest-id tie-break* (`ups` is in
//! ascending id order and the scan's strict `<` keeps the first minimum).
//!
//! The heap tolerates *stale* entries. The invariant making this sound is
//! that **scores are monotone non-decreasing within a round** — every
//! mutation (pipelining another task onto a processor, inflating effective
//! `T_data` by enrolling one more) raises completion time, and all four
//! objectives are normalized so larger `CT` means a larger score. A stale
//! entry therefore always *under*-states its processor's current score, so
//! the heap top is a lower bound on every candidate: if the top entry
//! matches `scores[pos]` bit-for-bit it *is* the argmin; otherwise it is
//! refreshed in place (sift-down) and the pop retried. An Equation-(2)
//! ceiling step stales **every** entry at once, though, and paying that
//! back one repair sift at a time was measured at hundreds of deep sifts
//! per slot at `p = 1024` — so a ceiling step now rebuilds the heap
//! wholesale instead (Floyd, ~2 comparisons per entry over sequential
//! memory; see `Selector::refresh`), leaving pops between steps valid on
//! the first try. The pop-validate loop remains as the correctness
//! backstop. Each placement costs `O(log p)` amortized and a burst
//! `O(p + count · log p + steps · p)` with tiny constants; the heap itself
//! is 4-ary (`HEAP_ARITY`) because the workload is sift-down-heavy.
//!
//! The winner's own score update reuses the just-popped top slot (its entry
//! is by construction the heap minimum), so the heap holds exactly one
//! entry per candidate at all times and its backing storage — persistent
//! scratch, like the score caches — never grows past `p`.
//!
//! ## The cross-slot Eq.-(2)/Theorem-2 score memo
//!
//! A placement score is a pure function of per-run constants (the
//! processor's [`ChainStats`](vg_markov::ChainStats), its speed, `T_prog`,
//! `T_data`, `ncom`) and three integers: the processor's snapshot `delay`,
//! its `n_q`, and the Equation-(2) ceiling factor behind the effective
//! `T_data`. The scheduler therefore keeps a table of
//! [`ChainScoreMemo`] entries, one per *(ceiling factor, processor)* —
//! factor-major, so an Equation-(2) refresh walks one contiguous row — each
//! keyed by `(delay, n_q)`. The initial-row fill and every ceiling-step
//! refresh consult the memo; between slots the platform barely moves (idle
//! workers keep their delay, the placement trajectory replays), so most
//! consults are single-compare hits. A hit replays the exact bits the
//! closed form would produce, so decisions are unchanged; the naive-model
//! proptest below pins that. `begin_run` drops the table (scores embed
//! per-run chain statistics and speeds), and per-placement winner rescores
//! bypass it so refresh entries survive a whole round.
//!
//! The memo is engaged only where re-deriving the closed form is the
//! expensive part: LW's `powf` and UD's `pow_slots` (tens of nanoseconds
//! each). MCT/EMCT scores are two or three flops against the dense
//! [`ScoreKernel`] copies — cheaper than the table lookup itself, measured
//! as a net slot-loop *loss* when cached — so those objectives evaluate
//! directly (`GreedyScheduler::memo_pays`).

use crate::ct::{completion_time, effective_t_data};
use crate::traits::Scheduler;
use crate::view::SchedView;
use vg_markov::{ChainScoreMemo, ScoreKernel};
use vg_platform::ProcessorId;

/// Whether growing `n_active` from `n_active − 1` changed the Equation-(2)
/// factor `⌈max(n_active_incl, 1)/ncom⌉` for either candidate class —
/// enrolled processors see `n_active_incl = n_active`, not-yet-enrolled ones
/// see `n_active + 1` (\[D13\]). When neither ceiling moved, every cached
/// score is unchanged bit-for-bit and the cache refresh can be skipped.
#[inline]
fn ceiling_steps(n_active: usize, ncom: usize) -> bool {
    let f = |x: usize| (x.max(1) as u64).div_ceil(ncom as u64);
    f(n_active) != f(n_active - 1) || f(n_active + 1) != f(n_active)
}

/// Which selection score a [`GreedyScheduler`] optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GreedyObjective {
    /// Minimum completion time (optimal off-line when `ncom = ∞`,
    /// Proposition 2).
    Mct,
    /// Expected minimum completion time: `E(CT)` via Theorem 2.
    Emct,
    /// Likely to Work: maximize `(P₊)^{CT}`.
    Lw,
    /// Unlikely Down: maximize `P_UD(E(CT))`.
    Ud,
}

/// A greedy heuristic instance.
#[derive(Debug, Clone)]
pub struct GreedyScheduler {
    objective: GreedyObjective,
    /// Apply the Equation-(2) contention correction (the `*` variants).
    contention: bool,
    name: &'static str,
    /// Scratch: UP processor indices of the current call.
    ups: Vec<usize>,
    /// Scratch: tasks assigned to each processor this round.
    n_q: Vec<usize>,
    /// Scratch: cached score of each UP processor (parallel to `ups`).
    scores: Vec<f64>,
    /// Scratch: the lazy min-heap of `(score, pos)` entries (`pos` indexes
    /// `ups`); see the module docs for the staleness invariant.
    heap: Vec<(f64, u32)>,
    /// Test hook: route every selection through the heap regardless of the
    /// size thresholds, so small hand-built views exercise the heap path.
    force_heap: bool,
    /// Cross-slot Eq.-(2)/Theorem-2 score memo: one entry per (ceiling
    /// factor, processor), factor-major, keyed by `(delay, n_q)` — see the
    /// module docs. Subsumes the former initial-row cache (its entries are
    /// the factor-1, `n_q = 0` keys) and additionally serves every
    /// Equation-(2) ceiling refresh. Rows are grown on demand per round —
    /// a round placing `count` tasks can only reach factor
    /// `⌈(min(count, |ups|) + 1)/ncom⌉` — so a low-`ncom` run never pays
    /// the worst-case `⌈(p + 1)/ncom⌉ × p` fill up front.
    memo: Vec<ChainScoreMemo>,
    /// Row width (processor count) `memo` was laid out for; a mismatch
    /// without an intervening `begin_run` (hand-driven tests) resets the
    /// table instead of aliasing rows.
    memo_width: usize,
    /// Per-run dense copy of each processor's [`ScoreKernel`]: the four
    /// scalars a score evaluation reads, without dragging the processor's
    /// whole `ChainStats` (a scattered ~140-byte pull) through the cache on
    /// every candidate. Rebuilt on a platform-size change and dropped by
    /// `begin_run`; values are copies of `view.chains[i].kernel()`, so an
    /// evaluation against them is bit-identical to one against the view.
    kernels: Vec<ScoreKernel>,
}

impl GreedyScheduler {
    /// Creates a greedy scheduler. `name` should come from the catalog.
    #[must_use]
    pub fn new(objective: GreedyObjective, contention: bool, name: &'static str) -> Self {
        Self {
            objective,
            contention,
            name,
            ups: Vec::new(),
            n_q: Vec::new(),
            scores: Vec::new(),
            heap: Vec::new(),
            force_heap: false,
            memo: Vec::new(),
            memo_width: 0,
            kernels: Vec::new(),
        }
    }

    /// Routes every selection through the heap, bypassing the size
    /// thresholds — for differential tests on small views. Decisions are
    /// identical either way; only the access pattern changes.
    #[doc(hidden)]
    pub fn force_heap(&mut self, on: bool) {
        self.force_heap = on;
    }

    /// The objective.
    #[must_use]
    pub fn objective(&self) -> GreedyObjective {
        self.objective
    }

    /// Whether the Equation-(2) correction is active.
    #[must_use]
    pub fn contention_aware(&self) -> bool {
        self.contention
    }

    /// Score of assigning one more task to processor `idx`; *smaller is
    /// better* (maximizing objectives are negated).
    fn score(&self, view: &SchedView<'_>, idx: usize, n_q: usize, n_active: usize) -> f64 {
        let p = &view.procs[idx];
        // Hot path: the per-run dense kernel copy. Fall back to the view's
        // ChainStats (identical values — the copy's source) when the cache
        // is not warmed, e.g. for probe schedulers driven outside
        // `place_into` in tests.
        let kernel = match self.kernels.get(idx) {
            Some(k) => *k,
            None => view.chain(idx).kernel(),
        };
        // [D13]: the candidate counts itself when newly enrolled.
        let n_active_incl = n_active + usize::from(n_q == 0);
        let eff = effective_t_data(view.t_data, self.contention, n_active_incl, view.ncom);
        let ct = completion_time(p, n_q + 1, eff);
        match self.objective {
            GreedyObjective::Mct => ct as f64,
            GreedyObjective::Emct => kernel.e_w(ct),
            GreedyObjective::Lw => {
                // Maximize (P₊)^CT  ⇔  minimize −(P₊)^CT.
                -(kernel.p_plus.powf(ct as f64))
            }
            GreedyObjective::Ud => {
                // k = E(CT) rounded to whole slots (≥ 1), then the paper's
                // closed-form P_UD approximation.
                let k = kernel.e_w(ct).round().max(1.0) as u64;
                -kernel.p_ud_approx(k)
            }
        }
    }

    /// Whether the cross-slot memo pays for this objective. LW re-derives
    /// a `powf` and UD a `pow_slots` per evaluation — tens of nanoseconds
    /// a hit replays with one compare. MCT/EMCT scores are two or three
    /// flops against the dense kernel, *cheaper than the memo lookup
    /// itself*, so caching them only adds table traffic (measured as a net
    /// slot-loop loss at p = 1024); they evaluate directly.
    #[inline]
    fn memo_pays(&self) -> bool {
        matches!(self.objective, GreedyObjective::Lw | GreedyObjective::Ud)
    }

    /// [`Self::score`] through the cross-slot memo (see the module docs).
    ///
    /// `memo` is the scheduler's factor-major table (taken out of `self`
    /// for the borrow), `factors` its row count — 0 when the memo is off
    /// for this objective ([`Self::memo_pays`]). The memo key `(delay,
    /// n_q)` plus the factor-indexed row capture every varying input of
    /// `score` — chain, speed, `T_prog`, `T_data` and `ncom` are per-run
    /// constants and `begin_run` drops the table — so a hit is
    /// bit-identical to a recomputation.
    #[inline]
    fn memo_score(
        &self,
        memo: &mut [ChainScoreMemo],
        factors: usize,
        view: &SchedView<'_>,
        idx: usize,
        n_q: usize,
        n_active: usize,
    ) -> f64 {
        if factors == 0 {
            return self.score(view, idx, n_q, n_active);
        }
        let factor = if self.contention {
            // [D13]: an unenrolled candidate counts itself.
            let n_active_incl = n_active + usize::from(n_q == 0);
            (n_active_incl.max(1) as u64).div_ceil(view.ncom as u64) as usize
        } else {
            1
        };
        debug_assert!(
            (1..=factors).contains(&factor),
            "Equation-(2) factor {factor} outside the memo's {factors} rows"
        );
        if factor > factors {
            // Defensive: never alias another factor's entries.
            return self.score(view, idx, n_q, n_active);
        }
        memo[(factor - 1) * view.p() + idx].get_or_eval(view.procs[idx].delay, n_q as u64, || {
            self.score(view, idx, n_q, n_active)
        })
    }
}

/// Heap order: by score via `total_cmp`, then by position — the unique key
/// that reproduces the linear scan's lowest-id tie-break (for the non-NaN
/// scores produced by validated chains, `total_cmp` agrees with `<`).
#[inline]
fn heap_less(a: (f64, u32), b: (f64, u32)) -> bool {
    match a.0.total_cmp(&b.0) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Greater => false,
        std::cmp::Ordering::Equal => a.1 < b.1,
    }
}

/// Heap arity. The workload is sift-down-heavy — every placement rescores
/// the popped winner and every Equation-(2) refresh leaves repairs for the
/// pops that follow — so a wide heap wins: with `d = 4` a sift touches
/// `log₄ p` contiguous 64-byte child groups instead of `log₂ p` scattered
/// cache lines (measured ~1.5× on the p = 1024 placement loop). Which
/// valid heap shape stores the entries is unobservable: `heap_less` is a
/// total order, its minimum is unique, so pops yield the same sequence at
/// any arity.
const HEAP_ARITY: usize = 4;

/// Restores the min-heap property downward from slot `i`.
fn sift_down(heap: &mut [(f64, u32)], mut i: usize) {
    loop {
        let first = HEAP_ARITY * i + 1;
        if first >= heap.len() {
            break;
        }
        let last = (first + HEAP_ARITY).min(heap.len());
        let mut child = first;
        for c in first + 1..last {
            if heap_less(heap[c], heap[child]) {
                child = c;
            }
        }
        if heap_less(heap[child], heap[i]) {
            heap.swap(child, i);
            i = child;
        } else {
            break;
        }
    }
}

/// Floyd heap construction, `O(n)`.
fn heapify(heap: &mut [(f64, u32)]) {
    if heap.len() > 1 {
        for i in (0..=(heap.len() - 2) / HEAP_ARITY).rev() {
            sift_down(heap, i);
        }
    }
}

/// The argmin strategy of one placement round. Both variants return the
/// exact same winner for the same score row (the proptest in this module
/// pins it); they differ only in access pattern, so the placement loop in
/// [`GreedyScheduler::place_into`] is shared and only winner selection and
/// the winner's score write-back dispatch here.
enum Selector {
    /// Lazy min-heap of `(score, pos)` entries, one per UP candidate; owns
    /// the scheduler's persistent backing storage for the round.
    Heap(Vec<(f64, u32)>),
    /// Dense strict-`<` rescan of the whole score row per placement.
    Linear,
}

impl Selector {
    /// Position (into `ups`/`scores`) of the current argmin. The heap
    /// variant leaves the winner's entry at the top, where
    /// [`Self::rescore_winner`] expects it.
    fn select(&mut self, scores: &[f64]) -> usize {
        match self {
            // Pop-validate: a stale top (its score was raised by an
            // Equation-(2) refresh after the entry was pushed) under-states
            // its candidate — scores are monotone non-decreasing within a
            // round — so refresh it in place and retry. A top that matches
            // the score cache bit-for-bit is the exact argmin.
            Self::Heap(heap) => loop {
                let (s, pos) = heap[0];
                let current = scores[pos as usize];
                if s.to_bits() == current.to_bits() {
                    break pos as usize;
                }
                heap[0].0 = current;
                sift_down(heap, 0);
            },
            Self::Linear => {
                let mut best_pos = 0usize;
                let mut best_score = f64::INFINITY;
                for (pos, &s) in scores.iter().enumerate() {
                    // Strict `<` keeps the lowest processor id on ties
                    // ([D9]); `ups` (and hence `scores`) is in ascending id
                    // order.
                    if s < best_score {
                        best_score = s;
                        best_pos = pos;
                    }
                }
                best_pos
            }
        }
    }

    /// Records the winner's recomputed score. The winner's entry is still
    /// the heap top, so it is updated in place and sifted — the heap keeps
    /// exactly one entry per candidate. The linear variant is stateless.
    fn rescore_winner(&mut self, s: f64) {
        if let Self::Heap(heap) = self {
            heap[0].0 = s;
            sift_down(heap, 0);
        }
    }

    /// Rebuilds the heap from a wholesale-refreshed score row. Leaving the
    /// entries stale is *sound* (see the module docs) but not free: every
    /// stale entry that reaches the top costs a full repair sift, and an
    /// Equation-(2) refresh stales all of them at once — measured at
    /// hundreds of repair sifts per slot at p = 1024. One Floyd rebuild is
    /// ~2 comparisons per entry over sequential memory and leaves every
    /// subsequent pop valid on first try. The heap minimum is the same
    /// either way, so decisions are untouched. The linear variant is
    /// stateless.
    fn refresh(&mut self, scores: &[f64]) {
        if let Self::Heap(heap) = self {
            heap.clear();
            heap.extend(scores.iter().enumerate().map(|(pos, &s)| (s, pos as u32)));
            heapify(heap);
        }
    }
}

impl Scheduler for GreedyScheduler {
    fn name(&self) -> &str {
        self.name
    }

    fn begin_run(&mut self) {
        // The score memo and the kernel copies are keyed to the run's
        // platform (chains, speeds); a new run invalidates them wholesale.
        self.memo.clear();
        self.kernels.clear();
    }

    fn place_into(&mut self, view: &SchedView<'_>, count: usize, out: &mut Vec<ProcessorId>) {
        let mut ups = std::mem::take(&mut self.ups);
        view.up_indices_into(&mut ups);
        if ups.is_empty() || count == 0 {
            self.ups = ups;
            return;
        }
        // Per-round bookkeeping: tasks assigned to each processor (n_q), the
        // number of enrolled processors (n_active, for Equation (2)), and
        // the cached score of each UP candidate.
        let mut n_q = std::mem::take(&mut self.n_q);
        n_q.clear();
        n_q.resize(view.p(), 0);
        // One memo row per Equation-(2) ceiling factor reachable *this
        // round*: `n_active` counts enrolled UP processors, each placement
        // enrolls at most one, and an unenrolled candidate sees
        // `n_active + 1`, so the factor never exceeds
        // ⌈(min(count, |ups|) + 1)/ncom⌉ (1 for the non-contended
        // variants, whose ceiling never steps; 0 rows when the memo is off
        // for this objective). Rows are factor-major and grow-only, so a
        // later bigger round appends rows without disturbing the existing
        // entries — and a run that never places large bursts never pays
        // the worst-case ⌈(p + 1)/ncom⌉ × p fill.
        let factors = if !self.memo_pays() {
            0
        } else if self.contention {
            ((count.min(ups.len()) as u64 + 1).div_ceil(view.ncom as u64)) as usize
        } else {
            1
        };
        if self.memo_width != view.p() {
            self.memo.clear();
            self.memo_width = view.p();
        }
        if self.memo.len() < factors * view.p() {
            self.memo.resize(factors * view.p(), ChainScoreMemo::EMPTY);
        }
        if self.kernels.len() != view.p() {
            self.kernels.clear();
            self.kernels.extend(view.chains.iter().map(|c| c.kernel()));
        }
        let mut memo = std::mem::take(&mut self.memo);
        let mut scores = std::mem::take(&mut self.scores);
        scores.clear();
        for &i in &ups {
            scores.push(self.memo_score(&mut memo, factors, view, i, 0, 0));
        }
        // Pick the selection strategy: a dense, branch-predictable linear
        // rescan costing O(u) per placement, or the lazy heap costing an
        // O(u) build plus O(log u) amortized per placement. The scan wins
        // while `count·u` is small (its loop vectorizes; sift chains do
        // not); the heap wins on large bursts over large platforms — the
        // post-barrier burst and the replica path at p ≥ 256. Crossover
        // measured on the slotloop bench; it is flat between 2¹¹ and 2¹³.
        let mut selector = if self.force_heap || (count >= 4 && count * ups.len() >= 4096) {
            // One heap entry per UP candidate; positions index `ups`, which
            // is in ascending id order, so the (score, pos) heap order
            // reproduces the linear scan's strict-`<` lowest-id tie-break.
            let mut heap = std::mem::take(&mut self.heap);
            heap.clear();
            heap.extend(scores.iter().enumerate().map(|(pos, &s)| (s, pos as u32)));
            heapify(&mut heap);
            Selector::Heap(heap)
        } else {
            Selector::Linear
        };
        let mut n_active = 0usize;
        for _ in 0..count {
            let best_pos = selector.select(&scores);
            let best_idx = ups[best_pos];
            let newly_enrolled = n_q[best_idx] == 0;
            if newly_enrolled {
                n_active += 1;
            }
            n_q[best_idx] += 1;
            out.push(view.procs[best_idx].id);
            if self.contention && newly_enrolled && ceiling_steps(n_active, view.ncom) {
                // Equation (2): the new enrollee bumped a ⌈n_active/ncom⌉
                // ceiling, inflating effective T_data — refresh the whole
                // cache, through the cross-slot memo (most candidates'
                // (delay, n_q) keys repeat slot over slot, so the refresh
                // is mostly single-compare hits). Heap entries go stale
                // and `select` repairs them lazily.
                for (pos, &i) in ups.iter().enumerate() {
                    scores[pos] = self.memo_score(&mut memo, factors, view, i, n_q[i], n_active);
                }
                selector.refresh(&scores);
            } else {
                // Winner rescores bypass the memo: overwriting the winner's
                // entry with a transient n_q would evict the refresh-keyed
                // value the next slot's replay wants.
                let s = self.score(view, best_idx, n_q[best_idx], n_active);
                scores[best_pos] = s;
                selector.rescore_winner(s);
            }
        }
        if let Selector::Heap(heap) = selector {
            // Return the backing storage to the persistent scratch.
            self.heap = heap;
        }
        self.memo = memo;
        self.ups = ups;
        self.n_q = n_q;
        self.scores = scores;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::SchedViewBuilder;
    use vg_markov::availability::AvailabilityChain;
    use vg_markov::ProcState;

    fn reliable() -> AvailabilityChain {
        // Rarely leaves UP, recovers fast.
        AvailabilityChain::new([[0.99, 0.005, 0.005], [0.50, 0.45, 0.05], [0.10, 0.10, 0.80]])
            .unwrap()
    }

    fn flaky() -> AvailabilityChain {
        // Often reclaimed, often down.
        AvailabilityChain::new([[0.55, 0.30, 0.15], [0.20, 0.60, 0.20], [0.05, 0.05, 0.90]])
            .unwrap()
    }

    #[test]
    fn mct_picks_smallest_completion_time() {
        // Proc 0: w=5, delay=0 -> CT = 0+1+5 = 6
        // Proc 1: w=2, delay=10 -> CT = 10+1+2 = 13
        let view = SchedViewBuilder::new(5, 1, 2)
            .proc(ProcState::Up, 5, true, 0, reliable())
            .proc(ProcState::Up, 2, true, 10, reliable())
            .build();
        let mut s = GreedyScheduler::new(GreedyObjective::Mct, false, "MCT");
        assert_eq!(s.place(&view.view(), 1), vec![ProcessorId(0)]);
    }

    #[test]
    fn mct_spreads_load_via_nq() {
        // Two identical processors: second task must go to the other one
        // because n_q pipelining raises the first's CT.
        let view = SchedViewBuilder::new(5, 1, 2)
            .proc(ProcState::Up, 3, true, 0, reliable())
            .proc(ProcState::Up, 3, true, 0, reliable())
            .build();
        let mut s = GreedyScheduler::new(GreedyObjective::Mct, false, "MCT");
        let picks = s.place(&view.view(), 2);
        assert_eq!(picks, vec![ProcessorId(0), ProcessorId(1)]);
    }

    #[test]
    fn mct_queues_on_fast_processor_when_worth_it() {
        // Fast proc w=1 vs slow w=10: even the 4th task on the fast one
        // beats the first on the slow one (CT 1+1+3·1+... vs 1+10).
        let view = SchedViewBuilder::new(5, 1, 2)
            .proc(ProcState::Up, 1, true, 0, reliable())
            .proc(ProcState::Up, 10, true, 0, reliable())
            .build();
        let mut s = GreedyScheduler::new(GreedyObjective::Mct, false, "MCT");
        let picks = s.place(&view.view(), 4);
        assert_eq!(
            picks,
            vec![ProcessorId(0); 4],
            "all four tasks pipeline on the fast processor"
        );
    }

    #[test]
    fn emct_prefers_reliability_for_long_tasks() {
        // Same speed & delay; EMCT must weigh the RECLAIMED risk and pick
        // the reliable processor, while MCT is indifferent (ties to id 0).
        let view = SchedViewBuilder::new(5, 1, 2)
            .proc(ProcState::Up, 20, true, 0, flaky())
            .proc(ProcState::Up, 20, true, 0, reliable())
            .build();
        let mut emct = GreedyScheduler::new(GreedyObjective::Emct, false, "EMCT");
        assert_eq!(emct.place(&view.view(), 1), vec![ProcessorId(1)]);
        let mut mct = GreedyScheduler::new(GreedyObjective::Mct, false, "MCT");
        assert_eq!(
            mct.place(&view.view(), 1),
            vec![ProcessorId(0)],
            "tie → lowest id"
        );
    }

    #[test]
    fn emct_trades_speed_for_reliability_when_tasks_are_long() {
        // Flaky-but-fast (w=18) vs reliable-but-slower (w=20): for E(W) the
        // reclaimed expansion of the flaky chain dominates its raw speed.
        let view = SchedViewBuilder::new(5, 1, 2)
            .proc(ProcState::Up, 18, true, 0, flaky())
            .proc(ProcState::Up, 20, true, 0, reliable())
            .build();
        let flaky_ew = view.view().chain(0).e_w(19);
        let reliable_ew = view.view().chain(1).e_w(21);
        assert!(
            reliable_ew < flaky_ew,
            "premise: {reliable_ew} vs {flaky_ew}"
        );
        let mut emct = GreedyScheduler::new(GreedyObjective::Emct, false, "EMCT");
        assert_eq!(emct.place(&view.view(), 1), vec![ProcessorId(1)]);
        // MCT, blind to volatility, grabs the faster one.
        let mut mct = GreedyScheduler::new(GreedyObjective::Mct, false, "MCT");
        assert_eq!(mct.place(&view.view(), 1), vec![ProcessorId(0)]);
    }

    #[test]
    fn lw_maximizes_survival() {
        // LW picks the processor with the highest (P₊)^CT — here the
        // reliable one despite a longer CT.
        let view = SchedViewBuilder::new(5, 1, 2)
            .proc(ProcState::Up, 2, true, 0, flaky())
            .proc(ProcState::Up, 4, true, 0, reliable())
            .build();
        let p0 = view.view().chain(0).p_plus().powf(3.0);
        let p1 = view.view().chain(1).p_plus().powf(5.0);
        assert!(p1 > p0, "premise: {p1} vs {p0}");
        let mut lw = GreedyScheduler::new(GreedyObjective::Lw, false, "LW");
        assert_eq!(lw.place(&view.view(), 1), vec![ProcessorId(1)]);
    }

    #[test]
    fn ud_maximizes_not_down_probability() {
        let view = SchedViewBuilder::new(5, 1, 2)
            .proc(ProcState::Up, 2, true, 0, flaky())
            .proc(ProcState::Up, 4, true, 0, reliable())
            .build();
        let mut ud = GreedyScheduler::new(GreedyObjective::Ud, false, "UD");
        assert_eq!(ud.place(&view.view(), 1), vec![ProcessorId(1)]);
    }

    #[test]
    fn star_variant_penalizes_enrolling_everyone() {
        // 4 identical processors, ncom = 1, large T_data: MCT* should
        // saturate fewer processors than MCT because each newly enrolled
        // processor inflates the effective T_data.
        let mk = |star| {
            let view = SchedViewBuilder::new(5, 6, 1)
                .proc(ProcState::Up, 2, true, 0, reliable())
                .proc(ProcState::Up, 2, true, 0, reliable())
                .proc(ProcState::Up, 2, true, 0, reliable())
                .proc(ProcState::Up, 2, true, 0, reliable())
                .build();
            let mut s = GreedyScheduler::new(GreedyObjective::Mct, star, "MCTx");
            let picks = s.place(&view.view(), 4);
            let mut used: Vec<_> = picks.iter().map(|p| p.idx()).collect();
            used.sort_unstable();
            used.dedup();
            used.len()
        };
        let plain = mk(false);
        let starred = mk(true);
        assert_eq!(plain, 4, "MCT spreads to all");
        assert!(starred < plain, "MCT* enrolled {starred} (MCT {plain})");
    }

    #[test]
    fn star_equals_plain_when_uncontended() {
        // With ncom ≥ enrolled processors the correction factor is 1 and
        // MCT* must equal MCT decisions.
        let build = || {
            SchedViewBuilder::new(5, 2, 8)
                .proc(ProcState::Up, 3, true, 0, reliable())
                .proc(ProcState::Up, 5, true, 2, flaky())
                .proc(ProcState::Up, 2, false, 7, reliable())
                .build()
        };
        let mut plain = GreedyScheduler::new(GreedyObjective::Mct, false, "MCT");
        let mut star = GreedyScheduler::new(GreedyObjective::Mct, true, "MCT*");
        assert_eq!(
            plain.place(&build().view(), 5),
            star.place(&build().view(), 5)
        );
    }

    #[test]
    fn returns_empty_without_up_processors() {
        let view = SchedViewBuilder::new(5, 1, 2)
            .proc(ProcState::Reclaimed, 1, true, 0, reliable())
            .proc(ProcState::Down, 1, true, 0, reliable())
            .build();
        for obj in [
            GreedyObjective::Mct,
            GreedyObjective::Emct,
            GreedyObjective::Lw,
            GreedyObjective::Ud,
        ] {
            let mut s = GreedyScheduler::new(obj, false, "x");
            assert!(s.place(&view.view(), 2).is_empty(), "{obj:?}");
        }
    }

    #[test]
    fn delay_shifts_choice() {
        // Identical processors except delay: must pick the idle one.
        let view = SchedViewBuilder::new(5, 1, 2)
            .proc(ProcState::Up, 3, true, 9, reliable())
            .proc(ProcState::Up, 3, true, 0, reliable())
            .build();
        for obj in [GreedyObjective::Mct, GreedyObjective::Emct] {
            let mut s = GreedyScheduler::new(obj, false, "x");
            assert_eq!(s.place(&view.view(), 1), vec![ProcessorId(1)], "{obj:?}");
        }
    }

    #[test]
    fn missing_program_is_reflected_through_delay() {
        // The simulator folds T_prog into delay; a processor lacking the
        // program carries delay = T_prog and loses the tie.
        let view = SchedViewBuilder::new(6, 1, 2)
            .proc(ProcState::Up, 3, false, 6, reliable())
            .proc(ProcState::Up, 3, true, 0, reliable())
            .build();
        let mut s = GreedyScheduler::new(GreedyObjective::Mct, false, "MCT");
        assert_eq!(s.place(&view.view(), 1), vec![ProcessorId(1)]);
    }

    #[test]
    fn place_into_reuses_buffers_and_matches_place() {
        // The scratch-based entry point must agree with the shim and, once
        // warm, leave the output buffer's allocation untouched.
        let owned = SchedViewBuilder::new(5, 3, 2)
            .proc(ProcState::Up, 3, true, 0, reliable())
            .proc(ProcState::Up, 2, true, 1, flaky())
            .proc(ProcState::Up, 7, true, 0, reliable())
            .build();
        for (obj, star) in [
            (GreedyObjective::Mct, false),
            (GreedyObjective::Mct, true),
            (GreedyObjective::Emct, true),
            (GreedyObjective::Ud, false),
        ] {
            let mut a = GreedyScheduler::new(obj, star, "a");
            let mut b = GreedyScheduler::new(obj, star, "b");
            let expected = a.place(&owned.view(), 6);
            let mut out = Vec::with_capacity(6);
            b.place_into(&owned.view(), 6, &mut out);
            assert_eq!(out, expected, "{obj:?} star={star}");
            let ptr = out.as_ptr();
            out.clear();
            b.place_into(&owned.view(), 6, &mut out);
            assert_eq!(out, expected);
            assert_eq!(ptr, out.as_ptr(), "output buffer must be reused");
        }
    }

    #[test]
    fn begin_run_drops_stale_platform_caches() {
        // One scheduler instance reused across two equally sized but
        // different platforms must match a fresh instance on the second,
        // provided the engine's begin_run contract is honored.
        let view_a = SchedViewBuilder::new(5, 3, 2)
            .proc(ProcState::Up, 2, true, 0, reliable())
            .proc(ProcState::Up, 9, true, 0, reliable())
            .build();
        let view_b = SchedViewBuilder::new(5, 3, 2)
            .proc(ProcState::Up, 9, true, 0, flaky())
            .proc(ProcState::Up, 2, true, 0, reliable())
            .build();
        for (obj, star) in [(GreedyObjective::Emct, false), (GreedyObjective::Ud, true)] {
            let mut reused = GreedyScheduler::new(obj, star, "reused");
            let _ = reused.place(&view_a.view(), 3);
            reused.begin_run();
            let mut fresh = GreedyScheduler::new(obj, star, "fresh");
            assert_eq!(
                reused.place(&view_b.view(), 3),
                fresh.place(&view_b.view(), 3),
                "{obj:?} star={star}"
            );
        }
    }

    /// All eight greedy configurations, for exhaustive differential tests.
    const FAMILIES: [(GreedyObjective, bool); 8] = [
        (GreedyObjective::Mct, false),
        (GreedyObjective::Mct, true),
        (GreedyObjective::Emct, false),
        (GreedyObjective::Emct, true),
        (GreedyObjective::Lw, false),
        (GreedyObjective::Lw, true),
        (GreedyObjective::Ud, false),
        (GreedyObjective::Ud, true),
    ];

    mod argmin_property {
        use super::super::*;
        use super::FAMILIES;
        use crate::view::SchedViewBuilder;
        use proptest::prelude::*;
        use vg_markov::availability::AvailabilityChain;
        use vg_markov::ProcState;

        fn chain(idx: u32) -> AvailabilityChain {
            let rows = match idx % 3 {
                0 => [[0.99, 0.005, 0.005], [0.50, 0.45, 0.05], [0.10, 0.10, 0.80]],
                1 => [[0.55, 0.30, 0.15], [0.20, 0.60, 0.20], [0.05, 0.05, 0.90]],
                _ => [[0.90, 0.05, 0.05], [0.40, 0.50, 0.10], [0.20, 0.20, 0.60]],
            };
            AvailabilityChain::new(rows).unwrap()
        }

        fn state(idx: u32) -> ProcState {
            match idx {
                0 | 1 => ProcState::Up, // bias toward schedulable platforms
                2 => ProcState::Reclaimed,
                _ => ProcState::Down,
            }
        }

        /// The specification: recompute every candidate's score from
        /// scratch before each placement and take the strict-`<` linear
        /// argmin — no caches, no heap. Mirrors the pre-optimization
        /// algorithm exactly, including the lowest-id tie-break and the
        /// Equation-(2) `n_active` coupling.
        fn naive_placements(
            probe: &GreedyScheduler,
            view: &SchedView<'_>,
            count: usize,
        ) -> Vec<ProcessorId> {
            let ups = view.up_indices();
            if ups.is_empty() {
                return Vec::new();
            }
            let mut out = Vec::new();
            let mut n_q = vec![0usize; view.p()];
            let mut n_active = 0usize;
            for _ in 0..count {
                let mut best_idx = ups[0];
                let mut best_score = f64::INFINITY;
                for &i in &ups {
                    let s = probe.score(view, i, n_q[i], n_active);
                    if s < best_score {
                        best_score = s;
                        best_idx = i;
                    }
                }
                if n_q[best_idx] == 0 {
                    n_active += 1;
                }
                n_q[best_idx] += 1;
                out.push(view.procs[best_idx].id);
            }
            out
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Random score-mutation/placement sequences: per round the
            /// processors' delays and states mutate and a random batch is
            /// placed. A *persistent* heap scheduler (its `score0` cache
            /// warm across rounds) and a persistent linear-scan scheduler
            /// must both reproduce the stateless naive model's winners —
            /// and tie-break order — for every greedy family, including
            /// the `*` variants whose Equation-(2) coupling invalidates
            /// neighbors mid-round.
            #[test]
            fn heap_and_linear_match_naive_model(
                ncom in 1usize..5,
                t_prog in 0u64..8,
                t_data in 0u64..5,
                procs in collection::vec((1u64..12, 0u32..3, 0u32..2), 2..14),
                rounds in collection::vec(
                    (
                        1usize..20,
                        collection::vec(0u64..15, 14),
                        collection::vec(0u32..4, 14),
                    ),
                    1..6,
                ),
            ) {
                for (obj, star) in FAMILIES {
                    let mut heap = GreedyScheduler::new(obj, star, "heap");
                    heap.force_heap(true);
                    let mut linear = GreedyScheduler::new(obj, star, "linear");
                    heap.begin_run();
                    linear.begin_run();
                    for (count, delays, states) in &rounds {
                        let mut b = SchedViewBuilder::new(t_prog, t_data, ncom);
                        for (i, &(w, chain_idx, prog)) in procs.iter().enumerate() {
                            b = b.proc(
                                state(states[i]),
                                w,
                                prog == 1,
                                delays[i],
                                chain(chain_idx),
                            );
                        }
                        let owned = b.build();
                        let view = owned.view();
                        let probe = GreedyScheduler::new(obj, star, "probe");
                        let expected = naive_placements(&probe, &view, *count);
                        prop_assert_eq!(
                            heap.place(&view, *count),
                            expected.clone(),
                            "heap vs naive: {:?} star={} count={}",
                            obj,
                            star,
                            count
                        );
                        prop_assert_eq!(
                            linear.place(&view, *count),
                            expected,
                            "linear vs naive: {:?} star={} count={}",
                            obj,
                            star,
                            count
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn forced_heap_matches_hybrid_on_unit_views() {
        // Deterministic spot-check below the proptest: the heap path must
        // reproduce the linear path on the existing hand-built scenarios.
        let owned = SchedViewBuilder::new(5, 3, 2)
            .proc(ProcState::Up, 2, true, 0, reliable())
            .proc(ProcState::Up, 2, true, 0, reliable())
            .proc(ProcState::Up, 5, false, 4, flaky())
            .proc(ProcState::Up, 1, true, 2, reliable())
            .build();
        for (obj, star) in FAMILIES {
            let mut plain = GreedyScheduler::new(obj, star, "plain");
            let mut forced = GreedyScheduler::new(obj, star, "forced");
            forced.force_heap(true);
            assert_eq!(
                plain.place(&owned.view(), 10),
                forced.place(&owned.view(), 10),
                "{obj:?} star={star}"
            );
        }
    }

    #[test]
    fn score_cache_matches_naive_rescan() {
        // Replay the pre-cache algorithm and compare decision-for-decision
        // on a view engineered to exercise ties, enrollment and pipelining.
        let owned = SchedViewBuilder::new(4, 3, 2)
            .proc(ProcState::Up, 2, true, 0, reliable())
            .proc(ProcState::Up, 2, true, 0, reliable())
            .proc(ProcState::Up, 5, false, 4, flaky())
            .proc(ProcState::Up, 1, true, 2, reliable())
            .build();
        let view = owned.view();
        for (obj, star) in [
            (GreedyObjective::Mct, false),
            (GreedyObjective::Mct, true),
            (GreedyObjective::Emct, false),
            (GreedyObjective::Emct, true),
            (GreedyObjective::Lw, true),
            (GreedyObjective::Ud, true),
        ] {
            let probe = GreedyScheduler::new(obj, star, "probe");
            let mut naive = Vec::new();
            let mut n_q = vec![0usize; view.p()];
            let mut n_active = 0usize;
            let ups = view.up_indices();
            for _ in 0..10 {
                let mut best_idx = ups[0];
                let mut best_score = f64::INFINITY;
                for &i in &ups {
                    let s = probe.score(&view, i, n_q[i], n_active);
                    if s < best_score {
                        best_score = s;
                        best_idx = i;
                    }
                }
                if n_q[best_idx] == 0 {
                    n_active += 1;
                }
                n_q[best_idx] += 1;
                naive.push(view.procs[best_idx].id);
            }
            let mut cached = GreedyScheduler::new(obj, star, "cached");
            assert_eq!(cached.place(&view, 10), naive, "{obj:?} star={star}");
        }
    }
}
