//! The greedy heuristic families of Section 6.3: MCT, EMCT, LW, UD and
//! their contention-aware `*` variants.
//!
//! All four share the same skeleton — assign the `m − m′` remaining tasks
//! one at a time, each to the processor optimizing a per-candidate score —
//! and differ only in the score:
//!
//! | family | score (selection) | uses |
//! |---|---|---|
//! | MCT  | min `CT(P_q, n_q+1)` | Eq. (1)/(2) |
//! | EMCT | min `E(CT(P_q, n_q+1))` | Theorem 2 expectation of the CT workload |
//! | LW   | max `(P₊)^{CT(P_q, n_q+1)}` | Lemma 1 |
//! | UD   | max `P_UD(E(CT(P_q, n_q+1)))` | Section 6.3.3 approximation |
//!
//! The `*` variants replace `T_data` by `⌈n_active/ncom⌉·T_data` inside `CT`
//! (Equation (2)).
//!
//! ## Scratch reuse and score caching
//!
//! `place_into` keeps its buffers across calls (`ups`, `n_q`, `scores`,
//! `heap`, the score memo and the kernel copies), so steady-state placement
//! allocates nothing. Scores are cached per UP processor and recomputed
//! only when their inputs change: assigning a task to `P_j` invalidates
//! `P_j`'s score alone, except for the `*` variants where enrolling a *new*
//! processor bumps `n_active` and invalidates every score (Equation (2)
//! couples them). Every cache replays exactly the computation the naive
//! rescan performed, so decisions — including the lowest-id tie-break
//! \[D9\] — are bit-identical to the original implementation.
//!
//! ## Pluggable argmin selectors
//!
//! Selecting each placement's argmin by rescanning every UP processor makes
//! a `count`-task placement burst cost `O(count · p)` — the dominant slot
//! cost at large `p` (the post-barrier burst places `m ≈ 2p` tasks, and the
//! replica path re-places nearly every slot). Winner selection therefore
//! dispatches through the [`selector`](crate::selector) module: a dense
//! linear rescan below the measured crossover, and above it a **loser
//! tree** over `(score, pos)` keys — `O(1)` select, one `⌈log₂ u⌉`
//! leaf-to-root path per winner re-score, one `O(u)` bottom-up rebuild per
//! Equation-(2) ceiling step — with the stale-tolerant lazy 4-ary heap of
//! the previous generation kept as a third, `force_selector`-reachable
//! implementation and differential witness. All three produce bit-identical
//! winner sequences (the proptest below drives every family through every
//! selector against the cache-free naive model); see the selector module
//! docs for the key order, the staleness contracts and the measured
//! crossovers.
//!
//! Scores are **monotone non-decreasing within a round** — every mutation
//! (pipelining another task onto a processor, inflating effective `T_data`
//! by enrolling one more) raises completion time, and all four objectives
//! are normalized so larger `CT` means a larger score. The lazy heap's
//! pop-validate repair relies on that invariant; the loser tree does not
//! need it (its entries are never stale), but the invariant is what makes
//! the *round-batched* ceiling refresh cheap for both: one dense re-score
//! pass over the row, then one `O(u)` rebuild.
//!
//! ## Division-free Equation-(2) bookkeeping
//!
//! A placement round at `p = 1024` re-scores the winner up to thousands of
//! times, and the naive evaluation pays two integer divisions per re-score
//! — `effective_t_data`'s `⌈n_active/ncom⌉` and the `ceiling_steps`
//! enrollment check. Both ceilings move only when `n_active` crosses a
//! multiple of `ncom`, so `place_into` maintains the enrolled and
//! not-yet-enrolled Equation-(2) factors *incrementally* (one compare per
//! enrollment, `f(n+1) = f(n) + [ncom divides n]`) and hands the resulting
//! effective `T_data` to the score kernel ready-made. Debug builds assert
//! the incremental factors against the closed forms at every enrollment;
//! the values are identical, so decisions are untouched.
//!
//! ## The cross-slot Eq.-(2)/Theorem-2 score memo
//!
//! A placement score is a pure function of per-run constants (the
//! processor's [`ChainStats`](vg_markov::ChainStats), its speed, `T_prog`,
//! `T_data`, `ncom`) and three integers: the processor's snapshot `delay`,
//! its `n_q`, and the Equation-(2) ceiling factor behind the effective
//! `T_data`. The scheduler therefore keeps a table of
//! [`ChainScoreMemo`] entries, one per *(ceiling factor, processor)* —
//! factor-major, so an Equation-(2) refresh walks one contiguous row — each
//! keyed by `(delay, n_q)`. The initial-row fill and every ceiling-step
//! refresh consult the memo; between slots the platform barely moves (idle
//! workers keep their delay, the placement trajectory replays), so most
//! consults are single-compare hits. A hit replays the exact bits the
//! closed form would produce, so decisions are unchanged; the naive-model
//! proptest below pins that. `begin_run` drops the table (scores embed
//! per-run chain statistics and speeds), and per-placement winner rescores
//! bypass it so refresh entries survive a whole round.
//!
//! The memo is engaged only where re-deriving the closed form is the
//! expensive part: LW's `powf` and UD's `pow_slots` (tens of nanoseconds
//! each). MCT/EMCT scores are two or three flops against the dense
//! [`ScoreKernel`] copies — cheaper than the table lookup itself, measured
//! as a net slot-loop *loss* when cached — so those objectives evaluate
//! directly (`GreedyScheduler::memo_pays`).

use crate::ct::{completion_time, effective_t_data};
use crate::selector::{LoserTree, Selector, SelectorKind, ShardedTree};
use crate::traits::Scheduler;
use crate::view::SchedView;
use vg_des::SlotSpan;
use vg_markov::{ChainScoreMemo, ScoreKernel};
use vg_platform::ProcessorId;

/// Whether growing `n_active` from `n_active − 1` changed the Equation-(2)
/// factor `⌈max(n_active_incl, 1)/ncom⌉` for either candidate class —
/// enrolled processors see `n_active_incl = n_active`, not-yet-enrolled ones
/// see `n_active + 1` (\[D13\]). When neither ceiling moved, every cached
/// score is unchanged bit-for-bit and the cache refresh can be skipped.
#[inline]
fn ceiling_steps(n_active: usize, ncom: usize) -> bool {
    let f = |x: usize| (x.max(1) as u64).div_ceil(ncom as u64);
    f(n_active) != f(n_active - 1) || f(n_active + 1) != f(n_active)
}

/// Which selection score a [`GreedyScheduler`] optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GreedyObjective {
    /// Minimum completion time (optimal off-line when `ncom = ∞`,
    /// Proposition 2).
    Mct,
    /// Expected minimum completion time: `E(CT)` via Theorem 2.
    Emct,
    /// Likely to Work: maximize `(P₊)^{CT}`.
    Lw,
    /// Unlikely Down: maximize `P_UD(E(CT))`.
    Ud,
}

/// A greedy heuristic instance.
#[derive(Debug, Clone)]
pub struct GreedyScheduler {
    objective: GreedyObjective,
    /// Apply the Equation-(2) contention correction (the `*` variants).
    contention: bool,
    name: &'static str,
    /// Scratch: UP processor indices of the current call.
    ups: Vec<usize>,
    /// Scratch: per-candidate task count `n_q` of the current round
    /// (parallel to `ups`). The round's only dense per-candidate state —
    /// score inputs are re-read from the view/kernels at the few positions
    /// that are actually re-scored ([`HotRow`] is built transiently
    /// there), so the initial fill writes 4 bytes per candidate instead
    /// of a full row.
    counts: Vec<u32>,
    /// Scratch: cached score of each UP processor (parallel to `ups`).
    scores: Vec<f64>,
    /// Scratch: the lazy heap selector's `(score, pos)` entries (`pos`
    /// indexes `ups`); see the selector module for the staleness contract.
    heap: Vec<(f64, u32)>,
    /// Scratch: the loser-tree selector's tournament storage.
    tree: LoserTree,
    /// Scratch: the sharded selector's per-shard trees + winner keys
    /// (the `u ≥ 8192` regime; see `docs/scaling.md`).
    sharded: ShardedTree,
    /// Test hook: pin every selection to one selector implementation,
    /// bypassing the size-threshold policy, so small hand-built views can
    /// exercise any path. `None` follows [`SelectorKind::choose`].
    force_selector: Option<SelectorKind>,
    /// Cross-slot Eq.-(2)/Theorem-2 score memo: one entry per (ceiling
    /// factor, processor), factor-major, keyed by `(delay, n_q)` — see the
    /// module docs. Subsumes the former initial-row cache (its entries are
    /// the factor-1, `n_q = 0` keys) and additionally serves every
    /// Equation-(2) ceiling refresh. Rows are grown on demand per round —
    /// a round placing `count` tasks can only reach factor
    /// `⌈(min(count, |ups|) + 1)/ncom⌉` — so a low-`ncom` run never pays
    /// the worst-case `⌈(p + 1)/ncom⌉ × p` fill up front.
    memo: Vec<ChainScoreMemo>,
    /// Row width (processor count) `memo` was laid out for; a mismatch
    /// without an intervening `begin_run` (hand-driven tests) resets the
    /// table instead of aliasing rows.
    memo_width: usize,
    /// Per-run dense copy of each processor's [`ScoreKernel`]: the four
    /// scalars a score evaluation reads, without dragging the processor's
    /// whole `ChainStats` (a scattered ~140-byte pull) through the cache on
    /// every candidate. Rebuilt on a platform-size change and dropped by
    /// `begin_run`; values are copies of `view.chains[i].kernel()`, so an
    /// evaluation against them is bit-identical to one against the view.
    kernels: Vec<ScoreKernel>,
}

impl GreedyScheduler {
    /// Creates a greedy scheduler. `name` should come from the catalog.
    #[must_use]
    pub fn new(objective: GreedyObjective, contention: bool, name: &'static str) -> Self {
        Self {
            objective,
            contention,
            name,
            ups: Vec::new(),
            counts: Vec::new(),
            scores: Vec::new(),
            heap: Vec::new(),
            tree: LoserTree::default(),
            sharded: ShardedTree::default(),
            force_selector: None,
            memo: Vec::new(),
            memo_width: 0,
            kernels: Vec::new(),
        }
    }

    /// Pins every selection to `kind` (`None` restores the size-threshold
    /// policy), so differential tests can exercise any selector on small
    /// hand-built views. Decisions are identical for every kind; only the
    /// access pattern changes.
    #[doc(hidden)]
    pub fn force_selector(&mut self, kind: Option<SelectorKind>) {
        self.force_selector = kind;
    }

    /// Routes every selection through the lazy heap — the pre-loser-tree
    /// test hook, kept as a shim over [`Self::force_selector`].
    #[doc(hidden)]
    pub fn force_heap(&mut self, on: bool) {
        self.force_selector = on.then_some(SelectorKind::LazyHeap);
    }

    /// The objective.
    #[must_use]
    pub fn objective(&self) -> GreedyObjective {
        self.objective
    }

    /// Whether the Equation-(2) correction is active.
    #[must_use]
    pub fn contention_aware(&self) -> bool {
        self.contention
    }

    /// Score of assigning one more task to processor `idx`; *smaller is
    /// better* (maximizing objectives are negated). Resolves the
    /// Equation-(2) ceiling from first principles per call — the
    /// specification [`Self::score_with_eff`] is measured against, and the
    /// naive-model oracle's entry point (hot paths track the ceiling
    /// incrementally instead).
    #[cfg_attr(not(test), allow(dead_code))]
    fn score(&self, view: &SchedView<'_>, idx: usize, n_q: usize, n_active: usize) -> f64 {
        // [D13]: the candidate counts itself when newly enrolled.
        let n_active_incl = n_active + usize::from(n_q == 0);
        let eff = effective_t_data(view.t_data, self.contention, n_active_incl, view.ncom);
        self.score_with_eff(view, idx, n_q, eff)
    }

    /// [`Self::score`] with the Equation-(2) effective `T_data` already
    /// resolved — the hot-path entry: `place_into` maintains the ceiling
    /// factors incrementally (see the module docs) and hands `eff` in
    /// ready-made, so a winner re-score performs no division. `eff` must
    /// equal `effective_t_data(view.t_data, self.contention,
    /// n_active_incl, view.ncom)` for the candidate's enrollment state;
    /// callers that don't track it use [`Self::score`].
    fn score_with_eff(&self, view: &SchedView<'_>, idx: usize, n_q: usize, eff: SlotSpan) -> f64 {
        let p = &view.procs[idx];
        // Hot path: the per-run dense kernel copy. Fall back to the view's
        // ChainStats (identical values — the copy's source) when the cache
        // is not warmed, e.g. for probe schedulers driven outside
        // `place_into` in tests.
        let kernel = match self.kernels.get(idx) {
            Some(k) => *k,
            None => view.chain(idx).kernel(),
        };
        let ct = completion_time(p, n_q + 1, eff);
        match self.objective {
            GreedyObjective::Mct => ct as f64,
            GreedyObjective::Emct => kernel.e_w(ct),
            GreedyObjective::Lw => {
                // Maximize (P₊)^CT  ⇔  minimize −(P₊)^CT.
                -(kernel.p_plus.powf(ct as f64))
            }
            GreedyObjective::Ud => {
                // k = E(CT) rounded to whole slots (≥ 1), then the paper's
                // closed-form P_UD approximation.
                let k = kernel.e_w(ct).round().max(1.0) as u64;
                -kernel.p_ud_approx(k)
            }
        }
    }

    /// Whether the cross-slot memo pays for this objective. LW re-derives
    /// a `powf` and UD a `pow_slots` per evaluation — tens of nanoseconds
    /// a hit replays with one compare. MCT/EMCT scores are two or three
    /// flops against the dense kernel, *cheaper than the memo lookup
    /// itself*, so caching them only adds table traffic (measured as a net
    /// slot-loop loss at p = 1024); they evaluate directly.
    #[inline]
    fn memo_pays(&self) -> bool {
        matches!(self.objective, GreedyObjective::Lw | GreedyObjective::Ud)
    }

    /// [`Self::score_with_eff`] through the cross-slot memo (see the
    /// module docs).
    ///
    /// `memo` is the scheduler's factor-major table (taken out of `self`
    /// for the borrow), `factors` its row count — 0 when the memo is off
    /// for this objective ([`Self::memo_pays`]). `price` is the
    /// candidate's Equation-(2) `(ceiling factor, effective T_data)` pair
    /// — maintained incrementally by `place_into` ([`CeilingState`];
    /// `(1, t_data)` for non-contended variants and for every initial-row
    /// fill, where the first placement sees `n_active_incl = 1`). The memo
    /// key `(delay, n_q)` plus the factor-indexed row capture every
    /// varying input of `score` — chain, speed, `T_prog`, `T_data` and
    /// `ncom` are per-run constants and `begin_run` drops the table — so
    /// a hit is bit-identical to a recomputation.
    #[inline]
    fn memo_score(
        &self,
        memo: &mut [ChainScoreMemo],
        factors: usize,
        view: &SchedView<'_>,
        idx: usize,
        row: &HotRow,
        (factor, eff): (usize, SlotSpan),
    ) -> f64 {
        debug_assert_eq!(
            eff,
            view.t_data * factor as u64,
            "effective T_data out of sync with the ceiling factor"
        );
        debug_assert_eq!(row.base - row.w, view.procs[idx].delay);
        if factors == 0 {
            return self.score_checked(view, idx, row, eff);
        }
        debug_assert!(
            (1..=factors).contains(&factor),
            "Equation-(2) factor {factor} outside the memo's {factors} rows"
        );
        if factor > factors {
            // Defensive: never alias another factor's entries.
            return self.score_checked(view, idx, row, eff);
        }
        // The memo key's delay is recovered from the dense row
        // (`base − w`, exact in u64), so a consult touches no view array.
        memo[(factor - 1) * view.p() + idx].get_or_eval(row.base - row.w, row.n_q as u64, || {
            self.score_checked(view, idx, row, eff)
        })
    }

    /// Builds candidate `idx`'s transient scoring row from the view and
    /// the per-run kernel copy. Only called from `place_into`, which
    /// guarantees `kernels` is warmed for the view's width.
    #[inline]
    fn hot_row(&self, view: &SchedView<'_>, idx: usize, n_q: u32) -> HotRow {
        let p = &view.procs[idx];
        HotRow {
            base: p.delay + p.w,
            w: p.w,
            n_q,
            kernel: self.kernels[idx],
        }
    }

    /// [`score_hot`] plus the debug-build bit-equality check against the
    /// view-walking specification ([`Self::score_with_eff`]).
    #[inline]
    fn score_checked(&self, view: &SchedView<'_>, idx: usize, row: &HotRow, eff: SlotSpan) -> f64 {
        let s = score_hot(self.objective, row, eff);
        debug_assert_eq!(
            s.to_bits(),
            self.score_with_eff(view, idx, row.n_q as usize, eff)
                .to_bits(),
            "hot-row score diverged from the view-walking evaluation"
        );
        s
    }
}

/// One candidate's **transient** scoring row: every score evaluation reads
/// exactly these fields. Built on the stack at the few positions a round
/// actually re-scores (winner re-scores, ceiling refreshes) — an earlier
/// design materialized one row per candidate per round, which at platform
/// scale wrote 56 bytes × u of dense rows every round just to re-read a
/// handful of them.
#[derive(Debug, Clone, Copy)]
struct HotRow {
    /// `Delay(q) + w_q` — the n_q-independent part of Equation (1)/(2).
    base: SlotSpan,
    /// `w_q`, for the pipelining term's `max(T_data_eff, w_q)`.
    w: SlotSpan,
    /// Tasks assigned to this candidate in the current round.
    n_q: u32,
    /// Copy of the per-run [`ScoreKernel`] (the copy's source is
    /// `view.chains[idx].kernel()`, so evaluating against it is
    /// bit-identical to evaluating through the view).
    kernel: ScoreKernel,
}

/// [`GreedyScheduler::score_with_eff`] against a dense [`HotRow`]: the
/// same Equation-(1)/(2) completion time — `row.n_q` is the candidate's
/// already-assigned count, the evaluated task adds one, so the pipelining
/// term is `n_q · max(eff, w)`; u64 addition is associative, so
/// regrouping `delay + w` into `base` is exact — fed to the same kernel
/// closed forms. Debug builds assert the bits against the view-walking
/// evaluation at every call site.
#[inline]
fn score_hot(objective: GreedyObjective, row: &HotRow, eff: SlotSpan) -> f64 {
    let ct = row.base + eff + row.n_q as u64 * eff.max(row.w);
    match objective {
        GreedyObjective::Mct => ct as f64,
        GreedyObjective::Emct => row.kernel.e_w(ct),
        GreedyObjective::Lw => -(row.kernel.p_plus.powf(ct as f64)),
        GreedyObjective::Ud => {
            let k = row.kernel.e_w(ct).round().max(1.0) as u64;
            -row.kernel.p_ud_approx(k)
        }
    }
}

/// Incrementally maintained Equation-(2) ceiling state of one placement
/// round: the factors an enrolled (`f(n_active)`) and a not-yet-enrolled
/// (`f(n_active + 1)`, \[D13\]) candidate see, the matching effective
/// `T_data` values, and `n_active % ncom` — everything the round needs to
/// (a) price any candidate and (b) detect a ceiling step, with one compare
/// per enrollment and no division. Non-contended variants keep the
/// constant factor-1 state.
struct CeilingState {
    contention: bool,
    ncom: usize,
    t_data: SlotSpan,
    n_active: usize,
    /// `n_active % ncom`, maintained incrementally.
    rem: usize,
    /// `f(n_active) = ⌈max(n_active, 1)/ncom⌉` — the enrolled factor.
    factor_enrolled: usize,
    /// `f(n_active + 1)` — the factor a newly enrolling candidate sees.
    factor_unenrolled: usize,
    /// `t_data · factor_enrolled`.
    eff_enrolled: SlotSpan,
    /// `t_data · factor_unenrolled`.
    eff_unenrolled: SlotSpan,
}

impl CeilingState {
    fn new(contention: bool, t_data: SlotSpan, ncom: usize) -> Self {
        // n_active = 0: both factors are ⌈1/ncom⌉ = 1 (f(0) uses
        // max(n_active, 1), and the first candidate counts itself).
        Self {
            contention,
            ncom,
            t_data,
            n_active: 0,
            rem: 0,
            factor_enrolled: 1,
            factor_unenrolled: 1,
            eff_enrolled: t_data,
            eff_unenrolled: t_data,
        }
    }

    /// Records one enrollment and reports whether either ceiling stepped —
    /// exactly `ceiling_steps(n_active, ncom)` of the refresh condition,
    /// computed by factor compares instead of four divisions.
    fn enroll(&mut self) -> bool {
        self.n_active += 1;
        if !self.contention {
            return false;
        }
        self.rem += 1;
        if self.rem == self.ncom {
            self.rem = 0;
        }
        let old_enrolled = self.factor_enrolled;
        // f(n) for the just-reached n is what an unenrolled candidate saw
        // at n − 1; f(n + 1) grows by one exactly when ncom divides n.
        self.factor_enrolled = self.factor_unenrolled;
        self.factor_unenrolled = self.factor_enrolled + usize::from(self.rem == 0);
        self.eff_enrolled = self.t_data * self.factor_enrolled as u64;
        self.eff_unenrolled = self.t_data * self.factor_unenrolled as u64;
        debug_assert_eq!(self.rem, self.n_active % self.ncom);
        debug_assert_eq!(
            self.factor_enrolled as u64,
            (self.n_active.max(1) as u64).div_ceil(self.ncom as u64),
            "incremental enrolled factor diverged at n_active={}",
            self.n_active
        );
        debug_assert_eq!(
            self.factor_unenrolled as u64,
            ((self.n_active + 1) as u64).div_ceil(self.ncom as u64),
            "incremental unenrolled factor diverged at n_active={}",
            self.n_active
        );
        let stepped =
            self.factor_enrolled != old_enrolled || self.factor_unenrolled != self.factor_enrolled;
        debug_assert_eq!(stepped, ceiling_steps(self.n_active, self.ncom));
        stepped
    }

    /// `(factor, effective T_data)` for a candidate with `n_q` tasks.
    #[inline]
    fn price(&self, n_q: usize) -> (usize, SlotSpan) {
        if n_q == 0 {
            (self.factor_unenrolled, self.eff_unenrolled)
        } else {
            (self.factor_enrolled, self.eff_enrolled)
        }
    }
}

impl Scheduler for GreedyScheduler {
    fn name(&self) -> &str {
        self.name
    }

    fn begin_run(&mut self) {
        // The score memo and the kernel copies are keyed to the run's
        // platform (chains, speeds); a new run invalidates them wholesale.
        self.memo.clear();
        self.kernels.clear();
    }

    fn place_into(&mut self, view: &SchedView<'_>, count: usize, out: &mut Vec<ProcessorId>) {
        let mut ups = std::mem::take(&mut self.ups);
        view.up_indices_into(&mut ups);
        if ups.is_empty() || count == 0 {
            self.ups = ups;
            return;
        }
        // Per-round bookkeeping: one task count per candidate (by
        // position), the Equation-(2) ceiling state (n_active and the
        // incrementally maintained factors), and the cached score of each
        // UP candidate.
        let mut counts = std::mem::take(&mut self.counts);
        counts.clear();
        counts.resize(ups.len(), 0u32);
        // One memo row per Equation-(2) ceiling factor reachable *this
        // round*: `n_active` counts enrolled UP processors, each placement
        // enrolls at most one, and an unenrolled candidate sees
        // `n_active + 1`, so the factor never exceeds
        // ⌈(min(count, |ups|) + 1)/ncom⌉ (1 for the non-contended
        // variants, whose ceiling never steps; 0 rows when the memo is off
        // for this objective). Rows are factor-major and grow-only, so a
        // later bigger round appends rows without disturbing the existing
        // entries — and a run that never places large bursts never pays
        // the worst-case ⌈(p + 1)/ncom⌉ × p fill.
        let factors = if !self.memo_pays() {
            0
        } else if self.contention {
            ((count.min(ups.len()) as u64 + 1).div_ceil(view.ncom as u64)) as usize
        } else {
            1
        };
        if self.memo_width != view.p() {
            self.memo.clear();
            self.memo_width = view.p();
        }
        if self.memo.len() < factors * view.p() {
            self.memo.resize(factors * view.p(), ChainScoreMemo::EMPTY);
        }
        if self.kernels.len() != view.p() {
            self.kernels.clear();
            self.kernels.extend(view.chains.iter().map(|c| c.kernel()));
        }
        let mut memo = std::mem::take(&mut self.memo);
        let mut scores = std::mem::take(&mut self.scores);
        scores.clear();
        // Initial-row fill: every candidate is unenrolled and n_active is
        // 0, so each sees n_active_incl = 1 and the Equation-(2) factor is
        // identically 1 — one constant effective T_data for the whole row,
        // no per-candidate ceiling arithmetic, and no dense row
        // materialization (the transient row lives in registers).
        // Room-constrained rounds (demand-driven placement) mark an
        // already-full candidate unselectable up front: +inf sorts after
        // every finite score in each selector, and the memo is not
        // consulted for a row that can never win.
        let room = view.room;
        for &i in &ups {
            scores.push(if room.is_some_and(|r| r[i] == 0) {
                f64::INFINITY
            } else {
                let row = self.hot_row(view, i, 0);
                self.memo_score(&mut memo, factors, view, i, &row, (1, view.t_data))
            });
        }
        // Pick the selection strategy (see `SelectorKind::choose` for the
        // measured crossover policy): the dense vectorized linear rescan on
        // small rounds, the loser tree above — with the lazy heap pinned
        // only through the `force_selector` hook. Positions index `ups`,
        // which is in ascending id order, so every selector's
        // `(score, pos)` key order reproduces the linear scan's strict-`<`
        // lowest-id tie-break.
        let kind = self
            .force_selector
            .unwrap_or_else(|| SelectorKind::choose(ups.len(), count));
        let mut selector = Selector::build(
            kind,
            &scores,
            &mut self.heap,
            &mut self.tree,
            &mut self.sharded,
        );
        let mut ceiling = CeilingState::new(self.contention, view.t_data, view.ncom);
        let spent =
            |room: Option<&[u8]>, i: usize, n_q: u32| room.is_some_and(|r| n_q >= u32::from(r[i]));
        for _ in 0..count {
            let best_pos = selector.select(&scores);
            let best = ups[best_pos];
            let newly_enrolled = counts[best_pos] == 0;
            counts[best_pos] += 1;
            out.push(view.procs[best].id);
            if newly_enrolled && ceiling.enroll() {
                // Equation (2): the new enrollee bumped a ⌈n_active/ncom⌉
                // ceiling, inflating effective T_data — a round-batched
                // refresh re-prices the whole row in one dense pass,
                // through the cross-slot memo (most candidates' (delay,
                // n_q) keys repeat slot over slot, so the refresh is
                // mostly single-compare hits), then rebuilds the selector
                // bottom-up so each entry is touched exactly once.
                for (pos, &i) in ups.iter().enumerate() {
                    let n_q = counts[pos];
                    if spent(room, i, n_q) {
                        // A room-exhausted candidate must stay unselectable
                        // through the dense re-price (the winner included —
                        // this pick may just have spent its last copy).
                        scores[pos] = f64::INFINITY;
                        continue;
                    }
                    let (factor, eff) = ceiling.price(n_q as usize);
                    let row = self.hot_row(view, i, n_q);
                    scores[pos] = self.memo_score(&mut memo, factors, view, i, &row, (factor, eff));
                }
                selector.refresh(&scores);
            } else if spent(room, best, counts[best_pos]) {
                // The winner spent its last bindable copy: retire it from
                // the round instead of re-pricing it.
                scores[best_pos] = f64::INFINITY;
                selector.rescore_winner(best_pos, &scores);
            } else {
                // Winner rescores bypass the memo: overwriting the winner's
                // entry with a transient n_q would evict the refresh-keyed
                // value the next slot's replay wants. The winner is
                // enrolled by construction, so it prices at the enrolled
                // factor — division-free, against its transient row.
                let row = self.hot_row(view, best, counts[best_pos]);
                let s = self.score_checked(view, best, &row, ceiling.eff_enrolled);
                scores[best_pos] = s;
                selector.rescore_winner(best_pos, &scores);
            }
        }
        // Return the backing storage to the persistent scratch.
        selector.into_storage(&mut self.heap, &mut self.tree, &mut self.sharded);
        self.memo = memo;
        self.ups = ups;
        self.counts = counts;
        self.scores = scores;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::SchedViewBuilder;
    use vg_markov::availability::AvailabilityChain;
    use vg_markov::ProcState;

    fn reliable() -> AvailabilityChain {
        // Rarely leaves UP, recovers fast.
        AvailabilityChain::new([[0.99, 0.005, 0.005], [0.50, 0.45, 0.05], [0.10, 0.10, 0.80]])
            .unwrap()
    }

    fn flaky() -> AvailabilityChain {
        // Often reclaimed, often down.
        AvailabilityChain::new([[0.55, 0.30, 0.15], [0.20, 0.60, 0.20], [0.05, 0.05, 0.90]])
            .unwrap()
    }

    #[test]
    fn mct_picks_smallest_completion_time() {
        // Proc 0: w=5, delay=0 -> CT = 0+1+5 = 6
        // Proc 1: w=2, delay=10 -> CT = 10+1+2 = 13
        let view = SchedViewBuilder::new(5, 1, 2)
            .proc(ProcState::Up, 5, true, 0, reliable())
            .proc(ProcState::Up, 2, true, 10, reliable())
            .build();
        let mut s = GreedyScheduler::new(GreedyObjective::Mct, false, "MCT");
        assert_eq!(s.place(&view.view(), 1), vec![ProcessorId(0)]);
    }

    #[test]
    fn mct_spreads_load_via_nq() {
        // Two identical processors: second task must go to the other one
        // because n_q pipelining raises the first's CT.
        let view = SchedViewBuilder::new(5, 1, 2)
            .proc(ProcState::Up, 3, true, 0, reliable())
            .proc(ProcState::Up, 3, true, 0, reliable())
            .build();
        let mut s = GreedyScheduler::new(GreedyObjective::Mct, false, "MCT");
        let picks = s.place(&view.view(), 2);
        assert_eq!(picks, vec![ProcessorId(0), ProcessorId(1)]);
    }

    #[test]
    fn mct_queues_on_fast_processor_when_worth_it() {
        // Fast proc w=1 vs slow w=10: even the 4th task on the fast one
        // beats the first on the slow one (CT 1+1+3·1+... vs 1+10).
        let view = SchedViewBuilder::new(5, 1, 2)
            .proc(ProcState::Up, 1, true, 0, reliable())
            .proc(ProcState::Up, 10, true, 0, reliable())
            .build();
        let mut s = GreedyScheduler::new(GreedyObjective::Mct, false, "MCT");
        let picks = s.place(&view.view(), 4);
        assert_eq!(
            picks,
            vec![ProcessorId(0); 4],
            "all four tasks pipeline on the fast processor"
        );
    }

    #[test]
    fn emct_prefers_reliability_for_long_tasks() {
        // Same speed & delay; EMCT must weigh the RECLAIMED risk and pick
        // the reliable processor, while MCT is indifferent (ties to id 0).
        let view = SchedViewBuilder::new(5, 1, 2)
            .proc(ProcState::Up, 20, true, 0, flaky())
            .proc(ProcState::Up, 20, true, 0, reliable())
            .build();
        let mut emct = GreedyScheduler::new(GreedyObjective::Emct, false, "EMCT");
        assert_eq!(emct.place(&view.view(), 1), vec![ProcessorId(1)]);
        let mut mct = GreedyScheduler::new(GreedyObjective::Mct, false, "MCT");
        assert_eq!(
            mct.place(&view.view(), 1),
            vec![ProcessorId(0)],
            "tie → lowest id"
        );
    }

    #[test]
    fn emct_trades_speed_for_reliability_when_tasks_are_long() {
        // Flaky-but-fast (w=18) vs reliable-but-slower (w=20): for E(W) the
        // reclaimed expansion of the flaky chain dominates its raw speed.
        let view = SchedViewBuilder::new(5, 1, 2)
            .proc(ProcState::Up, 18, true, 0, flaky())
            .proc(ProcState::Up, 20, true, 0, reliable())
            .build();
        let flaky_ew = view.view().chain(0).e_w(19);
        let reliable_ew = view.view().chain(1).e_w(21);
        assert!(
            reliable_ew < flaky_ew,
            "premise: {reliable_ew} vs {flaky_ew}"
        );
        let mut emct = GreedyScheduler::new(GreedyObjective::Emct, false, "EMCT");
        assert_eq!(emct.place(&view.view(), 1), vec![ProcessorId(1)]);
        // MCT, blind to volatility, grabs the faster one.
        let mut mct = GreedyScheduler::new(GreedyObjective::Mct, false, "MCT");
        assert_eq!(mct.place(&view.view(), 1), vec![ProcessorId(0)]);
    }

    #[test]
    fn lw_maximizes_survival() {
        // LW picks the processor with the highest (P₊)^CT — here the
        // reliable one despite a longer CT.
        let view = SchedViewBuilder::new(5, 1, 2)
            .proc(ProcState::Up, 2, true, 0, flaky())
            .proc(ProcState::Up, 4, true, 0, reliable())
            .build();
        let p0 = view.view().chain(0).p_plus().powf(3.0);
        let p1 = view.view().chain(1).p_plus().powf(5.0);
        assert!(p1 > p0, "premise: {p1} vs {p0}");
        let mut lw = GreedyScheduler::new(GreedyObjective::Lw, false, "LW");
        assert_eq!(lw.place(&view.view(), 1), vec![ProcessorId(1)]);
    }

    #[test]
    fn ud_maximizes_not_down_probability() {
        let view = SchedViewBuilder::new(5, 1, 2)
            .proc(ProcState::Up, 2, true, 0, flaky())
            .proc(ProcState::Up, 4, true, 0, reliable())
            .build();
        let mut ud = GreedyScheduler::new(GreedyObjective::Ud, false, "UD");
        assert_eq!(ud.place(&view.view(), 1), vec![ProcessorId(1)]);
    }

    #[test]
    fn star_variant_penalizes_enrolling_everyone() {
        // 4 identical processors, ncom = 1, large T_data: MCT* should
        // saturate fewer processors than MCT because each newly enrolled
        // processor inflates the effective T_data.
        let mk = |star| {
            let view = SchedViewBuilder::new(5, 6, 1)
                .proc(ProcState::Up, 2, true, 0, reliable())
                .proc(ProcState::Up, 2, true, 0, reliable())
                .proc(ProcState::Up, 2, true, 0, reliable())
                .proc(ProcState::Up, 2, true, 0, reliable())
                .build();
            let mut s = GreedyScheduler::new(GreedyObjective::Mct, star, "MCTx");
            let picks = s.place(&view.view(), 4);
            let mut used: Vec<_> = picks.iter().map(|p| p.idx()).collect();
            used.sort_unstable();
            used.dedup();
            used.len()
        };
        let plain = mk(false);
        let starred = mk(true);
        assert_eq!(plain, 4, "MCT spreads to all");
        assert!(starred < plain, "MCT* enrolled {starred} (MCT {plain})");
    }

    #[test]
    fn star_equals_plain_when_uncontended() {
        // With ncom ≥ enrolled processors the correction factor is 1 and
        // MCT* must equal MCT decisions.
        let build = || {
            SchedViewBuilder::new(5, 2, 8)
                .proc(ProcState::Up, 3, true, 0, reliable())
                .proc(ProcState::Up, 5, true, 2, flaky())
                .proc(ProcState::Up, 2, false, 7, reliable())
                .build()
        };
        let mut plain = GreedyScheduler::new(GreedyObjective::Mct, false, "MCT");
        let mut star = GreedyScheduler::new(GreedyObjective::Mct, true, "MCT*");
        assert_eq!(
            plain.place(&build().view(), 5),
            star.place(&build().view(), 5)
        );
    }

    #[test]
    fn returns_empty_without_up_processors() {
        let view = SchedViewBuilder::new(5, 1, 2)
            .proc(ProcState::Reclaimed, 1, true, 0, reliable())
            .proc(ProcState::Down, 1, true, 0, reliable())
            .build();
        for obj in [
            GreedyObjective::Mct,
            GreedyObjective::Emct,
            GreedyObjective::Lw,
            GreedyObjective::Ud,
        ] {
            let mut s = GreedyScheduler::new(obj, false, "x");
            assert!(s.place(&view.view(), 2).is_empty(), "{obj:?}");
        }
    }

    #[test]
    fn delay_shifts_choice() {
        // Identical processors except delay: must pick the idle one.
        let view = SchedViewBuilder::new(5, 1, 2)
            .proc(ProcState::Up, 3, true, 9, reliable())
            .proc(ProcState::Up, 3, true, 0, reliable())
            .build();
        for obj in [GreedyObjective::Mct, GreedyObjective::Emct] {
            let mut s = GreedyScheduler::new(obj, false, "x");
            assert_eq!(s.place(&view.view(), 1), vec![ProcessorId(1)], "{obj:?}");
        }
    }

    #[test]
    fn missing_program_is_reflected_through_delay() {
        // The simulator folds T_prog into delay; a processor lacking the
        // program carries delay = T_prog and loses the tie.
        let view = SchedViewBuilder::new(6, 1, 2)
            .proc(ProcState::Up, 3, false, 6, reliable())
            .proc(ProcState::Up, 3, true, 0, reliable())
            .build();
        let mut s = GreedyScheduler::new(GreedyObjective::Mct, false, "MCT");
        assert_eq!(s.place(&view.view(), 1), vec![ProcessorId(1)]);
    }

    #[test]
    fn place_into_reuses_buffers_and_matches_place() {
        // The scratch-based entry point must agree with the shim and, once
        // warm, leave the output buffer's allocation untouched.
        let owned = SchedViewBuilder::new(5, 3, 2)
            .proc(ProcState::Up, 3, true, 0, reliable())
            .proc(ProcState::Up, 2, true, 1, flaky())
            .proc(ProcState::Up, 7, true, 0, reliable())
            .build();
        for (obj, star) in [
            (GreedyObjective::Mct, false),
            (GreedyObjective::Mct, true),
            (GreedyObjective::Emct, true),
            (GreedyObjective::Ud, false),
        ] {
            let mut a = GreedyScheduler::new(obj, star, "a");
            let mut b = GreedyScheduler::new(obj, star, "b");
            let expected = a.place(&owned.view(), 6);
            let mut out = Vec::with_capacity(6);
            b.place_into(&owned.view(), 6, &mut out);
            assert_eq!(out, expected, "{obj:?} star={star}");
            let ptr = out.as_ptr();
            out.clear();
            b.place_into(&owned.view(), 6, &mut out);
            assert_eq!(out, expected);
            assert_eq!(ptr, out.as_ptr(), "output buffer must be reused");
        }
    }

    #[test]
    fn begin_run_drops_stale_platform_caches() {
        // One scheduler instance reused across two equally sized but
        // different platforms must match a fresh instance on the second,
        // provided the engine's begin_run contract is honored.
        let view_a = SchedViewBuilder::new(5, 3, 2)
            .proc(ProcState::Up, 2, true, 0, reliable())
            .proc(ProcState::Up, 9, true, 0, reliable())
            .build();
        let view_b = SchedViewBuilder::new(5, 3, 2)
            .proc(ProcState::Up, 9, true, 0, flaky())
            .proc(ProcState::Up, 2, true, 0, reliable())
            .build();
        for (obj, star) in [(GreedyObjective::Emct, false), (GreedyObjective::Ud, true)] {
            let mut reused = GreedyScheduler::new(obj, star, "reused");
            let _ = reused.place(&view_a.view(), 3);
            reused.begin_run();
            let mut fresh = GreedyScheduler::new(obj, star, "fresh");
            assert_eq!(
                reused.place(&view_b.view(), 3),
                fresh.place(&view_b.view(), 3),
                "{obj:?} star={star}"
            );
        }
    }

    /// All eight greedy configurations, for exhaustive differential tests.
    const FAMILIES: [(GreedyObjective, bool); 8] = [
        (GreedyObjective::Mct, false),
        (GreedyObjective::Mct, true),
        (GreedyObjective::Emct, false),
        (GreedyObjective::Emct, true),
        (GreedyObjective::Lw, false),
        (GreedyObjective::Lw, true),
        (GreedyObjective::Ud, false),
        (GreedyObjective::Ud, true),
    ];

    mod argmin_property {
        use super::super::*;
        use super::FAMILIES;
        use crate::view::SchedViewBuilder;
        use proptest::prelude::*;
        use vg_markov::availability::AvailabilityChain;
        use vg_markov::ProcState;

        fn chain(idx: u32) -> AvailabilityChain {
            let rows = match idx % 3 {
                0 => [[0.99, 0.005, 0.005], [0.50, 0.45, 0.05], [0.10, 0.10, 0.80]],
                1 => [[0.55, 0.30, 0.15], [0.20, 0.60, 0.20], [0.05, 0.05, 0.90]],
                _ => [[0.90, 0.05, 0.05], [0.40, 0.50, 0.10], [0.20, 0.20, 0.60]],
            };
            AvailabilityChain::new(rows).unwrap()
        }

        fn state(idx: u32) -> ProcState {
            match idx {
                0 | 1 => ProcState::Up, // bias toward schedulable platforms
                2 => ProcState::Reclaimed,
                _ => ProcState::Down,
            }
        }

        /// The specification: recompute every candidate's score from
        /// scratch before each placement and take the strict-`<` linear
        /// argmin — no caches, no heap. Mirrors the pre-optimization
        /// algorithm exactly, including the lowest-id tie-break and the
        /// Equation-(2) `n_active` coupling.
        fn naive_placements(
            probe: &GreedyScheduler,
            view: &SchedView<'_>,
            count: usize,
        ) -> Vec<ProcessorId> {
            let ups = view.up_indices();
            if ups.is_empty() {
                return Vec::new();
            }
            let mut out = Vec::new();
            let mut n_q = vec![0usize; view.p()];
            let mut n_active = 0usize;
            for _ in 0..count {
                let mut best_idx = ups[0];
                let mut best_score = f64::INFINITY;
                for &i in &ups {
                    let s = probe.score(view, i, n_q[i], n_active);
                    if s < best_score {
                        best_score = s;
                        best_idx = i;
                    }
                }
                if n_q[best_idx] == 0 {
                    n_active += 1;
                }
                n_q[best_idx] += 1;
                out.push(view.procs[best_idx].id);
            }
            out
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Random score-mutation/placement sequences: per round the
            /// processors' delays and states mutate and a random batch is
            /// placed. *Persistent* schedulers pinned to each selector —
            /// the lazy heap, the loser tree, and the linear rescan, all
            /// with their caches warm across rounds — must reproduce the
            /// stateless naive model's winners — and tie-break order — for
            /// every greedy family, including the `*` variants whose
            /// Equation-(2) coupling invalidates neighbors mid-round.
            #[test]
            fn all_selectors_match_naive_model(
                ncom in 1usize..5,
                t_prog in 0u64..8,
                t_data in 0u64..5,
                procs in collection::vec((1u64..12, 0u32..3, 0u32..2), 2..14),
                rounds in collection::vec(
                    (
                        1usize..20,
                        collection::vec(0u64..15, 14),
                        collection::vec(0u32..4, 14),
                    ),
                    1..6,
                ),
            ) {
                for (obj, star) in FAMILIES {
                    let mut pinned: Vec<(GreedyScheduler, &str)> = vec![
                        (GreedyScheduler::new(obj, star, "heap"), "heap"),
                        (GreedyScheduler::new(obj, star, "loser"), "loser tree"),
                        (GreedyScheduler::new(obj, star, "linear"), "linear"),
                        (GreedyScheduler::new(obj, star, "sharded"), "sharded tree"),
                    ];
                    pinned[0].0.force_selector(Some(SelectorKind::LazyHeap));
                    pinned[1].0.force_selector(Some(SelectorKind::LoserTree));
                    pinned[2].0.force_selector(Some(SelectorKind::Linear));
                    pinned[3].0.force_selector(Some(SelectorKind::ShardedTree));
                    for (s, _) in &mut pinned {
                        s.begin_run();
                    }
                    for (count, delays, states) in &rounds {
                        let mut b = SchedViewBuilder::new(t_prog, t_data, ncom);
                        for (i, &(w, chain_idx, prog)) in procs.iter().enumerate() {
                            b = b.proc(
                                state(states[i]),
                                w,
                                prog == 1,
                                delays[i],
                                chain(chain_idx),
                            );
                        }
                        let owned = b.build();
                        let view = owned.view();
                        let probe = GreedyScheduler::new(obj, star, "probe");
                        let expected = naive_placements(&probe, &view, *count);
                        for (s, label) in &mut pinned {
                            prop_assert_eq!(
                                s.place(&view, *count),
                                expected.clone(),
                                "{} vs naive: {:?} star={} count={}",
                                label,
                                obj,
                                star,
                                count
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn forced_selectors_match_hybrid_on_unit_views() {
        // Deterministic spot-check below the proptest: every forced
        // selector must reproduce the policy-driven path on the existing
        // hand-built scenarios.
        let owned = SchedViewBuilder::new(5, 3, 2)
            .proc(ProcState::Up, 2, true, 0, reliable())
            .proc(ProcState::Up, 2, true, 0, reliable())
            .proc(ProcState::Up, 5, false, 4, flaky())
            .proc(ProcState::Up, 1, true, 2, reliable())
            .build();
        for (obj, star) in FAMILIES {
            let mut plain = GreedyScheduler::new(obj, star, "plain");
            let expected = plain.place(&owned.view(), 10);
            for kind in [
                SelectorKind::Linear,
                SelectorKind::LazyHeap,
                SelectorKind::LoserTree,
                SelectorKind::ShardedTree,
            ] {
                let mut forced = GreedyScheduler::new(obj, star, "forced");
                forced.force_selector(Some(kind));
                assert_eq!(
                    forced.place(&owned.view(), 10),
                    expected,
                    "{obj:?} star={star} {kind:?}"
                );
            }
            // The legacy hook still pins the heap.
            let mut legacy = GreedyScheduler::new(obj, star, "legacy");
            legacy.force_heap(true);
            assert_eq!(
                legacy.place(&owned.view(), 10),
                expected,
                "{obj:?} star={star}"
            );
        }
    }

    #[test]
    fn policy_crossovers_leave_decisions_unchanged() {
        // Explicit boundary coverage at the linear / loser-tree crossover:
        // p = 300 UP processors place counts straddling
        // `count · u = LINEAR_MAX_WORK` (300 · 13 = 3900 < 4096 ≤ 300 ·
        // 14) and the `count ≥ 4` floor, so consecutive counts flip the
        // policy's selector choice. Decisions must not move — each count
        // is checked against a forced-linear scheduler — and the policy
        // must agree with the forced loser tree on the far side.
        use crate::selector::{LINEAR_MAX_WORK, STRUCTURED_MIN_COUNT};
        let u = 300usize;
        let mut b = SchedViewBuilder::new(5, 3, 4);
        for i in 0..u {
            let chain = if i % 2 == 0 { reliable() } else { flaky() };
            b = b.proc(
                ProcState::Up,
                1 + (i as u64 % 7),
                i % 3 != 0,
                (i as u64) % 5,
                chain,
            );
        }
        let owned = b.build();
        let boundary = LINEAR_MAX_WORK / u; // 13: count 13 → linear, 14 → tree
        assert!(boundary * u < LINEAR_MAX_WORK && (boundary + 1) * u >= LINEAR_MAX_WORK);
        for (obj, star) in FAMILIES {
            for count in [
                STRUCTURED_MIN_COUNT - 1, // below the round-length floor
                STRUCTURED_MIN_COUNT,     // at the floor, still linear by work
                boundary,                 // last linear round
                boundary + 1,             // first loser-tree round
                2 * boundary,             // comfortably structured
            ] {
                let mut policy = GreedyScheduler::new(obj, star, "policy");
                let mut linear = GreedyScheduler::new(obj, star, "linear");
                linear.force_selector(Some(SelectorKind::Linear));
                let mut loser = GreedyScheduler::new(obj, star, "loser");
                loser.force_selector(Some(SelectorKind::LoserTree));
                let mut sharded = GreedyScheduler::new(obj, star, "sharded");
                sharded.force_selector(Some(SelectorKind::ShardedTree));
                let expected = linear.place(&owned.view(), count);
                assert_eq!(
                    policy.place(&owned.view(), count),
                    expected,
                    "{obj:?} star={star} count={count}"
                );
                assert_eq!(
                    loser.place(&owned.view(), count),
                    expected,
                    "{obj:?} star={star} count={count} (forced loser tree)"
                );
                assert_eq!(
                    sharded.place(&owned.view(), count),
                    expected,
                    "{obj:?} star={star} count={count} (forced sharded tree)"
                );
            }
        }
    }

    #[test]
    fn score_cache_matches_naive_rescan() {
        // Replay the pre-cache algorithm and compare decision-for-decision
        // on a view engineered to exercise ties, enrollment and pipelining.
        let owned = SchedViewBuilder::new(4, 3, 2)
            .proc(ProcState::Up, 2, true, 0, reliable())
            .proc(ProcState::Up, 2, true, 0, reliable())
            .proc(ProcState::Up, 5, false, 4, flaky())
            .proc(ProcState::Up, 1, true, 2, reliable())
            .build();
        let view = owned.view();
        for (obj, star) in [
            (GreedyObjective::Mct, false),
            (GreedyObjective::Mct, true),
            (GreedyObjective::Emct, false),
            (GreedyObjective::Emct, true),
            (GreedyObjective::Lw, true),
            (GreedyObjective::Ud, true),
        ] {
            let probe = GreedyScheduler::new(obj, star, "probe");
            let mut naive = Vec::new();
            let mut n_q = vec![0usize; view.p()];
            let mut n_active = 0usize;
            let ups = view.up_indices();
            for _ in 0..10 {
                let mut best_idx = ups[0];
                let mut best_score = f64::INFINITY;
                for &i in &ups {
                    let s = probe.score(&view, i, n_q[i], n_active);
                    if s < best_score {
                        best_score = s;
                        best_idx = i;
                    }
                }
                if n_q[best_idx] == 0 {
                    n_active += 1;
                }
                n_q[best_idx] += 1;
                naive.push(view.procs[best_idx].id);
            }
            let mut cached = GreedyScheduler::new(obj, star, "cached");
            assert_eq!(cached.place(&view, 10), naive, "{obj:?} star={star}");
        }
    }
}
