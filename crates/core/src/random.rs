//! The random heuristic family (Section 6.2).
//!
//! `Random` picks uniformly among `UP` processors. `Random1..4` weight the
//! draw by a reliability statistic of each processor's Markov chain:
//!
//! 1. **Long time UP** — weight `P_{u,u}` (stays UP);
//! 2. **Likely to work more** — weight `P₊` (Lemma 1: UP again before crash);
//! 3. **Often UP** — weight `π_u` (steady-state UP occupancy);
//! 4. **Rarely DOWN** — weight `1 − π_d`.
//!
//! Each weighted variant has a `…w` twin whose weight is divided by `w_q`,
//! folding processing speed into the draw (a processor twice as fast is
//! twice as likely to be picked, all else equal).

use crate::traits::Scheduler;
use crate::view::SchedView;
use vg_des::rng::StreamRng;
use vg_platform::ProcessorId;

/// Which reliability statistic weights the draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RandomWeight {
    /// Uniform over UP processors (`Random`).
    Uniform,
    /// `P_{u,u}` (`Random1`).
    LongTimeUp,
    /// `P₊` (`Random2`).
    LikelyToWorkMore,
    /// `π_u` (`Random3`).
    OftenUp,
    /// `1 − π_d` (`Random4`).
    RarelyDown,
}

/// A member of the random family.
#[derive(Debug)]
pub struct RandomScheduler {
    weight: RandomWeight,
    /// Divide weights by `w_q` (the `…w` variants).
    per_speed: bool,
    rng: StreamRng,
    name: &'static str,
    /// Scratch: UP processor indices of the current call.
    ups: Vec<usize>,
    /// Scratch: draw weights (parallel to `ups`).
    weights: Vec<f64>,
    /// Per-run weight cache: a processor's weight depends only on its chain
    /// statistics and speed, both run constants, so it is computed once for
    /// every processor on the first call and reused verbatim after (the RNG
    /// consumption sequence is untouched, so draws are bit-identical).
    weight_cache: Vec<f64>,
}

impl RandomScheduler {
    /// Creates a scheduler; `name` should come from the catalog so that
    /// reports match the paper's tables.
    #[must_use]
    pub fn new(weight: RandomWeight, per_speed: bool, rng: StreamRng, name: &'static str) -> Self {
        assert!(
            !(per_speed && weight == RandomWeight::Uniform),
            "the paper defines speed-weighted variants only for Random1..4"
        );
        Self {
            weight,
            per_speed,
            rng,
            name,
            ups: Vec::new(),
            weights: Vec::new(),
            weight_cache: Vec::new(),
        }
    }

    fn weight_of(&self, view: &SchedView<'_>, idx: usize) -> f64 {
        let p = &view.procs[idx];
        let chain = view.chain(idx);
        let base = match self.weight {
            RandomWeight::Uniform => 1.0,
            RandomWeight::LongTimeUp => chain.p_uu(),
            RandomWeight::LikelyToWorkMore => chain.p_plus(),
            RandomWeight::OftenUp => chain.pi()[0],
            RandomWeight::RarelyDown => 1.0 - chain.pi()[2],
        };
        if self.per_speed {
            base / p.w as f64
        } else {
            base
        }
    }
}

impl Scheduler for RandomScheduler {
    fn name(&self) -> &str {
        self.name
    }

    fn begin_run(&mut self) {
        // Weights are keyed to the run's platform (chains, speeds); a new
        // run invalidates them wholesale.
        self.weight_cache.clear();
    }

    fn place_into(&mut self, view: &SchedView<'_>, count: usize, out: &mut Vec<ProcessorId>) {
        let mut ups = std::mem::take(&mut self.ups);
        view.up_indices_into(&mut ups);
        if ups.is_empty() || count == 0 {
            self.ups = ups;
            return;
        }
        if self.weight_cache.len() != view.p() {
            // tidy:allow(hot_alloc): cache filled once per run (weights are static per view width).
            self.weight_cache = (0..view.p()).map(|i| self.weight_of(view, i)).collect();
        }
        let mut weights = std::mem::take(&mut self.weights);
        weights.clear();
        weights.extend(ups.iter().map(|&i| self.weight_cache[i]));
        for _ in 0..count {
            let pick = match self.rng.weighted_index(&weights) {
                Some(k) => k,
                // All weights zero (degenerate chains): fall back to uniform.
                None => self.rng.index(ups.len()),
            };
            out.push(view.procs[ups[pick]].id);
        }
        self.ups = ups;
        self.weights = weights;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::SchedViewBuilder;
    use vg_des::rng::SeedPath;
    use vg_markov::availability::AvailabilityChain;
    use vg_markov::ProcState;

    fn reliable() -> AvailabilityChain {
        AvailabilityChain::new([[0.98, 0.01, 0.01], [0.30, 0.65, 0.05], [0.10, 0.10, 0.80]])
            .unwrap()
    }

    fn flaky() -> AvailabilityChain {
        AvailabilityChain::new([[0.60, 0.20, 0.20], [0.30, 0.50, 0.20], [0.10, 0.10, 0.80]])
            .unwrap()
    }

    fn two_proc_view() -> crate::view::OwnedSchedView {
        SchedViewBuilder::new(5, 1, 2)
            .proc(ProcState::Up, 1, false, 0, reliable())
            .proc(ProcState::Up, 1, false, 0, flaky())
            .build()
    }

    fn count_picks(s: &mut RandomScheduler, view: &SchedView<'_>, n: usize) -> [usize; 2] {
        let picks = s.place(view, n);
        let mut counts = [0usize; 2];
        for p in picks {
            counts[p.idx()] += 1;
        }
        counts
    }

    #[test]
    fn uniform_random_is_roughly_even() {
        let mut s = RandomScheduler::new(
            RandomWeight::Uniform,
            false,
            SeedPath::root(1).rng(),
            "Random",
        );
        let view = two_proc_view();
        let counts = count_picks(&mut s, &view.view(), 10_000);
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn weighted_variants_prefer_reliable() {
        for weight in [
            RandomWeight::LongTimeUp,
            RandomWeight::LikelyToWorkMore,
            RandomWeight::OftenUp,
            RandomWeight::RarelyDown,
        ] {
            let mut s = RandomScheduler::new(weight, false, SeedPath::root(2).rng(), "RandomX");
            let view = two_proc_view();
            let counts = count_picks(&mut s, &view.view(), 10_000);
            assert!(
                counts[0] > counts[1],
                "{weight:?}: reliable {} vs flaky {}",
                counts[0],
                counts[1]
            );
        }
    }

    #[test]
    fn speed_weighting_prefers_fast() {
        // Same chain, different speeds: the w-variant must skew to the
        // fast (low w) processor ~10:1.
        let view = SchedViewBuilder::new(5, 1, 2)
            .proc(ProcState::Up, 1, false, 0, reliable())
            .proc(ProcState::Up, 10, false, 0, reliable())
            .build();
        let mut s = RandomScheduler::new(
            RandomWeight::LongTimeUp,
            true,
            SeedPath::root(3).rng(),
            "Random1w",
        );
        let counts = count_picks(&mut s, &view.view(), 11_000);
        let ratio = counts[0] as f64 / counts[1].max(1) as f64;
        assert!((8.0..12.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn begin_run_drops_stale_weight_cache() {
        // Platform A: reliable+fast at idx 0. Platform B (same p): flaky+slow
        // at idx 0, reliable+fast at idx 1. A speed-weighted scheduler that
        // honors begin_run must skew to idx 1 on B; one that silently reuses
        // A's weights skews to idx 0 — the stale-cache failure mode.
        let view_a = SchedViewBuilder::new(5, 1, 2)
            .proc(ProcState::Up, 1, false, 0, reliable())
            .proc(ProcState::Up, 10, false, 0, reliable())
            .build();
        let view_b = SchedViewBuilder::new(5, 1, 2)
            .proc(ProcState::Up, 10, false, 0, flaky())
            .proc(ProcState::Up, 1, false, 0, reliable())
            .build();
        let run = |reset: bool| {
            let mut s = RandomScheduler::new(
                RandomWeight::LongTimeUp,
                true,
                SeedPath::root(8).rng(),
                "Random1w",
            );
            let _ = s.place(&view_a.view(), 500);
            if reset {
                s.begin_run();
            }
            count_picks(&mut s, &view_b.view(), 2_000)
        };
        let with_reset = run(true);
        assert!(
            with_reset[1] > 3 * with_reset[0],
            "begin_run must re-derive B's weights: {with_reset:?}"
        );
        let stale = run(false);
        assert!(
            stale[0] > stale[1],
            "control: without begin_run the stale cache skews to idx 0: {stale:?}"
        );
    }

    #[test]
    fn only_up_processors_are_chosen() {
        let view = SchedViewBuilder::new(5, 1, 2)
            .proc(ProcState::Down, 1, false, 0, reliable())
            .proc(ProcState::Up, 1, false, 0, flaky())
            .proc(ProcState::Reclaimed, 1, false, 0, reliable())
            .build();
        let mut s = RandomScheduler::new(
            RandomWeight::Uniform,
            false,
            SeedPath::root(4).rng(),
            "Random",
        );
        for id in s.place(&view.view(), 100) {
            assert_eq!(id.idx(), 1);
        }
    }

    #[test]
    fn no_up_processors_places_nothing() {
        let view = SchedViewBuilder::new(5, 1, 2)
            .proc(ProcState::Down, 1, false, 0, reliable())
            .build();
        let mut s = RandomScheduler::new(
            RandomWeight::Uniform,
            false,
            SeedPath::root(5).rng(),
            "Random",
        );
        assert!(s.place(&view.view(), 3).is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let view = two_proc_view();
        let run = |seed| {
            let mut s = RandomScheduler::new(
                RandomWeight::OftenUp,
                false,
                SeedPath::root(seed).rng(),
                "Random3",
            );
            s.place(&view.view(), 50)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    #[should_panic(expected = "speed-weighted variants")]
    fn uniform_with_speed_weighting_rejected() {
        let _ = RandomScheduler::new(
            RandomWeight::Uniform,
            true,
            SeedPath::root(1).rng(),
            "bogus",
        );
    }
}
