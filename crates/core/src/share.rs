//! Co-scheduling share policies: how the bindable capacity of one slot is
//! split between the applications sharing a volatile platform.
//!
//! Several iterative applications can run on one platform (Dynamic
//! Fractional Resource Scheduling, Casanova–Stillwell–Vivien): each slot the
//! engine counts the workers that can accept a new bind (`UP` with bind
//! room) and divides that capacity into per-application *quotas* — upper
//! bounds on how many pool placements each application may request this
//! slot. A [`SharePolicy`] names the division rule; [`share_quotas`]
//! computes it with integer-only largest-remainder apportionment, so quotas
//! are deterministic and sum to exactly the capacity.
//!
//! Shares only engage with **two or more** applications: the single-app
//! engine never consults a share policy, which keeps the historical
//! single-application trajectory bit-identical (see
//! `docs/applications.md`).

/// How the slot's bindable capacity is split between co-scheduled
/// applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SharePolicy {
    /// Every unfinished application gets an equal quota (largest-remainder
    /// rounding; leftovers go to the lowest application indices).
    #[default]
    EqualSplit,
    /// Quotas proportional to each application's weight — the DFRS
    /// fractional-share rule, apportioned by largest remainder.
    Weighted,
    /// Application order is priority order: each application may request up
    /// to the *whole* remaining capacity, earlier applications first.
    StrictPriority,
}

impl SharePolicy {
    /// Every policy, in catalog order.
    pub const ALL: [SharePolicy; 3] = [
        SharePolicy::EqualSplit,
        SharePolicy::Weighted,
        SharePolicy::StrictPriority,
    ];

    /// Canonical name (stable CLI/report token).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SharePolicy::EqualSplit => "equal-split",
            SharePolicy::Weighted => "weighted",
            SharePolicy::StrictPriority => "strict-priority",
        }
    }

    /// Parses a canonical name, case-insensitively.
    #[must_use]
    pub fn parse(name: &str) -> Option<SharePolicy> {
        Self::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(name))
    }
}

impl std::fmt::Display for SharePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Splits `capacity` placement slots between applications with the given
/// `weights`, writing one quota per application into `out` (cleared first).
///
/// A zero weight means the application requests nothing this slot (finished
/// applications are weighted 0 by the engine). For [`SharePolicy::
/// EqualSplit`] the weights only distinguish zero from non-zero. Quotas of
/// the proportional policies sum to exactly `capacity` when any weight is
/// non-zero (largest-remainder apportionment: per-application floors, then
/// one leftover slot each to the largest fractional remainders, ties to the
/// lowest index). [`SharePolicy::StrictPriority`] instead grants every
/// non-zero-weight application the full `capacity` as its bound — the
/// engine's in-order placement rounds make earlier applications consume the
/// real capacity first.
pub fn share_quotas(policy: SharePolicy, capacity: usize, weights: &[u32], out: &mut Vec<usize>) {
    out.clear();
    match policy {
        SharePolicy::StrictPriority => {
            out.extend(weights.iter().map(|&w| if w == 0 { 0 } else { capacity }));
        }
        SharePolicy::EqualSplit | SharePolicy::Weighted => {
            let unit = |w: u32| -> u64 {
                match policy {
                    SharePolicy::EqualSplit => u64::from(w != 0),
                    _ => u64::from(w),
                }
            };
            let total: u64 = weights.iter().map(|&w| unit(w)).sum();
            if total == 0 {
                out.resize(weights.len(), 0);
                return;
            }
            // Floors first; remainders decide who gets the leftover slots.
            let cap = capacity as u64;
            let mut assigned = 0u64;
            out.extend(weights.iter().map(|&w| {
                let q = cap * unit(w) / total;
                assigned += q;
                q as usize
            }));
            let mut leftover = cap - assigned;
            // One slot per pass to the largest remainder, lowest index on
            // ties. `leftover < n_nonzero_weights`, so a single sweep per
            // leftover terminates quickly for any realistic app count.
            while leftover > 0 {
                let mut best: Option<(u64, usize)> = None;
                for (i, &w) in weights.iter().enumerate() {
                    let u = unit(w);
                    if u == 0 {
                        continue;
                    }
                    let rem = (cap * u) % total;
                    let better = match best {
                        None => true,
                        Some((brem, _)) => rem > brem,
                    };
                    // Skip apps already topped up this apportionment: track
                    // via their remainder having been "spent".
                    if better && out[i] as u64 == cap * u / total {
                        best = Some((rem, i));
                    }
                }
                match best {
                    Some((_, i)) => {
                        out[i] += 1;
                        leftover -= 1;
                    }
                    None => break,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for k in SharePolicy::ALL {
            assert_eq!(SharePolicy::parse(k.name()), Some(k));
            assert_eq!(SharePolicy::parse(&k.name().to_uppercase()), Some(k));
        }
        assert_eq!(SharePolicy::parse("bogus"), None);
        assert_eq!(SharePolicy::default(), SharePolicy::EqualSplit);
        assert_eq!(SharePolicy::Weighted.to_string(), "weighted");
    }

    fn quotas(policy: SharePolicy, capacity: usize, weights: &[u32]) -> Vec<usize> {
        let mut out = Vec::new();
        share_quotas(policy, capacity, weights, &mut out);
        out
    }

    #[test]
    fn equal_split_rounds_to_lowest_indices() {
        assert_eq!(quotas(SharePolicy::EqualSplit, 7, &[1, 1, 1]), [3, 2, 2]);
        assert_eq!(quotas(SharePolicy::EqualSplit, 6, &[1, 1, 1]), [2, 2, 2]);
        // Weights only gate participation.
        assert_eq!(quotas(SharePolicy::EqualSplit, 5, &[9, 0, 1]), [3, 0, 2]);
    }

    #[test]
    fn weighted_is_proportional_and_exact() {
        assert_eq!(quotas(SharePolicy::Weighted, 10, &[3, 1]), [8, 2]);
        assert_eq!(quotas(SharePolicy::Weighted, 10, &[2, 1]), [7, 3]);
        let q = quotas(SharePolicy::Weighted, 11, &[5, 3, 2]);
        assert_eq!(q.iter().sum::<usize>(), 11);
        assert_eq!(q, [6, 3, 2]);
    }

    #[test]
    fn strict_priority_bounds_by_full_capacity() {
        assert_eq!(
            quotas(SharePolicy::StrictPriority, 4, &[1, 1, 0]),
            [4, 4, 0]
        );
    }

    #[test]
    fn zero_everything_is_all_zero() {
        assert_eq!(quotas(SharePolicy::EqualSplit, 9, &[0, 0]), [0, 0]);
        assert_eq!(quotas(SharePolicy::Weighted, 0, &[1, 2]), [0, 0]);
    }

    #[test]
    fn quotas_sum_to_capacity_across_a_sweep() {
        for cap in 0..40usize {
            for weights in [[1u32, 1, 1], [5, 3, 2], [1, 0, 4], [7, 7, 1]] {
                for policy in [SharePolicy::EqualSplit, SharePolicy::Weighted] {
                    let q = quotas(policy, cap, &weights);
                    let participants = weights.iter().filter(|&&w| w != 0).count();
                    if participants > 0 {
                        assert_eq!(q.iter().sum::<usize>(), cap, "{policy} {cap} {weights:?}");
                    }
                    for (qi, &w) in q.iter().zip(&weights) {
                        assert!(!(w == 0 && *qi != 0));
                    }
                }
            }
        }
    }
}
