//! The catalog of all 17 heuristics evaluated in the paper (Table 2).

use crate::greedy::{GreedyObjective, GreedyScheduler};
use crate::random::{RandomScheduler, RandomWeight};
use crate::traits::Scheduler;
use vg_des::rng::StreamRng;

/// Every heuristic of Section 6, named exactly as in Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // the variants are the paper's names
pub enum HeuristicKind {
    Random,
    Random1,
    Random2,
    Random3,
    Random4,
    Random1w,
    Random2w,
    Random3w,
    Random4w,
    Mct,
    MctStar,
    Emct,
    EmctStar,
    Lw,
    LwStar,
    Ud,
    UdStar,
}

impl HeuristicKind {
    /// All 17 heuristics, in Table-2 row-candidate order.
    pub const ALL: [HeuristicKind; 17] = [
        Self::Emct,
        Self::EmctStar,
        Self::Mct,
        Self::MctStar,
        Self::UdStar,
        Self::Ud,
        Self::LwStar,
        Self::Lw,
        Self::Random1w,
        Self::Random2w,
        Self::Random4w,
        Self::Random3w,
        Self::Random3,
        Self::Random4,
        Self::Random1,
        Self::Random2,
        Self::Random,
    ];

    /// The 8 greedy heuristics (Table 3 / Figure 2 focus).
    pub const GREEDY: [HeuristicKind; 8] = [
        Self::Mct,
        Self::MctStar,
        Self::Emct,
        Self::EmctStar,
        Self::Lw,
        Self::LwStar,
        Self::Ud,
        Self::UdStar,
    ];

    /// The six heuristics plotted in Figure 2.
    pub const FIGURE2: [HeuristicKind; 6] = [
        Self::Mct,
        Self::MctStar,
        Self::Emct,
        Self::EmctStar,
        Self::UdStar,
        Self::LwStar,
    ];

    /// Paper name (`"EMCT*"`, `"Random1w"`, …).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Random => "Random",
            Self::Random1 => "Random1",
            Self::Random2 => "Random2",
            Self::Random3 => "Random3",
            Self::Random4 => "Random4",
            Self::Random1w => "Random1w",
            Self::Random2w => "Random2w",
            Self::Random3w => "Random3w",
            Self::Random4w => "Random4w",
            Self::Mct => "MCT",
            Self::MctStar => "MCT*",
            Self::Emct => "EMCT",
            Self::EmctStar => "EMCT*",
            Self::Lw => "LW",
            Self::LwStar => "LW*",
            Self::Ud => "UD",
            Self::UdStar => "UD*",
        }
    }

    /// Parses a paper name (case-insensitive; `*` required for starred
    /// variants).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        let lower = s.to_ascii_lowercase();
        Self::ALL
            .into_iter()
            .find(|k| k.name().to_ascii_lowercase() == lower)
    }

    /// True for the random family (needs an RNG stream).
    #[must_use]
    pub fn is_random(self) -> bool {
        matches!(
            self,
            Self::Random
                | Self::Random1
                | Self::Random2
                | Self::Random3
                | Self::Random4
                | Self::Random1w
                | Self::Random2w
                | Self::Random3w
                | Self::Random4w
        )
    }

    /// True for the contention-aware `*` variants.
    #[must_use]
    pub fn is_starred(self) -> bool {
        matches!(
            self,
            Self::MctStar | Self::EmctStar | Self::LwStar | Self::UdStar
        )
    }

    /// Instantiates the scheduler. `rng` seeds the random family's draws
    /// (ignored by the deterministic greedy heuristics, so all 17 can be
    /// built uniformly).
    #[must_use]
    pub fn build(self, rng: StreamRng) -> Box<dyn Scheduler> {
        match self {
            Self::Random => Box::new(RandomScheduler::new(
                RandomWeight::Uniform,
                false,
                rng,
                self.name(),
            )),
            Self::Random1 => Box::new(RandomScheduler::new(
                RandomWeight::LongTimeUp,
                false,
                rng,
                self.name(),
            )),
            Self::Random2 => Box::new(RandomScheduler::new(
                RandomWeight::LikelyToWorkMore,
                false,
                rng,
                self.name(),
            )),
            Self::Random3 => Box::new(RandomScheduler::new(
                RandomWeight::OftenUp,
                false,
                rng,
                self.name(),
            )),
            Self::Random4 => Box::new(RandomScheduler::new(
                RandomWeight::RarelyDown,
                false,
                rng,
                self.name(),
            )),
            Self::Random1w => Box::new(RandomScheduler::new(
                RandomWeight::LongTimeUp,
                true,
                rng,
                self.name(),
            )),
            Self::Random2w => Box::new(RandomScheduler::new(
                RandomWeight::LikelyToWorkMore,
                true,
                rng,
                self.name(),
            )),
            Self::Random3w => Box::new(RandomScheduler::new(
                RandomWeight::OftenUp,
                true,
                rng,
                self.name(),
            )),
            Self::Random4w => Box::new(RandomScheduler::new(
                RandomWeight::RarelyDown,
                true,
                rng,
                self.name(),
            )),
            Self::Mct => Box::new(GreedyScheduler::new(
                GreedyObjective::Mct,
                false,
                self.name(),
            )),
            Self::MctStar => Box::new(GreedyScheduler::new(
                GreedyObjective::Mct,
                true,
                self.name(),
            )),
            Self::Emct => Box::new(GreedyScheduler::new(
                GreedyObjective::Emct,
                false,
                self.name(),
            )),
            Self::EmctStar => Box::new(GreedyScheduler::new(
                GreedyObjective::Emct,
                true,
                self.name(),
            )),
            Self::Lw => Box::new(GreedyScheduler::new(
                GreedyObjective::Lw,
                false,
                self.name(),
            )),
            Self::LwStar => Box::new(GreedyScheduler::new(GreedyObjective::Lw, true, self.name())),
            Self::Ud => Box::new(GreedyScheduler::new(
                GreedyObjective::Ud,
                false,
                self.name(),
            )),
            Self::UdStar => Box::new(GreedyScheduler::new(GreedyObjective::Ud, true, self.name())),
        }
    }
}

impl std::fmt::Display for HeuristicKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vg_des::rng::SeedPath;

    #[test]
    fn all_contains_17_unique() {
        let mut names: Vec<&str> = HeuristicKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 17);
    }

    #[test]
    fn greedy_and_figure2_are_subsets() {
        for k in HeuristicKind::GREEDY {
            assert!(HeuristicKind::ALL.contains(&k));
            assert!(!k.is_random());
        }
        for k in HeuristicKind::FIGURE2 {
            assert!(HeuristicKind::GREEDY.contains(&k));
        }
    }

    #[test]
    fn parse_roundtrip() {
        for k in HeuristicKind::ALL {
            assert_eq!(HeuristicKind::parse(k.name()), Some(k), "{k}");
        }
        assert_eq!(HeuristicKind::parse("emct*"), Some(HeuristicKind::EmctStar));
        assert_eq!(HeuristicKind::parse("nope"), None);
    }

    #[test]
    fn build_reports_paper_name() {
        for k in HeuristicKind::ALL {
            let s = k.build(SeedPath::root(1).rng());
            assert_eq!(s.name(), k.name());
        }
    }

    #[test]
    fn starred_classification() {
        assert!(HeuristicKind::EmctStar.is_starred());
        assert!(!HeuristicKind::Emct.is_starred());
        assert_eq!(
            HeuristicKind::ALL.iter().filter(|k| k.is_starred()).count(),
            4
        );
        assert_eq!(
            HeuristicKind::ALL.iter().filter(|k| k.is_random()).count(),
            9
        );
    }
}
