//! The completion-time estimates of Section 6.3.1.
//!
//! Equation (1) — contention-free estimate for assigning the `n_q`-th task
//! to processor `P_q`:
//!
//! ```text
//! CT(P_q, n_q) = Delay(q) + T_data + max(n_q − 1, 0) · max(T_data, w_q) + w_q
//! ```
//!
//! Equation (2) — the contention-corrected variant replaces `T_data` by
//! `⌈n_active / ncom⌉ · T_data`, where `n_active` counts processors that have
//! been assigned at least one task in the current scheduling round. The
//! factor models the average slowdown a worker sees when the master's
//! channels are oversubscribed; the paper notes it is deliberately coarse.
//!
//! One detail the paper leaves open: at the moment the *first* task of a
//! round is evaluated, `n_active` is still zero and a literal reading of
//! Equation (2) would erase the data-transfer cost entirely. We therefore
//! count the candidate processor itself when it would be newly enrolled
//! (\[D13\] in DESIGN.md), so the factor is always ≥ 1 and Equation (2)
//! degrades gracefully to Equation (1) on an uncontended master.

use crate::view::ProcSnapshot;
use vg_des::SlotSpan;

/// The data-transfer time after contention correction.
///
/// `n_active_incl` must already include the candidate processor when it is
/// newly enrolled; `contention = false` reproduces Equation (1).
#[must_use]
pub fn effective_t_data(
    t_data: SlotSpan,
    contention: bool,
    n_active_incl: usize,
    ncom: usize,
) -> SlotSpan {
    if !contention {
        return t_data;
    }
    let factor = (n_active_incl.max(1) as u64).div_ceil(ncom as u64);
    t_data * factor
}

/// `CT(P_q, n_q)` with a pre-computed effective `T_data`.
///
/// `n_q_incl` is the number of tasks assigned to `P_q` *including* the one
/// being evaluated (so it is ≥ 1; the paper's `n_q + 1` at selection time).
#[must_use]
pub fn completion_time(p: &ProcSnapshot, n_q_incl: usize, eff_t_data: SlotSpan) -> SlotSpan {
    assert!(n_q_incl >= 1, "evaluate with the candidate task included");
    // The engine only computes `Delay(q)` for UP processors; a non-UP
    // snapshot carries an unspecified delay (poisoned to `SlotSpan::MAX`
    // in debug builds), so scoring one is a heuristic bug — the paper's
    // heuristics all restrict placement to UP processors.
    debug_assert!(
        p.state.is_up(),
        "completion time of non-UP processor {}: its snapshot delay is unspecified",
        p.id
    );
    let pipelined = (n_q_incl as u64 - 1) * eff_t_data.max(p.w);
    p.delay + eff_t_data + pipelined + p.w
}

#[cfg(test)]
mod tests {
    use super::*;
    use vg_markov::ProcState;
    use vg_platform::ProcessorId;

    fn snap(w: SlotSpan, delay: SlotSpan) -> ProcSnapshot {
        ProcSnapshot {
            id: ProcessorId(0),
            state: ProcState::Up,
            w,
            has_program: true,
            delay,
        }
    }

    #[test]
    fn equation_one_first_task() {
        // CT = delay + Tdata + 0 + w
        let p = snap(3, 4);
        assert_eq!(completion_time(&p, 1, 2), 4 + 2 + 3);
    }

    #[test]
    fn equation_one_pipelines_additional_tasks() {
        // Each extra task adds max(Tdata, w).
        let p = snap(3, 0);
        let one = completion_time(&p, 1, 2);
        let two = completion_time(&p, 2, 2);
        let three = completion_time(&p, 3, 2);
        assert_eq!(two - one, 3); // w dominates Tdata
        assert_eq!(three - two, 3);

        let slow_net = completion_time(&p, 2, 7);
        assert_eq!(slow_net, 7 + 7 + 3); // Tdata dominates w
    }

    #[test]
    fn effective_t_data_without_contention_is_identity() {
        assert_eq!(effective_t_data(5, false, 100, 2), 5);
    }

    #[test]
    fn effective_t_data_scales_with_ceiling() {
        // 1..=ncom active -> ×1; ncom+1..=2ncom -> ×2, etc.
        assert_eq!(effective_t_data(5, true, 1, 4), 5);
        assert_eq!(effective_t_data(5, true, 4, 4), 5);
        assert_eq!(effective_t_data(5, true, 5, 4), 10);
        assert_eq!(effective_t_data(5, true, 8, 4), 10);
        assert_eq!(effective_t_data(5, true, 9, 4), 15);
    }

    #[test]
    fn effective_t_data_zero_active_counts_as_one() {
        // [D13]: the candidate itself is always in flight.
        assert_eq!(effective_t_data(5, true, 0, 4), 5);
    }

    #[test]
    fn zero_t_data_stays_zero_under_contention() {
        assert_eq!(effective_t_data(0, true, 9, 2), 0);
    }

    #[test]
    #[should_panic(expected = "candidate task included")]
    fn zero_tasks_is_a_bug() {
        let p = snap(1, 0);
        let _ = completion_time(&p, 0, 1);
    }
}
