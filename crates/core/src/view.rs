//! What a scheduler is allowed to see.
//!
//! The master observes processor states through heartbeats (Section 3.2) and
//! knows the static platform description plus, under the Markov assumption,
//! each processor's transition matrix. Everything a heuristic may consult is
//! collected into a [`SchedView`] built fresh by the simulator at every slot;
//! heuristics cannot reach into the engine, which keeps the
//! information-hygiene of the on-line problem honest (no peeking at future
//! states).

use vg_des::SlotSpan;
use vg_markov::availability::{AvailabilityChain, ChainStats, ProcState};
use vg_platform::ProcessorId;

/// Per-processor snapshot at the current slot.
#[derive(Debug, Clone)]
pub struct ProcSnapshot {
    /// Which processor this is.
    pub id: ProcessorId,
    /// Observed state for the current slot.
    pub state: ProcState,
    /// `w_q`: UP-slots needed per task.
    pub w: SlotSpan,
    /// Whether the processor currently holds a complete copy of the program.
    pub has_program: bool,
    /// `Delay(q)` (Section 6.3.1): estimated slots until the processor has
    /// finished its current activities — remaining program transfer, pinned
    /// data transfers and pinned computations — assuming it stays `UP` and
    /// suffers no contention (\[D8\] in DESIGN.md).
    pub delay: SlotSpan,
    /// Precomputed statistics of the availability chain the scheduler
    /// *believes* describes this processor (the truth in the paper's
    /// experiments; an estimate in the model-misspecification studies).
    pub chain: ChainStats,
}

/// Scheduler-visible state of the whole platform at one slot.
#[derive(Debug, Clone)]
pub struct SchedView {
    /// One snapshot per processor, indexed by `ProcessorId::idx()`.
    pub procs: Vec<ProcSnapshot>,
    /// `T_prog`: slots to transfer the program.
    pub t_prog: SlotSpan,
    /// `T_data`: slots to transfer one task's input.
    pub t_data: SlotSpan,
    /// `ncom`: the master's channel capacity.
    pub ncom: usize,
}

impl SchedView {
    /// Indices of processors in the `UP` state, in id order.
    #[must_use]
    pub fn up_indices(&self) -> Vec<usize> {
        self.procs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.state.is_up())
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of processors.
    #[must_use]
    pub fn p(&self) -> usize {
        self.procs.len()
    }
}

/// Builder for hand-crafted views in tests and examples.
#[derive(Debug, Clone)]
pub struct SchedViewBuilder {
    view: SchedView,
}

impl SchedViewBuilder {
    /// Starts a view with the given application/network parameters.
    #[must_use]
    pub fn new(t_prog: SlotSpan, t_data: SlotSpan, ncom: usize) -> Self {
        Self {
            view: SchedView {
                procs: Vec::new(),
                t_prog,
                t_data,
                ncom,
            },
        }
    }

    /// Adds a processor snapshot; ids are assigned in insertion order.
    #[must_use]
    pub fn proc(
        mut self,
        state: ProcState,
        w: SlotSpan,
        has_program: bool,
        delay: SlotSpan,
        chain: AvailabilityChain,
    ) -> Self {
        let id = ProcessorId(self.view.procs.len() as u32);
        self.view.procs.push(ProcSnapshot {
            id,
            state,
            w,
            has_program,
            delay,
            chain: ChainStats::new(chain),
        });
        self
    }

    /// Finishes the view.
    #[must_use]
    pub fn build(self) -> SchedView {
        self.view
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> AvailabilityChain {
        AvailabilityChain::new([
            [0.95, 0.03, 0.02],
            [0.30, 0.65, 0.05],
            [0.10, 0.10, 0.80],
        ])
        .unwrap()
    }

    #[test]
    fn up_indices_filters_and_orders() {
        let v = SchedViewBuilder::new(5, 1, 2)
            .proc(ProcState::Up, 1, false, 0, chain())
            .proc(ProcState::Down, 1, false, 0, chain())
            .proc(ProcState::Up, 2, true, 3, chain())
            .proc(ProcState::Reclaimed, 2, true, 3, chain())
            .build();
        assert_eq!(v.up_indices(), vec![0, 2]);
        assert_eq!(v.p(), 4);
        assert_eq!(v.procs[2].id, ProcessorId(2));
    }
}
