//! What a scheduler is allowed to see.
//!
//! The master observes processor states through heartbeats (Section 3.2) and
//! knows the static platform description plus, under the Markov assumption,
//! each processor's transition matrix. Everything a heuristic may consult is
//! collected into a [`SchedView`] presented by the simulator at every slot;
//! heuristics cannot reach into the engine, which keeps the
//! information-hygiene of the on-line problem honest (no peeking at future
//! states).
//!
//! ## Zero-allocation design
//!
//! A view is split into two parts with very different lifetimes:
//!
//! * **Per-slot** data — state, delay, program possession — lives in small
//!   `Copy` [`ProcSnapshot`]s that the engine rewrites in place into a
//!   scratch buffer each slot;
//! * **Per-run** data — the precomputed [`ChainStats`] of each processor's
//!   believed availability chain — is built once at engine construction and
//!   only ever *borrowed* by views.
//!
//! [`SchedView`] therefore borrows both slices (`&[ProcSnapshot]`,
//! `&[ChainStats]`) and is itself `Copy`; constructing one per slot costs
//! nothing. Tests and examples that want a self-contained view use
//! [`OwnedSchedView`] (usually via [`SchedViewBuilder`]) and borrow it with
//! [`OwnedSchedView::view`].

use vg_des::SlotSpan;
use vg_markov::availability::{AvailabilityChain, ChainStats, ProcState};
use vg_platform::ProcessorId;

/// Per-processor snapshot at the current slot (per-slot data only; the
/// processor's chain statistics live in the view's `chains` slice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcSnapshot {
    /// Which processor this is.
    pub id: ProcessorId,
    /// Observed state for the current slot.
    pub state: ProcState,
    /// `w_q`: UP-slots needed per task.
    pub w: SlotSpan,
    /// Whether the processor currently holds a complete copy of the program.
    pub has_program: bool,
    /// `Delay(q)` (Section 6.3.1): estimated slots until the processor has
    /// finished its current activities — remaining program transfer, pinned
    /// data transfers and pinned computations — assuming it stays `UP` and
    /// suffers no contention (\[D8\] in DESIGN.md).
    pub delay: SlotSpan,
}

/// Advisory per-application context of one placement round under
/// multi-application co-scheduling (see `vg_sim`'s application runtime
/// layer and [`crate::share::SharePolicy`]).
///
/// Mirrors the [`SchedView::room`] idiom: `None` is the historical
/// single-application contract; the engine passes `Some` only on rounds
/// that belong to a co-scheduled application, whose trajectory is already
/// outside the single-app bit-identity regime. Schedulers MAY use it (e.g.
/// to spread applications across disjoint workers) and MUST ignore it
/// without observable effect when absent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppView {
    /// Index of the requesting application (0-based, in engine app order).
    pub index: u32,
    /// Total number of co-scheduled applications.
    pub count: u32,
    /// The requesting application's share weight.
    pub weight: u32,
    /// Placement quota granted to the application this slot (its share of
    /// the bindable capacity).
    pub quota: u32,
}

/// Scheduler-visible state of the whole platform at one slot.
///
/// Borrows the engine's scratch snapshot buffer and its per-run chain
/// statistics; copying a `SchedView` copies two fat pointers.
#[derive(Debug, Clone, Copy)]
pub struct SchedView<'a> {
    /// One snapshot per processor, indexed by `ProcessorId::idx()`.
    pub procs: &'a [ProcSnapshot],
    /// Precomputed statistics of the availability chain the scheduler
    /// *believes* describes each processor (the truth in the paper's
    /// experiments; an estimate in the model-misspecification studies).
    /// Indexed by `ProcessorId::idx()`, same length as `procs`.
    pub chains: &'a [ChainStats],
    /// `T_prog`: slots to transfer the program.
    pub t_prog: SlotSpan,
    /// `T_data`: slots to transfer one task's input.
    pub t_data: SlotSpan,
    /// `ncom`: the master's channel capacity.
    pub ncom: usize,
    /// Per-processor bind room for this placement round (`room[i]` copies
    /// can still bind on processor `i` this slot), or `None` for an
    /// unconstrained round.
    ///
    /// `None` is the historical contract: the scheduler requests whatever
    /// it likes and the engine's bind step rejects what cannot bind (the
    /// rejects dissolve under \[D5\]). Under a demand-driven placement
    /// budget the engine passes `Some`: schedulers SHOULD then treat a
    /// processor whose room is exhausted (0, or depleted by this round's
    /// own picks) as unselectable, so placements land on processors that
    /// can actually bind. Respecting `room` is advisory — the engine
    /// tolerates overfill either way (the bind step still rejects) — but
    /// a scheduler must never let `Some` change its choices relative to
    /// `None` when the room never binds fewer copies than it would have
    /// requested anyway; the engine only passes `Some` on rounds whose
    /// trajectory is already allowed to diverge.
    pub room: Option<&'a [u8]>,
    /// Which co-scheduled application this placement round serves, or
    /// `None` for the historical single-application contract (see
    /// [`AppView`]). Advisory, like `room`: only rounds already allowed to
    /// diverge from the single-app trajectory carry `Some`.
    pub app: Option<AppView>,
}

impl<'a> SchedView<'a> {
    /// Chain statistics of processor `idx`.
    #[inline]
    #[must_use]
    pub fn chain(&self, idx: usize) -> &'a ChainStats {
        &self.chains[idx]
    }

    /// Indices of processors in the `UP` state, in id order.
    ///
    /// Allocates; heuristic hot paths use [`Self::up_indices_into`] with a
    /// reused scratch buffer instead.
    #[must_use]
    pub fn up_indices(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.up_indices_into(&mut out);
        out
    }

    /// Writes the indices of `UP` processors into `out` (cleared first), in
    /// id order. No allocation once `out` has warmed to capacity.
    pub fn up_indices_into(&self, out: &mut Vec<usize>) {
        out.clear();
        for (i, p) in self.procs.iter().enumerate() {
            if p.state.is_up() {
                out.push(i);
            }
        }
    }

    /// Number of processors.
    #[must_use]
    pub fn p(&self) -> usize {
        self.procs.len()
    }
}

/// A self-contained view owning its snapshots and chain statistics.
///
/// The engine never materializes one of these per slot; they exist for
/// tests, examples and benches that need a view without an engine behind it.
#[derive(Debug, Clone)]
pub struct OwnedSchedView {
    /// One snapshot per processor.
    pub procs: Vec<ProcSnapshot>,
    /// One precomputed chain per processor.
    pub chains: Vec<ChainStats>,
    /// `T_prog`.
    pub t_prog: SlotSpan,
    /// `T_data`.
    pub t_data: SlotSpan,
    /// `ncom`.
    pub ncom: usize,
    /// Per-processor bind room (`None` = unconstrained round).
    pub room: Option<Vec<u8>>,
    /// Per-application round context (`None` = single-app contract).
    pub app: Option<AppView>,
}

impl OwnedSchedView {
    /// Borrows as the [`SchedView`] that schedulers consume.
    #[must_use]
    pub fn view(&self) -> SchedView<'_> {
        SchedView {
            procs: &self.procs,
            chains: &self.chains,
            t_prog: self.t_prog,
            t_data: self.t_data,
            ncom: self.ncom,
            room: self.room.as_deref(),
            app: self.app,
        }
    }
}

/// Builder for hand-crafted views in tests and examples.
#[derive(Debug, Clone)]
pub struct SchedViewBuilder {
    view: OwnedSchedView,
}

impl SchedViewBuilder {
    /// Starts a view with the given application/network parameters.
    #[must_use]
    pub fn new(t_prog: SlotSpan, t_data: SlotSpan, ncom: usize) -> Self {
        Self {
            view: OwnedSchedView {
                procs: Vec::new(),
                chains: Vec::new(),
                t_prog,
                t_data,
                ncom,
                room: None,
                app: None,
            },
        }
    }

    /// Adds a processor snapshot; ids are assigned in insertion order.
    #[must_use]
    pub fn proc(
        mut self,
        state: ProcState,
        w: SlotSpan,
        has_program: bool,
        delay: SlotSpan,
        chain: AvailabilityChain,
    ) -> Self {
        let id = ProcessorId(self.view.procs.len() as u32);
        self.view.procs.push(ProcSnapshot {
            id,
            state,
            w,
            has_program,
            delay,
        });
        self.view.chains.push(ChainStats::new(chain));
        self
    }

    /// Constrains the round to the given per-processor bind room
    /// (length-matched to the processors added so far).
    #[must_use]
    pub fn room(mut self, room: Vec<u8>) -> Self {
        assert_eq!(room.len(), self.view.procs.len(), "room length != p");
        self.view.room = Some(room);
        self
    }

    /// Attaches per-application round context (co-scheduling rounds).
    #[must_use]
    pub fn app(mut self, app: AppView) -> Self {
        self.view.app = Some(app);
        self
    }

    /// Finishes the view.
    #[must_use]
    pub fn build(self) -> OwnedSchedView {
        self.view
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> AvailabilityChain {
        AvailabilityChain::new([[0.95, 0.03, 0.02], [0.30, 0.65, 0.05], [0.10, 0.10, 0.80]])
            .unwrap()
    }

    #[test]
    fn up_indices_filters_and_orders() {
        let owned = SchedViewBuilder::new(5, 1, 2)
            .proc(ProcState::Up, 1, false, 0, chain())
            .proc(ProcState::Down, 1, false, 0, chain())
            .proc(ProcState::Up, 2, true, 3, chain())
            .proc(ProcState::Reclaimed, 2, true, 3, chain())
            .build();
        let v = owned.view();
        assert_eq!(v.up_indices(), vec![0, 2]);
        assert_eq!(v.p(), 4);
        assert_eq!(v.procs[2].id, ProcessorId(2));
    }

    #[test]
    fn up_indices_into_reuses_buffer() {
        let owned = SchedViewBuilder::new(5, 1, 2)
            .proc(ProcState::Up, 1, false, 0, chain())
            .proc(ProcState::Up, 1, false, 0, chain())
            .build();
        let v = owned.view();
        let mut buf = Vec::with_capacity(8);
        v.up_indices_into(&mut buf);
        assert_eq!(buf, vec![0, 1]);
        let ptr = buf.as_ptr();
        v.up_indices_into(&mut buf);
        assert_eq!(buf, vec![0, 1]);
        assert_eq!(ptr, buf.as_ptr(), "buffer must be reused, not reallocated");
    }

    #[test]
    fn chains_are_indexed_per_processor() {
        let owned = SchedViewBuilder::new(5, 1, 2)
            .proc(ProcState::Up, 1, false, 0, chain())
            .build();
        let v = owned.view();
        assert_eq!(v.chain(0).p_uu(), chain().p_uu());
        assert_eq!(v.chains.len(), v.procs.len());
    }
}
