//! # vg-core — scheduling heuristics for volatile master–worker platforms
//!
//! The primary contribution of Casanova, Dufossé, Robert & Vivien, *"Scheduling
//! Parallel Iterative Applications on Volatile Resources"* (IPDPS 2011),
//! Section 6: on-line heuristics that pick which `UP` processor receives each
//! of the remaining tasks of the current application iteration.
//!
//! * [`view`] — the information a heuristic may consult ([`SchedView`]);
//! * [`ct`] — the completion-time estimates of Equations (1) and (2);
//! * [`random`] — `Random`, `Random1..4` and speed-weighted `…w` variants;
//! * [`greedy`] — `MCT`, `EMCT`, `LW`, `UD` and their contention-aware `*`
//!   variants;
//! * [`catalog`] — [`HeuristicKind`], the full 17-heuristic roster of
//!   Table 2, with paper-exact names and uniform construction;
//! * [`share`] — [`SharePolicy`], how co-scheduled applications split one
//!   platform's bindable capacity (equal, weighted per DFRS, strict
//!   priority).
//!
//! ```
//! use vg_core::prelude::*;
//! use vg_des::rng::SeedPath;
//! use vg_markov::availability::AvailabilityChain;
//! use vg_markov::ProcState;
//!
//! let chain = AvailabilityChain::new([
//!     [0.95, 0.03, 0.02],
//!     [0.30, 0.65, 0.05],
//!     [0.10, 0.10, 0.80],
//! ]).unwrap();
//!
//! // Two UP processors; the second is twice as fast.
//! let owned = SchedViewBuilder::new(5, 1, 2)
//!     .proc(ProcState::Up, 4, true, 0, chain.clone())
//!     .proc(ProcState::Up, 2, true, 0, chain)
//!     .build();
//!
//! let mut emct = HeuristicKind::Emct.build(SeedPath::root(0).rng());
//! let placements = emct.place(&owned.view(), 1);
//! assert_eq!(placements[0].idx(), 1); // the fast processor wins
//!
//! // Hot paths reuse an output buffer instead (zero-allocation steady state):
//! let mut out = Vec::with_capacity(4);
//! emct.place_into(&owned.view(), 1, &mut out);
//! assert_eq!(out, placements);
//! ```

pub mod catalog;
pub mod ct;
pub mod greedy;
pub mod random;
pub mod selector;
pub mod share;
pub mod traits;
pub mod view;

pub use catalog::HeuristicKind;
pub use selector::SelectorKind;
pub use share::{share_quotas, SharePolicy};
pub use traits::Scheduler;
pub use view::{AppView, OwnedSchedView, ProcSnapshot, SchedView, SchedViewBuilder};

/// Commonly used items.
pub mod prelude {
    pub use crate::catalog::HeuristicKind;
    pub use crate::share::SharePolicy;
    pub use crate::traits::Scheduler;
    pub use crate::view::{AppView, OwnedSchedView, ProcSnapshot, SchedView, SchedViewBuilder};
}
