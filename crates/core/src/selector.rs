//! Pluggable argmin selectors for the greedy placement loop.
//!
//! Every greedy family (Section 6.3) repeats the same *replace-top* access
//! pattern per placement round: pick the candidate with the smallest
//! `(score, position)` key, re-score exactly that candidate (pipelining one
//! more task onto it raises its completion time), and repeat — with an
//! occasional *wholesale* re-score when an Equation-(2) ceiling step
//! re-prices every candidate at once. This module isolates the data
//! structure answering those queries behind `Selector`, with three
//! implementations that produce **bit-identical decision sequences** and
//! differ only in access pattern:
//!
//! | selector | select | winner re-score | wholesale refresh |
//! |---|---|---|---|
//! | [`SelectorKind::Linear`]    | `O(u)` dense scan | free | free |
//! | [`SelectorKind::LazyHeap`]  | `O(1)` + validate | sift `O(log₄ u)` fan-out | Floyd `O(u)` |
//! | [`SelectorKind::LoserTree`] | `O(1)` read | one leaf-to-root path, `⌈log₂ u⌉` | bottom-up `O(u)` |
//! | [`SelectorKind::ShardedTree`] | `O(1)` read | one shard path `⌈log₂(u/s)⌉` + `s`-key tournament | per-shard `O(u)` |
//!
//! The **loser tree** is the large-`p` default. A tournament tree over the
//! candidate positions stores, at each internal node, the *loser* of that
//! match (the winner keeps ascending); the overall winner sits at the root.
//! `select` is a single read. Re-scoring the winner replays exactly the
//! matches the winner won — one leaf-to-root path of `⌈log₂ u⌉`
//! comparisons against the stored losers, with **no sift-down fan-out**:
//! unlike a `d`-ary heap, no step examines `d` children to find a minimum,
//! so the comparison count is both smaller and branch-predictable. An
//! Equation-(2) ceiling step re-prices every leaf, so the refresh is
//! *round-batched*: the caller re-evaluates all scores in one dense pass
//! first, then one `O(u)` bottom-up rebuild touches each leaf once —
//! instead of each changed entry paying a later pop-validate retry (the
//! lazy heap's repair discipline).
//!
//! ## Exactness
//!
//! All three selectors order candidates by the same key: `(score, pos)`
//! under [`f64::total_cmp`] then position. Positions are unique, so the key
//! order is total and the minimum is unique — which tree shape stores the
//! entries is unobservable. The position tie-break applies in the loser
//! tree's **internal nodes** too (every match compares full keys, never
//! bare scores), reproducing the linear scan's strict-`<` lowest-id rule
//! even when duplicate scores land in different subtrees of a padded,
//! non-power-of-two tournament. The differential tests below and the
//! greedy proptest (all 8 families × all 3 selectors vs a cache-free naive
//! model) pin this.
//!
//! ## Staleness contracts
//!
//! The lazy heap stores `(score, pos)` *copies* and tolerates stale ones
//! (scores are monotone non-decreasing within a round, so a stale entry
//! under-states its candidate and the pop-validate loop is sound — see
//! `vg_core::greedy`). The loser tree stores *positions only* and reads
//! scores live from the caller's dense row, so it must never be stale: the
//! caller re-score protocol — `Selector::rescore_winner` after each
//! placement, `Selector::refresh` after each wholesale re-price — is a
//! hard contract, debug-asserted where cheap.
//!
//! ## Storage
//!
//! Selector storage ([`LoserTree`], the heap's entry vector) lives in the
//! owning scheduler's persistent scratch and is moved in and out of the
//! round-scoped `Selector` by value, so steady-state rounds allocate
//! nothing once the backing vectors reach their high-water capacity (the
//! zero-allocation test in `vg-bench` pins this through the engine).

/// Which argmin structure a placement round uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectorKind {
    /// Dense strict-`<` rescan of the whole score row per placement.
    Linear,
    /// Stale-tolerant lazy 4-ary min-heap with pop-validate repair.
    LazyHeap,
    /// Loser (tournament) tree with replace-top path replay.
    LoserTree,
    /// Per-shard loser trees with a small tournament over shard winners;
    /// the large-`u` partitioning of [`SelectorKind::LoserTree`].
    ShardedTree,
}

/// Below this `count · u` product the dense linear rescan wins: it
/// vectorizes, the structured selectors' builds do not. Measured on the
/// slotloop and selector benches; flat between 2¹¹ and 2¹³ (unchanged
/// since the lazy heap landed).
pub const LINEAR_MAX_WORK: usize = 4096;

/// Rounds shorter than this stay linear regardless of `u`: the `O(u)`
/// build cannot amortize over so few placements.
pub const STRUCTURED_MIN_COUNT: usize = 4;

/// At and above this many UP candidates the monolithic loser tree gives
/// way to per-shard trees: a single tournament over `u ≥ 2¹³` leaves walks
/// `⌈log₂ u⌉ ≥ 13` scattered cache lines per replay, while the sharded
/// replay walks one shard's shorter path plus a dense tournament over at
/// most [`MAX_SHARDS`] contiguous winner keys. Below it the extra
/// tournament is pure overhead. See `docs/scaling.md` for the measured
/// crossover.
pub const SHARD_MIN_UPS: usize = 8192;

/// Target leaf count per shard: each shard's tree (4-byte nodes + 16-byte
/// keys over ≤ 4096 leaves) stays comfortably inside L2, so one replay
/// path touches cache-resident lines only.
pub const SHARD_LEAVES: usize = 4096;

/// Upper bound on the shard count: the winner tournament is a dense
/// linear argmin over one `u128` key per shard, and 64 keys (two cache
/// lines' worth per 8) keep it a handful of nanoseconds even at
/// `p = 10⁶` leaves.
pub const MAX_SHARDS: usize = 64;

/// Number of shards the sharded tree uses for `u` candidates: enough to
/// keep every shard at or under [`SHARD_LEAVES`] leaves, capped at
/// [`MAX_SHARDS`].
#[must_use]
pub fn shard_count(u: usize) -> usize {
    u.div_ceil(SHARD_LEAVES).clamp(1, MAX_SHARDS)
}

/// Leaves per shard for `u` candidates under the production policy (the
/// last shard may be smaller).
#[must_use]
pub fn shard_size_for(u: usize) -> usize {
    u.div_ceil(shard_count(u)).max(1)
}

impl SelectorKind {
    /// The measured crossover policy for a round placing `count` tasks over
    /// `u` UP candidates.
    ///
    /// * `count < 4` or `count · u < 4096` — **linear**: the dense scan's
    ///   vectorized `O(count · u)` beats any build cost.
    /// * `u ≥ 8192` ([`SHARD_MIN_UPS`]) — **sharded tree**: one replay
    ///   touches a single shard's cache-resident path plus a ≤ 64-key
    ///   winner tournament instead of `⌈log₂ u⌉` scattered lines.
    /// * otherwise — **loser tree**. On the selector micro-benchmark
    ///   (`BENCH_selector.json`) it beats the lazy heap on every cell at
    ///   and above the linear crossover — the heap's extra cost is the
    ///   child-group minimum at each sift level plus pop-validate traffic,
    ///   neither of which the path replay pays — so the former heap band
    ///   is empty and the heap remains reachable only through
    ///   `force_selector` (kept as a differential witness and fallback).
    #[must_use]
    pub fn choose(u: usize, count: usize) -> Self {
        if count < STRUCTURED_MIN_COUNT || count * u < LINEAR_MAX_WORK {
            Self::Linear
        } else if u >= SHARD_MIN_UPS {
            Self::ShardedTree
        } else {
            Self::LoserTree
        }
    }
}

/// Key order shared by every selector: score via `total_cmp`, then
/// position — the unique total order that reproduces the linear scan's
/// lowest-id tie-break (for the non-NaN scores produced by validated
/// chains, `total_cmp` agrees with `<`).
#[inline]
pub(crate) fn key_less(a: (f64, u32), b: (f64, u32)) -> bool {
    match a.0.total_cmp(&b.0) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Greater => false,
        std::cmp::Ordering::Equal => a.1 < b.1,
    }
}

/// Heap arity of the lazy-heap selector. The workload is sift-down-heavy —
/// every placement re-scores the popped winner — so a wide heap beats a
/// binary one: with `d = 4` a sift touches `log₄ u` contiguous 64-byte
/// child groups instead of `log₂ u` scattered cache lines. (The loser tree
/// beats both; see the module docs.) Which valid heap shape stores the
/// entries is unobservable: `key_less` is a total order, its minimum is
/// unique, so pops yield the same sequence at any arity.
const HEAP_ARITY: usize = 4;

/// Restores the min-heap property downward from slot `i`.
fn sift_down(heap: &mut [(f64, u32)], mut i: usize) {
    loop {
        let first = HEAP_ARITY * i + 1;
        if first >= heap.len() {
            break;
        }
        let last = (first + HEAP_ARITY).min(heap.len());
        let mut child = first;
        for c in first + 1..last {
            if key_less(heap[c], heap[child]) {
                child = c;
            }
        }
        if key_less(heap[child], heap[i]) {
            heap.swap(child, i);
            i = child;
        } else {
            break;
        }
    }
}

/// Floyd heap construction, `O(n)`.
fn heapify(heap: &mut [(f64, u32)]) {
    if heap.len() > 1 {
        for i in (0..=(heap.len() - 2) / HEAP_ARITY).rev() {
            sift_down(heap, i);
        }
    }
}

/// Packs a `(score, pos)` key into one `u128` whose integer order is the
/// lexicographic `(total_cmp, pos)` order: the score's bits are mapped
/// through the standard sign-magnitude fold (negative values bit-inverted,
/// positive values sign-flipped), which is strictly monotone with respect
/// to `total_cmp` over **all** bit patterns — every number, both zeros,
/// both infinity signs, every NaN payload — then the position occupies the
/// low 32 bits to break score ties toward the lower position. Tournament
/// matches thus cost one integer compare instead of a `total_cmp`
/// branch chain, with bit-identical outcomes (the unit tests below pin
/// the map against `key_less` exhaustively over crafted bit patterns).
#[inline]
fn packed_key(score: f64, pos: u32) -> u128 {
    let b = score.to_bits();
    let mapped = if b >> 63 == 1 { !b } else { b | (1 << 63) };
    ((mapped as u128) << 32) | pos as u128
}

/// Sentinel key of the loser tree's padding leaves: larger than every real
/// leaf's packed key. The score half is the all-ones pattern (the maximum
/// of the mapped order — the only score folding there is the
/// maximal-payload *positive* NaN, `0x7FFF_FFFF_FFFF_FFFF`, the top of
/// the `total_cmp` order) and the position half is `u32::MAX`, which no
/// real leaf carries, so a real candidate always wins its match against
/// padding — by score half for every other value, by position half even
/// in the adversarial case of a real score carrying that exact payload.
const SENTINEL_KEY: u128 = ((u64::MAX as u128) << 32) | u32::MAX as u128;

/// Marker for "runner-up unknown" — forces the next winner re-score to
/// replay its path (no key is ever strictly below it). The only real key
/// that can collide with it is position 0 holding the maximal-payload
/// *negative* NaN — unreachable from validated chains, and the collision
/// merely disables the shortcut (the replay path is always correct).
const RUNNER_UP_UNKNOWN: u128 = 0;

/// The loser-tree selector's persistent storage: a tournament over leaf
/// positions `0..u`, padded with sentinel leaves to the next power of two
/// `m`. `nodes[0]` is the overall winner's leaf, `nodes[1..m]` the *loser*
/// leaf of each internal match (children of node `i` are `2i`/`2i+1` in
/// the implicit complete tree whose leaves `m..2m` map to positions
/// `0..m`); `keys` caches each leaf's `packed_key`, refreshed whenever
/// the caller re-prices that leaf. A node is 4 bytes and a key 16, so the
/// whole `p = 1024` structure is cache-resident.
///
/// The replace-top fast path: after every full path replay that keeps the
/// winner, the minimum of the losers along the winner's path — exactly the
/// tournament's **runner-up** (the second-best candidate must have lost
/// directly to the winner, so it sits on that path) — is remembered. As
/// long as the re-scored winner's new key still beats the cached
/// runner-up, the winner is unchanged, no node moved, and the re-score is
/// a single integer compare; the `⌈log₂ m⌉` path is replayed only when
/// the winner's key crosses the runner-up's. Greedy rounds place long
/// same-winner streaks (a fast processor absorbs tasks until its
/// pipelined completion time passes the field), so most placements take
/// the one-compare path.
#[derive(Debug, Clone, Default)]
pub struct LoserTree {
    /// Real leaf count `u` of the current round.
    leaves: usize,
    /// Padded leaf count: `u.next_power_of_two()`.
    m: usize,
    /// `nodes[0]` winner leaf; `nodes[1..m]` per-match loser leaves.
    nodes: Vec<u32>,
    /// Packed key per leaf (sentinel beyond `leaves`).
    keys: Vec<u128>,
    /// Bottom-up build scratch: the winner of each subtree (`win[m + j] =
    /// j` for leaves, then upward). Persistent so rebuilds allocate
    /// nothing at steady state.
    win: Vec<u32>,
    /// Packed key of the tournament's second-best leaf, or
    /// [`RUNNER_UP_UNKNOWN`] right after a rebuild or a winner change.
    runner_up: u128,
}

impl LoserTree {
    /// Rebuilds the tournament bottom-up over `scores`, `O(m)` — the
    /// round-batched refresh: after a wholesale re-price the caller calls
    /// this once, touching each leaf exactly once, instead of paying one
    /// repair per stale entry. Also the per-round build.
    pub fn rebuild(&mut self, scores: &[f64]) {
        self.leaves = scores.len();
        self.m = self.leaves.next_power_of_two().max(1);
        self.nodes.clear();
        self.nodes.resize(self.m, 0);
        self.keys.clear();
        self.keys.extend(
            scores
                .iter()
                .enumerate()
                .map(|(j, &s)| packed_key(s, j as u32)),
        );
        self.keys.resize(self.m, SENTINEL_KEY);
        self.win.clear();
        self.win.resize(2 * self.m, 0);
        self.runner_up = RUNNER_UP_UNKNOWN;
        if self.m == 1 {
            // Single candidate: it is the winner, there are no matches.
            self.nodes[0] = 0;
            return;
        }
        for j in 0..self.m {
            self.win[self.m + j] = j as u32;
        }
        for i in (1..self.m).rev() {
            let a = self.win[2 * i];
            let b = self.win[2 * i + 1];
            // Strict key order: the right child must strictly beat the
            // left to win; packed keys are unique (positions differ), so
            // there is exactly one order.
            let (w, l) = if self.keys[b as usize] < self.keys[a as usize] {
                (b, a)
            } else {
                (a, b)
            };
            self.win[i] = w;
            self.nodes[i] = l;
        }
        self.nodes[0] = self.win[1];
    }

    /// The current winner's position. `O(1)`; exact provided the re-score
    /// contract (module docs) was honored.
    #[inline]
    #[must_use]
    pub fn winner(&self) -> usize {
        self.nodes[0] as usize
    }

    /// Re-prices the winner's leaf after *its* score changed and restores
    /// the tournament. Fast path: the new key still beats the cached
    /// runner-up, so nothing moved — one compare. Slow path: replay the
    /// winner's leaf-to-root path — the stored losers along it are exactly
    /// the opponents the winner beat, so re-running those `⌈log₂ m⌉`
    /// matches (demoting the ascending key whenever a stored loser beats
    /// it) restores every invariant, and the minimum loser seen along the
    /// way is the new runner-up whenever the winner defends its title.
    /// Only valid for the winner's leaf (other leaves' paths store losers
    /// the changed key never played), hence the debug assert.
    pub fn replay_winner(&mut self, leaf: usize, scores: &[f64]) {
        debug_assert_eq!(
            leaf, self.nodes[0] as usize,
            "path replay is only sound for the current winner's leaf"
        );
        let key = packed_key(scores[leaf], leaf as u32);
        self.keys[leaf] = key;
        if key < self.runner_up {
            // Still strictly better than the whole field (the runner-up is
            // the minimum over every other leaf): the winner defends, no
            // node changes. RUNNER_UP_UNKNOWN (0) never satisfies this.
            return;
        }
        let mut w = leaf as u32;
        let mut wk = key;
        // Minimum of the losers along the path = the field's best
        // non-winner key.
        let mut field_min = SENTINEL_KEY;
        let mut node = (self.m + leaf) >> 1;
        while node >= 1 {
            let l = self.nodes[node];
            let lk = self.keys[l as usize];
            field_min = field_min.min(lk);
            if lk < wk {
                self.nodes[node] = w;
                w = l;
                wk = lk;
            }
            node >>= 1;
        }
        self.nodes[0] = w;
        // If the old winner defended its title, the path losers are still
        // the whole non-winner field and their minimum is the runner-up;
        // if the title changed hands, the new winner's opponents live on a
        // different path, so the shortcut re-arms at its next re-score.
        self.runner_up = if w as usize == leaf {
            field_min
        } else {
            RUNNER_UP_UNKNOWN
        };
    }

    /// Packed key of the current winner's leaf (sentinel on an empty
    /// tree). Local positions: the sharded wrapper re-bases it.
    #[inline]
    fn winner_key(&self) -> u128 {
        self.keys[self.nodes[0] as usize]
    }
}

/// The sharded selector's persistent storage: the candidate row is split
/// into contiguous shards of [`shard_size_for`]-many leaves, each
/// owning an independent [`LoserTree`], plus one **global-position**
/// packed key per shard winner. `select` reads a cached overall winner;
/// a winner re-score replays one shard's `⌈log₂(u/s)⌉` path and then
/// re-runs the dense `s`-key tournament (`s ≤` [`MAX_SHARDS`], two
/// `u128`s per cache line), so no replay ever walks the full-platform
/// `⌈log₂ u⌉` scattered lines; an Equation-(2) wholesale refresh
/// re-prices each shard independently (the natural unit for a future
/// multi-thread split with a deterministic merge).
///
/// ## Exactness
///
/// Shard winner keys are packed with **global** positions (a shard-local
/// key plus the shard's base offset — the position field occupies the low
/// 32 bits, so the add re-bases it without touching the score half).
/// The tournament is therefore a linear argmin over exactly the same
/// `(score, pos)` key order the monolithic tree uses, and its minimum is
/// the monolithic winner, bit-identically — pinned by the differential
/// tests below and the greedy proptest.
#[derive(Debug, Clone, Default)]
pub struct ShardedTree {
    /// Leaves per shard of the current round (last shard may be short).
    shard_size: usize,
    /// Real leaf count `u` of the current round.
    len: usize,
    /// One independent tournament per shard; storage persists across
    /// rounds like the monolithic tree's.
    shards: Vec<LoserTree>,
    /// Packed `(score, global pos)` key of each shard's winner.
    winner_keys: Vec<u128>,
    /// Index of the shard holding the overall winner.
    winner_shard: usize,
}

impl ShardedTree {
    /// Rebuilds every shard over `scores`, `O(u)` total — the per-round
    /// build and the round-batched wholesale refresh. `shard_size` is the
    /// partition width; production callers pass [`shard_size_for`], tests
    /// force small widths to exercise multi-shard shapes at tiny `u`.
    pub fn rebuild(&mut self, scores: &[f64], shard_size: usize) {
        self.shard_size = shard_size.max(1);
        self.len = scores.len();
        let nshards = self.len.div_ceil(self.shard_size).max(1);
        self.shards.truncate(nshards);
        while self.shards.len() < nshards {
            self.shards.push(LoserTree::default());
        }
        self.winner_keys.clear();
        for (s, tree) in self.shards.iter_mut().enumerate() {
            let lo = s * self.shard_size;
            let hi = (lo + self.shard_size).min(self.len);
            tree.rebuild(&scores[lo..hi]);
            // Re-base the winner's position to the global row. The empty
            // single-shard case keeps the sentinel unshifted (lo = 0).
            self.winner_keys.push(tree.winner_key() + lo as u128);
        }
        self.refresh_winner();
    }

    /// Re-runs the winner tournament: a dense strict-`<` argmin over the
    /// per-shard keys (strict keeps the lowest shard on the impossible
    /// tie, matching the monolithic order — keys carry unique positions).
    fn refresh_winner(&mut self) {
        let mut best = 0usize;
        for s in 1..self.winner_keys.len() {
            if self.winner_keys[s] < self.winner_keys[best] {
                best = s;
            }
        }
        self.winner_shard = best;
    }

    /// The current overall winner's global position. `O(1)`; exact under
    /// the same re-score contract as the monolithic tree.
    #[inline]
    #[must_use]
    pub fn winner(&self) -> usize {
        self.winner_shard * self.shard_size + self.shards[self.winner_shard].winner()
    }

    /// Re-prices the winner's leaf after *its* score changed: replay the
    /// owning shard's path (inheriting the monolithic runner-up
    /// shortcut), refresh that shard's tournament key, and re-run the
    /// winner tournament. Only valid for the overall winner's leaf.
    pub fn replay_winner(&mut self, leaf: usize, scores: &[f64]) {
        debug_assert_eq!(
            leaf,
            self.winner(),
            "path replay is only sound for the current winner's leaf"
        );
        let s = self.winner_shard;
        let lo = s * self.shard_size;
        let hi = (lo + self.shard_size).min(self.len);
        self.shards[s].replay_winner(leaf - lo, &scores[lo..hi]);
        self.winner_keys[s] = self.shards[s].winner_key() + lo as u128;
        self.refresh_winner();
    }
}

/// The argmin strategy of one placement round. Every variant returns the
/// exact same winner sequence for the same score-row trajectory (the
/// differential tests and the greedy proptest pin it); they differ only in
/// access pattern, so the placement loop in `GreedyScheduler::place_into`
/// is shared and only winner selection, the winner's score write-back and
/// the wholesale refresh dispatch here.
pub(crate) enum Selector {
    /// Dense strict-`<` rescan of the whole score row per placement.
    Linear,
    /// Lazy min-heap of `(score, pos)` entries, one per UP candidate; owns
    /// the scheduler's persistent backing storage for the round.
    Heap(Vec<(f64, u32)>),
    /// Loser tree over candidate positions; owns the scheduler's
    /// persistent tree storage for the round.
    Loser(LoserTree),
    /// Per-shard loser trees + winner tournament; owns the scheduler's
    /// persistent sharded storage for the round.
    Sharded(ShardedTree),
}

impl Selector {
    /// Builds the round's selector of `kind` over the initial score row,
    /// taking ownership of the matching persistent storage (returned to
    /// the scheduler by `Self::into_storage`).
    pub(crate) fn build(
        kind: SelectorKind,
        scores: &[f64],
        heap_storage: &mut Vec<(f64, u32)>,
        tree_storage: &mut LoserTree,
        sharded_storage: &mut ShardedTree,
    ) -> Self {
        match kind {
            SelectorKind::Linear => Self::Linear,
            SelectorKind::LazyHeap => {
                let mut heap = std::mem::take(heap_storage);
                heap.clear();
                heap.extend(scores.iter().enumerate().map(|(pos, &s)| (s, pos as u32)));
                heapify(&mut heap);
                Self::Heap(heap)
            }
            SelectorKind::LoserTree => {
                let mut tree = std::mem::take(tree_storage);
                tree.rebuild(scores);
                Self::Loser(tree)
            }
            SelectorKind::ShardedTree => {
                let mut tree = std::mem::take(sharded_storage);
                tree.rebuild(scores, shard_size_for(scores.len()));
                Self::Sharded(tree)
            }
        }
    }

    /// Returns the backing storage to the scheduler's persistent scratch.
    pub(crate) fn into_storage(
        self,
        heap_storage: &mut Vec<(f64, u32)>,
        tree_storage: &mut LoserTree,
        sharded_storage: &mut ShardedTree,
    ) {
        match self {
            Self::Linear => {}
            Self::Heap(heap) => *heap_storage = heap,
            Self::Loser(tree) => *tree_storage = tree,
            Self::Sharded(tree) => *sharded_storage = tree,
        }
    }

    /// Position (into the candidate row) of the current argmin. The heap
    /// variant leaves the winner's entry at the top, where
    /// [`Self::rescore_winner`] expects it; the loser tree's winner is
    /// already at the root.
    pub(crate) fn select(&mut self, scores: &[f64]) -> usize {
        match self {
            // Pop-validate: a stale top (its score was raised by an
            // Equation-(2) refresh after the entry was pushed) under-states
            // its candidate — scores are monotone non-decreasing within a
            // round — so refresh it in place and retry. A top that matches
            // the score cache bit-for-bit is the exact argmin.
            Self::Heap(heap) => loop {
                let (s, pos) = heap[0];
                let current = scores[pos as usize];
                if s.to_bits() == current.to_bits() {
                    break pos as usize;
                }
                heap[0].0 = current;
                sift_down(heap, 0);
            },
            Self::Loser(tree) => tree.winner(),
            Self::Sharded(tree) => tree.winner(),
            Self::Linear => {
                let mut best_pos = 0usize;
                let mut best_score = f64::INFINITY;
                for (pos, &s) in scores.iter().enumerate() {
                    // Strict `<` keeps the lowest processor id on ties
                    // ([D9]); candidates are in ascending id order.
                    if s < best_score {
                        best_score = s;
                        best_pos = pos;
                    }
                }
                best_pos
            }
        }
    }

    /// Records that the winner at `pos` was re-scored (the caller already
    /// wrote `scores[pos]`). The heap updates its top entry in place and
    /// sifts — it keeps exactly one entry per candidate; the loser tree
    /// replays the winner's path; the linear variant is stateless.
    pub(crate) fn rescore_winner(&mut self, pos: usize, scores: &[f64]) {
        match self {
            Self::Heap(heap) => {
                debug_assert_eq!(
                    heap[0].1 as usize, pos,
                    "the winner's entry must be the top"
                );
                heap[0].0 = scores[pos];
                sift_down(heap, 0);
            }
            Self::Loser(tree) => tree.replay_winner(pos, scores),
            Self::Sharded(tree) => tree.replay_winner(pos, scores),
            Self::Linear => {}
        }
    }

    /// Round-batched wholesale refresh after every score changed at once
    /// (an Equation-(2) ceiling step): the caller has re-evaluated the
    /// whole row in one dense pass; the structured selectors then rebuild
    /// bottom-up in `O(u)` — touching each entry exactly once — instead of
    /// paying one lazy repair per stale entry as it surfaces. The minimum
    /// is the same either way, so decisions are untouched. The linear
    /// variant is stateless.
    pub(crate) fn refresh(&mut self, scores: &[f64]) {
        match self {
            Self::Heap(heap) => {
                heap.clear();
                heap.extend(scores.iter().enumerate().map(|(pos, &s)| (s, pos as u32)));
                heapify(heap);
            }
            Self::Loser(tree) => tree.rebuild(scores),
            Self::Sharded(tree) => {
                let shard_size = tree.shard_size;
                tree.rebuild(scores, shard_size);
            }
            Self::Linear => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives one selector through a scripted round and returns the winner
    /// sequence; `bumps` gives the score the winner is re-scored to after
    /// each placement.
    fn run_round(kind: SelectorKind, scores: &mut [f64], bumps: &[f64]) -> Vec<usize> {
        let mut heap_storage = Vec::new();
        let mut tree_storage = LoserTree::default();
        let mut sharded_storage = ShardedTree::default();
        let mut sel = Selector::build(
            kind,
            scores,
            &mut heap_storage,
            &mut tree_storage,
            &mut sharded_storage,
        );
        let mut picks = Vec::new();
        for &bump in bumps {
            let w = sel.select(scores);
            picks.push(w);
            scores[w] = bump;
            sel.rescore_winner(w, scores);
        }
        sel.into_storage(&mut heap_storage, &mut tree_storage, &mut sharded_storage);
        picks
    }

    /// Drives a [`ShardedTree`] with a *forced* shard width through the
    /// same scripted round, so multi-shard shapes are reachable at tiny
    /// `u` (the production width only shards above [`SHARD_LEAVES`]).
    fn run_round_sharded(shard_size: usize, scores: &mut [f64], bumps: &[f64]) -> Vec<usize> {
        let mut tree = ShardedTree::default();
        tree.rebuild(scores, shard_size);
        let mut picks = Vec::new();
        for &bump in bumps {
            let w = tree.winner();
            picks.push(w);
            scores[w] = bump;
            tree.replay_winner(w, scores);
        }
        picks
    }

    /// All four selectors must agree with each other (and hence with the
    /// linear reference) on every scripted round; the sharded tree is
    /// additionally exercised at forced widths that split even tiny rows
    /// into several shards.
    fn assert_all_agree(scores: &[f64], bumps: &[f64]) {
        let linear = run_round(SelectorKind::Linear, &mut scores.to_vec(), bumps);
        let heap = run_round(SelectorKind::LazyHeap, &mut scores.to_vec(), bumps);
        let loser = run_round(SelectorKind::LoserTree, &mut scores.to_vec(), bumps);
        let sharded = run_round(SelectorKind::ShardedTree, &mut scores.to_vec(), bumps);
        assert_eq!(linear, heap, "heap diverged on {scores:?} / {bumps:?}");
        assert_eq!(
            linear, loser,
            "loser tree diverged on {scores:?} / {bumps:?}"
        );
        assert_eq!(
            linear, sharded,
            "sharded tree diverged on {scores:?} / {bumps:?}"
        );
        for shard_size in [1usize, 2, 3, 4] {
            let forced = run_round_sharded(shard_size, &mut scores.to_vec(), bumps);
            assert_eq!(
                linear, forced,
                "sharded tree (width {shard_size}) diverged on {scores:?} / {bumps:?}"
            );
        }
    }

    #[test]
    fn loser_tree_basic_argmin() {
        let scores = [5.0, 3.0, 9.0, 4.0, 8.0];
        let mut tree = LoserTree::default();
        tree.rebuild(&scores);
        assert_eq!(tree.winner(), 1);
    }

    #[test]
    fn duplicate_scores_resolve_to_lowest_position_in_internal_nodes() {
        // The tie-break audit of the heap → loser-tree translation: the
        // duplicates land in *different subtrees* of the padded
        // tournament (u = 5 pads to m = 8: leaves {0..3} and {4..7} are
        // the two top-level subtrees), so the lowest-position rule must
        // hold in internal matches, not just at the leaves. A bare-score
        // comparison would let either duplicate through depending on
        // shape; the full-key comparison cannot.
        let scores = [7.0, 3.0, 9.0, 8.0, 3.0];
        let mut tree = LoserTree::default();
        tree.rebuild(&scores);
        assert_eq!(tree.winner(), 1, "3.0 appears at positions 1 and 4");

        // And across every subtree split of a non-power-of-two row: place
        // the duplicate pair at all position pairs and check the lower one
        // always wins, in the tree and in the full replace-top round.
        for u in [5usize, 6, 7, 11, 13] {
            for i in 0..u {
                for j in i + 1..u {
                    let mut scores = vec![10.0; u];
                    scores[i] = 1.0;
                    scores[j] = 1.0;
                    let mut tree = LoserTree::default();
                    tree.rebuild(&scores);
                    assert_eq!(tree.winner(), i, "u={u} duplicates at ({i},{j})");
                    // Re-score the winner above the duplicate: its twin
                    // must surface next, then the winner's path replay
                    // must keep ordering full keys.
                    let bumps = [2.0, 3.0, 4.0];
                    assert_all_agree(&scores, &bumps);
                }
            }
        }
    }

    #[test]
    fn all_equal_scores_drain_in_position_order() {
        // Every score identical: the selectors must pick positions
        // 0, 1, 2, … as each winner is re-scored upward — the pure
        // tie-break ordering, exercised across both subtree shapes of
        // every non-power-of-two size.
        for u in [3usize, 5, 6, 7, 9, 12] {
            let scores = vec![1.0; u];
            let bumps: Vec<f64> = (0..u).map(|k| 2.0 + k as f64).collect();
            let linear = run_round(SelectorKind::Linear, &mut scores.clone(), &bumps);
            assert_eq!(linear, (0..u).collect::<Vec<_>>(), "u={u}");
            assert_all_agree(&scores, &bumps);
        }
    }

    #[test]
    fn replay_winner_restores_the_tournament() {
        let mut scores = vec![5.0, 3.0, 9.0, 4.0, 8.0, 2.0, 7.0];
        let mut tree = LoserTree::default();
        tree.rebuild(&scores);
        let expected_order = [5usize, 1, 3, 0, 6, 4, 2];
        for &expect in &expected_order {
            assert_eq!(tree.winner(), expect);
            let w = tree.winner();
            scores[w] += 100.0; // push the winner to the back of the pack
            tree.replay_winner(w, &scores);
        }
    }

    #[test]
    fn wholesale_refresh_reprices_every_leaf() {
        let mut scores = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut tree = LoserTree::default();
        tree.rebuild(&scores);
        assert_eq!(tree.winner(), 0);
        // Invert the row — the old tournament is wholly wrong; one
        // round-batched rebuild must re-price everything.
        for (i, s) in scores.iter_mut().enumerate() {
            *s = -(i as f64);
        }
        tree.rebuild(&scores);
        assert_eq!(tree.winner(), 5);
    }

    #[test]
    fn single_candidate_and_power_of_two_shapes() {
        for u in [1usize, 2, 4, 8] {
            let scores: Vec<f64> = (0..u).map(|k| 10.0 - k as f64).collect();
            let mut tree = LoserTree::default();
            tree.rebuild(&scores);
            assert_eq!(tree.winner(), u - 1, "u={u}: smallest score is last");
        }
    }

    #[test]
    fn scripted_rounds_agree_across_selectors() {
        // Deterministic pseudo-random rounds over assorted sizes,
        // including re-scores that create fresh duplicates mid-round.
        let mut state = 0x9e37_79b9_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 97) as f64
        };
        for u in [2usize, 3, 5, 8, 13, 21, 64, 100] {
            let scores: Vec<f64> = (0..u).map(|_| next()).collect();
            let bumps: Vec<f64> = (0..2 * u).map(|_| 100.0 + next()).collect();
            assert_all_agree(&scores, &bumps);
        }
    }

    #[test]
    fn infinite_and_extreme_scores_still_beat_padding() {
        // Real leaves with +∞ scores must still win their matches against
        // the sentinel padding (position tie-break), so a row of
        // overflowed scores drains in position order instead of selecting
        // a padding leaf.
        let scores = vec![f64::INFINITY; 5];
        let mut tree = LoserTree::default();
        tree.rebuild(&scores);
        assert_eq!(tree.winner(), 0);
    }

    #[test]
    fn packed_key_order_matches_total_cmp_then_pos() {
        // The integer fold must agree with (total_cmp, pos) over every
        // class of bit pattern — numbers, both zeros, both infinities,
        // subnormals, NaNs of either sign — so tournament matches on
        // packed keys are bit-identical to `key_less` matches.
        let specimens = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -f64::MIN_POSITIVE / 2.0, // negative subnormal
            -0.0,
            0.0,
            f64::MIN_POSITIVE / 2.0,
            2.5,
            1e300,
            f64::INFINITY,
            f64::NAN,
            -f64::NAN,
            f64::from_bits(0x7FF0_0000_0000_0001), // minimal positive NaN payload
            f64::from_bits(0x7FFF_FFFF_FFFF_FFFF), // maximal positive NaN payload
            f64::from_bits(0xFFFF_FFFF_FFFF_FFFF), // maximal negative NaN payload
        ];
        for &a in &specimens {
            for &b in &specimens {
                for (pa, pb) in [(0u32, 1u32), (1, 0), (3, 3)] {
                    assert_eq!(
                        packed_key(a, pa) < packed_key(b, pb),
                        key_less((a, pa), (b, pb)),
                        "a={a:?}({:#x}) pa={pa} b={b:?}({:#x}) pb={pb}",
                        a.to_bits(),
                        b.to_bits(),
                    );
                }
            }
        }
    }

    #[test]
    fn crossover_policy_boundaries() {
        use SelectorKind::*;
        // Short rounds stay linear regardless of platform size.
        assert_eq!(SelectorKind::choose(100_000, 3), Linear);
        // The count·u product gates the structured selector exactly at
        // LINEAR_MAX_WORK.
        assert_eq!(SelectorKind::choose(1023, 4), Linear); // 4092 < 4096
        assert_eq!(SelectorKind::choose(1024, 4), LoserTree); // 4096
        assert_eq!(SelectorKind::choose(1025, 4), LoserTree);
        assert_eq!(SelectorKind::choose(256, 15), Linear); // 3840
        assert_eq!(SelectorKind::choose(256, 16), LoserTree); // 4096
                                                              // Mid-band default is the loser tree.
        assert_eq!(SelectorKind::choose(1024, 2048), LoserTree);
        // The UP-candidate count gates sharding exactly at SHARD_MIN_UPS.
        assert_eq!(SelectorKind::choose(8191, 4), LoserTree);
        assert_eq!(SelectorKind::choose(8192, 4), ShardedTree);
        assert_eq!(SelectorKind::choose(131_072, 100), ShardedTree);
        // A huge platform with a too-short round still scans linearly.
        assert_eq!(SelectorKind::choose(131_072, 3), Linear);
    }

    #[test]
    fn shard_count_policy() {
        // One shard up to SHARD_LEAVES, then one per SHARD_LEAVES slice,
        // capped at MAX_SHARDS; shard widths always cover the row.
        assert_eq!(shard_count(1), 1);
        assert_eq!(shard_count(SHARD_LEAVES), 1);
        assert_eq!(shard_count(SHARD_LEAVES + 1), 2);
        assert_eq!(shard_count(16_384), 4);
        assert_eq!(shard_count(131_072), 32);
        assert_eq!(shard_count(10_000_000), MAX_SHARDS);
        for u in [1usize, 5, 4096, 4097, 16_384, 131_072, 1 << 20] {
            let w = shard_size_for(u);
            assert!(w * shard_count(u) >= u, "u={u}: shards must cover the row");
        }
    }

    #[test]
    fn sharded_matches_monolithic_at_scale() {
        // The production regime: u = 16384 UP candidates (4 shards of
        // 4096), a long replace-top round with pseudo-random scores and
        // bumps, plus periodic wholesale refreshes. Winner sequences must
        // be bit-identical to the monolithic tree's.
        let u = 16_384usize;
        let mut state = 0xdead_beef_1234_5678_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 100_003) as f64
        };
        let scores_init: Vec<f64> = (0..u).map(|_| next()).collect();

        let mut mono_scores = scores_init.clone();
        let mut shard_scores = scores_init;
        let mut mono = LoserTree::default();
        mono.rebuild(&mono_scores);
        let mut sharded = ShardedTree::default();
        sharded.rebuild(&shard_scores, shard_size_for(u));
        assert_eq!(sharded.winner(), mono.winner(), "initial build diverged");

        for round in 0..3000usize {
            let bump = 200_000.0 + next();
            let w = mono.winner();
            assert_eq!(sharded.winner(), w, "round {round} winner diverged");
            mono_scores[w] = bump;
            shard_scores[w] = bump;
            mono.replay_winner(w, &mono_scores);
            sharded.replay_winner(w, &shard_scores);
            if round % 701 == 700 {
                // Wholesale re-price (Equation-(2) ceiling step analogue).
                for (a, b) in mono_scores.iter_mut().zip(shard_scores.iter_mut()) {
                    let fresh = next();
                    *a = fresh;
                    *b = fresh;
                }
                mono.rebuild(&mono_scores);
                let ss = shard_size_for(u);
                sharded.rebuild(&shard_scores, ss);
            }
        }
    }

    #[test]
    fn sharded_duplicates_across_shard_boundaries() {
        // Duplicate scores in *different shards*: the global-position
        // re-basing of the winner keys must keep the lowest-id rule
        // across the tournament, not just inside one shard.
        for u in [5usize, 6, 8, 13] {
            for shard_size in [2usize, 3, 4] {
                for i in 0..u {
                    for j in i + 1..u {
                        let mut scores = vec![10.0; u];
                        scores[i] = 1.0;
                        scores[j] = 1.0;
                        let mut tree = ShardedTree::default();
                        tree.rebuild(&scores, shard_size);
                        assert_eq!(
                            tree.winner(),
                            i,
                            "u={u} width={shard_size} duplicates at ({i},{j})"
                        );
                        let bumps = [2.0, 3.0, 4.0];
                        let linear = run_round(SelectorKind::Linear, &mut scores.clone(), &bumps);
                        let forced = run_round_sharded(shard_size, &mut scores.clone(), &bumps);
                        assert_eq!(linear, forced, "u={u} width={shard_size} ({i},{j})");
                    }
                }
            }
        }
    }
}
