//! The application runtime layer: per-application state, task-id
//! namespacing, and the barrier reconfiguration policies.
//!
//! Historically the engine simulated exactly one rigid iterative
//! application — one [`AppConfig`] copied by value, one global
//! [`IterationState`], one makespan. This module pulls the application out
//! into its own object, [`AppRuntime`], so the engine can drive a *slice*
//! of them over the shared worker store:
//!
//! * **moldable** applications re-pick their task count at the iteration
//!   barrier from the current `UP` worker count ([`ReconfigPolicy::
//!   Moldable`], ReSHAPE-style — the barrier is the natural reconfiguration
//!   point);
//! * **co-scheduled** applications share one volatile platform under a
//!   [`vg_core::share::SharePolicy`] (equal split, DFRS-style weighted
//!   fractional shares, strict priority).
//!
//! ## Task-id namespacing
//!
//! Worker pipelines, the bind order and the slot scratch all carry
//! **global** [`TaskId`]s: application `a`'s local task `t` is encoded as
//! `a · 2²⁴ + t` ([`APP_TASK_SHIFT`]). Each [`IterationState`] keeps
//! operating on **local** ids; the engine translates at every boundary.
//! Application 0's base is 0, so in the single-application case global and
//! local ids are bit-for-bit the same numbers — one pillar of the
//! single-app bit-identity contract (see `docs/applications.md`).

use vg_des::Slot;
use vg_platform::AppConfig;

use crate::task::{IterationState, TaskId};

/// Bit position of the application index inside a global [`TaskId`].
pub const APP_TASK_SHIFT: u32 = 24;

/// Exclusive upper bound on `tasks_per_iteration` under the global task-id
/// encoding (local ids must fit below [`APP_TASK_SHIFT`]).
pub const MAX_APP_TASKS: usize = 1 << APP_TASK_SHIFT;

/// Maximum number of co-scheduled applications (the app index must fit in
/// the bits above [`APP_TASK_SHIFT`]).
pub const MAX_APPS: usize = 1 << (32 - APP_TASK_SHIFT);

/// Application index of a global task id.
#[inline]
#[must_use]
pub(crate) fn app_of(task: TaskId) -> usize {
    (task.0 >> APP_TASK_SHIFT) as usize
}

/// Local (per-application) id of a global task id.
#[inline]
#[must_use]
pub(crate) fn local_task(task: TaskId) -> TaskId {
    TaskId(task.0 & ((1 << APP_TASK_SHIFT) - 1))
}

/// Global id of `local` under an application's `task_base`.
#[inline]
#[must_use]
pub(crate) fn global_task(base: u32, local: TaskId) -> TaskId {
    debug_assert_eq!(base & ((1 << APP_TASK_SHIFT) - 1), 0);
    debug_assert!(local.0 < MAX_APP_TASKS as u32);
    TaskId(base | local.0)
}

/// The iteration state of `task`'s application, plus `task`'s local id —
/// the engine's one-line boundary translation.
#[inline]
pub(crate) fn iter_for(apps: &mut [AppRuntime], task: TaskId) -> (&mut IterationState, TaskId) {
    (&mut apps[app_of(task)].iter, local_task(task))
}

/// Integer parameters of the [`ReconfigPolicy::Moldable`] resize rule: at
/// each barrier the next iteration's task count becomes
/// `clamp(up_workers · num / den, min_tasks, max_tasks)`.
///
/// Integer-only on purpose: barrier decisions feed the deterministic slot
/// loop, so they must be exactly reproducible across platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoldableParams {
    /// Numerator of the tasks-per-UP-worker ratio.
    pub tasks_per_up_num: u32,
    /// Denominator of the tasks-per-UP-worker ratio (≥ 1).
    pub tasks_per_up_den: u32,
    /// Lower bound on the re-picked task count (≥ 1).
    pub min_tasks: usize,
    /// Upper bound on the re-picked task count.
    pub max_tasks: usize,
}

impl Default for MoldableParams {
    /// One task per UP worker, between 1 and the encoding limit.
    fn default() -> Self {
        Self {
            tasks_per_up_num: 1,
            tasks_per_up_den: 1,
            min_tasks: 1,
            max_tasks: MAX_APP_TASKS - 1,
        }
    }
}

impl MoldableParams {
    /// The task count for the next iteration given `up` UP workers.
    #[must_use]
    pub fn pick_m(&self, up: usize) -> usize {
        let den = u64::from(self.tasks_per_up_den.max(1));
        let raw = (up as u64).saturating_mul(u64::from(self.tasks_per_up_num)) / den;
        let lo = self.min_tasks.clamp(1, MAX_APP_TASKS - 1);
        let hi = self.max_tasks.clamp(lo, MAX_APP_TASKS - 1);
        usize::try_from(raw).unwrap_or(hi).clamp(lo, hi)
    }
}

/// What an application does at its iteration barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReconfigPolicy {
    /// Rigid: every iteration reruns the configured `tasks_per_iteration`
    /// — exactly the historical engine behavior.
    #[default]
    Fixed,
    /// Moldable: re-pick the task count from the current UP worker count
    /// (ReSHAPE-style). When the pick equals the current count the barrier
    /// takes the exact `Fixed` code path (`reset`, not `reinit`).
    Moldable(MoldableParams),
}

/// Caller-facing description of one application to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppSpec {
    /// Task/iteration/communication parameters. Under co-scheduling all
    /// applications must agree on `t_prog` and `t_data` (the worker
    /// pipeline state is application-agnostic).
    pub config: AppConfig,
    /// Share weight under [`vg_core::share::SharePolicy::Weighted`]
    /// (ignored — except as zero/non-zero — by the other policies).
    pub weight: u32,
    /// Barrier reconfiguration policy.
    pub reconfig: ReconfigPolicy,
}

impl AppSpec {
    /// A rigid, weight-1 application — the historical default.
    #[must_use]
    pub fn rigid(config: AppConfig) -> Self {
        Self {
            config,
            weight: 1,
            reconfig: ReconfigPolicy::Fixed,
        }
    }

    /// A rigid application with an explicit share weight.
    #[must_use]
    pub fn weighted(config: AppConfig, weight: u32) -> Self {
        Self {
            config,
            weight,
            reconfig: ReconfigPolicy::Fixed,
        }
    }

    /// A weight-1 moldable application.
    #[must_use]
    pub fn moldable(config: AppConfig, params: MoldableParams) -> Self {
        Self {
            config,
            weight: 1,
            reconfig: ReconfigPolicy::Moldable(params),
        }
    }
}

/// Live state of one application inside the engine: its configuration, its
/// current [`IterationState`] (local task ids), its progress counters and
/// its task-id namespace base.
///
/// Fields are `pub(crate)`: the engine's slot loop reads and writes them
/// directly (no accessor indirection on the hot path); everything external
/// goes through the read-only accessors below or the per-app
/// [`crate::report::AppReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct AppRuntime {
    pub(crate) config: AppConfig,
    pub(crate) weight: u32,
    pub(crate) reconfig: ReconfigPolicy,
    /// Global-id base of this application's tasks (`index << APP_TASK_SHIFT`).
    pub(crate) task_base: u32,
    /// The live iteration, in **local** task ids.
    pub(crate) iter: IterationState,
    pub(crate) iterations_done: u64,
    /// Barrier slot of each finished iteration.
    pub(crate) iteration_completed_at: Vec<Slot>,
    /// Barrier slot of the final iteration, once the app has finished.
    pub(crate) completed_at: Option<Slot>,
    pub(crate) tasks_completed: u64,
}

impl AppRuntime {
    /// Fresh runtime for application `index` of a run.
    #[must_use]
    pub(crate) fn new(index: usize, spec: &AppSpec, max_extra: u8) -> Self {
        debug_assert!(index < MAX_APPS);
        Self {
            config: spec.config,
            weight: spec.weight,
            reconfig: spec.reconfig,
            task_base: (index as u32) << APP_TASK_SHIFT,
            iter: IterationState::new(0, spec.config.tasks_per_iteration, max_extra),
            iterations_done: 0,
            // Preallocated for every requested barrier so the per-app
            // completion log never grows inside the steady-state slot loop
            // (mirrors the engine's combined `iteration_completed_at`).
            iteration_completed_at: Vec::with_capacity(spec.config.iterations as usize),
            completed_at: None,
            tasks_completed: 0,
        }
    }

    /// Reinitializes a warmed runtime in place for a new run (the arena
    /// counterpart of [`Self::new`], reusing the allocated buffers).
    pub(crate) fn reinit(&mut self, index: usize, spec: &AppSpec, max_extra: u8) {
        debug_assert!(index < MAX_APPS);
        self.config = spec.config;
        self.weight = spec.weight;
        self.reconfig = spec.reconfig;
        self.task_base = (index as u32) << APP_TASK_SHIFT;
        self.iter
            .reinit(0, spec.config.tasks_per_iteration, max_extra);
        self.iterations_done = 0;
        self.iteration_completed_at.clear();
        self.iteration_completed_at
            .reserve(spec.config.iterations as usize);
        self.completed_at = None;
        self.tasks_completed = 0;
    }

    /// True once every requested iteration has completed.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.iterations_done >= self.config.iterations
    }

    /// Starts the next iteration at a barrier: `Fixed` reuses the exact
    /// historical `reset` path; `Moldable` re-picks the task count from
    /// `up` (the slot's UP worker count) and resizes via `reinit` only when
    /// the pick differs. Task conservation across the resize is
    /// debug-asserted: the finished iteration must be fully complete before,
    /// and the new one must pool exactly its `m` tasks after.
    pub(crate) fn begin_next_iteration(&mut self, up: usize, max_extra: u8) {
        debug_assert!(
            self.iter.is_complete(),
            "barrier fired on an incomplete iteration"
        );
        debug_assert!(!self.finished());
        let index = self.iterations_done;
        match self.reconfig {
            ReconfigPolicy::Fixed => self.iter.reset(index),
            ReconfigPolicy::Moldable(params) => {
                let m_next = params.pick_m(up);
                if m_next == self.iter.m() {
                    // Size unchanged: take the exact Fixed path, so a
                    // Moldable app on a stable platform is bit-identical to
                    // a Fixed one.
                    self.iter.reset(index);
                } else {
                    self.iter.reinit(index, m_next, max_extra);
                }
            }
        }
        debug_assert_eq!(self.iter.n_completed(), 0, "tasks leaked across a barrier");
        debug_assert_eq!(
            self.iter.pool_len(),
            self.iter.m(),
            "barrier resize lost or duplicated pool tasks"
        );
    }

    /// Task/iteration configuration.
    #[must_use]
    pub fn config(&self) -> &AppConfig {
        &self.config
    }

    /// Share weight.
    #[must_use]
    pub fn weight(&self) -> u32 {
        self.weight
    }

    /// Iterations completed so far.
    #[must_use]
    pub fn iterations_done(&self) -> u64 {
        self.iterations_done
    }

    /// Barrier slots of the finished iterations.
    #[must_use]
    pub fn iteration_completed_at(&self) -> &[Slot] {
        &self.iteration_completed_at
    }

    /// Barrier slot of the final iteration, once finished.
    #[must_use]
    pub fn completed_at(&self) -> Option<Slot> {
        self.completed_at
    }

    /// Tasks completed across all iterations.
    #[must_use]
    pub fn tasks_completed(&self) -> u64 {
        self.tasks_completed
    }

    /// Task count of the current (or final) iteration.
    #[must_use]
    pub fn current_m(&self) -> usize {
        self.iter.m()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app(m: usize, iters: u64) -> AppConfig {
        AppConfig {
            tasks_per_iteration: m,
            iterations: iters,
            t_prog: 5,
            t_data: 1,
        }
    }

    #[test]
    fn namespace_round_trips() {
        let base = 3u32 << APP_TASK_SHIFT;
        let g = global_task(base, TaskId(7));
        assert_eq!(app_of(g), 3);
        assert_eq!(local_task(g), TaskId(7));
        // App 0 is the identity encoding.
        assert_eq!(global_task(0, TaskId(42)), TaskId(42));
        assert_eq!(app_of(TaskId(42)), 0);
        assert_eq!(local_task(TaskId(42)), TaskId(42));
    }

    #[test]
    fn moldable_pick_clamps() {
        let p = MoldableParams {
            tasks_per_up_num: 3,
            tasks_per_up_den: 2,
            min_tasks: 2,
            max_tasks: 10,
        };
        assert_eq!(p.pick_m(0), 2);
        assert_eq!(p.pick_m(4), 6);
        assert_eq!(p.pick_m(7), 10); // 10.5 → floor 10 == cap
        assert_eq!(p.pick_m(1000), 10);
        assert_eq!(MoldableParams::default().pick_m(17), 17);
    }

    #[test]
    fn fixed_barrier_is_a_reset() {
        let spec = AppSpec::rigid(app(4, 3));
        let mut rt = AppRuntime::new(0, &spec, 2);
        for t in 0..4 {
            rt.iter.mark_completed(TaskId(t));
        }
        rt.iterations_done = 1;
        rt.begin_next_iteration(9, 2);
        assert_eq!(rt.iter.m(), 4);
        assert_eq!(rt.iter.index(), 1);
        assert_eq!(rt.iter.pool_len(), 4);
    }

    #[test]
    fn moldable_barrier_resizes_with_up_count() {
        let spec = AppSpec::moldable(app(4, 3), MoldableParams::default());
        let mut rt = AppRuntime::new(1, &spec, 2);
        assert_eq!(rt.task_base, 1 << APP_TASK_SHIFT);
        for t in 0..4 {
            rt.iter.mark_completed(TaskId(t));
        }
        rt.iterations_done = 1;
        rt.begin_next_iteration(7, 2);
        assert_eq!(rt.iter.m(), 7, "grew to the UP count");
        for t in 0..7 {
            rt.iter.mark_completed(TaskId(t));
        }
        rt.iterations_done = 2;
        rt.begin_next_iteration(2, 2);
        assert_eq!(rt.iter.m(), 2, "shrank to the UP count");
        assert_eq!(rt.iter.pool_len(), 2);
        assert!(!rt.finished());
    }

    #[test]
    fn reinit_matches_fresh_runtime() {
        let spec = AppSpec::weighted(app(3, 2), 5);
        let mut rt = AppRuntime::new(2, &spec, 1);
        rt.iter.mark_completed(TaskId(0));
        rt.tasks_completed = 1;
        rt.iteration_completed_at.push(10);
        let other = AppSpec::moldable(app(6, 4), MoldableParams::default());
        rt.reinit(0, &other, 2);
        assert_eq!(rt, AppRuntime::new(0, &other, 2));
    }
}
