//! Worker storage layouts: the hot/cold **SoA** the engine runs on, and the
//! retained **AoS** path kept as the bit-identity oracle.
//!
//! The slot loop is a sequence of dense scans over per-worker state — draw
//! states, estimate delays, advance transfers and computations. Stored as an
//! array of [`WorkerRuntime`] structs (AoS), every scan drags each worker's
//! *cold* fields (the `bound` vector, `prog_began_at`, the spec) through the
//! cache alongside the one or two hot fields it actually reads; at
//! `p ≥ 1024` a single state pass touches ~100 KiB instead of 1 KiB.
//! [`WorkerSoA`] splits the runtime into parallel arrays so each phase walks
//! only the columns it needs:
//!
//! * **hot** (touched every slot, densely): `state`, `w`, `prog_done`, and
//!   the pipeline columns `computing` / `transfer` / `buffered` whose
//!   discriminants drive the per-slot branches;
//! * **cold** (touched on binds/crashes only): `prog_began_at` and the
//!   per-worker `bound` lists (allocations kept warm across runs, as the
//!   AoS `WorkerRuntime::bound` buffers were).
//!
//! Both layouts implement [`WorkerStore`], the exact per-worker contract the
//! engine phases are written against. The engine is generic over it and
//! monomorphized, so the abstraction costs nothing; [`AosWorkers`] is a thin
//! adapter that delegates every operation to the original
//! [`WorkerRuntime`] methods — the pre-refactor code path, unchanged — which
//! is what makes `Simulation<AosWorkers>` a genuine oracle for the SoA
//! engine (see `crates/sim/tests/soa_equivalence.rs`).
//!
//! [`WorkerSoA::reset_for`] reinitializes every column with a single
//! `memset`-style fill pass per array (clear + resize on retained
//! allocations), which is what lets a warmed [`SimArena`](crate::SimArena)
//! recycle the store across grow→shrink→grow platform sequences without
//! per-worker bookkeeping.
//!
//! Both layouts also maintain the **snapshot dirty bit** the engine's
//! incremental snapshot builder consumes — the exact contract (which
//! mutations set it, which deliberately do not, and how resets behave) is
//! documented on [`WorkerStore`] itself.

use vg_des::{Slot, SlotSpan};
use vg_markov::availability::ProcState;
use vg_platform::ProcessorSpec;

use crate::task::{CopyId, TaskId};
use crate::worker::{ComputeState, TransferState, WorkerRuntime};

/// Fixed width (in workers) of the dense-column **block summaries**:
/// per-block population counts over the 1-byte `state` / `occupancy`
/// columns that let the slot loop skip a quiet block in one compare
/// instead of scanning its workers. 256 one-byte entries span four cache
/// lines and vectorize cleanly when a block does need the full scan; the
/// counts themselves fit `u16`.
pub const SUMMARY_BLOCK: usize = 256;

/// Per-worker state storage, as consumed by the engine's slot phases.
///
/// Semantics of every method are those of the corresponding
/// [`WorkerRuntime`] field or method; implementations differ only in memory
/// layout. The engine is generic (and monomorphized) over this trait, so
/// both layouts compile to direct array accesses.
///
/// # Dirty-bit contract (incremental snapshots)
///
/// Every store tracks one **snapshot dirty bit per worker**, feeding the
/// engine's incremental snapshot builder. The bit must be set by every
/// mutation that can change what a scheduler snapshot observes of that
/// worker — its state, program possession, or `Delay(q)`:
///
/// * a state transition ([`Self::set_states`], changed entries only — a
///   worker that re-draws its current state is untouched);
/// * program progress ([`Self::set_prog_done`], changed values only);
/// * any pinned-pipeline mutation ([`Self::set_transfer`],
///   [`Self::set_buffered`], [`Self::set_computing`]);
/// * crash and cancellation cleanup ([`Self::crash_into`],
///   [`Self::cancel_task_into`]) when they actually clear program progress
///   or a pinned copy — a worker that stays `DOWN` is re-crashed every
///   slot but only dirties on the first.
///
/// Mutations that snapshots cannot observe need **not** set the bit:
/// [`Self::set_prog_began_at`] (a transfer-priority key, not a snapshot
/// field) and the bound-list operations ([`Self::bound_push`],
/// [`Self::bound_remove`], [`Self::drain_bound`] and bound-only
/// cancellations) — `Delay(q)` deliberately excludes bound copies, whose
/// placement the scheduler is re-deciding (\[D8\]). The bind→dissolve churn
/// of the replica path therefore leaves otherwise-idle workers clean.
///
/// Bits are **sticky** until [`Self::clear_snapshot_dirty`] drains them
/// (the engine consults snapshots lazily, so several slots of mutations
/// may accumulate), and [`Self::reset_for`] marks every worker dirty
/// (nothing about a fresh run is cached). The
/// `crates/sim/tests/soa_equivalence.rs` grid and a per-consult debug
/// assertion in the engine pin the contract: a missed bit shows up as an
/// incremental-vs-full snapshot divergence.
pub trait WorkerStore: Default + Send {
    /// Whether the engine should build scheduler snapshots **incrementally**
    /// from this store's dirty bits (patching only dirty workers in the
    /// persistent snapshot buffer) or rebuild them from scratch at every
    /// consult. The production [`WorkerSoA`] opts in; [`AosWorkers`] keeps
    /// the full rebuild so `ReferenceSimulation` stays a genuine oracle for
    /// the incremental path (its dirty bits are still maintained — the
    /// contract above is layout-independent — just not consumed).
    const INCREMENTAL_SNAPSHOTS: bool;

    /// Number of workers.
    fn len(&self) -> usize;

    /// True when the store holds no workers.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rebuilds the store for a platform, reusing retained allocations
    /// (the arena-path equivalent of constructing fresh workers): after the
    /// call every worker is in the [`WorkerRuntime::new`] state for its
    /// spec.
    fn reset_for<I>(&mut self, specs: I)
    where
        I: ExactSizeIterator<Item = ProcessorSpec>;

    /// `w_q` of worker `q`.
    fn w(&self, q: usize) -> SlotSpan;

    /// State of worker `q` for the current slot.
    fn state(&self, q: usize) -> ProcState;

    /// Overwrites every worker's state from `states` (`states.len()` must
    /// equal [`Self::len`]) — phase 1's dense column write.
    fn set_states(&mut self, states: &[ProcState]);

    /// Slots of program received by worker `q`.
    fn prog_done(&self, q: usize) -> SlotSpan;

    /// Sets the program progress of worker `q`.
    fn set_prog_done(&mut self, q: usize, v: SlotSpan);

    /// Slot at which worker `q`'s current program transfer began.
    fn prog_began_at(&self, q: usize) -> Slot;

    /// Sets the program-transfer start slot of worker `q`.
    fn set_prog_began_at(&mut self, q: usize, v: Slot);

    /// In-flight data transfer of worker `q`.
    fn transfer(&self, q: usize) -> Option<TransferState>;

    /// Sets the in-flight data transfer of worker `q`.
    fn set_transfer(&mut self, q: usize, t: Option<TransferState>);

    /// Buffered (complete, waiting for compute) copy of worker `q`.
    fn buffered(&self, q: usize) -> Option<CopyId>;

    /// Sets the buffered copy of worker `q`.
    fn set_buffered(&mut self, q: usize, b: Option<CopyId>);

    /// Copy being computed by worker `q`.
    fn computing(&self, q: usize) -> Option<ComputeState>;

    /// Sets the computing state of worker `q`.
    fn set_computing(&mut self, q: usize, c: Option<ComputeState>);

    /// Advances worker `q`'s computation by one UP-slot, if one is in
    /// progress; returns the copy and whether it just reached `w_q` slots
    /// (complete). Semantically `computing()` + `set_computing(done + 1)`
    /// — the default does exactly that — but implementations can fuse the
    /// read-modify-write into one column access: compute progress never
    /// changes the occupancy, only the dirty bit.
    fn tick_compute(&mut self, q: usize) -> Option<(CopyId, bool)> {
        let mut c = self.computing(q)?;
        c.done += 1;
        let finished = c.done == self.w(q);
        self.set_computing(q, Some(c));
        Some((c.copy, finished))
    }

    /// Copies bound to worker `q` this slot (transfers not yet begun).
    fn bound(&self, q: usize) -> &[CopyId];

    /// Binds one more copy to worker `q`.
    fn bound_push(&mut self, q: usize, c: CopyId);

    /// Removes every bound copy equal to `c` from worker `q`.
    fn bound_remove(&mut self, q: usize, c: CopyId);

    /// Drains worker `q`'s bound list, feeding each copy to `f` in order.
    fn drain_bound(&mut self, q: usize, f: impl FnMut(CopyId));

    /// Does worker `q` hold a complete program copy?
    fn has_program(&self, q: usize, t_prog: SlotSpan) -> bool;

    /// Pinned copies of worker `q` (computing + buffered + transfer).
    fn pinned_count(&self, q: usize) -> usize;

    /// True if worker `q` is completely idle: nothing pinned, nothing bound.
    fn is_idle(&self, q: usize) -> bool;

    /// Negation of [`Self::is_idle`], for hot-loop early-outs: `true` iff
    /// anything is pinned or bound on worker `q`.
    fn busy(&self, q: usize) -> bool {
        !self.is_idle(q)
    }

    /// Whether any copy (pinned or bound) of `task` lives on worker `q`.
    fn has_copy_of(&self, q: usize, task: TaskId) -> bool;

    /// Room for one more bound copy on worker `q` (pipeline capacity 2).
    fn has_bind_room(&self, q: usize) -> bool;

    /// Number of workers that could accept one more bound copy this slot:
    /// `UP` with bind room. This is the **bindable capacity** the
    /// `PlacementBudget::BindCapacity` engine mode clips each pool request
    /// to — asking the scheduler for more placements than this can never
    /// yield more binds. The default is an O(p) accessor scan; dense-column
    /// layouts override it with a branch-light column walk (the engine
    /// cross-checks the override against this scan in debug builds).
    fn bindable_count(&self) -> usize {
        (0..self.len())
            .filter(|&q| self.state(q) == ProcState::Up && self.has_bind_room(q))
            .count()
    }

    /// Fills `out[q]` with worker `q`'s remaining bind room this slot:
    /// `2 − occupancy` for `UP` workers, 0 otherwise. The dense per-worker
    /// companion of [`Self::bindable_count`] — the capped placement round
    /// hands the column to the scheduler (as `SchedView::room`) so it can
    /// retire a worker the moment its room is spent. The default is an
    /// O(p) accessor scan; dense-column layouts override it with the same
    /// two-column walk as `bindable_count`.
    fn room_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.extend((0..self.len()).map(|q| {
            if self.state(q) != ProcState::Up {
                0
            } else if self.is_idle(q) {
                2
            } else if self.has_bind_room(q) {
                1
            } else {
                0
            }
        }));
    }

    /// Number of [`SUMMARY_BLOCK`]-wide blocks covering the platform.
    fn summary_blocks(&self) -> usize {
        self.len().div_ceil(SUMMARY_BLOCK)
    }

    /// May block `b` contain a busy (occupancy ≠ 0) worker? `false` is a
    /// **guarantee** that every worker in the block is idle, letting the
    /// compute / promotion passes skip it in one compare; `true` is
    /// non-committal. The default never commits — oracle layouts keep
    /// their original dense passes — while summary-maintaining layouts
    /// answer from the per-block busy count.
    fn block_may_be_busy(&self, _b: usize) -> bool {
        true
    }

    /// Whether [`Self::busy_word`] reads a maintained bitmap (O(1)) rather
    /// than the dense fallback below. Engine passes gate on this constant
    /// so oracle layouts keep their original block-chunked scans and the
    /// branch monomorphizes away.
    const HAS_BUSY_WORDS: bool = false;

    /// The 64-worker busy bitmap word `wi`: bit `q % 64` of word `q / 64`
    /// is set iff worker `q` is busy (occupancy ≠ 0). Words past the
    /// platform tail are zero-padded. The default recomputes the word
    /// densely — correct for every layout, but only worth calling when
    /// [`Self::HAS_BUSY_WORDS`] says the layout maintains the column.
    fn busy_word(&self, wi: usize) -> u64 {
        let mut word = 0u64;
        let start = wi * 64;
        let end = (start + 64).min(self.len());
        for q in start..end {
            word |= u64::from(self.busy(q)) << (q - start);
        }
        word
    }

    /// May block `b` contain a `DOWN` worker? Same contract shape as
    /// [`Self::block_may_be_busy`]; consumed by the crash pass.
    fn block_may_have_down(&self, _b: usize) -> bool {
        true
    }

    /// May block `b` contain a **free** worker (`UP` ∧ idle — a replica
    /// candidate)? Same contract shape as [`Self::block_may_be_busy`];
    /// consumed by the free-mask rebuild.
    fn block_may_have_free(&self, _b: usize) -> bool {
        true
    }

    /// Per-state worker counts `[up, reclaimed, down]` for the current
    /// slot, if the layout maintains them (`None` sends the caller down a
    /// dense tally). Phase 1's state census consumes this — O(1) instead
    /// of an O(p) pass.
    fn state_census(&self) -> Option<[usize; 3]> {
        None
    }

    /// Blocks whose `state` or `occupancy` column changed since the last
    /// [`Self::clear_changed_blocks`] — unordered, duplicate-free — or
    /// `None` when the layout does not track block changes (the caller
    /// must then treat every block as changed). Marks are **sticky**
    /// until cleared, and [`Self::reset_for`] marks every block changed.
    /// There is exactly one consumer: the engine's incremental free-mask
    /// cache (the replica path's candidate generation), which recomputes
    /// precisely the changed blocks.
    fn changed_blocks(&self) -> Option<&[u32]> {
        None
    }

    /// Resets the changed-block tracking (the consumer caught up).
    fn clear_changed_blocks(&mut self) {}

    /// `Delay(q)` — see [`WorkerRuntime::delay_estimate`].
    fn delay_estimate(&self, q: usize, t_prog: SlotSpan, t_data: SlotSpan) -> SlotSpan;

    /// Crash handling for worker `q` — see [`WorkerRuntime::crash_into`].
    fn crash_into(&mut self, q: usize, lost: &mut Vec<CopyId>);

    /// Cancels every copy of `task` on worker `q` — see
    /// [`WorkerRuntime::cancel_task_into`].
    fn cancel_task_into(&mut self, q: usize, task: TaskId, removed: &mut Vec<CopyId>);

    /// Whether worker `q` has a snapshot-visible mutation pending since the
    /// last [`Self::clear_snapshot_dirty`] — see the trait-level dirty-bit
    /// contract.
    fn snapshot_dirty(&self, q: usize) -> bool;

    /// Clears every worker's dirty bit (the snapshot consumer has caught
    /// up).
    fn clear_snapshot_dirty(&mut self);

    /// Structural pipeline invariants of worker `q` (debug builds).
    fn assert_invariants(&self, q: usize, t_prog: SlotSpan, t_data: SlotSpan);
}

/// The retained AoS layout: a plain `Vec<WorkerRuntime>`, every operation
/// delegated to the original per-worker methods. This is the pre-SoA code
/// path, kept as the bit-identity oracle (and for tests that want to poke a
/// single worker's fields directly). It maintains the trait's dirty bits —
/// the contract is layout-independent — but opts out of incremental
/// snapshot consumption, so `ReferenceSimulation` rebuilds every snapshot
/// from scratch and genuinely cross-checks the incremental path.
#[derive(Debug, Default)]
pub struct AosWorkers {
    /// The workers, in processor order.
    pub workers: Vec<WorkerRuntime>,
    /// Snapshot dirty bits (see the [`WorkerStore`] contract).
    dirty: Vec<bool>,
}

impl WorkerStore for AosWorkers {
    const INCREMENTAL_SNAPSHOTS: bool = false;

    #[inline]
    fn len(&self) -> usize {
        self.workers.len()
    }

    fn reset_for<I>(&mut self, specs: I)
    where
        I: ExactSizeIterator<Item = ProcessorSpec>,
    {
        let p = specs.len();
        self.workers.truncate(p);
        let mut specs = specs;
        for (w, spec) in self.workers.iter_mut().zip(specs.by_ref()) {
            w.reset(spec);
        }
        for spec in specs {
            self.workers.push(WorkerRuntime::new(spec));
        }
        refill(&mut self.dirty, p, true);
    }

    #[inline]
    fn w(&self, q: usize) -> SlotSpan {
        self.workers[q].spec.w
    }

    #[inline]
    fn state(&self, q: usize) -> ProcState {
        self.workers[q].state
    }

    #[inline]
    fn set_states(&mut self, states: &[ProcState]) {
        for (q, (w, &s)) in self.workers.iter_mut().zip(states).enumerate() {
            if w.state != s {
                w.state = s;
                self.dirty[q] = true;
            }
        }
    }

    #[inline]
    fn prog_done(&self, q: usize) -> SlotSpan {
        self.workers[q].prog_done
    }

    #[inline]
    fn set_prog_done(&mut self, q: usize, v: SlotSpan) {
        if self.workers[q].prog_done != v {
            self.workers[q].prog_done = v;
            self.dirty[q] = true;
        }
    }

    #[inline]
    fn prog_began_at(&self, q: usize) -> Slot {
        self.workers[q].prog_began_at
    }

    #[inline]
    fn set_prog_began_at(&mut self, q: usize, v: Slot) {
        // Not a snapshot field (transfer-priority bookkeeping): no dirty.
        self.workers[q].prog_began_at = v;
    }

    #[inline]
    fn transfer(&self, q: usize) -> Option<TransferState> {
        self.workers[q].transfer
    }

    #[inline]
    fn set_transfer(&mut self, q: usize, t: Option<TransferState>) {
        self.workers[q].transfer = t;
        self.dirty[q] = true;
    }

    #[inline]
    fn buffered(&self, q: usize) -> Option<CopyId> {
        self.workers[q].buffered
    }

    #[inline]
    fn set_buffered(&mut self, q: usize, b: Option<CopyId>) {
        self.workers[q].buffered = b;
        self.dirty[q] = true;
    }

    #[inline]
    fn computing(&self, q: usize) -> Option<ComputeState> {
        self.workers[q].computing
    }

    #[inline]
    fn set_computing(&mut self, q: usize, c: Option<ComputeState>) {
        self.workers[q].computing = c;
        self.dirty[q] = true;
    }

    #[inline]
    fn bound(&self, q: usize) -> &[CopyId] {
        &self.workers[q].bound
    }

    #[inline]
    fn bound_push(&mut self, q: usize, c: CopyId) {
        self.workers[q].bound.push(c);
    }

    #[inline]
    fn bound_remove(&mut self, q: usize, c: CopyId) {
        self.workers[q].bound.retain(|x| *x != c);
    }

    #[inline]
    fn drain_bound(&mut self, q: usize, mut f: impl FnMut(CopyId)) {
        for c in self.workers[q].bound.drain(..) {
            f(c);
        }
    }

    #[inline]
    fn has_program(&self, q: usize, t_prog: SlotSpan) -> bool {
        self.workers[q].has_program(t_prog)
    }

    #[inline]
    fn pinned_count(&self, q: usize) -> usize {
        self.workers[q].pinned_count()
    }

    #[inline]
    fn is_idle(&self, q: usize) -> bool {
        self.workers[q].is_idle()
    }

    #[inline]
    fn has_copy_of(&self, q: usize, task: TaskId) -> bool {
        self.workers[q].has_copy_of(task)
    }

    #[inline]
    fn has_bind_room(&self, q: usize) -> bool {
        self.workers[q].has_bind_room()
    }

    #[inline]
    fn delay_estimate(&self, q: usize, t_prog: SlotSpan, t_data: SlotSpan) -> SlotSpan {
        self.workers[q].delay_estimate(t_prog, t_data)
    }

    #[inline]
    fn crash_into(&mut self, q: usize, lost: &mut Vec<CopyId>) {
        if self.workers[q].crash_into(lost) {
            self.dirty[q] = true;
        }
    }

    #[inline]
    fn cancel_task_into(&mut self, q: usize, task: TaskId, removed: &mut Vec<CopyId>) {
        if self.workers[q].cancel_task_into(task, removed) {
            self.dirty[q] = true;
        }
    }

    #[inline]
    fn snapshot_dirty(&self, q: usize) -> bool {
        self.dirty[q]
    }

    #[inline]
    fn clear_snapshot_dirty(&mut self) {
        self.dirty.fill(false);
    }

    #[inline]
    fn assert_invariants(&self, q: usize, t_prog: SlotSpan, t_data: SlotSpan) {
        self.workers[q].assert_invariants(t_prog, t_data);
    }
}

/// The hot/cold SoA layout (see the module docs). Field-for-field equivalent
/// to `Vec<WorkerRuntime>`, stored column-wise.
#[derive(Debug, Default)]
pub struct WorkerSoA {
    // --- hot columns: walked densely every slot ---------------------------
    /// State for the current slot (1 byte per worker; phase 1's column).
    state: Vec<ProcState>,
    /// `w_q` (snapshot build + compute phase).
    w: Vec<SlotSpan>,
    /// Slots of program received.
    prog_done: Vec<SlotSpan>,
    /// Copy being computed.
    computing: Vec<Option<ComputeState>>,
    /// Data transfer in flight.
    transfer: Vec<Option<TransferState>>,
    /// Copy whose data is complete, waiting for the compute unit.
    buffered: Vec<Option<CopyId>>,
    /// Derived hot column: `pinned_count + bound.len()` per worker, kept in
    /// sync by every mutator. Collapses `is_idle` / `busy` /
    /// `has_bind_room` — the free-mask scan of the replica path above all —
    /// to a single byte read instead of three `Option` columns plus a
    /// `Vec` header chase. The SoA⇄AoS oracle grid pins its consistency.
    occupancy: Vec<u8>,
    /// Snapshot dirty bits (hot: written by pipeline mutators, drained by
    /// the incremental snapshot pass — see the [`WorkerStore`] contract).
    dirty: Vec<bool>,
    // --- block summaries: one entry per SUMMARY_BLOCK workers -------------
    /// Busy workers (occupancy ≠ 0) per block; maintained by
    /// [`Self::occ_inc`] / [`Self::occ_sub`] on every 0 ↔ non-zero flip.
    blk_busy: Vec<u16>,
    /// Busy bitmap: bit `q % 64` of word `q / 64` is set iff worker `q` is
    /// busy (occupancy ≠ 0). Maintained at the same two flip points as
    /// `blk_busy`, consumed by the engine's busy-worker iteration
    /// ([`WorkerStore::busy_word`]) so the compute / transfer-continuation /
    /// promotion passes cost O(busy) instead of O(p) at platform scale.
    busy_words: Vec<u64>,
    /// `UP` workers per block (maintained by [`Self::set_states`]).
    blk_up: Vec<u16>,
    /// `DOWN` workers per block (maintained by [`Self::set_states`]).
    blk_down: Vec<u16>,
    /// Σ `blk_up` — with `blk_down`'s sum this is the O(1) state census.
    up_total: usize,
    /// Σ `blk_down`.
    down_total: usize,
    /// Membership bits for `changed_blocks` (dedup on mark).
    blk_changed: Vec<bool>,
    /// Blocks with a state or occupancy change since the last
    /// [`WorkerStore::clear_changed_blocks`] — the free-mask cache's feed.
    changed_blocks: Vec<u32>,
    // --- cold columns: touched on binds / crashes only --------------------
    /// Slot at which the current program transfer began.
    prog_began_at: Vec<Slot>,
    /// Copies bound this slot; inner allocations retained across runs.
    bound: Vec<Vec<CopyId>>,
}

impl WorkerSoA {
    /// Marks worker `q`'s block changed (idempotent between drains).
    #[inline]
    fn note_block_changed(&mut self, q: usize) {
        let b = q / SUMMARY_BLOCK;
        if !self.blk_changed[b] {
            self.blk_changed[b] = true;
            self.changed_blocks.push(b as u32);
        }
    }

    /// Increments worker `q`'s occupancy byte, maintaining the block busy
    /// count. The documented pipeline bound — `pinned_count + bound.len()`
    /// never exceeds 2 (`has_bind_room` gates every bind; promotions clear
    /// a stage before filling the next) — is asserted on every increment,
    /// so a future pipeline change that would wrap the byte, or silently
    /// corrupt `room_into` / `bindable_count` (both assume occupancy ≤ 2),
    /// fails loudly in debug builds.
    #[inline]
    fn occ_inc(&mut self, q: usize) {
        let occ = self.occupancy[q];
        debug_assert!(
            occ < 2,
            "occupancy overflow on worker {q}: {occ} + 1 breaks the pipeline bound (≤ 2)"
        );
        self.occupancy[q] = occ + 1;
        if occ == 0 {
            self.blk_busy[q / SUMMARY_BLOCK] += 1;
            self.busy_words[q / 64] |= 1u64 << (q % 64);
            self.note_block_changed(q);
        }
    }

    /// Decrements worker `q`'s occupancy byte by `by`, maintaining the
    /// block busy count. Bound-list deltas arrive as `usize` and are
    /// narrowed here — sound only under the ≤ 2 bound, which the
    /// underflow assertion restates.
    #[inline]
    fn occ_sub(&mut self, q: usize, by: usize) {
        if by == 0 {
            return;
        }
        let occ = self.occupancy[q];
        debug_assert!(
            usize::from(occ) >= by,
            "occupancy underflow on worker {q}: {occ} - {by}"
        );
        let now = occ.wrapping_sub(by as u8);
        self.occupancy[q] = now;
        if now == 0 {
            self.blk_busy[q / SUMMARY_BLOCK] -= 1;
            self.busy_words[q / 64] &= !(1u64 << (q % 64));
            self.note_block_changed(q);
        }
    }
}

/// `memset`-style column reinit: one `clear` + one `resize` fill pass over
/// the retained allocation.
#[inline]
fn refill<T: Clone>(v: &mut Vec<T>, p: usize, value: T) {
    v.clear();
    v.resize(p, value);
}

impl WorkerStore for WorkerSoA {
    const INCREMENTAL_SNAPSHOTS: bool = true;
    const HAS_BUSY_WORDS: bool = true;

    #[inline]
    fn len(&self) -> usize {
        self.state.len()
    }

    fn reset_for<I>(&mut self, specs: I)
    where
        I: ExactSizeIterator<Item = ProcessorSpec>,
    {
        let p = specs.len();
        self.w.clear();
        self.w.extend(specs.map(|s| s.w));
        refill(&mut self.state, p, ProcState::Reclaimed);
        refill(&mut self.prog_done, p, 0);
        refill(&mut self.computing, p, None);
        refill(&mut self.transfer, p, None);
        refill(&mut self.buffered, p, None);
        refill(&mut self.occupancy, p, 0);
        // Everything about a fresh run is unknown to any snapshot consumer;
        // stale bits from a previous (possibly larger) platform must not
        // leak through an arena reuse.
        refill(&mut self.dirty, p, true);
        // Fresh platform: everyone Reclaimed and idle — zero the summaries
        // and mark every block changed so a free-mask consumer that missed
        // its own invalidation still rebuilds everything it reads.
        let nblocks = p.div_ceil(SUMMARY_BLOCK);
        refill(&mut self.blk_busy, nblocks, 0);
        refill(&mut self.busy_words, p.div_ceil(64), 0);
        refill(&mut self.blk_up, nblocks, 0);
        refill(&mut self.blk_down, nblocks, 0);
        self.up_total = 0;
        self.down_total = 0;
        refill(&mut self.blk_changed, nblocks, true);
        self.changed_blocks.clear();
        self.changed_blocks.extend(0..nblocks as u32);
        refill(&mut self.prog_began_at, p, 0);
        // `bound` keeps each retained worker's allocation alive.
        self.bound.truncate(p);
        for b in &mut self.bound {
            b.clear();
        }
        if self.bound.len() < p {
            self.bound.resize_with(p, Vec::new);
        }
    }

    #[inline]
    fn w(&self, q: usize) -> SlotSpan {
        self.w[q]
    }

    #[inline]
    fn state(&self, q: usize) -> ProcState {
        self.state[q]
    }

    fn set_states(&mut self, states: &[ProcState]) {
        debug_assert_eq!(states.len(), self.state.len());
        // Changed states dirty their worker (a non-UP delay sentinel, or a
        // stale delay from before a suspension, must be rewritten when the
        // state flips); unchanged ones stay clean. The pass runs block by
        // block: a block whose 256-byte window re-draws identically is
        // dismissed by one slice compare, and only changed blocks pay the
        // per-worker diff plus the up/down count rebuild.
        let p = self.state.len();
        let (mut start, mut b) = (0, 0);
        while start < p {
            let end = (start + SUMMARY_BLOCK).min(p);
            if self.state[start..end] != states[start..end] {
                let (mut up, mut down) = (0u16, 0u16);
                for (q, &src) in states[start..end].iter().enumerate() {
                    let q = start + q;
                    if self.state[q] != src {
                        self.dirty[q] = true;
                    }
                    up += u16::from(src == ProcState::Up);
                    down += u16::from(src == ProcState::Down);
                }
                self.up_total = self.up_total + usize::from(up) - usize::from(self.blk_up[b]);
                self.down_total =
                    self.down_total + usize::from(down) - usize::from(self.blk_down[b]);
                self.blk_up[b] = up;
                self.blk_down[b] = down;
                self.state[start..end].copy_from_slice(&states[start..end]);
                self.note_block_changed(start);
            }
            start = end;
            b += 1;
        }
    }

    #[inline]
    fn prog_done(&self, q: usize) -> SlotSpan {
        self.prog_done[q]
    }

    #[inline]
    fn set_prog_done(&mut self, q: usize, v: SlotSpan) {
        if self.prog_done[q] != v {
            self.prog_done[q] = v;
            self.dirty[q] = true;
        }
    }

    #[inline]
    fn prog_began_at(&self, q: usize) -> Slot {
        self.prog_began_at[q]
    }

    #[inline]
    fn set_prog_began_at(&mut self, q: usize, v: Slot) {
        self.prog_began_at[q] = v;
    }

    #[inline]
    fn transfer(&self, q: usize) -> Option<TransferState> {
        self.transfer[q]
    }

    #[inline]
    fn set_transfer(&mut self, q: usize, t: Option<TransferState>) {
        let had = self.transfer[q].is_some();
        self.transfer[q] = t;
        self.dirty[q] = true;
        match (had, t.is_some()) {
            (false, true) => self.occ_inc(q),
            (true, false) => self.occ_sub(q, 1),
            _ => {}
        }
    }

    #[inline]
    fn buffered(&self, q: usize) -> Option<CopyId> {
        self.buffered[q]
    }

    #[inline]
    fn set_buffered(&mut self, q: usize, b: Option<CopyId>) {
        let had = self.buffered[q].is_some();
        self.buffered[q] = b;
        self.dirty[q] = true;
        match (had, b.is_some()) {
            (false, true) => self.occ_inc(q),
            (true, false) => self.occ_sub(q, 1),
            _ => {}
        }
    }

    #[inline]
    fn computing(&self, q: usize) -> Option<ComputeState> {
        self.computing[q]
    }

    #[inline]
    fn set_computing(&mut self, q: usize, c: Option<ComputeState>) {
        let had = self.computing[q].is_some();
        self.computing[q] = c;
        self.dirty[q] = true;
        match (had, c.is_some()) {
            (false, true) => self.occ_inc(q),
            (true, false) => self.occ_sub(q, 1),
            _ => {}
        }
    }

    #[inline]
    fn tick_compute(&mut self, q: usize) -> Option<(CopyId, bool)> {
        // One in-place column access: progress changes neither the
        // occupancy nor the Option discriminant, only `done` and the
        // dirty bit.
        let c = self.computing[q].as_mut()?;
        c.done += 1;
        self.dirty[q] = true;
        Some((c.copy, c.done == self.w[q]))
    }

    #[inline]
    fn bound(&self, q: usize) -> &[CopyId] {
        &self.bound[q]
    }

    #[inline]
    fn bound_push(&mut self, q: usize, c: CopyId) {
        self.bound[q].push(c);
        self.occ_inc(q);
    }

    #[inline]
    fn bound_remove(&mut self, q: usize, c: CopyId) {
        // The delta narrows to u8 inside occ_sub, under its underflow
        // assertion — sound while the ≤ 2 pipeline bound holds.
        let before = self.bound[q].len();
        self.bound[q].retain(|x| *x != c);
        let removed = before - self.bound[q].len();
        self.occ_sub(q, removed);
    }

    #[inline]
    fn drain_bound(&mut self, q: usize, mut f: impl FnMut(CopyId)) {
        let n = self.bound[q].len();
        self.occ_sub(q, n);
        for c in self.bound[q].drain(..) {
            f(c);
        }
    }

    #[inline]
    fn has_program(&self, q: usize, t_prog: SlotSpan) -> bool {
        self.prog_done[q] >= t_prog
    }

    #[inline]
    fn pinned_count(&self, q: usize) -> usize {
        usize::from(self.transfer[q].is_some())
            + usize::from(self.buffered[q].is_some())
            + usize::from(self.computing[q].is_some())
    }

    #[inline]
    fn is_idle(&self, q: usize) -> bool {
        self.occupancy[q] == 0
    }

    #[inline]
    fn busy(&self, q: usize) -> bool {
        self.occupancy[q] != 0
    }

    #[inline]
    fn has_copy_of(&self, q: usize, task: TaskId) -> bool {
        self.occupancy[q] != 0
            && (self.computing[q].is_some_and(|c| c.copy.task == task)
                || self.buffered[q].is_some_and(|b| b.task == task)
                || self.transfer[q].is_some_and(|t| t.copy.task == task)
                || self.bound[q].iter().any(|c| c.task == task))
    }

    #[inline]
    fn has_bind_room(&self, q: usize) -> bool {
        self.occupancy[q] < 2
    }

    fn bindable_count(&self) -> usize {
        // One pass over the two hot byte-wide columns — the same
        // two-column walk the replica path's free scan does, without the
        // per-worker accessor dispatch of the default implementation.
        self.state
            .iter()
            .zip(&self.occupancy)
            .filter(|&(&s, &occ)| s == ProcState::Up && occ < 2)
            .count()
    }

    fn room_into(&self, out: &mut Vec<u8>) {
        // Same two-column walk as `bindable_count`, emitting the per-worker
        // remainder instead of the population count.
        out.clear();
        out.extend(self.state.iter().zip(&self.occupancy).map(|(&s, &occ)| {
            if s == ProcState::Up {
                2u8.saturating_sub(occ)
            } else {
                0
            }
        }));
    }

    #[inline]
    fn delay_estimate(&self, q: usize, t_prog: SlotSpan, t_data: SlotSpan) -> SlotSpan {
        // Mirrors WorkerRuntime::delay_estimate over the columns.
        let prog_rem = t_prog.saturating_sub(self.prog_done[q]);
        let mut comm_free = prog_rem;
        let mut compute_free = 0;
        if let Some(c) = self.computing[q] {
            compute_free = self.w[q] - c.done;
        }
        if self.buffered[q].is_some() {
            compute_free += self.w[q];
        }
        if let Some(tr) = self.transfer[q] {
            let data_ready = comm_free + (t_data - tr.done);
            comm_free = data_ready;
            compute_free = compute_free.max(data_ready) + self.w[q];
        }
        compute_free.max(comm_free)
    }

    fn crash_into(&mut self, q: usize, lost: &mut Vec<CopyId>) {
        // Only a change dirties: a worker that stays DOWN is re-crashed
        // every slot on an already-empty pipeline.
        let mut changed = self.prog_done[q] != 0;
        self.prog_done[q] = 0;
        if let Some(c) = self.computing[q].take() {
            lost.push(c.copy);
            self.occ_sub(q, 1);
            changed = true;
        }
        if let Some(b) = self.buffered[q].take() {
            lost.push(b);
            self.occ_sub(q, 1);
            changed = true;
        }
        if let Some(t) = self.transfer[q].take() {
            lost.push(t.copy);
            self.occ_sub(q, 1);
            changed = true;
        }
        if changed {
            self.dirty[q] = true;
        }
    }

    fn cancel_task_into(&mut self, q: usize, task: TaskId, removed: &mut Vec<CopyId>) {
        if self.occupancy[q] == 0 {
            return; // nothing pinned or bound — nothing to cancel
        }
        if let Some(c) = self.computing[q].take_if(|c| c.copy.task == task) {
            removed.push(c.copy);
            self.occ_sub(q, 1);
            self.dirty[q] = true;
        }
        if let Some(b) = self.buffered[q].take_if(|b| b.task == task) {
            removed.push(b);
            self.occ_sub(q, 1);
            self.dirty[q] = true;
        }
        if let Some(t) = self.transfer[q].take_if(|t| t.copy.task == task) {
            removed.push(t.copy);
            self.occ_sub(q, 1);
            self.dirty[q] = true;
        }
        // Bound removals stay clean: Delay(q) excludes bound copies ([D8]).
        let mut i = 0;
        while i < self.bound[q].len() {
            if self.bound[q][i].task == task {
                let c = self.bound[q].remove(i);
                removed.push(c);
                self.occ_sub(q, 1);
            } else {
                i += 1;
            }
        }
    }

    #[inline]
    fn block_may_be_busy(&self, b: usize) -> bool {
        self.blk_busy[b] != 0
    }

    #[inline]
    fn busy_word(&self, wi: usize) -> u64 {
        self.busy_words[wi]
    }

    #[inline]
    fn block_may_have_down(&self, b: usize) -> bool {
        self.blk_down[b] != 0
    }

    #[inline]
    fn block_may_have_free(&self, b: usize) -> bool {
        // Free needs UP ∧ idle; without the joint distribution the exact
        // test is `∃ UP worker` ∧ `∃ idle worker` — conservative but
        // cheap, and exact in the common all-idle / no-UP extremes.
        let len = (self.state.len() - b * SUMMARY_BLOCK).min(SUMMARY_BLOCK);
        self.blk_up[b] != 0 && usize::from(self.blk_busy[b]) < len
    }

    #[inline]
    fn state_census(&self) -> Option<[usize; 3]> {
        let p = self.state.len();
        Some([
            self.up_total,
            p - self.up_total - self.down_total,
            self.down_total,
        ])
    }

    #[inline]
    fn changed_blocks(&self) -> Option<&[u32]> {
        Some(&self.changed_blocks)
    }

    fn clear_changed_blocks(&mut self) {
        for &b in &self.changed_blocks {
            self.blk_changed[b as usize] = false;
        }
        self.changed_blocks.clear();
    }

    #[inline]
    fn snapshot_dirty(&self, q: usize) -> bool {
        self.dirty[q]
    }

    #[inline]
    fn clear_snapshot_dirty(&mut self) {
        self.dirty.fill(false);
    }

    fn assert_invariants(&self, q: usize, t_prog: SlotSpan, t_data: SlotSpan) {
        // Validation-time restatement of the pipeline bound: `room_into`,
        // `bindable_count` and the bound-delta narrowing in `bound_remove`
        // / `drain_bound` (routed through `occ_sub`) all assume occupancy
        // never exceeds 2 — `occ_inc` asserts it at every increment, this
        // re-checks it wherever the engine validates a worker.
        assert!(
            self.occupancy[q] <= 2,
            "occupancy {} on worker {q} exceeds the pipeline bound (≤ 2)",
            self.occupancy[q]
        );
        // The derived occupancy byte must track the ground truth — every
        // predicate collapsed onto it (is_idle/busy/has_bind_room) is wrong
        // if a mutator skipped the bookkeeping.
        assert_eq!(
            usize::from(self.occupancy[q]),
            usize::from(self.transfer[q].is_some())
                + usize::from(self.buffered[q].is_some())
                + usize::from(self.computing[q].is_some())
                + self.bound[q].len(),
            "occupancy column out of sync on worker {q}"
        );
        // Materialize the worker and reuse the canonical checks; this runs
        // in debug builds only, so the transient allocation is acceptable.
        let w = WorkerRuntime {
            spec: ProcessorSpec::new(self.w[q]),
            state: self.state[q],
            prog_done: self.prog_done[q],
            prog_began_at: self.prog_began_at[q],
            transfer: self.transfer[q],
            buffered: self.buffered[q],
            computing: self.computing[q],
            bound: self.bound[q].clone(), // tidy:allow(hot_alloc): debug-build invariant check only.
        };
        w.assert_invariants(t_prog, t_data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskId;

    fn copy(task: u32, replica: u8) -> CopyId {
        CopyId {
            task: TaskId(task),
            replica,
        }
    }

    fn specs(ws: &[SlotSpan]) -> Vec<ProcessorSpec> {
        ws.iter().map(|&w| ProcessorSpec::new(w)).collect()
    }

    /// Drives both layouts through the same mutation script and asserts
    /// every observable agrees after every step — a differential unit test
    /// below the engine-level oracle.
    #[test]
    fn soa_and_aos_agree_on_a_mutation_script() {
        let mut soa = WorkerSoA::default();
        let mut aos = AosWorkers::default();
        let sp = specs(&[3, 5, 2]);
        soa.reset_for(sp.iter().copied());
        aos.reset_for(sp.iter().copied());

        let states = [ProcState::Up, ProcState::Reclaimed, ProcState::Up];
        soa.set_states(&states);
        aos.set_states(&states);

        // Build a busy pipeline on worker 0, a partial program on worker 2.
        for s in [&mut soa as &mut dyn Probe, &mut aos as &mut dyn Probe] {
            s.script();
        }

        let (t_prog, t_data) = (4, 2);
        assert_eq!(soa.len(), aos.len());
        for q in 0..soa.len() {
            assert_eq!(soa.w(q), aos.w(q), "w {q}");
            assert_eq!(soa.state(q), aos.state(q), "state {q}");
            assert_eq!(soa.prog_done(q), aos.prog_done(q), "prog_done {q}");
            assert_eq!(soa.transfer(q), aos.transfer(q), "transfer {q}");
            assert_eq!(soa.buffered(q), aos.buffered(q), "buffered {q}");
            assert_eq!(soa.computing(q), aos.computing(q), "computing {q}");
            assert_eq!(soa.bound(q), aos.bound(q), "bound {q}");
            assert_eq!(soa.pinned_count(q), aos.pinned_count(q));
            assert_eq!(soa.is_idle(q), aos.is_idle(q));
            assert_eq!(soa.has_bind_room(q), aos.has_bind_room(q));
            assert_eq!(soa.has_program(q, t_prog), aos.has_program(q, t_prog));
            assert_eq!(
                soa.delay_estimate(q, t_prog, t_data),
                aos.delay_estimate(q, t_prog, t_data),
                "delay {q}"
            );
            for t in 0..4 {
                assert_eq!(
                    soa.has_copy_of(q, TaskId(t)),
                    aos.has_copy_of(q, TaskId(t)),
                    "has_copy_of {q} T{t}"
                );
            }
        }

        // Dirty bits agree after the identical script.
        for q in 0..soa.len() {
            assert_eq!(
                soa.snapshot_dirty(q),
                aos.snapshot_dirty(q),
                "dirty bit {q}"
            );
        }

        // tick_compute advances identically (worker 0 computes: w = 3,
        // done = 1 → 2 → 3 completes; worker 2 computes nothing).
        assert_eq!(soa.tick_compute(2), aos.tick_compute(2));
        assert_eq!(soa.tick_compute(2), None);
        for expect_finished in [false, true] {
            let a = soa.tick_compute(0);
            assert_eq!(a, aos.tick_compute(0));
            let (c, finished) = a.expect("worker 0 is computing");
            assert_eq!(c, copy(0, 0));
            assert_eq!(finished, expect_finished);
            assert_eq!(soa.computing(0), aos.computing(0));
            assert_eq!(soa.pinned_count(0), aos.pinned_count(0));
            assert!(soa.snapshot_dirty(0) && aos.snapshot_dirty(0));
        }

        // Crash + cancel drain identically.
        let (mut la, mut lb) = (Vec::new(), Vec::new());
        soa.crash_into(0, &mut la);
        aos.crash_into(0, &mut lb);
        assert_eq!(la, lb);
        la.clear();
        lb.clear();
        soa.cancel_task_into(2, TaskId(3), &mut la);
        aos.cancel_task_into(2, TaskId(3), &mut lb);
        assert_eq!(la, lb);
    }

    /// The trait-level dirty-bit contract, checked against both layouts:
    /// snapshot-visible mutations set the bit, unobservable ones do not,
    /// and resets (arena reuse across resizes) never leak stale bits.
    fn check_dirty_contract<S: WorkerStore>(store: &mut S) {
        store.reset_for(specs(&[1, 2, 3, 4]).into_iter());
        assert!(
            (0..4).all(|q| store.snapshot_dirty(q)),
            "reset_for must mark everything dirty"
        );
        store.clear_snapshot_dirty();
        assert!((0..4).all(|q| !store.snapshot_dirty(q)));

        // Program progress dirties its worker alone; an identical rewrite
        // stays clean.
        store.set_prog_done(2, 1);
        assert!(store.snapshot_dirty(2));
        assert!(!store.snapshot_dirty(1));
        store.clear_snapshot_dirty();
        store.set_prog_done(2, 1);
        assert!(!store.snapshot_dirty(2), "no-op prog write must stay clean");

        // Changed states dirty; re-drawing the current state does not.
        use ProcState::{Reclaimed, Up};
        store.set_states(&[Up, Up, Reclaimed, Reclaimed]);
        assert!(store.snapshot_dirty(0) && store.snapshot_dirty(1));
        assert!(!store.snapshot_dirty(2) && !store.snapshot_dirty(3));

        // Bound-list churn is not snapshot-visible (Delay(q) excludes
        // bound copies, [D8]): the replica bind→dissolve cycle stays clean.
        store.clear_snapshot_dirty();
        store.bound_push(1, copy(7, 1));
        store.bound_remove(1, copy(7, 1));
        store.bound_push(1, copy(8, 1));
        store.drain_bound(1, |_| {});
        store.set_prog_began_at(1, 9);
        assert!(!store.snapshot_dirty(1), "bound churn must stay clean");

        // Crashing an already-empty worker (stays DOWN) is clean; crashing
        // one with progress dirties it.
        let mut lost = Vec::new();
        store.crash_into(0, &mut lost);
        assert!(!store.snapshot_dirty(0), "empty crash must stay clean");
        store.crash_into(2, &mut lost);
        assert!(store.snapshot_dirty(2), "crash with progress dirties");

        // Pinned-pipeline mutations dirty; canceling a bound-only copy
        // does not, canceling a pinned one does.
        store.clear_snapshot_dirty();
        store.set_computing(
            3,
            Some(ComputeState {
                copy: copy(5, 0),
                done: 0,
            }),
        );
        assert!(store.snapshot_dirty(3));
        store.clear_snapshot_dirty();
        let mut removed = Vec::new();
        store.bound_push(1, copy(6, 0));
        store.cancel_task_into(1, TaskId(6), &mut removed);
        assert!(!store.snapshot_dirty(1), "bound-only cancel stays clean");
        store.cancel_task_into(3, TaskId(5), &mut removed);
        assert!(store.snapshot_dirty(3), "pinned cancel dirties");

        // tick_compute dirties the advanced worker.
        store.clear_snapshot_dirty();
        store.set_prog_done(3, 4);
        store.set_computing(
            3,
            Some(ComputeState {
                copy: copy(5, 0),
                done: 0,
            }),
        );
        store.clear_snapshot_dirty();
        assert_eq!(store.tick_compute(3), Some((copy(5, 0), false)));
        assert!(store.snapshot_dirty(3));

        // Shrink then regrow: every reset re-marks the *current* workers
        // and the grown tail cannot inherit a stale clean bit.
        store.reset_for(specs(&[5]).into_iter());
        assert!(store.snapshot_dirty(0));
        store.clear_snapshot_dirty();
        store.reset_for(specs(&[1, 2, 3, 4, 5, 6]).into_iter());
        assert!((0..6).all(|q| store.snapshot_dirty(q)));
    }

    #[test]
    fn dirty_bit_contract_holds_for_both_layouts() {
        check_dirty_contract(&mut WorkerSoA::default());
        check_dirty_contract(&mut AosWorkers::default());
    }

    /// Recomputes every busy word densely from `busy(q)` and asserts the
    /// maintained bitmap agrees — the invariant the engine's bit-iteration
    /// passes rely on.
    fn assert_busy_words_consistent<S: WorkerStore>(store: &S, ctx: &str) {
        for wi in 0..store.len().div_ceil(64) {
            let mut expect = 0u64;
            let start = wi * 64;
            for q in start..(start + 64).min(store.len()) {
                expect |= u64::from(store.busy(q)) << (q - start);
            }
            assert_eq!(store.busy_word(wi), expect, "word {wi} after {ctx}");
        }
    }

    /// The busy bitmap tracks every occupancy 0 ↔ non-zero flip, across a
    /// word boundary, through binds, pins, crashes, and arena-reuse resets.
    #[test]
    fn busy_words_track_occupancy_flips() {
        let mut store = WorkerSoA::default();
        // 130 workers: three words, the last one partial.
        let sp = specs(&vec![2; 130]);
        store.reset_for(sp.iter().copied());
        assert_busy_words_consistent(&store, "reset");

        // Bind on both sides of the word boundary, pin one copy, stack a
        // second on worker 63 (the flip must fire once, not per copy).
        for q in [0usize, 63, 64, 129] {
            store.bound_push(q, copy(q as u32, 0));
        }
        store.bound_push(63, copy(200, 1));
        assert_busy_words_consistent(&store, "binds");
        assert_eq!(store.busy_word(0), (1 << 0) | (1 << 63));
        assert_eq!(store.busy_word(1), 1 << 0);
        assert_eq!(store.busy_word(2), 1 << 1);

        store.set_computing(
            70,
            Some(ComputeState {
                copy: copy(70, 0),
                done: 0,
            }),
        );
        assert_busy_words_consistent(&store, "pin");

        // Partial drains: worker 63 stays busy after losing one of two
        // copies, goes idle after losing the last.
        store.bound_remove(63, copy(200, 1));
        assert_busy_words_consistent(&store, "partial unbind");
        assert!(store.busy(63));
        store.drain_bound(63, |_| {});
        assert_busy_words_consistent(&store, "full unbind");
        assert!(!store.busy(63));

        // Crash clears the whole pipeline in one step.
        let mut lost = Vec::new();
        store.crash_into(70, &mut lost);
        assert_busy_words_consistent(&store, "crash");
        assert!(!store.busy(70));

        // Arena reuse onto a smaller platform must not leak stale bits
        // through the shrunken word count.
        store.reset_for(specs(&[1, 1, 1]).into_iter());
        assert_busy_words_consistent(&store, "shrinking reset");
        assert_eq!(store.busy_word(0), 0);
    }

    /// Shared mutation script for the differential test.
    trait Probe {
        fn script(&mut self);
    }

    impl<S: WorkerStore> Probe for S {
        fn script(&mut self) {
            self.set_prog_done(0, 4);
            self.set_computing(
                0,
                Some(ComputeState {
                    copy: copy(0, 0),
                    done: 1,
                }),
            );
            self.set_transfer(
                0,
                Some(TransferState {
                    copy: copy(1, 0),
                    done: 1,
                    began_at: 2,
                }),
            );
            self.set_prog_done(2, 2);
            self.set_prog_began_at(2, 1);
            self.bound_push(2, copy(3, 0));
            self.bound_push(2, copy(2, 1));
            self.bound_remove(2, copy(2, 1));
            self.bound_push(2, copy(3, 1));
            // drain_bound restores 2's bound list after observing it.
            let mut seen = Vec::new();
            self.drain_bound(2, |c| seen.push(c));
            assert_eq!(seen, vec![copy(3, 0), copy(3, 1)]);
            for c in seen {
                self.bound_push(2, c);
            }
        }
    }

    /// Recomputes every block summary from the raw columns and asserts the
    /// maintained counts agree — the ground truth for the skip hints.
    fn check_summaries(soa: &WorkerSoA) {
        let p = soa.state.len();
        let nblocks = p.div_ceil(SUMMARY_BLOCK);
        assert_eq!(soa.blk_busy.len(), nblocks);
        let (mut up_total, mut down_total) = (0, 0);
        for b in 0..nblocks {
            let start = b * SUMMARY_BLOCK;
            let end = (start + SUMMARY_BLOCK).min(p);
            let busy = (start..end).filter(|&q| soa.occupancy[q] != 0).count();
            let up = (start..end)
                .filter(|&q| soa.state[q] == ProcState::Up)
                .count();
            let down = (start..end)
                .filter(|&q| soa.state[q] == ProcState::Down)
                .count();
            assert_eq!(usize::from(soa.blk_busy[b]), busy, "blk_busy[{b}]");
            assert_eq!(usize::from(soa.blk_up[b]), up, "blk_up[{b}]");
            assert_eq!(usize::from(soa.blk_down[b]), down, "blk_down[{b}]");
            assert_eq!(soa.block_may_be_busy(b), busy != 0);
            assert_eq!(soa.block_may_have_down(b), down != 0);
            // The free hint must never claim "no free worker" falsely.
            let free = (start..end)
                .filter(|&q| soa.state[q] == ProcState::Up && soa.occupancy[q] == 0)
                .count();
            assert!(soa.block_may_have_free(b) || free == 0, "free hint lies");
            up_total += up;
            down_total += down;
        }
        assert_eq!(soa.up_total, up_total);
        assert_eq!(soa.down_total, down_total);
        assert_eq!(
            soa.state_census(),
            Some([up_total, p - up_total - down_total, down_total])
        );
    }

    /// Block summaries track a multi-block platform through state redraws,
    /// occupancy churn, crashes and cancels; the changed-block feed marks
    /// exactly the touched blocks, stays sticky, and drains on clear.
    #[test]
    fn block_summaries_track_columns() {
        use ProcState::{Down, Reclaimed, Up};
        let p = 2 * SUMMARY_BLOCK + 17;
        let mut soa = WorkerSoA::default();
        soa.reset_for(specs(&vec![3; p]).into_iter());
        assert_eq!(soa.summary_blocks(), 3);
        // reset_for marks every block changed.
        assert_eq!(soa.changed_blocks().unwrap(), &[0, 1, 2]);
        check_summaries(&soa);
        soa.clear_changed_blocks();
        assert!(soa.changed_blocks().unwrap().is_empty());

        // A state redraw only marks the blocks whose window changed.
        let mut states = vec![Reclaimed; p];
        states[SUMMARY_BLOCK] = Up;
        states[SUMMARY_BLOCK + 3] = Down;
        soa.set_states(&states);
        check_summaries(&soa);
        assert_eq!(soa.changed_blocks().unwrap(), &[1]);
        // Re-drawing the identical row marks nothing further.
        soa.set_states(&states);
        assert_eq!(soa.changed_blocks().unwrap(), &[1]);

        // Busy flips mark their block (0 ↔ non-zero only): a second copy
        // on the same worker is not a flip.
        soa.bound_push(5, copy(1, 0));
        assert_eq!(soa.changed_blocks().unwrap(), &[1, 0]);
        soa.clear_changed_blocks();
        soa.set_computing(
            5,
            Some(ComputeState {
                copy: copy(2, 0),
                done: 0,
            }),
        );
        assert!(
            soa.changed_blocks().unwrap().is_empty(),
            "1 → 2 is not a busy flip"
        );
        check_summaries(&soa);

        // Crash in the last (partial) block: occupancy drains to zero and
        // the block is marked.
        soa.set_transfer(
            2 * SUMMARY_BLOCK + 16,
            Some(TransferState {
                copy: copy(3, 0),
                done: 0,
                began_at: 0,
            }),
        );
        let mut lost = Vec::new();
        soa.crash_into(2 * SUMMARY_BLOCK + 16, &mut lost);
        assert_eq!(lost, vec![copy(3, 0)]);
        assert_eq!(soa.changed_blocks().unwrap(), &[2]);
        check_summaries(&soa);

        // Cancel the two copies on worker 5 one task at a time; the block
        // marks on the final flip to idle.
        soa.clear_changed_blocks();
        let mut removed = Vec::new();
        soa.cancel_task_into(5, TaskId(1), &mut removed);
        assert!(soa.changed_blocks().unwrap().is_empty());
        soa.cancel_task_into(5, TaskId(2), &mut removed);
        assert_eq!(soa.changed_blocks().unwrap(), &[0]);
        check_summaries(&soa);

        // Shrink through an arena-style reset: summaries shrink with it.
        soa.reset_for(specs(&[1, 2]).into_iter());
        assert_eq!(soa.summary_blocks(), 1);
        assert_eq!(soa.changed_blocks().unwrap(), &[0]);
        check_summaries(&soa);
    }

    #[test]
    fn reset_for_matches_cold_construction_after_grow_shrink_grow() {
        let mut soa = WorkerSoA::default();
        for shape in [&[2u64, 3][..], &[4, 5, 6, 7], &[9], &[1, 2, 3]] {
            // Dirty the store first so reset has something to erase.
            if !soa.is_empty() {
                soa.set_prog_done(0, 7);
                soa.set_buffered(0, Some(copy(0, 1)));
                soa.bound_push(0, copy(1, 0));
            }
            soa.reset_for(specs(shape).into_iter());
            let mut cold = WorkerSoA::default();
            cold.reset_for(specs(shape).into_iter());
            assert_eq!(soa.len(), shape.len());
            for (q, &w) in shape.iter().enumerate() {
                assert_eq!(soa.w(q), w);
                assert_eq!(soa.state(q), ProcState::Reclaimed);
                assert_eq!(soa.prog_done(q), 0);
                assert_eq!(soa.prog_began_at(q), 0);
                assert_eq!(soa.transfer(q), cold.transfer(q));
                assert_eq!(soa.buffered(q), None);
                assert_eq!(soa.computing(q), None);
                assert!(soa.bound(q).is_empty());
                assert!(soa.is_idle(q));
            }
        }
    }
}
