//! # vg-sim — the volatile-platform master–worker simulator
//!
//! A slot-level discrete-event simulator for the execution model of
//! Casanova, Dufossé, Robert & Vivien (IPDPS 2011), Section 3: iterative
//! master–worker applications on `UP`/`RECLAIMED`/`DOWN` processors with a
//! bounded multi-port master.
//!
//! * [`task`] — tasks, copies (original + ≤ 2 replicas), iteration state;
//! * [`worker`] — the per-worker pipeline (program / data / compute with one
//!   task of look-ahead);
//! * [`engine`] — the seven-phase slot loop ([`engine::Simulation`]);
//! * [`report`] — makespans and counters ([`report::SimReport`]).
//!
//! ```
//! use vg_core::HeuristicKind;
//! use vg_des::rng::SeedPath;
//! use vg_markov::availability::AvailabilityChain;
//! use vg_platform::{AppConfig, PlatformConfig, ProcessorConfig, StartPolicy};
//! use vg_sim::{SimOptions, Simulation};
//!
//! // Two statistically identical volatile processors.
//! let mut rng = SeedPath::root(1).rng();
//! let platform = PlatformConfig {
//!     processors: (0..2)
//!         .map(|_| ProcessorConfig::markov(
//!             2,
//!             AvailabilityChain::sample_paper(&mut rng, 0.90, 0.99),
//!             StartPolicy::Up,
//!         ))
//!         .collect(),
//!     ncom: 1,
//! };
//! let app = AppConfig { tasks_per_iteration: 4, iterations: 2, t_prog: 5, t_data: 1 };
//!
//! let report = Simulation::run_seeded(
//!     &platform,
//!     &app,
//!     HeuristicKind::EmctStar.build(SeedPath::root(2).rng()),
//!     SeedPath::root(3),
//!     SimOptions::default(),
//! ).unwrap();
//! assert!(report.finished());
//! ```

pub mod engine;
pub mod report;
pub mod task;
pub mod timeline;
pub mod worker;

pub use engine::{SimOptions, Simulation};
pub use report::{Counters, SimReport};
pub use task::{CopyId, TaskId};
pub use timeline::{Activity, Timeline};
