//! # vg-sim — the volatile-platform master–worker simulator
//!
//! A slot-level discrete-event simulator for the execution model of
//! Casanova, Dufossé, Robert & Vivien (IPDPS 2011), Section 3: iterative
//! master–worker applications on `UP`/`RECLAIMED`/`DOWN` processors with a
//! bounded multi-port master.
//!
//! * [`task`] — tasks, copies (original + ≤ 2 replicas), iteration state;
//! * [`app`] — the application runtime layer: per-app specs and runtimes
//!   ([`app::AppSpec`], [`app::AppRuntime`]), barrier reconfiguration
//!   ([`app::ReconfigPolicy`]) and the task-id namespace that lets several
//!   applications share one worker store;
//! * [`worker`] — the per-worker pipeline (program / data / compute with one
//!   task of look-ahead);
//! * [`store`] — worker storage layouts: the hot/cold [`store::WorkerSoA`]
//!   the engine runs on and the retained [`store::AosWorkers`] oracle;
//! * [`engine`] — the seven-phase slot loop ([`engine::Simulation`], generic
//!   over the layout) and the warmed arena ([`engine::SimArena`]);
//! * [`report`] — makespans and counters ([`report::SimReport`]).
//!
//! ## Warmed arenas for campaign-scale fan-out
//!
//! Campaigns run hundreds of thousands of short simulations; building each
//! [`Simulation`] from scratch pays ~25 allocations
//! (worker runtimes, chain statistics, the whole slot scratch) before the
//! first slot executes. A [`SimArena`] keeps all of those
//! buffers warm across runs — one arena per worker thread — and
//! [`SimArena::run_seeded`](engine::SimArena::run_seeded) returns a lean
//! [`RunOutcome`] (no strings, no vectors) whose results
//! are **bit-identical** to [`Simulation::run_seeded`](engine::Simulation::run_seeded):
//!
//! ```
//! use vg_core::HeuristicKind;
//! use vg_des::rng::SeedPath;
//! use vg_markov::availability::AvailabilityChain;
//! use vg_platform::{AppConfig, PlatformConfig, ProcessorConfig, StartPolicy};
//! use vg_sim::{SimArena, SimOptions, Simulation};
//!
//! let mut rng = SeedPath::root(1).rng();
//! let platform = PlatformConfig {
//!     processors: (0..2)
//!         .map(|_| ProcessorConfig::markov(
//!             2,
//!             AvailabilityChain::sample_paper(&mut rng, 0.90, 0.99),
//!             StartPolicy::Up,
//!         ))
//!         .collect(),
//!     ncom: 1,
//! };
//! let app = AppConfig { tasks_per_iteration: 4, iterations: 2, t_prog: 5, t_data: 1 };
//!
//! let mut arena = SimArena::new();
//! for trial in 0..3 {
//!     let outcome = arena.run_seeded(
//!         &platform,
//!         &app,
//!         HeuristicKind::Emct.build(SeedPath::root(10 + trial).rng()),
//!         SeedPath::root(20 + trial),
//!         SimOptions::default(),
//!     ).unwrap();
//!     // Same seeds through a cold engine give the same answer, bit for bit.
//!     let cold = Simulation::run_seeded(
//!         &platform,
//!         &app,
//!         HeuristicKind::Emct.build(SeedPath::root(10 + trial).rng()),
//!         SeedPath::root(20 + trial),
//!         SimOptions::default(),
//!     ).unwrap();
//!     assert_eq!(outcome.makespan, cold.makespan);
//!     assert_eq!(outcome.slots_run, cold.slots_run);
//! }
//! ```
//!
//! ```
//! use vg_core::HeuristicKind;
//! use vg_des::rng::SeedPath;
//! use vg_markov::availability::AvailabilityChain;
//! use vg_platform::{AppConfig, PlatformConfig, ProcessorConfig, StartPolicy};
//! use vg_sim::{SimOptions, Simulation};
//!
//! // Two statistically identical volatile processors.
//! let mut rng = SeedPath::root(1).rng();
//! let platform = PlatformConfig {
//!     processors: (0..2)
//!         .map(|_| ProcessorConfig::markov(
//!             2,
//!             AvailabilityChain::sample_paper(&mut rng, 0.90, 0.99),
//!             StartPolicy::Up,
//!         ))
//!         .collect(),
//!     ncom: 1,
//! };
//! let app = AppConfig { tasks_per_iteration: 4, iterations: 2, t_prog: 5, t_data: 1 };
//!
//! let report = Simulation::run_seeded(
//!     &platform,
//!     &app,
//!     HeuristicKind::EmctStar.build(SeedPath::root(2).rng()),
//!     SeedPath::root(3),
//!     SimOptions::default(),
//! ).unwrap();
//! assert!(report.finished());
//! ```

pub mod app;
pub mod engine;
pub mod report;
pub mod store;
pub mod task;
pub mod timeline;
pub mod worker;

pub use app::{AppRuntime, AppSpec, MoldableParams, ReconfigPolicy};
pub use engine::{
    platform_chain_stats, AppOutcome, MultiOutcome, PlacementBudget, ReferenceSimulation,
    RunOutcome, SimArena, SimOptions, Simulation,
};
pub use report::{AppReport, Counters, MultiReport, SimReport};
pub use store::{AosWorkers, WorkerSoA, WorkerStore};
pub use task::{CopyId, TaskId};
pub use timeline::{Activity, Timeline};
