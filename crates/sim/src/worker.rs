//! Per-worker runtime state machine.
//!
//! A worker's execution pipeline holds at most two pinned task copies — the
//! one being computed plus at most one look-ahead copy whose data is in
//! flight or buffered (Section 3.3: "task data is received for at most one
//! task beyond the one currently being computed"). Additionally the worker
//! may hold partial or complete program state, and a transient list of
//! copies *bound* by the scheduler this slot whose transfers have not begun
//! (bound copies are unpinned: they return to the pool at slot end, per the
//! dynamic-heuristics model \[D5\]).

use vg_des::{Slot, SlotSpan};
use vg_markov::availability::ProcState;
use vg_platform::ProcessorSpec;

use crate::task::{CopyId, TaskId};

/// An in-flight data transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferState {
    /// The copy whose input is being received.
    pub copy: CopyId,
    /// Slots of data received so far (`< t_data` while in flight).
    pub done: SlotSpan,
    /// Slot at which the transfer began (bandwidth priority: older first).
    pub began_at: Slot,
}

/// An in-progress computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComputeState {
    /// The copy being computed.
    pub copy: CopyId,
    /// UP-slots of compute performed (`< w` while in progress).
    pub done: SlotSpan,
}

/// Runtime state of one worker.
#[derive(Debug)]
pub struct WorkerRuntime {
    /// Static spec (`w_q`).
    pub spec: ProcessorSpec,
    /// State for the current slot.
    pub state: ProcState,
    /// Slots of program received (`== t_prog` ⇒ holds the program).
    pub prog_done: SlotSpan,
    /// Slot at which the current program transfer began (priority ordering).
    pub prog_began_at: Slot,
    /// Data transfer in flight, if any.
    pub transfer: Option<TransferState>,
    /// Copy whose data is complete, waiting for the compute unit.
    pub buffered: Option<CopyId>,
    /// Copy being computed.
    pub computing: Option<ComputeState>,
    /// Copies bound by the scheduler this slot, transfer not yet begun.
    pub bound: Vec<CopyId>,
}

impl WorkerRuntime {
    /// Fresh worker with no program and an idle pipeline.
    #[must_use]
    pub fn new(spec: ProcessorSpec) -> Self {
        Self {
            spec,
            state: ProcState::Reclaimed,
            prog_done: 0,
            prog_began_at: 0,
            transfer: None,
            buffered: None,
            computing: None,
            bound: Vec::new(),
        }
    }

    /// Reinitializes in place for a new run with `spec`, keeping the `bound`
    /// buffer's allocation — the arena-reuse equivalent of
    /// [`Self::new`](Self::new).
    pub fn reset(&mut self, spec: ProcessorSpec) {
        self.spec = spec;
        self.state = ProcState::Reclaimed;
        self.prog_done = 0;
        self.prog_began_at = 0;
        self.transfer = None;
        self.buffered = None;
        self.computing = None;
        self.bound.clear();
    }

    /// Does the worker hold a complete program copy?
    #[must_use]
    pub fn has_program(&self, t_prog: SlotSpan) -> bool {
        self.prog_done >= t_prog
    }

    /// Number of pinned copies (computing + buffered + in-flight transfer).
    #[must_use]
    pub fn pinned_count(&self) -> usize {
        usize::from(self.transfer.is_some())
            + usize::from(self.buffered.is_some())
            + usize::from(self.computing.is_some())
    }

    /// True if completely idle: nothing pinned, nothing bound.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.pinned_count() == 0 && self.bound.is_empty()
    }

    /// All copies present on this worker (pinned first, then bound).
    #[must_use]
    pub fn all_copies(&self) -> Vec<CopyId> {
        let mut v = Vec::with_capacity(3 + self.bound.len());
        if let Some(c) = &self.computing {
            v.push(c.copy);
        }
        if let Some(b) = self.buffered {
            v.push(b);
        }
        if let Some(t) = &self.transfer {
            v.push(t.copy);
        }
        v.extend(self.bound.iter().copied());
        v
    }

    /// Whether any copy (pinned or bound) of `task` lives here — used to
    /// forbid two copies of a task on one processor. Allocation-free (the
    /// engine asks this on every bind attempt).
    #[must_use]
    pub fn has_copy_of(&self, task: TaskId) -> bool {
        self.computing.as_ref().is_some_and(|c| c.copy.task == task)
            || self.buffered.is_some_and(|b| b.task == task)
            || self.transfer.as_ref().is_some_and(|t| t.copy.task == task)
            || self.bound.iter().any(|c| c.task == task)
    }

    /// Room for one more bound copy (pipeline capacity 2: compute + one
    /// look-ahead).
    #[must_use]
    pub fn has_bind_room(&self) -> bool {
        self.pinned_count() + self.bound.len() < 2
    }

    /// `Delay(q)` — Section 6.3.1 / \[D8\]: slots until all *pinned* work and
    /// the program transfer complete, assuming permanent `UP` and no
    /// contention. Bound (unpinned) copies are excluded: the scheduler is
    /// re-deciding those.
    #[must_use]
    pub fn delay_estimate(&self, t_prog: SlotSpan, t_data: SlotSpan) -> SlotSpan {
        let prog_rem = t_prog.saturating_sub(self.prog_done);
        let mut comm_free = prog_rem;
        let mut compute_free = 0;
        if let Some(c) = &self.computing {
            compute_free = self.spec.w - c.done;
        }
        if self.buffered.is_some() {
            compute_free += self.spec.w;
        }
        if let Some(tr) = &self.transfer {
            let data_ready = comm_free + (t_data - tr.done);
            comm_free = data_ready;
            compute_free = compute_free.max(data_ready) + self.spec.w;
        }
        compute_free.max(comm_free)
    }

    /// Clears all volatile state after a crash (`DOWN`): program, transfers,
    /// buffers, computation. Appends the lost pinned copies to `lost` (not
    /// cleared), for scratch-buffer reuse across slots.
    ///
    /// Returns whether anything a scheduler snapshot observes changed —
    /// program progress or pinned pipeline state — so store adapters can
    /// feed their dirty bits precisely (a worker that stays `DOWN` is
    /// re-crashed every slot but only dirties on the first).
    pub fn crash_into(&mut self, lost: &mut Vec<CopyId>) -> bool {
        let mut changed = self.prog_done != 0;
        self.prog_done = 0;
        if let Some(c) = self.computing.take() {
            lost.push(c.copy);
            changed = true;
        }
        if let Some(b) = self.buffered.take() {
            lost.push(b);
            changed = true;
        }
        if let Some(t) = self.transfer.take() {
            lost.push(t.copy);
            changed = true;
        }
        changed
    }

    /// Cancels every copy of `task` on this worker (sibling finished or
    /// iteration ended), appending the removed copies — bound copies
    /// included — to `removed` (not cleared), for scratch-buffer reuse.
    ///
    /// Returns whether a *pinned* copy was removed: bound copies are
    /// excluded from `Delay(q)` (\[D8\]), so a bound-only cancellation
    /// leaves scheduler snapshots untouched and need not dirty the worker.
    pub fn cancel_task_into(&mut self, task: TaskId, removed: &mut Vec<CopyId>) -> bool {
        let mut pinned_changed = false;
        if let Some(c) = self.computing.take_if(|c| c.copy.task == task) {
            removed.push(c.copy);
            pinned_changed = true;
        }
        if let Some(b) = self.buffered.take_if(|b| b.task == task) {
            removed.push(b);
            pinned_changed = true;
        }
        if let Some(t) = self.transfer.take_if(|t| t.copy.task == task) {
            removed.push(t.copy);
            pinned_changed = true;
        }
        let mut i = 0;
        while i < self.bound.len() {
            if self.bound[i].task == task {
                removed.push(self.bound.remove(i));
            } else {
                i += 1;
            }
        }
        pinned_changed
    }

    /// Structural invariants of the pipeline; cheap enough to assert every
    /// slot in debug builds.
    pub fn assert_invariants(&self, t_prog: SlotSpan, t_data: SlotSpan) {
        assert!(
            self.pinned_count() <= 2,
            "pipeline overfull: {}",
            self.pinned_count()
        );
        assert!(
            !(self.transfer.is_some() && self.buffered.is_some()),
            "look-ahead rule violated: transfer and buffer both occupied"
        );
        if self.computing.is_some() {
            assert!(
                self.has_program(t_prog),
                "computing without a complete program"
            );
        }
        if let Some(tr) = &self.transfer {
            assert!(tr.done < t_data, "completed transfer not promoted");
            assert!(
                self.has_program(t_prog),
                "data transfer before program complete"
            );
        }
        if let Some(c) = &self.computing {
            assert!(c.done < self.spec.w, "finished compute not retired");
        }
        // No duplicated task among copies.
        let copies = self.all_copies();
        for (i, a) in copies.iter().enumerate() {
            for b in &copies[i + 1..] {
                assert!(a.task != b.task, "two copies of {} on one worker", a.task);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker(w: SlotSpan) -> WorkerRuntime {
        WorkerRuntime::new(ProcessorSpec::new(w))
    }

    fn copy(task: u32, replica: u8) -> CopyId {
        CopyId {
            task: TaskId(task),
            replica,
        }
    }

    #[test]
    fn fresh_worker_is_idle() {
        let w = worker(3);
        assert!(w.is_idle());
        assert_eq!(w.pinned_count(), 0);
        assert!(w.has_bind_room());
        assert!(!w.has_program(5));
        assert!(w.has_program(0), "zero-length program is always present");
        assert_eq!(w.delay_estimate(5, 2), 5, "needs the whole program");
    }

    #[test]
    fn delay_estimate_composes_pipeline() {
        let mut w = worker(4);
        w.prog_done = 5; // program complete (t_prog = 5)

        // Computing: 1 slot done out of 4 -> 3 remaining.
        w.computing = Some(ComputeState {
            copy: copy(0, 0),
            done: 1,
        });
        assert_eq!(w.delay_estimate(5, 2), 3);

        // Plus a buffered task: +4.
        w.buffered = Some(copy(1, 0));
        assert_eq!(w.delay_estimate(5, 2), 7);

        // Remove the buffer, add an in-flight transfer with 1/2 slots done:
        // data ready at 1, compute of task 0 free at 3 -> second compute
        // spans [3,7).
        w.buffered = None;
        w.transfer = Some(TransferState {
            copy: copy(1, 0),
            done: 1,
            began_at: 0,
        });
        assert_eq!(w.delay_estimate(5, 2), 7);

        // Transfer-dominated: long data, short compute.
        let mut w2 = worker(1);
        w2.prog_done = 5;
        w2.transfer = Some(TransferState {
            copy: copy(0, 0),
            done: 0,
            began_at: 0,
        });
        assert_eq!(w2.delay_estimate(5, 10), 11);
    }

    #[test]
    fn delay_estimate_partial_program() {
        let mut w = worker(2);
        w.prog_done = 3;
        assert_eq!(w.delay_estimate(5, 2), 2);
    }

    #[test]
    fn crash_clears_everything_and_reports_losses() {
        let mut w = worker(2);
        w.prog_done = 5;
        w.computing = Some(ComputeState {
            copy: copy(0, 0),
            done: 1,
        });
        w.transfer = Some(TransferState {
            copy: copy(1, 1),
            done: 1,
            began_at: 3,
        });
        let mut lost = Vec::new();
        assert!(w.crash_into(&mut lost), "first crash changes state");
        assert_eq!(lost, vec![copy(0, 0), copy(1, 1)]);
        assert_eq!(w.prog_done, 0);
        assert!(w.is_idle());
        // Re-crashing an already-cleared worker (a worker that stays DOWN)
        // reports no snapshot-visible change.
        lost.clear();
        assert!(!w.crash_into(&mut lost));
        assert!(lost.is_empty());
    }

    #[test]
    fn cancel_task_removes_all_forms() {
        let mut w = worker(2);
        w.prog_done = 5;
        w.computing = Some(ComputeState {
            copy: copy(7, 0),
            done: 0,
        });
        w.bound.push(copy(7, 2));
        let mut removed = Vec::new();
        assert!(
            w.cancel_task_into(TaskId(7), &mut removed),
            "a pinned copy was removed"
        );
        assert_eq!(removed, vec![copy(7, 0), copy(7, 2)]);
        assert!(w.computing.is_none());
        assert!(w.bound.is_empty());
        removed.clear();
        assert!(!w.cancel_task_into(TaskId(7), &mut removed));
        assert!(removed.is_empty());
        // A bound-only cancellation is not a snapshot-visible change:
        // Delay(q) excludes bound copies ([D8]).
        w.bound.push(copy(9, 0));
        assert!(!w.cancel_task_into(TaskId(9), &mut removed));
        assert_eq!(removed, vec![copy(9, 0)]);
    }

    #[test]
    fn has_copy_of_and_bind_room() {
        let mut w = worker(2);
        w.computing = Some(ComputeState {
            copy: copy(3, 0),
            done: 0,
        });
        assert!(w.has_copy_of(TaskId(3)));
        assert!(!w.has_copy_of(TaskId(4)));
        assert!(w.has_bind_room());
        w.bound.push(copy(4, 0));
        assert!(!w.has_bind_room());
    }

    #[test]
    fn invariants_pass_on_consistent_state() {
        let mut w = worker(3);
        w.prog_done = 5;
        w.computing = Some(ComputeState {
            copy: copy(0, 0),
            done: 2,
        });
        w.transfer = Some(TransferState {
            copy: copy(1, 0),
            done: 1,
            began_at: 2,
        });
        w.assert_invariants(5, 2);
    }

    #[test]
    #[should_panic(expected = "computing without a complete program")]
    fn invariants_catch_compute_without_program() {
        let mut w = worker(3);
        w.prog_done = 2;
        w.computing = Some(ComputeState {
            copy: copy(0, 0),
            done: 0,
        });
        w.assert_invariants(5, 2);
    }

    #[test]
    #[should_panic(expected = "two copies")]
    fn invariants_catch_duplicate_task() {
        let mut w = worker(3);
        w.prog_done = 0; // t_prog 0 -> program ok
        w.buffered = Some(copy(1, 0));
        w.bound.push(copy(1, 1));
        w.assert_invariants(0, 2);
    }
}
