//! Simulation outputs: makespan, per-iteration times, and counters.

use crate::timeline::Timeline;
use vg_des::Slot;

/// Cumulative event counters of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Counters {
    /// Distinct tasks completed (over all iterations).
    pub tasks_completed: u64,
    /// Task copies that delivered the winning result (equals
    /// `tasks_completed`; kept separate for symmetry with the waste
    /// counters).
    pub copies_completed: u64,
    /// Copies that would have completed in the same slot as the winner and
    /// were canceled instead — purely wasted work.
    pub duplicate_results: u64,
    /// Pinned copies lost because their worker crashed.
    pub copies_lost_to_down: u64,
    /// Replica copies whose data transfer actually began.
    pub replicas_started: u64,
    /// Copies canceled because a sibling completed first.
    pub replicas_canceled: u64,
    /// Program transfers completed.
    pub programs_delivered: u64,
    /// Channel-slots spent on program transfers.
    pub prog_channel_slots: u64,
    /// Channel-slots spent on data transfers.
    pub data_channel_slots: u64,
    /// Worker-slots observed in each state (`u`, `r`, `d`).
    pub state_slots: [u64; 3],
    /// State flips forced by a scripted chaos overlay (0 when no overlay is
    /// installed, and for passthrough scripts — so un-scripted runs stay
    /// counter-identical to their base).
    pub injected_faults: u64,
}

/// Result of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Heuristic that produced this run (paper name).
    pub scheduler: String,
    /// Iterations completed before the run ended.
    pub completed_iterations: u64,
    /// Total slots to complete *all* requested iterations; `None` if the
    /// slot cap was hit first. A value of `k` means the last task finished
    /// during slot `k − 1` (slots are 0-based).
    pub makespan: Option<Slot>,
    /// Slots actually simulated.
    pub slots_run: Slot,
    /// Completion slot of each finished iteration (0-based slot index).
    pub iteration_completed_at: Vec<Slot>,
    /// Event counters.
    pub counters: Counters,
    /// Mean fraction of master channels in use per slot.
    pub mean_bandwidth_utilization: f64,
    /// Per-slot activity record, when
    /// [`SimOptions::record_timeline`](crate::SimOptions::record_timeline)
    /// was set.
    pub timeline: Option<Timeline>,
}

impl SimReport {
    /// Makespan if complete, otherwise the slot cap that was burned —
    /// a pessimistic-but-total metric for aggregation.
    #[must_use]
    pub fn makespan_or_cap(&self) -> Slot {
        self.makespan.unwrap_or(self.slots_run)
    }

    /// True when every requested iteration completed.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.makespan.is_some()
    }
}

/// Per-application slice of a co-scheduled run (see
/// [`Simulation::run_multi`](crate::Simulation::run_multi)).
#[derive(Debug, Clone, PartialEq)]
pub struct AppReport {
    /// Iterations this application completed before the run ended.
    pub completed_iterations: u64,
    /// Slots until this application's final barrier (same slot-count
    /// semantics as [`SimReport::makespan`]); `None` if the run ended
    /// before it finished.
    pub makespan: Option<Slot>,
    /// `tasks_per_iteration` of the application's last iteration — where a
    /// moldable resize landed, or the configured size for rigid apps.
    pub final_m: usize,
    /// Task completions credited to this application.
    pub tasks_completed: u64,
    /// Completion slot of each of this application's finished iterations.
    pub iteration_completed_at: Vec<Slot>,
}

impl AppReport {
    /// True when every requested iteration of this application completed.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.makespan.is_some()
    }
}

/// Result of a multi-application run: the combined (platform-wide) report
/// plus one [`AppReport`] per application, in engine app order. For a
/// single-application roster `combined` is field-identical to what the
/// single-app API returns.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiReport {
    /// Platform-wide report: merged barrier record, shared counters, total
    /// completed iterations; `makespan` is set iff *every* application
    /// finished.
    pub combined: SimReport,
    /// Per-application reports.
    pub apps: Vec<AppReport>,
}

impl std::fmt::Display for SimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.makespan {
            Some(mk) => write!(
                f,
                "{}: {} iterations in {} slots ({} tasks, {:.1}% bw)",
                self.scheduler,
                self.completed_iterations,
                mk,
                self.counters.tasks_completed,
                self.mean_bandwidth_utilization * 100.0
            ),
            None => write!(
                f,
                "{}: INCOMPLETE {}/{} iterations after {} slots",
                self.scheduler,
                self.completed_iterations,
                self.iteration_completed_at.len(),
                self.slots_run
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(makespan: Option<Slot>) -> SimReport {
        SimReport {
            scheduler: "MCT".into(),
            completed_iterations: 2,
            makespan,
            slots_run: 100,
            iteration_completed_at: vec![40, 99],
            counters: Counters::default(),
            mean_bandwidth_utilization: 0.5,
            timeline: None,
        }
    }

    #[test]
    fn makespan_or_cap() {
        assert_eq!(report(Some(100)).makespan_or_cap(), 100);
        assert_eq!(report(None).makespan_or_cap(), 100);
        assert!(report(Some(100)).finished());
        assert!(!report(None).finished());
    }

    #[test]
    fn display_variants() {
        assert!(report(Some(100))
            .to_string()
            .contains("2 iterations in 100 slots"));
        assert!(report(None).to_string().contains("INCOMPLETE"));
    }
}
