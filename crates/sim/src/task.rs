//! Task, copy and iteration bookkeeping.
//!
//! Each application iteration consists of `m` independent tasks (Section
//! 3.1). A *task* may be materialized as up to three *copies*: the original
//! plus at most two replicas (Section 6.1). The first copy to finish
//! completes the task; all sibling copies are then canceled.

use vg_des::Slot;

/// Index of a task within the current iteration (`0..m`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl TaskId {
    /// As a `usize` index.
    #[inline]
    #[must_use]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// One concrete copy of a task. `replica == 0` is the original; replicas get
/// fresh increasing numbers so two concurrent replicas of a task are
/// distinguishable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CopyId {
    /// Which task this is a copy of.
    pub task: TaskId,
    /// 0 for the original, ≥ 1 for replicas.
    pub replica: u8,
}

impl CopyId {
    /// The original copy of `task`.
    #[must_use]
    pub fn original(task: TaskId) -> Self {
        Self { task, replica: 0 }
    }

    /// True for the original copy.
    #[must_use]
    pub fn is_original(self) -> bool {
        self.replica == 0
    }
}

impl std::fmt::Display for CopyId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_original() {
            write!(f, "{}", self.task)
        } else {
            write!(f, "{}·r{}", self.task, self.replica)
        }
    }
}

/// Where a task's original copy currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OriginalState {
    /// Waiting in the master's pool (schedulable).
    Pool,
    /// Its data transfer or computation has begun on a worker (pinned there).
    Pinned {
        /// The worker (by index).
        worker: usize,
    },
    /// The task has completed (possibly via a replica).
    Done,
}

/// Empty slot sentinel in [`IterationState::pinned_replica_workers`] rows.
pub const NO_REPLICA_WORKER: u32 = u32::MAX;

/// Live state of one application iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterationState {
    m: usize,
    index: u64,
    completed: Vec<bool>,
    n_completed: usize,
    original: Vec<OriginalState>,
    replicas_alive: Vec<u8>,
    next_replica: Vec<u8>,
    /// Replica-count cap per task (`max_extra_replicas` of the run) — the
    /// row width of `replica_workers`.
    max_extra: usize,
    /// Flat `m × max_extra` record of where each live **pinned** replica
    /// sits ([`NO_REPLICA_WORKER`] = empty slot). Together with
    /// [`OriginalState::Pinned`] this gives sibling cancellation the exact
    /// location of every pinned copy — no platform scan at completion.
    replica_workers: Vec<u32>,
    /// Slot at which the iteration completed, once it has.
    completed_at: Option<Slot>,
}

impl IterationState {
    /// Fresh iteration `index` with `m` pool tasks; `max_extra` is the
    /// run's per-task replica cap (sizes the pinned-replica record).
    ///
    /// One init path: `new` is [`Self::reinit`] applied to an empty shell,
    /// so the two can never drift apart field-by-field (debug builds also
    /// assert `reinit` against an independently constructed oracle).
    #[must_use]
    pub fn new(index: u64, m: usize, max_extra: u8) -> Self {
        let mut it = Self {
            m: 0,
            index: 0,
            completed: Vec::new(),
            n_completed: 0,
            original: Vec::new(),
            replicas_alive: Vec::new(),
            next_replica: Vec::new(),
            max_extra: 0,
            replica_workers: Vec::new(),
            completed_at: None,
        };
        it.reinit(index, m, max_extra);
        it
    }

    /// Independent literal construction, kept only as the debug oracle for
    /// the unified [`Self::new`]/[`Self::reinit`] init path.
    #[cfg(debug_assertions)]
    fn fresh_oracle(index: u64, m: usize, max_extra: u8) -> Self {
        Self {
            m,
            index,
            completed: vec![false; m],
            n_completed: 0,
            original: vec![OriginalState::Pool; m],
            replicas_alive: vec![0; m],
            next_replica: vec![0; m],
            max_extra: usize::from(max_extra),
            replica_workers: vec![NO_REPLICA_WORKER; m * usize::from(max_extra)],
            completed_at: None,
        }
    }

    /// Reinitializes in place for iteration `index`, keeping the allocated
    /// buffers — the barrier-slot equivalent of `Self::new(index, m, ..)`.
    pub fn reset(&mut self, index: u64) {
        self.index = index;
        self.completed.fill(false);
        self.n_completed = 0;
        self.original.fill(OriginalState::Pool);
        self.replicas_alive.fill(0);
        self.next_replica.fill(0);
        self.replica_workers.fill(NO_REPLICA_WORKER);
        self.completed_at = None;
    }

    /// Reinitializes in place for a **new run** with a possibly different
    /// task count, reusing the allocated buffers — the cross-run (arena)
    /// counterpart of [`Self::reset`], which keeps `m` fixed.
    pub fn reinit(&mut self, index: u64, m: usize, max_extra: u8) {
        assert!(m >= 1);
        self.m = m;
        self.index = index;
        self.completed.clear();
        self.completed.resize(m, false);
        self.n_completed = 0;
        self.original.clear();
        self.original.resize(m, OriginalState::Pool);
        self.replicas_alive.clear();
        self.replicas_alive.resize(m, 0);
        self.next_replica.clear();
        self.next_replica.resize(m, 0);
        self.max_extra = usize::from(max_extra);
        self.replica_workers.clear();
        self.replica_workers
            .resize(m * usize::from(max_extra), NO_REPLICA_WORKER);
        self.completed_at = None;
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            *self,
            Self::fresh_oracle(index, m, max_extra),
            "in-place reinit diverged from a literal fresh construction"
        );
    }

    /// Iteration number (0-based).
    #[must_use]
    pub fn index(&self) -> u64 {
        self.index
    }

    /// Tasks per iteration, `m`.
    #[must_use]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Completed-task count.
    #[must_use]
    pub fn n_completed(&self) -> usize {
        self.n_completed
    }

    /// True once all `m` tasks are done.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.n_completed == self.m
    }

    /// Slot at which the iteration completed.
    #[must_use]
    pub fn completed_at(&self) -> Option<Slot> {
        self.completed_at
    }

    /// Records the completion slot (once).
    pub fn set_completed_at(&mut self, slot: Slot) {
        debug_assert!(self.is_complete());
        if self.completed_at.is_none() {
            self.completed_at = Some(slot);
        }
    }

    /// Whether `task` is completed.
    #[must_use]
    pub fn is_task_completed(&self, task: TaskId) -> bool {
        self.completed[task.idx()]
    }

    /// Original-copy state of `task`.
    #[must_use]
    pub fn original_state(&self, task: TaskId) -> OriginalState {
        self.original[task.idx()]
    }

    /// Live replica count of `task` (excludes the original).
    #[must_use]
    pub fn replicas_alive(&self, task: TaskId) -> u8 {
        self.replicas_alive[task.idx()]
    }

    /// Unfinished tasks whose original sits in the pool, in id order — the
    /// `m − m′` schedulable tasks of Section 6.1.
    ///
    /// Allocates; the engine's slot loop uses [`Self::pool_tasks_into`].
    #[must_use]
    pub fn pool_tasks(&self) -> Vec<TaskId> {
        let mut out = Vec::new();
        self.pool_tasks_into(&mut out);
        out
    }

    /// Writes the pool tasks into `out` (cleared first), in id order.
    /// Allocation-free once `out` has warmed to capacity `m`.
    pub fn pool_tasks_into(&self, out: &mut Vec<TaskId>) {
        out.clear();
        for i in 0..self.m {
            if !self.completed[i] && self.original[i] == OriginalState::Pool {
                out.push(TaskId(i as u32));
            }
        }
    }

    /// Number of schedulable pool tasks — the length
    /// [`Self::pool_tasks_into`] would produce, without writing it.
    #[must_use]
    pub fn pool_len(&self) -> usize {
        (0..self.m)
            .filter(|&i| !self.completed[i] && self.original[i] == OriginalState::Pool)
            .count()
    }

    /// Unfinished tasks eligible for one more replica (fewer than
    /// `max_extra` live replicas), ordered by (live copies, id) so the least
    /// replicated task replicates first.
    ///
    /// Allocates; the engine's slot loop uses [`Self::replica_candidates_into`].
    #[must_use]
    pub fn replica_candidates(&self, max_extra: u8) -> Vec<TaskId> {
        let mut out = Vec::new();
        self.replica_candidates_into(max_extra, &mut out);
        out
    }

    /// Writes the replica candidates into `out` (cleared first), ordered by
    /// (live copies, id). Allocation-free once `out` has warmed to capacity
    /// `m`; one linear pass per replica level replaces a comparison sort
    /// (`max_extra` is ≤ 2 in the paper) and yields the identical order,
    /// since scanning level-by-level in id order *is* sorting by the unique
    /// key (live copies, id).
    pub fn replica_candidates_into(&self, max_extra: u8, out: &mut Vec<TaskId>) {
        out.clear();
        for level in 0..max_extra {
            for i in 0..self.m {
                if !self.completed[i] && self.replicas_alive[i] == level {
                    out.push(TaskId(i as u32));
                }
            }
        }
    }

    /// Mints a new replica copy of `task` and counts it alive.
    #[must_use]
    pub fn mint_replica(&mut self, task: TaskId) -> CopyId {
        let i = task.idx();
        debug_assert!(!self.completed[i]);
        self.next_replica[i] = self.next_replica[i].wrapping_add(1).max(1);
        self.replicas_alive[i] += 1;
        CopyId {
            task,
            replica: self.next_replica[i],
        }
    }

    /// Discards a live replica copy (evaporated bind, crash, cancel).
    pub fn drop_replica(&mut self, task: TaskId) {
        let i = task.idx();
        debug_assert!(self.replicas_alive[i] > 0, "no replica to drop for {task}");
        self.replicas_alive[i] -= 1;
    }

    /// Records that a live replica of `task` is now **pinned** on `worker`
    /// (its data transfer began, or a zero-data bind went straight to the
    /// compute pipeline). At most one copy of a task lives on a worker, so
    /// `worker` identifies the replica within its row.
    pub fn record_replica_pin(&mut self, task: TaskId, worker: usize) {
        let row = task.idx() * self.max_extra;
        let slots = &mut self.replica_workers[row..row + self.max_extra];
        debug_assert!(
            !slots.contains(&(worker as u32)),
            "replica of {task} already recorded on worker {worker}"
        );
        match slots.iter_mut().find(|w| **w == NO_REPLICA_WORKER) {
            Some(slot) => *slot = worker as u32,
            // More pinned replicas than replicas_alive allows — mint/pin
            // accounting is broken somewhere upstream.
            None => debug_assert!(false, "pinned-replica row of {task} overflows max_extra"),
        }
    }

    /// Clears the pin record of `task`'s replica on `worker` (it completed,
    /// was canceled, or was lost to a crash).
    pub fn clear_replica_pin(&mut self, task: TaskId, worker: usize) {
        let row = task.idx() * self.max_extra;
        let slots = &mut self.replica_workers[row..row + self.max_extra];
        match slots.iter_mut().find(|w| **w == worker as u32) {
            Some(slot) => *slot = NO_REPLICA_WORKER,
            None => debug_assert!(false, "no pinned replica of {task} recorded on {worker}"),
        }
    }

    /// `task`'s pinned-replica worker row ([`NO_REPLICA_WORKER`] = empty
    /// slot; empty row when replication is off).
    #[must_use]
    pub fn pinned_replica_workers(&self, task: TaskId) -> &[u32] {
        let row = task.idx() * self.max_extra;
        &self.replica_workers[row..row + self.max_extra]
    }

    /// Marks the original of `task` pinned on `worker`.
    pub fn pin_original(&mut self, task: TaskId, worker: usize) {
        debug_assert_eq!(self.original[task.idx()], OriginalState::Pool);
        self.original[task.idx()] = OriginalState::Pinned { worker };
    }

    /// Returns the original of `task` to the pool (crash of its worker).
    pub fn release_original(&mut self, task: TaskId) {
        debug_assert!(matches!(
            self.original[task.idx()],
            OriginalState::Pinned { .. }
        ));
        self.original[task.idx()] = OriginalState::Pool;
    }

    /// Marks `task` completed; returns `false` if it already was (a sibling
    /// copy finished in the same slot).
    pub fn mark_completed(&mut self, task: TaskId) -> bool {
        let i = task.idx();
        if self.completed[i] {
            return false;
        }
        self.completed[i] = true;
        self.n_completed += 1;
        self.original[i] = OriginalState::Done;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_iteration_pools_everything() {
        let it = IterationState::new(3, 4, 2);
        assert_eq!(it.index(), 3);
        assert_eq!(it.m(), 4);
        assert_eq!(it.pool_tasks().len(), 4);
        assert!(!it.is_complete());
        assert_eq!(it.n_completed(), 0);
    }

    #[test]
    fn pinning_removes_from_pool() {
        let mut it = IterationState::new(0, 3, 2);
        it.pin_original(TaskId(1), 7);
        assert_eq!(it.pool_tasks(), vec![TaskId(0), TaskId(2)]);
        assert_eq!(
            it.original_state(TaskId(1)),
            OriginalState::Pinned { worker: 7 }
        );
        it.release_original(TaskId(1));
        assert_eq!(it.pool_tasks().len(), 3);
    }

    #[test]
    fn completion_counts_once() {
        let mut it = IterationState::new(0, 2, 2);
        assert!(it.mark_completed(TaskId(0)));
        assert!(!it.mark_completed(TaskId(0)));
        assert_eq!(it.n_completed(), 1);
        assert!(it.mark_completed(TaskId(1)));
        assert!(it.is_complete());
        it.set_completed_at(42);
        assert_eq!(it.completed_at(), Some(42));
    }

    #[test]
    fn completed_tasks_leave_pool() {
        let mut it = IterationState::new(0, 2, 2);
        it.mark_completed(TaskId(0));
        assert_eq!(it.pool_tasks(), vec![TaskId(1)]);
    }

    #[test]
    fn replica_minting_and_limits() {
        let mut it = IterationState::new(0, 2, 2);
        let r1 = it.mint_replica(TaskId(0));
        assert_eq!(r1.replica, 1);
        assert!(!r1.is_original());
        assert_eq!(it.replicas_alive(TaskId(0)), 1);

        // Candidates ordered by fewest live copies.
        let cands = it.replica_candidates(2);
        assert_eq!(cands, vec![TaskId(1), TaskId(0)]);

        let _r2 = it.mint_replica(TaskId(0));
        assert_eq!(it.replicas_alive(TaskId(0)), 2);
        // Task 0 is now saturated.
        assert_eq!(it.replica_candidates(2), vec![TaskId(1)]);

        it.drop_replica(TaskId(0));
        assert_eq!(it.replicas_alive(TaskId(0)), 1);
        assert_eq!(it.replica_candidates(2), vec![TaskId(1), TaskId(0)]);
    }

    #[test]
    fn replica_ids_stay_unique() {
        let mut it = IterationState::new(0, 1, 2);
        let a = it.mint_replica(TaskId(0));
        it.drop_replica(TaskId(0));
        let b = it.mint_replica(TaskId(0));
        assert_ne!(a, b, "respawned replica must get a fresh id");
    }

    #[test]
    fn completed_tasks_are_not_replica_candidates() {
        let mut it = IterationState::new(0, 2, 2);
        it.mark_completed(TaskId(0));
        assert_eq!(it.replica_candidates(2), vec![TaskId(1)]);
    }

    #[test]
    fn pinned_replica_record_round_trips() {
        let mut it = IterationState::new(0, 3, 2);
        assert_eq!(
            it.pinned_replica_workers(TaskId(1)),
            &[NO_REPLICA_WORKER; 2]
        );

        let _ = it.mint_replica(TaskId(1));
        it.record_replica_pin(TaskId(1), 40);
        let _ = it.mint_replica(TaskId(1));
        it.record_replica_pin(TaskId(1), 7);
        assert_eq!(it.pinned_replica_workers(TaskId(1)), &[40, 7]);
        // Rows are per-task.
        assert_eq!(
            it.pinned_replica_workers(TaskId(0)),
            &[NO_REPLICA_WORKER; 2]
        );

        // Clearing one pin frees its slot for reuse.
        it.clear_replica_pin(TaskId(1), 40);
        assert_eq!(
            it.pinned_replica_workers(TaskId(1)),
            &[NO_REPLICA_WORKER, 7]
        );
        it.drop_replica(TaskId(1));
        let _ = it.mint_replica(TaskId(1));
        it.record_replica_pin(TaskId(1), 12);
        assert_eq!(it.pinned_replica_workers(TaskId(1)), &[12, 7]);

        // Barrier reset wipes the record.
        it.reset(1);
        assert_eq!(
            it.pinned_replica_workers(TaskId(1)),
            &[NO_REPLICA_WORKER; 2]
        );

        // Replication off: rows are empty, the record costs nothing.
        it.reinit(0, 4, 0);
        assert!(it.pinned_replica_workers(TaskId(3)).is_empty());
    }

    #[test]
    fn reinit_is_equivalent_to_fresh_construction() {
        let mut it = IterationState::new(0, 3, 2);
        let _ = it.mint_replica(TaskId(1));
        it.record_replica_pin(TaskId(1), 5);
        it.pin_original(TaskId(0), 9);
        it.mark_completed(TaskId(2));
        it.reinit(7, 5, 1);
        assert_eq!(it, IterationState::new(7, 5, 1));
        // Shrinking and growing both land on the fresh-construction state.
        it.reinit(2, 1, 0);
        assert_eq!(it, IterationState::new(2, 1, 0));
    }

    #[test]
    fn copy_display() {
        assert_eq!(CopyId::original(TaskId(3)).to_string(), "T3");
        assert_eq!(
            CopyId {
                task: TaskId(3),
                replica: 2
            }
            .to_string(),
            "T3·r2"
        );
    }
}
