//! The slot-level simulation engine.
//!
//! Executes one iterative master–worker application (Section 3) on a
//! volatile platform under a pluggable scheduling heuristic (Section 6).
//! Each slot proceeds through fixed phases:
//!
//! 1. **States** — every worker draws its state for the slot;
//! 2. **Crashes** — `DOWN` workers lose program, data and partial results
//!    (Section 3.2); their pinned copies return to the pool (originals) or
//!    evaporate (replicas);
//! 3. **Scheduling** — the heuristic places the pool's unstarted originals,
//!    then replicas onto idle `UP` workers (Section 6.1's replication rule:
//!    at most two extra copies, originals take priority);
//! 4. **Transfers** — the master's `ncom` channels are granted: first to
//!    transfers already in flight (begun communications are never
//!    interrupted — the *dynamic* model of Section 6.1), then to new
//!    transfers in placement order; granted transfers progress one slot;
//! 5. **Compute** — `UP` workers with program + data advance their task one
//!    slot; completions are recorded, first copy wins, siblings cancel;
//! 6. **Promotions** — completed data transfers enter the buffer; the buffer
//!    feeds the compute unit;
//! 7. **Slot end** — unstarted bindings dissolve back into the pool
//!    (dynamic re-placement, \[D5\]); the iteration barrier fires when all `m`
//!    tasks are done.
//!
//! Determinism: given equal configurations, seeds and scheduler, two runs
//! produce bit-identical reports. The availability sources are pre-seeded by
//! the caller, so different heuristics can face byte-identical availability
//! (common random numbers, the paper's Section 7 methodology).
//!
//! ## Scratch and borrow lifecycle (the zero-allocation slot loop)
//!
//! Campaign-scale runs execute up to 10⁶ slots per instance, so the slot
//! loop performs **no heap allocation in steady state**. Two mechanisms make
//! that possible:
//!
//! * **Per-run borrows.** Everything a [`vg_core::SchedView`] exposes that
//!   does not change slot-to-slot — one [`ChainStats`] per processor — is
//!   precomputed once in [`Simulation::new`] and stored in `chains`. A view
//!   is then just a pair of borrowed slices (`&scratch.procs`, `&chains`)
//!   plus three scalars, rebuilt for free every slot.
//! * **Per-slot scratch.** Every transient collection the phases need —
//!   processor snapshots, the schedulable-task list, replica candidates,
//!   placement output, the free-worker bitmask, the channel request queue,
//!   per-worker request flags, the completion list, crash/cancel spill
//!   buffers and the timeline activity row — lives in a persistent
//!   `SlotScratch` owned by the engine. Buffers are `clear()`ed and
//!   refilled in place; after the first few slots every buffer has reached
//!   its high-water capacity and the loop stops touching the allocator.
//!   Sorting uses `sort_unstable_by_key` on keys made unique by the worker
//!   index, which is allocation-free and deterministic.
//!
//! Heuristics cooperate through [`Scheduler::place_into`], appending into
//! the engine-owned placement buffer and keeping their own internal scratch
//! (see `vg_core::greedy`). The iteration barrier reuses the
//! `IterationState` buffers via `reset` rather than reallocating them.
//!
//! ## Worker storage: SoA by default, AoS as oracle
//!
//! Per-worker state lives behind the [`WorkerStore`] trait
//! (`crate::store`): the engine is generic — and monomorphized — over the
//! layout, defaulting to the cache-tight hot/cold [`WorkerSoA`] split while
//! [`ReferenceSimulation`] retains the original `Vec<WorkerRuntime>` path.
//! Every phase above is written as index loops over the store, so with the
//! SoA each pass walks dense columns (1-byte states, the `occupancy` byte
//! for the free-mask and unbind early-outs) instead of dragging each
//! worker's cold fields through the cache. The
//! `crates/sim/tests/soa_equivalence.rs` grid pins the two layouts to
//! byte-identical [`SimReport`]s across all 17 heuristics.
//!
//! ## Incremental snapshots and exact-location cancellation
//!
//! Two per-slot `O(p)` walks are avoided by bookkeeping:
//!
//! * **Scheduler snapshots are patched, not rebuilt.** The store tracks a
//!   per-worker dirty bit (see the [`WorkerStore`] dirty-bit contract) set
//!   by every mutation a snapshot can observe; `snapshot_procs` rewrites
//!   the persistent buffer's states and recomputes `delay`/`has_program`
//!   only for dirty workers. The AoS oracle opts out
//!   ([`WorkerStore::INCREMENTAL_SNAPSHOTS`]) and rebuilds from scratch,
//!   so the equivalence grid cross-checks the two paths; debug builds also
//!   assert patched ≡ rebuilt at every consult.
//! * **Sibling cancellation visits only the workers that hold copies.**
//!   A completed task's remaining copies are located from the iteration
//!   state (the pinned original), the bind order (still-bound copies) and
//!   an exact-count early-exit scan for pinned replicas, instead of
//!   scanning every worker per completion (`O(p)` per completed task was
//!   ~27% of slot cost at `p = 1024`); debug builds re-scan and assert
//!   nothing survived.
//!
//! The only remaining steady-state allocations are inside a recorded
//! [`Timeline`] (opt-in via [`SimOptions::record_timeline`], one push per
//! worker-slot) — campaigns leave it off. The `alloc-counter` test harness
//! in `vg-bench` (`cargo test -p vg-bench --features alloc-counter
//! --release`) pins this property as a regression test.

use vg_core::share::{share_quotas, SharePolicy};
use vg_core::view::{AppView, ProcSnapshot, SchedView};
use vg_core::Scheduler;
use vg_des::{Slot, SlotSpan};
use vg_markov::availability::{ChainStats, ProcState};
use vg_platform::fault::CompiledScript;
use vg_platform::network::{BandwidthLedger, TransferKind};
use vg_platform::source::{AvailabilitySource, MarkovSourceBank, RowSource, SharedTraceMatrix};
use vg_platform::volatility::ScriptedOverlay;
use vg_platform::{AppConfig, ConfigError, PlatformConfig, ProcessorId};

use crate::app::{
    app_of, global_task, iter_for, local_task, AppRuntime, AppSpec, ReconfigPolicy, MAX_APPS,
    MAX_APP_TASKS,
};
use crate::report::{AppReport, Counters, MultiReport, SimReport};
use crate::store::{AosWorkers, WorkerSoA, WorkerStore, SUMMARY_BLOCK};
use crate::task::{CopyId, OriginalState, TaskId, NO_REPLICA_WORKER};
use crate::timeline::{Activity, SlotMarks, Timeline};
use crate::worker::{ComputeState, TransferState};

/// How many placements the engine requests from the scheduler per slot
/// (see `docs/placement_budget.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementBudget {
    /// Paper-literal: request a placement for **every** pool task, every
    /// slot. Placements that cannot bind dissolve at slot end (\[D5\]) and
    /// are recomputed from scratch next slot — at `p = 1024` that is
    /// hundreds of discarded score evaluations per slot.
    #[default]
    Uncapped,
    /// Demand-driven: cap each pool request at the slot's **bindable
    /// capacity** (workers that are `UP` with bind room), topping up with
    /// bounded re-requests when `try_bind` rejects a placement. Slots where
    /// the pool fits under the capacity take the exact `Uncapped` code
    /// path, so runs in which the cap never *engages* are bit-identical to
    /// `Uncapped` (pinned by `cap_equivalence.rs`); engaging slots may
    /// place differently — the `cap_fidelity` study measures that delta.
    BindCapacity,
}

/// Engine options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOptions {
    /// Hard cap on simulated slots (the run reports incomplete beyond it).
    pub max_slots: Slot,
    /// Enable the Section 6.1 replication policy.
    pub replication: bool,
    /// Maximum *extra* copies per task (the paper uses 2 → 3 copies total).
    pub max_extra_replicas: u8,
    /// Record a per-slot activity [`Timeline`] (one byte per worker-slot).
    pub record_timeline: bool,
    /// Per-slot placement-request budget (default [`PlacementBudget::Uncapped`]).
    pub placement_budget: PlacementBudget,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            max_slots: 1_000_000,
            replication: true,
            max_extra_replicas: 2,
            record_timeline: false,
            placement_budget: PlacementBudget::Uncapped,
        }
    }
}

/// Wall-clock accounting of the (fused) slot phases, recorded by
/// [`Simulation::step`] when the `phase-profile` feature is enabled. Global
/// and cumulative across every engine on the process — reset before the
/// measured window, then read the split. The `phase_profile` bench in
/// vg-bench drives this and prints percentages per platform size.
#[cfg(feature = "phase-profile")]
pub mod phase_profile {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Display names, index-aligned with [`NANOS`].
    pub const NAMES: [&str; 6] = [
        "states+crashes",
        "schedule",
        "transfers",
        "compute",
        "promotions+unbind",
        "slot_end",
    ];

    /// Cumulative nanoseconds per fused phase.
    pub static NANOS: [AtomicU64; 6] = [
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ];

    /// Display names of the schedule sub-phases, index-aligned with
    /// [`SUB`] and listed in slot execution order.
    pub const SUB_NAMES: [&str; 8] = [
        "snapshot",
        "pool_place",
        "pool_bind",
        "cands",
        "free_scan",
        "mask",
        "replica_place",
        "replica_bind",
    ];

    /// Cumulative nanoseconds of the schedule phase's sub-parts: the
    /// snapshot consult, the pool (originals) placement and its bind
    /// loop, the replica-candidate generation, the free-worker scan, the
    /// snapshot masking pass, and the replica placement and its bind/mint
    /// loop. Together they partition (almost all of) the `schedule` entry
    /// of [`NANOS`] — the split that told this codebase the
    /// Eq.-(2)/Theorem-2 score evaluations, not the snapshot walk,
    /// dominated at `p = 1024`, the one that separates selector cost (the
    /// `*_place` entries) from bind bookkeeping, and — since the
    /// free-scan/mask/cands split — the one that shows what the replica
    /// phase's candidates-first early-out actually skips.
    pub static SUB: [AtomicU64; 8] = [
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ];

    /// Zeroes every accumulator.
    pub fn reset() {
        for n in &NANOS {
            n.store(0, Ordering::Relaxed);
        }
        for n in &SUB {
            n.store(0, Ordering::Relaxed);
        }
    }

    /// Reads all accumulators.
    #[must_use]
    pub fn snapshot() -> [u64; 6] {
        std::array::from_fn(|i| NANOS[i].load(Ordering::Relaxed))
    }

    /// Reads the schedule sub-phase accumulators.
    #[must_use]
    pub fn sub_snapshot() -> [u64; 8] {
        std::array::from_fn(|i| SUB[i].load(Ordering::Relaxed))
    }
}

/// Snapshot `delay` written for processors that are not `UP`.
///
/// Schedulers never read it — every heuristic restricts placement (and
/// scoring) to `UP` processors — so release builds keep the cheap 0.
/// Debug builds **poison** it instead: a future heuristic that does score
/// a non-UP worker would otherwise silently treat a DOWN machine as
/// zero-delay and prefer it; with the poison, `completion_time`'s
/// `debug_assert` (and, failing that, the `delay + …` overflow check)
/// aborts the run loudly.
const NON_UP_DELAY: SlotSpan = if cfg!(debug_assertions) {
    SlotSpan::MAX
} else {
    0
};

/// Largest platform on which the O(p)-per-slot debug sweeps (the full
/// incremental-vs-full snapshot oracle, the all-worker pipeline invariant
/// walk) stay exhaustive. Beyond it they switch to bounded deterministic
/// samples — at p = 131072 the exhaustive versions make debug builds (and
/// the large-p CI tests) unusable. Covers every paper-scale platform and
/// the whole committed p ≤ 1024 bench/test grid with full strength.
#[cfg(debug_assertions)]
const EXHAUSTIVE_DEBUG_MAX_P: usize = 4096;

/// Width of the rotating per-slot sample window used by the large-p debug
/// sweeps (see [`EXHAUSTIVE_DEBUG_MAX_P`]).
#[cfg(debug_assertions)]
const DEBUG_SAMPLE_WINDOW: usize = 64;

/// Whether debug sweeps must stay exhaustive for a p-worker platform:
/// always at paper/bench scales, opt-in via `VG_FULL_DEBUG_SWEEPS=1`
/// beyond (checked once; debug-only, so the env read can never perturb a
/// release simulation).
#[cfg(debug_assertions)]
fn exhaustive_debug_checks(p: usize) -> bool {
    static FULL: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    p <= EXHAUSTIVE_DEBUG_MAX_P
        || *FULL.get_or_init(|| std::env::var_os("VG_FULL_DEBUG_SWEEPS").is_some_and(|v| v != "0"))
}

/// Runs `$body` for every busy worker `$q` of `$workers`, in ascending
/// order. Stores that maintain a busy bitmap ([`WorkerStore::busy_word`])
/// are walked bit by bit — O(busy) instead of O(p), the difference between
/// a volunteer grid's handful of active workers and its 131072-processor
/// platform; other layouts take the block-chunked dense scan gated on the
/// per-block busy summaries (the AoS oracle's `true`-everywhere default
/// degrades it to the original full scan).
///
/// Each word is **copied** before its bits are drained, so `$body` may
/// mutate occupancy. This is sound in the phases that use it because
/// busyness is *monotone non-increasing* there (no phase below binds new
/// copies): a bit cleared mid-phase belongs to a worker either already
/// visited or re-rejected by `$body`'s own `busy`/state checks, and no bit
/// can newly appear. The SoA⇄AoS oracle grid pins the two paths to
/// identical behavior.
macro_rules! for_each_busy_worker {
    ($workers:expr, $q:ident, $body:block) => {{
        let p = $workers.len();
        if S::HAS_BUSY_WORDS {
            for wi in 0..p.div_ceil(64) {
                let mut word = $workers.busy_word(wi);
                while word != 0 {
                    let $q = wi * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    $body
                }
            }
        } else {
            for b in 0..$workers.summary_blocks() {
                if !$workers.block_may_be_busy(b) {
                    continue;
                }
                let start = b * SUMMARY_BLOCK;
                let end = (start + SUMMARY_BLOCK).min(p);
                #[allow(clippy::needless_range_loop)] // mirrors the bit walk
                for $q in start..end {
                    $body
                }
            }
        }
    }};
}

/// A pending channel request during phase 4.
#[derive(Debug, Clone, Copy)]
enum Request {
    /// Continue (or start) the program transfer of a worker.
    Prog { widx: usize },
    /// Continue the in-flight data transfer of a worker.
    DataCont { widx: usize },
    /// Start the data transfer of a bound copy.
    DataNew { widx: usize, copy: CopyId },
}

/// Persistent per-slot scratch space: every transient collection of the
/// seven phases, reused across slots so the steady-state loop never touches
/// the allocator (see the module docs).
#[derive(Debug, Default)]
struct SlotScratch {
    /// Scheduler-visible snapshots. **Persistent across slots**: with an
    /// incremental store ([`WorkerStore::INCREMENTAL_SNAPSHOTS`]) the
    /// buffer is patched in place — states rewritten, `delay` /
    /// `has_program` recomputed only for dirty workers — instead of being
    /// rebuilt; the oracle layout rebuilds it from scratch every consult.
    procs: Vec<ProcSnapshot>,
    /// Whether `procs` holds a patchable snapshot of the *current run*.
    /// Reset at run start (an arena reuses this scratch across runs and
    /// platforms), forcing the first consult to rebuild fully.
    procs_valid: bool,
    /// Schedulable original tasks (phase 3).
    pool: Vec<TaskId>,
    /// Replica candidates (phase 3).
    cands: Vec<TaskId>,
    /// Scheduler placement output (phase 3).
    placements: Vec<ProcessorId>,
    /// Pool tasks still awaiting a bind inside the [`PlacementBudget::
    /// BindCapacity`] top-up loop (phase 3); compacted in place as binds
    /// succeed, untouched on the uncapped path.
    pending: Vec<TaskId>,
    /// Free-worker bitmask for the replica path (phase 3): `free[q]` iff
    /// worker `q` is UP and completely idle. **Persistent across slots**
    /// when `free_valid` holds: with a summary-tracking store only the
    /// blocks named by [`WorkerStore::changed_blocks`] are recomputed at
    /// each consult instead of rescanning all p workers.
    free: Vec<bool>,
    /// Per-[`SUMMARY_BLOCK`] population counts of `free`, maintained
    /// alongside it so the free total needs no dense re-count.
    free_blocks: Vec<u32>,
    /// Σ `free_blocks` — the replica path's candidate capacity.
    free_total: usize,
    /// Whether `free`/`free_blocks` describe the current run's platform.
    /// Reset at run start, forcing the first consult to rebuild fully.
    free_valid: bool,
    /// Pinned-replica workers of the task being sibling-canceled, copied
    /// out of the iteration record before the per-worker cancels mutate it.
    replica_pins: Vec<u32>,
    /// Per-worker remaining bind room for a capped pool round (phase 3):
    /// `2 - occupancy` for UP workers, 0 otherwise, decremented as binds
    /// land. Passed to the scheduler as [`SchedView::room`] so an engaged
    /// round never stacks placements past what `try_bind` can accept.
    /// Untouched on the uncapped path.
    room: Vec<u8>,
    /// In-flight transfer continuations, sorted by (began_at, widx).
    continuations: Vec<(Slot, usize, Request)>,
    /// The channel request queue in grant priority order (phase 4).
    requests: Vec<Request>,
    /// Per-worker "already requested the program this slot" flags.
    prog_requested: Vec<bool>,
    /// Per-worker "already requested data this slot" flags.
    data_requested: Vec<bool>,
    /// Copies that finished computing this slot (phase 5).
    completions: Vec<(usize, CopyId)>,
    /// This slot's availability states, one per worker (phase 1).
    state_row: Vec<ProcState>,
    /// Spill buffer for crash losses and sibling cancellations.
    copies: Vec<CopyId>,
    /// One activity row for timeline recording (phase 7).
    activities: Vec<Activity>,
    /// Per-application share weights of the slot (0 for finished apps);
    /// multi-application slots only.
    weights: Vec<u32>,
    /// Per-application placement quotas of the slot ([`share_quotas`]
    /// output); multi-application slots only.
    quotas: Vec<usize>,
}

impl SlotScratch {
    /// Pre-sizes every buffer to its steady-state high-water mark for `p`
    /// workers and `m` tasks per iteration.
    fn with_capacity(p: usize, m: usize) -> Self {
        Self {
            procs: Vec::with_capacity(p),
            procs_valid: false,
            pool: Vec::with_capacity(m),
            cands: Vec::with_capacity(m),
            placements: Vec::with_capacity(m.max(p)),
            pending: Vec::with_capacity(m),
            free: Vec::with_capacity(p),
            free_blocks: Vec::with_capacity(p.div_ceil(SUMMARY_BLOCK)),
            free_total: 0,
            free_valid: false,
            replica_pins: Vec::with_capacity(4),
            room: Vec::with_capacity(p),
            continuations: Vec::with_capacity(p),
            requests: Vec::with_capacity(2 * p),
            prog_requested: Vec::with_capacity(p),
            data_requested: Vec::with_capacity(p),
            completions: Vec::with_capacity(p),
            state_row: Vec::with_capacity(p),
            copies: Vec::with_capacity(8),
            activities: Vec::with_capacity(p),
            weights: Vec::with_capacity(4),
            quotas: Vec::with_capacity(4),
        }
    }
}

/// Lean result of an arena run: what a campaign aggregation needs, nothing
/// it doesn't. No owned strings or vectors, so producing one allocates
/// nothing — the full [`SimReport`] stays available through
/// [`Simulation::run`] when timelines or counters are wanted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Total slots to complete all iterations; `None` if the cap was hit.
    pub makespan: Option<Slot>,
    /// Slots actually simulated.
    pub slots_run: Slot,
    /// Iterations completed before the run ended.
    pub completed_iterations: u64,
}

impl RunOutcome {
    /// Makespan if complete, otherwise the burned slot cap (the
    /// pessimistic-but-total metric; see [`SimReport::makespan_or_cap`]).
    #[must_use]
    pub fn makespan_or_cap(&self) -> Slot {
        self.makespan.unwrap_or(self.slots_run)
    }

    /// True when every requested iteration completed.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.makespan.is_some()
    }
}

/// Lean per-application result of a multi-application arena run — the
/// [`RunOutcome`]-shaped slice of one application's bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppOutcome {
    /// Slots until this application's final barrier; `None` if the run
    /// ended (all-done or slot cap) before it finished.
    pub makespan: Option<Slot>,
    /// Iterations the application completed before the run ended.
    pub completed_iterations: u64,
    /// `tasks_per_iteration` of the application's *last* iteration — under
    /// [`crate::app::ReconfigPolicy::Moldable`] this is where the final
    /// resize landed.
    pub final_m: usize,
    /// Task completions credited to this application.
    pub tasks_completed: u64,
}

/// Result of [`SimArena::run_apps_seeded`]: the combined outcome plus one
/// [`AppOutcome`] per application, in engine app order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiOutcome {
    /// Whole-platform outcome (same semantics as a single-app run: finished
    /// iff *every* application finished).
    pub combined: RunOutcome,
    /// Per-application outcomes.
    pub apps: Vec<AppOutcome>,
}

/// A **warmed simulation arena**: every per-run buffer of the engine —
/// worker runtimes (including their `bound` vectors), chain statistics,
/// the source vector, iteration bookkeeping, the whole `SlotScratch`,
/// slot marks and the bind-order queue — kept alive across runs so that
/// back-to-back simulations stop paying the ~25-allocation construction
/// cost of [`Simulation::new`].
///
/// Intended use: one arena per worker thread of a campaign fan-out, driven
/// through [`SimArena::run_seeded`] for every (heuristic, trial) instance.
/// Results are bit-identical to [`Simulation::run_seeded`] with the same
/// inputs — the arena only recycles allocations, never state: every buffer
/// is reset (not merely reused) before a run, and determinism tests pin the
/// equivalence.
///
/// Timeline recording is not supported here (a timeline's size is the run's
/// output, not scratch); request it through [`Simulation`] instead.
#[derive(Default)]
pub struct SimArena {
    workers: WorkerSoA,
    chains: Vec<ChainStats>,
    sources: Vec<Box<dyn AvailabilitySource>>,
    /// Warmed dense all-Markov bank (columns keep their capacity across
    /// runs); re-seeded per run by [`Self::run_seeded`] when the platform
    /// qualifies.
    dense: MarkovSourceBank,
    /// Warmed per-application runtimes (their iteration-state buffers keep
    /// capacity across runs); re-initialized in place per run.
    apps: Vec<AppRuntime>,
    iteration_completed_at: Vec<Slot>,
    bind_order: Vec<(usize, CopyId)>,
    scratch: SlotScratch,
    slot_marks: Vec<SlotMarks>,
}

impl std::fmt::Debug for SimArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimArena")
            .field("warmed_workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl SimArena {
    /// An empty (cold) arena; buffers warm up over the first run.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs one simulation, reusing this arena's buffers. Seeds and
    /// semantics are exactly [`Simulation::run_seeded`]'s: sources are built
    /// from `trace_seeds.child(q)` per processor, so common-random-number
    /// comparisons work unchanged.
    ///
    /// # Errors
    /// Propagates configuration validation errors, and rejects
    /// [`SimOptions::record_timeline`] (unsupported in arena mode).
    pub fn run_seeded(
        &mut self,
        platform: &PlatformConfig,
        app: &AppConfig,
        scheduler: Box<dyn Scheduler>,
        trace_seeds: vg_des::rng::SeedPath,
        options: SimOptions,
    ) -> Result<RunOutcome, ConfigError> {
        platform.validate()?;
        let specs = [AppSpec::rigid(*app)];
        validate_app_specs(&specs)?;
        if options.record_timeline {
            return Err(ConfigError(
                "SimArena does not record timelines; use Simulation::run_seeded".into(),
            ));
        }
        let dense = self.prepare_sources(platform, &trace_seeds);
        if dense {
            let bank = SourceBank::Dense(std::mem::take(&mut self.dense));
            Ok(self.run_core_with(
                platform,
                &specs,
                SharePolicy::default(),
                scheduler,
                bank,
                None,
                options,
            ))
        } else {
            Ok(self.run_core(platform, &specs, SharePolicy::default(), scheduler, options))
        }
    }

    /// Runs several co-scheduled applications over one platform, reusing
    /// this arena's buffers; the multi-application twin of
    /// [`Self::run_seeded`]. Seeds, sources and the slot loop are shared by
    /// all applications — they compete for the same volatile workers under
    /// `share` — and a one-spec roster with [`AppSpec::rigid`] is
    /// bit-identical to [`Self::run_seeded`].
    ///
    /// # Errors
    /// Propagates validation errors (empty/oversized rosters, per-app
    /// config problems, mismatched communication parameters) and rejects
    /// timeline recording as in [`Self::run_seeded`].
    pub fn run_apps_seeded(
        &mut self,
        platform: &PlatformConfig,
        specs: &[AppSpec],
        share: SharePolicy,
        scheduler: Box<dyn Scheduler>,
        trace_seeds: vg_des::rng::SeedPath,
        options: SimOptions,
    ) -> Result<MultiOutcome, ConfigError> {
        platform.validate()?;
        validate_app_specs(specs)?;
        if options.record_timeline {
            return Err(ConfigError(
                "SimArena does not record timelines; use Simulation::run_multi_seeded".into(),
            ));
        }
        let dense = self.prepare_sources(platform, &trace_seeds);
        let combined = if dense {
            let bank = SourceBank::Dense(std::mem::take(&mut self.dense));
            self.run_core_with(platform, specs, share, scheduler, bank, None, options)
        } else {
            self.run_core(platform, specs, share, scheduler, options)
        };
        let apps = self
            .apps
            .iter()
            .map(|rt| AppOutcome {
                makespan: rt.completed_at.map(|s| s + 1),
                completed_iterations: rt.iterations_done,
                final_m: rt.iter.m(),
                tasks_completed: rt.tasks_completed,
            })
            .collect(); // tidy:allow(hot_alloc): per-run result assembly, after the slot loop.
        Ok(MultiOutcome { combined, apps })
    }

    /// Rebuilds per-run sources and chain statistics *into* the warmed
    /// buffers. All-Markov platforms take the dense bank (bit-identical
    /// states, no per-processor boxing) and return `true`; the rest rebuild
    /// boxed sources.
    fn prepare_sources(
        &mut self,
        platform: &PlatformConfig,
        trace_seeds: &vg_des::rng::SeedPath,
    ) -> bool {
        let dense = self.dense.rebuild_from_platform(platform, trace_seeds);
        self.sources.clear();
        if !dense {
            self.sources.extend(
                platform
                    .processors
                    .iter()
                    .enumerate()
                    .map(|(q, pc)| pc.avail.build_source(trace_seeds.child(q as u64).rng())),
            );
        }
        self.chains.clear();
        self.chains.extend(
            platform
                .processors
                .iter()
                .map(|pc| ChainStats::new(pc.believed_chain())),
        );
        dense
    }

    /// Runs one simulation with **caller-shared per-scenario state**: chain
    /// statistics computed once per platform (see [`platform_chain_stats`])
    /// and availability sources supplied directly (custom generators,
    /// replayed archive traces, …). To share one *recorded* trace across
    /// the heuristics of an instance, use [`Self::run_shared_trace`], which
    /// consumes a [`SharedTraceMatrix`] row-by-row instead.
    ///
    /// `chains` must be the statistics of `platform`'s believed chains, in
    /// processor order; `sources` must yield exactly one source per
    /// processor, in order. Results are bit-identical to
    /// [`Self::run_seeded`] with equivalently seeded sources.
    ///
    /// # Errors
    /// Propagates validation errors; rejects timeline recording and
    /// mismatched `chains`/`sources` lengths.
    pub fn run_configured(
        &mut self,
        platform: &PlatformConfig,
        app: &AppConfig,
        scheduler: Box<dyn Scheduler>,
        chains: &[ChainStats],
        sources: impl IntoIterator<Item = Box<dyn AvailabilitySource>>,
        options: SimOptions,
    ) -> Result<RunOutcome, ConfigError> {
        platform.validate()?;
        let specs = [AppSpec::rigid(*app)];
        validate_app_specs(&specs)?;
        if options.record_timeline {
            return Err(ConfigError(
                "SimArena does not record timelines; use Simulation::run_seeded".into(),
            ));
        }
        if chains.len() != platform.p() {
            // tidy:allow(hot_alloc): config-validation error path, taken before any slot runs.
            return Err(ConfigError(format!(
                "{} chain stats for {} processors",
                chains.len(),
                platform.p()
            )));
        }
        self.sources.clear();
        self.sources.extend(sources);
        if self.sources.len() != platform.p() {
            // tidy:allow(hot_alloc): config-validation error path, taken before any slot runs.
            return Err(ConfigError(format!(
                "{} sources for {} processors",
                self.sources.len(),
                platform.p()
            )));
        }
        self.chains.clear();
        self.chains.extend_from_slice(chains);
        Ok(self.run_core(platform, &specs, SharePolicy::default(), scheduler, options))
    }

    /// Runs one simulation against a [`SharedTraceMatrix`] recording, with
    /// per-scenario `chains` as in [`Self::run_configured`]. The engine
    /// consumes the recording **row by row** — one borrow and `p` byte reads
    /// per slot — so replaying heuristics skip per-processor sampling
    /// entirely. Bit-identical to [`Self::run_seeded`] over sources with the
    /// recording's seeds.
    ///
    /// # Errors
    /// Propagates validation errors; rejects timeline recording and a
    /// matrix/chains whose width is not `platform.p()`.
    pub fn run_shared_trace(
        &mut self,
        platform: &PlatformConfig,
        app: &AppConfig,
        scheduler: Box<dyn Scheduler>,
        chains: &[ChainStats],
        trace: &SharedTraceMatrix,
        options: SimOptions,
    ) -> Result<RunOutcome, ConfigError> {
        self.run_shared_trace_overlay(platform, app, scheduler, chains, trace, None, options)
    }

    /// [`Self::run_shared_trace`] with a scripted fault overlay: the script
    /// forces states onto each replayed row *after* it is read, leaving the
    /// recording itself untouched — every heuristic of an instance still
    /// replays byte-identical base availability (common random numbers),
    /// with the same scripted faults layered on top. `None` (and a
    /// passthrough script) is bit-identical to [`Self::run_shared_trace`].
    ///
    /// # Errors
    /// As [`Self::run_shared_trace`], plus a script compiled for a
    /// different platform size.
    #[allow(clippy::too_many_arguments)] // mirrors run_shared_trace + the overlay
    pub fn run_shared_trace_overlay(
        &mut self,
        platform: &PlatformConfig,
        app: &AppConfig,
        scheduler: Box<dyn Scheduler>,
        chains: &[ChainStats],
        trace: &SharedTraceMatrix,
        script: Option<&CompiledScript>,
        options: SimOptions,
    ) -> Result<RunOutcome, ConfigError> {
        platform.validate()?;
        let specs = [AppSpec::rigid(*app)];
        validate_app_specs(&specs)?;
        if options.record_timeline {
            return Err(ConfigError(
                "SimArena does not record timelines; use Simulation::run_seeded".into(),
            ));
        }
        if chains.len() != platform.p() || trace.p() != platform.p() {
            // tidy:allow(hot_alloc): config-validation error path, taken before any slot runs.
            return Err(ConfigError(format!(
                "{} chain stats / {}-wide trace for {} processors",
                chains.len(),
                trace.p(),
                platform.p()
            )));
        }
        if let Some(s) = script {
            if s.p() != platform.p() {
                // tidy:allow(hot_alloc): config-validation error path, taken before any slot runs.
                return Err(ConfigError(format!(
                    "fault script compiled for {} workers on a {}-processor platform",
                    s.p(),
                    platform.p()
                )));
            }
        }
        self.chains.clear();
        self.chains.extend_from_slice(chains);
        let bank = SourceBank::Shared {
            trace: trace.handle(),
            next_slot: 0,
        };
        // tidy:allow(hot_alloc): per-run overlay construction, before the first slot.
        let overlay = script.map(|s| ScriptedOverlay::new(s.clone()));
        Ok(self.run_core_with(
            platform,
            &specs,
            SharePolicy::default(),
            scheduler,
            bank,
            overlay,
            options,
        ))
    }

    /// Shared tail of the `run_*` entry points; expects `self.sources` and
    /// `self.chains` to be populated for `platform`.
    fn run_core(
        &mut self,
        platform: &PlatformConfig,
        specs: &[AppSpec],
        share: SharePolicy,
        scheduler: Box<dyn Scheduler>,
        options: SimOptions,
    ) -> RunOutcome {
        let bank = SourceBank::PerProc(std::mem::take(&mut self.sources));
        self.run_core_with(platform, specs, share, scheduler, bank, None, options)
    }

    /// Innermost run loop over an explicit source bank (and optional
    /// scripted overlay).
    #[allow(clippy::too_many_arguments)] // private tail shared by every entry point
    fn run_core_with(
        &mut self,
        platform: &PlatformConfig,
        specs: &[AppSpec],
        share: SharePolicy,
        mut scheduler: Box<dyn Scheduler>,
        bank: SourceBank,
        overlay: Option<ScriptedOverlay>,
        options: SimOptions,
    ) -> RunOutcome {
        scheduler.begin_run();
        let p = platform.p();
        self.workers
            .reset_for(platform.processors.iter().map(|pc| pc.spec));
        // Rebuild the per-app runtimes *into* the warmed vector: existing
        // entries re-initialize in place (keeping their iteration-state
        // buffers), extra entries from a previous wider run are dropped.
        self.apps.truncate(specs.len());
        for (i, spec) in specs.iter().enumerate() {
            if i < self.apps.len() {
                self.apps[i].reinit(i, spec, options.max_extra_replicas);
            } else {
                self.apps
                    .push(AppRuntime::new(i, spec, options.max_extra_replicas));
            }
        }
        self.iteration_completed_at.clear();
        self.bind_order.clear();
        self.slot_marks.clear();
        self.slot_marks.resize(p, SlotMarks::default());
        // The snapshot and free-mask buffers may hold another run's
        // platform; the first consult must rebuild them fully.
        self.scratch.procs_valid = false;
        self.scratch.free_valid = false;

        let mut sim = Simulation {
            app: CommParams {
                t_prog: specs[0].config.t_prog,
                t_data: specs[0].config.t_data,
            },
            apps: std::mem::take(&mut self.apps),
            share,
            workers: std::mem::take(&mut self.workers),
            sources: bank,
            chains: std::mem::take(&mut self.chains),
            scheduler,
            ledger: BandwidthLedger::new(platform.ncom),
            options,
            slot: 0,
            iteration_completed_at: std::mem::take(&mut self.iteration_completed_at),
            counters: Counters::default(),
            bind_order: std::mem::take(&mut self.bind_order),
            cap_engagements: 0,
            overlay,
            scratch: std::mem::take(&mut self.scratch),
            timeline: None,
            slot_marks: std::mem::take(&mut self.slot_marks),
        };
        while !sim.is_done() {
            sim.step();
        }
        let outcome = RunOutcome {
            makespan: sim
                .apps
                .iter()
                .all(AppRuntime::finished)
                .then_some(sim.slot),
            slots_run: sim.slot,
            completed_iterations: sim.apps.iter().map(|a| a.iterations_done()).sum(),
        };

        // Reclaim the warmed buffers for the next run.
        self.workers = sim.workers;
        match sim.sources {
            SourceBank::PerProc(v) => self.sources = v,
            SourceBank::Dense(b) => self.dense = b,
            SourceBank::Shared { .. } | SourceBank::Rows(_) => {}
        }
        self.chains = sim.chains;
        self.apps = sim.apps;
        self.iteration_completed_at = sim.iteration_completed_at;
        self.bind_order = sim.bind_order;
        self.scratch = sim.scratch;
        self.slot_marks = sim.slot_marks;
        outcome
    }
}

/// Validates a co-scheduled application roster: 1 to [`MAX_APPS`]
/// applications, each individually valid, every `tasks_per_iteration`
/// inside the per-app task-id namespace ([`MAX_APP_TASKS`]), and all
/// communication parameters equal — `T_prog`/`T_data` describe the shared
/// platform links, so co-scheduled applications cannot disagree on them.
fn validate_app_specs(specs: &[AppSpec]) -> Result<(), ConfigError> {
    if specs.is_empty() {
        return Err(ConfigError("at least one application is required".into()));
    }
    if specs.len() > MAX_APPS {
        // tidy:allow(hot_alloc): config-validation error path, taken before any slot runs.
        return Err(ConfigError(format!(
            "{} applications exceed the supported maximum of {MAX_APPS}",
            specs.len()
        )));
    }
    let (t_prog, t_data) = (specs[0].config.t_prog, specs[0].config.t_data);
    for (i, spec) in specs.iter().enumerate() {
        spec.config.validate()?;
        if spec.config.tasks_per_iteration > MAX_APP_TASKS {
            // tidy:allow(hot_alloc): config-validation error path, taken before any slot runs.
            return Err(ConfigError(format!(
                "application {i}: {} tasks per iteration exceed the per-app task-id namespace ({MAX_APP_TASKS})",
                spec.config.tasks_per_iteration
            )));
        }
        if spec.config.t_prog != t_prog || spec.config.t_data != t_data {
            // tidy:allow(hot_alloc): config-validation error path, taken before any slot runs.
            return Err(ConfigError(format!(
                "application {i} disagrees on communication parameters \
                 (T_prog/T_data are platform-wide under co-scheduling)"
            )));
        }
    }
    Ok(())
}

/// Chain statistics of every processor's believed chain, in processor order
/// — compute once per platform and share across every run on it via
/// [`SimArena::run_configured`] or [`SimArena::run_shared_trace`] (the
/// stationary-distribution solve behind [`ChainStats::new`] is ~half the
/// per-run setup cost otherwise).
#[must_use]
pub fn platform_chain_stats(platform: &PlatformConfig) -> Vec<ChainStats> {
    platform
        .processors
        .iter()
        .map(|pc| ChainStats::new(pc.believed_chain()))
        .collect() // tidy:allow(hot_alloc): once-per-platform precompute, shared across all runs.
}

/// Where a run's availability states come from.
enum SourceBank {
    /// One live source per processor (the stand-alone path).
    PerProc(Vec<Box<dyn AvailabilitySource>>),
    /// A dense all-Markov bank: three contiguous columns advanced in one
    /// linear sweep — the platform-scale path for seeded runs, bit-identical
    /// to `PerProc` over `markov_source`s with the same seeds (pinned by
    /// `dense_markov_bank_matches_boxed_streams` in vg-platform and the
    /// seeded-vs-explicit-sources determinism test below).
    Dense(MarkovSourceBank),
    /// A shared recording, consumed row-by-row: one borrow and `p`
    /// contiguous byte reads per slot instead of `p` virtual calls — the
    /// common-random-numbers fast path for campaign instances.
    Shared {
        trace: SharedTraceMatrix,
        next_slot: usize,
    },
    /// A live whole-row generator (correlated volatility models): one call
    /// emits every processor's state for the slot, so cross-worker
    /// correlation stays expressible without per-processor sources.
    Rows(Box<dyn RowSource>),
}

/// The communication parameters every application of a run shares.
///
/// `T_prog`/`T_data` are properties of the platform's links, not of any one
/// application, so co-scheduled applications must agree on them
/// ([`validate_app_specs`] enforces this). Kept under the historical field
/// name `app` inside [`Simulation`] because the phases read `app.t_prog` /
/// `app.t_data` exactly where the old single-app config lived.
#[derive(Debug, Clone, Copy)]
struct CommParams {
    t_prog: SlotSpan,
    t_data: SlotSpan,
}

/// The simulation engine. Construct with [`Simulation::new`], consume with
/// [`Simulation::run`] (or drive slot-by-slot with [`Simulation::step`]).
///
/// Generic over the worker-storage layout `S` (monomorphized, zero runtime
/// cost): the default [`WorkerSoA`] is the hot/cold split the production
/// engine runs on, while [`ReferenceSimulation`] (= `Simulation<AosWorkers>`)
/// retains the original `Vec<WorkerRuntime>` path as the bit-identity
/// oracle — see `crates/sim/tests/soa_equivalence.rs`.
///
/// One engine drives a *roster* of application runtimes over the shared
/// worker store ([`crate::app::AppRuntime`]); a one-app roster is the
/// historical single-application engine, bit for bit. Task ids in worker
/// columns are namespaced by application ([`crate::app`]).
pub struct Simulation<S: WorkerStore = WorkerSoA> {
    app: CommParams,
    /// The co-scheduled application runtimes, engine app order. Never
    /// empty; `apps.len() == 1` selects the single-application phases.
    apps: Vec<AppRuntime>,
    /// How multi-application slots split bindable capacity between the
    /// roster's pools (never consulted with a single application).
    share: SharePolicy,
    workers: S,
    sources: SourceBank,
    /// Per-run chain statistics, built once and borrowed by every view.
    chains: Vec<ChainStats>,
    scheduler: Box<dyn Scheduler>,
    ledger: BandwidthLedger,
    options: SimOptions,

    slot: Slot,
    /// Combined barrier record: every application's barrier slots, merged
    /// in (slot, app-index) order. Per-app records live on the runtimes.
    iteration_completed_at: Vec<Slot>,
    counters: Counters,
    /// Bind order of this slot: (worker, copy), originals before replicas.
    bind_order: Vec<(usize, CopyId)>,
    /// Slots where the [`PlacementBudget::BindCapacity`] cap actually
    /// clipped the pool request (pool larger than the bindable capacity).
    /// Always 0 under [`PlacementBudget::Uncapped`]. Deliberately **not**
    /// part of [`SimReport`]/[`Counters`]: a capped run that never engages
    /// must stay byte-identical to its uncapped twin, counter for counter.
    cap_engagements: u64,
    /// Scripted fault injector, applied to every sampled state row *after*
    /// the source bank fills it ([`Simulation::set_overlay`]). `None` — and
    /// a passthrough overlay — leave rows untouched, so the overlaid run is
    /// byte-identical to the base (the chaos_equivalence grid pins this);
    /// actual changes land in [`Counters::injected_faults`].
    overlay: Option<ScriptedOverlay>,
    scratch: SlotScratch,
    timeline: Option<Timeline>,
    slot_marks: Vec<SlotMarks>,
}

/// The retained AoS engine: `Simulation` over the original
/// `Vec<WorkerRuntime>` layout, used as the bit-identity oracle for the SoA
/// refactor. Construct with [`Simulation::new_in`] /
/// [`Simulation::run_seeded_in`].
pub type ReferenceSimulation = Simulation<AosWorkers>;

impl Simulation {
    /// Builds an engine over the default [`WorkerSoA`] layout.
    ///
    /// `sources` must contain exactly one availability source per platform
    /// processor, in processor order; the caller controls their seeds (this
    /// is what enables common-random-number comparisons).
    pub fn new(
        platform: &PlatformConfig,
        app: &AppConfig,
        scheduler: Box<dyn Scheduler>,
        sources: Vec<Box<dyn AvailabilitySource>>,
        options: SimOptions,
    ) -> Result<Self, ConfigError> {
        Self::new_in(platform, app, scheduler, sources, options)
    }

    /// Builds an engine co-scheduling several applications over the default
    /// [`WorkerSoA`] layout (see [`Simulation::new_multi_in`]).
    pub fn new_multi(
        platform: &PlatformConfig,
        specs: &[AppSpec],
        share: SharePolicy,
        scheduler: Box<dyn Scheduler>,
        sources: Vec<Box<dyn AvailabilitySource>>,
        options: SimOptions,
    ) -> Result<Self, ConfigError> {
        Self::new_multi_in(platform, specs, share, scheduler, sources, options)
    }

    /// Convenience: build sources straight from the platform config using a
    /// seed path (`path.child(q)` per processor) and run.
    pub fn run_seeded(
        platform: &PlatformConfig,
        app: &AppConfig,
        scheduler: Box<dyn Scheduler>,
        trace_seeds: vg_des::rng::SeedPath,
        options: SimOptions,
    ) -> Result<SimReport, ConfigError> {
        Self::run_seeded_in(platform, app, scheduler, trace_seeds, options)
    }

    /// Convenience: seed, run and split per application — the
    /// multi-application twin of [`Simulation::run_seeded`].
    pub fn run_multi_seeded(
        platform: &PlatformConfig,
        specs: &[AppSpec],
        share: SharePolicy,
        scheduler: Box<dyn Scheduler>,
        trace_seeds: vg_des::rng::SeedPath,
        options: SimOptions,
    ) -> Result<MultiReport, ConfigError> {
        Self::run_multi_seeded_in(platform, specs, share, scheduler, trace_seeds, options)
    }
}

impl<S: WorkerStore> Simulation<S> {
    /// Builds an engine over an explicit worker-storage layout `S`
    /// ([`Simulation::new`] for the default SoA; `S = AosWorkers` for the
    /// reference path).
    pub fn new_in(
        platform: &PlatformConfig,
        app: &AppConfig,
        scheduler: Box<dyn Scheduler>,
        sources: Vec<Box<dyn AvailabilitySource>>,
        options: SimOptions,
    ) -> Result<Self, ConfigError> {
        Self::new_multi_in(
            platform,
            &[AppSpec::rigid(*app)],
            SharePolicy::default(),
            scheduler,
            sources,
            options,
        )
    }

    /// Builds an engine co-scheduling several applications over an explicit
    /// worker-storage layout `S`. The applications run concurrently on the
    /// shared platform, splitting each slot's bindable capacity under
    /// `share`; a one-spec roster with [`AppSpec::rigid`] is bit-identical
    /// to [`Self::new_in`] with that config.
    pub fn new_multi_in(
        platform: &PlatformConfig,
        specs: &[AppSpec],
        share: SharePolicy,
        scheduler: Box<dyn Scheduler>,
        sources: Vec<Box<dyn AvailabilitySource>>,
        options: SimOptions,
    ) -> Result<Self, ConfigError> {
        platform.validate()?;
        if sources.len() != platform.p() {
            // tidy:allow(hot_alloc): config-validation error path, taken before any slot runs.
            return Err(ConfigError(format!(
                "{} sources for {} processors",
                sources.len(),
                platform.p()
            )));
        }
        Self::new_with_bank(
            platform,
            specs,
            share,
            scheduler,
            SourceBank::PerProc(sources),
            options,
        )
    }

    /// Builds an engine over a whole-row generator (e.g.
    /// [`vg_platform::volatility::CorrelatedSource`]): the bank draws one
    /// full state row per slot, which is how cross-worker correlation enters
    /// the engine without touching per-worker seed streams.
    pub fn new_rows_in(
        platform: &PlatformConfig,
        app: &AppConfig,
        scheduler: Box<dyn Scheduler>,
        rows: Box<dyn RowSource>,
        options: SimOptions,
    ) -> Result<Self, ConfigError> {
        Self::new_multi_rows_in(
            platform,
            &[AppSpec::rigid(*app)],
            SharePolicy::default(),
            scheduler,
            rows,
            options,
        )
    }

    /// Co-scheduling twin of [`Self::new_rows_in`].
    pub fn new_multi_rows_in(
        platform: &PlatformConfig,
        specs: &[AppSpec],
        share: SharePolicy,
        scheduler: Box<dyn Scheduler>,
        rows: Box<dyn RowSource>,
        options: SimOptions,
    ) -> Result<Self, ConfigError> {
        platform.validate()?;
        if rows.p() != platform.p() {
            // tidy:allow(hot_alloc): config-validation error path, taken before any slot runs.
            return Err(ConfigError(format!(
                "row source spans {} workers on a {}-processor platform",
                rows.p(),
                platform.p()
            )));
        }
        Self::new_with_bank(
            platform,
            specs,
            share,
            scheduler,
            SourceBank::Rows(rows),
            options,
        )
    }

    /// Installs a scripted fault overlay on a freshly built engine. The
    /// script must have been compiled for this platform's processor count.
    /// A passthrough script (no events) leaves every row byte-identical to
    /// the un-overlaid run.
    pub fn set_overlay(&mut self, overlay: ScriptedOverlay) -> Result<(), ConfigError> {
        let p = self.chains.len();
        if overlay.p() != p {
            // tidy:allow(hot_alloc): config-validation error path, taken before any slot runs.
            return Err(ConfigError(format!(
                "fault script compiled for {} workers on a {p}-processor platform",
                overlay.p()
            )));
        }
        self.overlay = Some(overlay);
        Ok(())
    }

    /// Seed-path constructor: builds the best available source bank for
    /// `platform` (`trace_seeds.child(q)` per processor, the
    /// [`Simulation::run_seeded`] seed layout) and returns the engine
    /// without running it. All-Markov platforms — the paper's setting — get
    /// the dense [`MarkovSourceBank`] (three contiguous columns, no
    /// per-processor virtual calls); anything else falls back to boxed
    /// sources. Both banks emit bit-identical state streams, so which one
    /// is chosen is unobservable in the results.
    pub fn new_seeded(
        platform: &PlatformConfig,
        app: &AppConfig,
        scheduler: Box<dyn Scheduler>,
        trace_seeds: vg_des::rng::SeedPath,
        options: SimOptions,
    ) -> Result<Self, ConfigError> {
        Self::new_multi_seeded(
            platform,
            &[AppSpec::rigid(*app)],
            SharePolicy::default(),
            scheduler,
            trace_seeds,
            options,
        )
    }

    /// Seed-path constructor for a co-scheduled roster (see
    /// [`Self::new_seeded`] for the bank selection rules).
    pub fn new_multi_seeded(
        platform: &PlatformConfig,
        specs: &[AppSpec],
        share: SharePolicy,
        scheduler: Box<dyn Scheduler>,
        trace_seeds: vg_des::rng::SeedPath,
        options: SimOptions,
    ) -> Result<Self, ConfigError> {
        match MarkovSourceBank::try_from_platform(platform, &trace_seeds) {
            Some(bank) => Self::new_with_bank(
                platform,
                specs,
                share,
                scheduler,
                SourceBank::Dense(bank),
                options,
            ),
            None => {
                let sources: Vec<Box<dyn AvailabilitySource>> = platform
                    .processors
                    .iter()
                    .enumerate()
                    .map(|(q, pc)| pc.avail.build_source(trace_seeds.child(q as u64).rng()))
                    .collect(); // tidy:allow(hot_alloc): per-run source construction, before the first slot.
                Self::new_multi_in(platform, specs, share, scheduler, sources, options)
            }
        }
    }

    /// Innermost constructor over an explicit source bank.
    fn new_with_bank(
        platform: &PlatformConfig,
        specs: &[AppSpec],
        share: SharePolicy,
        scheduler: Box<dyn Scheduler>,
        bank: SourceBank,
        options: SimOptions,
    ) -> Result<Self, ConfigError> {
        platform.validate()?;
        validate_app_specs(specs)?;
        let mut scheduler = scheduler;
        scheduler.begin_run();
        let mut workers = S::default();
        workers.reset_for(platform.processors.iter().map(|pc| pc.spec));
        let chains: Vec<ChainStats> = platform
            .processors
            .iter()
            .map(|pc| ChainStats::new(pc.believed_chain()))
            .collect(); // tidy:allow(hot_alloc): engine construction, before the first slot.
        let apps: Vec<AppRuntime> = specs
            .iter()
            .enumerate()
            .map(|(i, spec)| AppRuntime::new(i, spec, options.max_extra_replicas))
            .collect(); // tidy:allow(hot_alloc): engine construction, before the first slot.
        let total_m: usize = specs.iter().map(|s| s.config.tasks_per_iteration).sum();
        let total_iterations: u64 = specs.iter().map(|s| s.config.iterations).sum();
        Ok(Self {
            app: CommParams {
                t_prog: specs[0].config.t_prog,
                t_data: specs[0].config.t_data,
            },
            apps,
            share,
            workers,
            sources: bank,
            chains,
            scheduler,
            ledger: BandwidthLedger::new(platform.ncom),
            options,
            slot: 0,
            iteration_completed_at: Vec::with_capacity(total_iterations as usize),
            counters: Counters::default(),
            bind_order: Vec::with_capacity(platform.p()),
            cap_engagements: 0,
            overlay: None,
            scratch: SlotScratch::with_capacity(platform.p(), total_m),
            timeline: options.record_timeline.then(|| Timeline::new(platform.p())),
            slot_marks: vec![SlotMarks::default(); platform.p()], // tidy:allow(hot_alloc): engine construction, before the first slot.
        })
    }

    /// Seed-path convenience over [`Self::new_in`] — the layout-generic
    /// twin of [`Simulation::run_seeded`].
    pub fn run_seeded_in(
        platform: &PlatformConfig,
        app: &AppConfig,
        scheduler: Box<dyn Scheduler>,
        trace_seeds: vg_des::rng::SeedPath,
        options: SimOptions,
    ) -> Result<SimReport, ConfigError> {
        Ok(Self::new_seeded(platform, app, scheduler, trace_seeds, options)?.run())
    }

    /// Seed-path convenience for a co-scheduled roster — the layout-generic
    /// twin of [`Simulation::run_multi_seeded`].
    pub fn run_multi_seeded_in(
        platform: &PlatformConfig,
        specs: &[AppSpec],
        share: SharePolicy,
        scheduler: Box<dyn Scheduler>,
        trace_seeds: vg_des::rng::SeedPath,
        options: SimOptions,
    ) -> Result<MultiReport, ConfigError> {
        Ok(
            Self::new_multi_seeded(platform, specs, share, scheduler, trace_seeds, options)?
                .run_multi(),
        )
    }

    /// Runs to completion (all iterations done or slot cap hit).
    #[must_use]
    pub fn run(mut self) -> SimReport {
        while !self.is_done() {
            self.step();
        }
        self.into_report()
    }

    /// Runs to completion and splits the result per application. The
    /// combined report equals [`Self::run`]'s; the per-app reports add each
    /// application's own barrier history and final size.
    #[must_use]
    pub fn run_multi(mut self) -> MultiReport {
        while !self.is_done() {
            self.step();
        }
        self.into_multi_report()
    }

    /// True when the run is over: every application finished or the slot
    /// cap was hit.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.apps.iter().all(AppRuntime::finished) || self.slot >= self.options.max_slots
    }

    /// Slots simulated so far.
    #[must_use]
    pub fn slots_run(&self) -> Slot {
        self.slot
    }

    /// Slots where the [`PlacementBudget::BindCapacity`] cap actually
    /// clipped the pool request. Always 0 under
    /// [`PlacementBudget::Uncapped`]; a capped run reporting 0 here took
    /// the uncapped code path on every slot and is therefore byte-identical
    /// to its uncapped twin (the `cap_equivalence` grid pins this).
    #[must_use]
    pub fn cap_engagements(&self) -> u64 {
        self.cap_engagements
    }

    /// Finishes a (possibly partial) run into its report.
    #[must_use]
    pub fn into_report(self) -> SimReport {
        let makespan = if self.apps.iter().all(AppRuntime::finished) {
            // The last iteration finished during slot `slot − 1`... the loop
            // increments `slot` at the end of each step, so `slot` is exactly
            // the number of slots consumed.
            Some(self.slot)
        } else {
            None
        };
        SimReport {
            scheduler: self.scheduler.name().to_string(),
            completed_iterations: self.apps.iter().map(|a| a.iterations_done()).sum(),
            makespan,
            slots_run: self.slot,
            iteration_completed_at: self.iteration_completed_at,
            counters: self.counters,
            mean_bandwidth_utilization: self.ledger.mean_utilization(),
            timeline: self.timeline,
        }
    }

    /// Finishes a (possibly partial) run into the combined report plus one
    /// [`AppReport`] per application, in engine app order. The combined
    /// part is exactly what [`Self::into_report`] would have produced.
    #[must_use]
    pub fn into_multi_report(self) -> MultiReport {
        let makespan = self
            .apps
            .iter()
            .all(AppRuntime::finished)
            .then_some(self.slot);
        let combined = SimReport {
            scheduler: self.scheduler.name().to_string(),
            completed_iterations: self.apps.iter().map(|a| a.iterations_done()).sum(),
            makespan,
            slots_run: self.slot,
            iteration_completed_at: self.iteration_completed_at,
            counters: self.counters,
            mean_bandwidth_utilization: self.ledger.mean_utilization(),
            timeline: self.timeline,
        };
        let apps = self
            .apps
            .into_iter()
            .map(|rt| AppReport {
                completed_iterations: rt.iterations_done,
                // Same slot-count semantics as the combined makespan: the
                // final barrier fired during slot `s`, so the application
                // consumed `s + 1` slots.
                makespan: rt.completed_at.map(|s| s + 1),
                final_m: rt.iter.m(),
                tasks_completed: rt.tasks_completed,
                iteration_completed_at: rt.iteration_completed_at,
            })
            .collect(); // tidy:allow(hot_alloc): per-run report assembly, after the slot loop.
        MultiReport { combined, apps }
    }

    /// One slot through all seven phases. Public so benches and the
    /// allocation-counting harness can drive the loop slot-by-slot.
    ///
    /// Phases 1+2 and 6+7 are fused into single passes over the workers —
    /// their per-worker operations are independent, so the interleaving is
    /// unobservable and the phase semantics of the module docs hold
    /// unchanged.
    pub fn step(&mut self) {
        #[cfg(feature = "phase-profile")]
        macro_rules! timed {
            ($idx:expr, $e:expr) => {{
                // tidy:allow(wall_clock): phase-profile instrumentation, cfg-gated and never read by simulation logic.
                let t = std::time::Instant::now();
                $e;
                phase_profile::NANOS[$idx].fetch_add(
                    t.elapsed().as_nanos() as u64,
                    std::sync::atomic::Ordering::Relaxed,
                );
            }};
        }
        #[cfg(not(feature = "phase-profile"))]
        macro_rules! timed {
            ($idx:expr, $e:expr) => {
                $e
            };
        }
        timed!(0, self.phase_states_and_crashes());
        timed!(1, self.phase_schedule());
        timed!(2, self.phase_transfers());
        timed!(3, self.phase_compute());
        timed!(4, self.phase_promotions_and_unbind());
        timed!(5, self.phase_slot_end());
        self.slot += 1;
    }

    /// Phases 1 (states) and 2 (crashes) in one pass: a worker's crash
    /// handling depends only on its own freshly drawn state.
    fn phase_states_and_crashes(&mut self) {
        let Self {
            workers,
            sources,
            scratch,
            counters,
            apps,
            slot,
            overlay,
            ..
        } = self;
        let SlotScratch {
            state_row, copies, ..
        } = scratch;
        state_row.clear();
        match sources {
            SourceBank::PerProc(v) => {
                state_row.extend(v.iter_mut().map(|src| src.next_state()));
            }
            SourceBank::Dense(bank) => bank.next_row_into(state_row),
            SourceBank::Shared { trace, next_slot } => {
                trace.with_row(*next_slot, |row| state_row.extend_from_slice(row));
                *next_slot += 1;
            }
            SourceBank::Rows(rows) => rows.next_row_into(state_row),
        }
        // Scripted chaos hook: force states *after* sampling so the base RNG
        // schedule is untouched; only actual flips count as injections. Kept
        // out of line so un-scripted runs pay one never-taken branch here.
        #[cold]
        #[inline(never)]
        fn apply_overlay(
            ov: &mut ScriptedOverlay,
            counters: &mut Counters,
            slot: Slot,
            row: &mut [ProcState],
        ) {
            counters.injected_faults += ov.apply_row(slot, row);
        }
        if let Some(ov) = overlay {
            apply_overlay(ov, counters, *slot, state_row);
        }
        workers.set_states(state_row);
        // State census: O(1) from the store's block summaries when it
        // maintains them, a dense tally otherwise (the oracle layout).
        match workers.state_census() {
            Some(census) => {
                for (i, n) in census.into_iter().enumerate() {
                    counters.state_slots[i] += n as u64;
                }
            }
            None => {
                for &state in state_row.iter() {
                    counters.state_slots[state.index()] += 1;
                }
            }
        }
        // Crash pass, chunked over the summary blocks: a block with no DOWN
        // worker is dismissed in one compare. Blocks ascend, so crash order
        // (and therefore copy-loss accounting order) is unchanged.
        let p = state_row.len();
        for b in 0..workers.summary_blocks() {
            if !workers.block_may_have_down(b) {
                continue;
            }
            let start = b * SUMMARY_BLOCK;
            let end = (start + SUMMARY_BLOCK).min(p);
            #[allow(clippy::needless_range_loop)] // block-bounded sweep
            for q in start..end {
                if state_row[q] != ProcState::Down {
                    continue;
                }
                copies.clear();
                workers.crash_into(q, copies);
                for &copy in copies.iter() {
                    counters.copies_lost_to_down += 1;
                    let (it, lt) = iter_for(apps, copy.task);
                    if copy.is_original() {
                        it.release_original(lt);
                    } else {
                        it.drop_replica(lt);
                        it.clear_replica_pin(lt, q);
                    }
                }
            }
        }
        if self.timeline.is_some() {
            self.slot_marks.fill(SlotMarks::default());
        }
    }

    /// Brings the scheduler's snapshot buffer up to date for the current
    /// slot (\[D1\]: states of the current slot are observable; nothing
    /// about the future is). The per-run `chains` slice completes the view.
    ///
    /// With an incremental store ([`WorkerStore::INCREMENTAL_SNAPSHOTS`])
    /// the persistent buffer is **patched in place**: states are rewritten
    /// for every worker (they change every slot, and the replica path masks
    /// them after use), while the `delay` walk and `has_program` are
    /// recomputed only for workers whose dirty bit says their pipeline
    /// changed since the last consult — `Delay(q)` is a pure function of
    /// the pipeline fields, so a clean worker's cached delay is exact. Dirty
    /// bits are sticky across unconsulted slots, so the consult can stay
    /// lazy. The oracle layout ([`crate::AosWorkers`]) rebuilds from
    /// scratch every time, and debug builds cross-check the two against
    /// each other field for field.
    fn snapshot_procs(&mut self) {
        #[cfg(debug_assertions)]
        let slot = self.slot;
        let Self {
            workers,
            scratch,
            app,
            ..
        } = self;
        let p = workers.len();
        if S::INCREMENTAL_SNAPSHOTS && scratch.procs_valid && scratch.procs.len() == p {
            for (q, snap) in scratch.procs.iter_mut().enumerate() {
                let state = workers.state(q);
                snap.state = state;
                if workers.snapshot_dirty(q) {
                    snap.has_program = workers.has_program(q, app.t_prog);
                    // Schedulers only place on (and only read the delay of)
                    // UP processors, so the pipeline walk is skipped for
                    // the rest (see NON_UP_DELAY).
                    snap.delay = if state == ProcState::Up {
                        workers.delay_estimate(q, app.t_prog, app.t_data)
                    } else {
                        NON_UP_DELAY
                    };
                }
            }
        } else {
            scratch.procs.clear();
            scratch.procs.extend((0..p).map(|q| {
                let state = workers.state(q);
                ProcSnapshot {
                    // q < u32::MAX: PlatformConfig::validate bounds the
                    // platform by MAX_PROCESSORS at construction.
                    id: ProcessorId(q as u32),
                    state,
                    w: workers.w(q),
                    has_program: workers.has_program(q, app.t_prog),
                    delay: if state == ProcState::Up {
                        workers.delay_estimate(q, app.t_prog, app.t_data)
                    } else {
                        NON_UP_DELAY
                    },
                }
            }));
            scratch.procs_valid = true;
        }
        // Incremental-vs-full oracle (debug): every consult must equal a
        // from-scratch rebuild, or a mutator skipped its dirty bit. Beyond
        // EXHAUSTIVE_DEBUG_MAX_P, rebuilding all p delay estimates per
        // consult is what made large-p debug runs unusable — so only a
        // bounded deterministic sample is cross-checked there: every
        // still-dirty worker (checked *before* the bits drain below; their
        // patched values are the fresh ones, and a missed dirty bit can
        // only hide on a clean worker) plus a slot-rotating window of
        // DEBUG_SAMPLE_WINDOW workers that revisits every cached delay
        // eventually. `VG_FULL_DEBUG_SWEEPS=1` restores the full sweep.
        #[cfg(debug_assertions)]
        {
            let exhaustive = exhaustive_debug_checks(p);
            let base = (slot as usize).wrapping_mul(DEBUG_SAMPLE_WINDOW) % p.max(1);
            for q in 0..p {
                if !exhaustive
                    && !workers.snapshot_dirty(q)
                    && (q + p - base) % p >= DEBUG_SAMPLE_WINDOW
                {
                    continue;
                }
                let state = workers.state(q);
                let expect = ProcSnapshot {
                    id: ProcessorId(q as u32),
                    state,
                    w: workers.w(q),
                    has_program: workers.has_program(q, app.t_prog),
                    delay: if state == ProcState::Up {
                        workers.delay_estimate(q, app.t_prog, app.t_data)
                    } else {
                        NON_UP_DELAY
                    },
                };
                debug_assert_eq!(
                    scratch.procs[q], expect,
                    "incremental snapshot diverged from a full rebuild on worker {q}"
                );
            }
        }
        workers.clear_snapshot_dirty();
    }

    /// Binds `copy` to worker `widx` if legal; immediately pins zero-length
    /// data copies (they need no channel). Returns success.
    fn try_bind(&mut self, widx: usize, copy: CopyId) -> bool {
        let w = &self.workers;
        if w.state(widx) != ProcState::Up
            || !w.has_bind_room(widx)
            || w.has_copy_of(widx, copy.task)
        {
            return false;
        }
        if self.app.t_data == 0
            && w.has_program(widx, self.app.t_prog)
            && w.transfer(widx).is_none()
            && w.buffered(widx).is_none()
        {
            // Zero-length data: the copy is pinned instantly ([D2] corollary:
            // a transfer of zero slots completes without a channel).
            if !copy.is_original() {
                self.counters.replicas_started += 1;
            }
            let (it, lt) = iter_for(&mut self.apps, copy.task);
            if copy.is_original() {
                it.pin_original(lt, widx);
            } else {
                it.record_replica_pin(lt, widx);
            }
            if self.workers.computing(widx).is_none() {
                self.workers
                    .set_computing(widx, Some(ComputeState { copy, done: 0 }));
            } else {
                self.workers.set_buffered(widx, Some(copy));
            }
            return true;
        }
        self.workers.bound_push(widx, copy);
        self.bind_order.push((widx, copy));
        true
    }

    fn phase_schedule(&mut self) {
        if self.apps.len() == 1 {
            self.phase_schedule_single();
        } else {
            self.phase_schedule_multi();
        }
    }

    /// The historical single-application schedule phase, textually intact
    /// (modulo `apps[0]` standing in for the old `iter` field) so the
    /// single-app bit-identity pin stays trustworthy. App 0's task ids are
    /// its local ids (base 0), so no namespace mapping appears here.
    fn phase_schedule_single(&mut self) {
        #[cfg(feature = "phase-profile")]
        macro_rules! sub {
            ($idx:expr, $e:expr) => {{
                // tidy:allow(wall_clock): phase-profile instrumentation, cfg-gated and never read by simulation logic.
                let t = std::time::Instant::now();
                let r = $e;
                phase_profile::SUB[$idx].fetch_add(
                    t.elapsed().as_nanos() as u64,
                    std::sync::atomic::Ordering::Relaxed,
                );
                r
            }};
        }
        #[cfg(not(feature = "phase-profile"))]
        macro_rules! sub {
            ($idx:expr, $e:expr) => {
                $e
            };
        }
        self.bind_order.clear();
        // Snapshots are only consulted by `place_into`; most steady-state
        // slots have an empty pool AND nothing to replicate, so they are
        // built lazily. Values are identical either way: nothing between
        // the phase start and the first use mutates worker state.
        let mut have_snapshot = false;

        // Originals first (strict priority, Section 6.1).
        self.apps[0].iter.pool_tasks_into(&mut self.scratch.pool);
        if !self.scratch.pool.is_empty() {
            // Under `BindCapacity`, a pool that fits inside the slot's
            // bindable capacity takes the exact uncapped code path below —
            // that branch equality is what makes never-engaging capped runs
            // bit-identical to uncapped ones.
            let capacity = match self.options.placement_budget {
                PlacementBudget::Uncapped => usize::MAX,
                PlacementBudget::BindCapacity => {
                    let cap = self.workers.bindable_count();
                    // Engagement detector: the dense-column count must agree
                    // with a from-scratch accessor rescan, or an occupancy
                    // mutator drifted.
                    debug_assert_eq!(
                        cap,
                        (0..self.workers.len())
                            .filter(|&q| {
                                self.workers.state(q) == ProcState::Up
                                    && self.workers.has_bind_room(q)
                            })
                            .count(),
                        "bindable_count diverged from a naive accessor rescan"
                    );
                    cap
                }
            };
            if self.scratch.pool.len() <= capacity {
                sub!(0, self.snapshot_procs());
                have_snapshot = true;
                let count = self.scratch.pool.len();
                sub!(1, {
                    let Self {
                        scratch,
                        scheduler,
                        chains,
                        app,
                        ledger,
                        ..
                    } = self;
                    let view = SchedView {
                        procs: &scratch.procs,
                        chains,
                        t_prog: app.t_prog,
                        t_data: app.t_data,
                        ncom: ledger.ncom(),
                        room: None,
                        app: None,
                    };
                    scratch.placements.clear();
                    scheduler.place_into(&view, count, &mut scratch.placements);
                });
                sub!(2, {
                    let placed = self.scratch.placements.len().min(count);
                    for k in 0..placed {
                        let task = self.scratch.pool[k];
                        let pid = self.scratch.placements[k];
                        debug_assert!(
                            self.workers.state(pid.idx()) == ProcState::Up,
                            "scheduler placed a task on a non-UP processor"
                        );
                        let _ = self.try_bind(pid.idx(), CopyId::original(task));
                    }
                });
            } else {
                // The cap engages: the pool exceeds what the platform can
                // bind this slot, so the request is clipped to `capacity`
                // and topped up below. The placement trajectory may now
                // differ from `Uncapped` — `cap_engagements` records that
                // this run left the bit-identical regime (the
                // `cap_fidelity` study measures the statistical effect).
                self.cap_engagements += 1;
                if capacity > 0 {
                    sub!(0, self.snapshot_procs());
                    have_snapshot = true;
                    // Mask the snapshot down to the bindable workers (the
                    // same in-place idiom as the replica path): a worker
                    // without bind room could only soak up placements that
                    // `try_bind` must reject, and — more importantly —
                    // every masked worker drops out of `place_into`'s
                    // per-candidate row fill, so the placement round costs
                    // O(capacity), not O(p). States are rewritten from the
                    // store at the next snapshot consult, so no restore
                    // pass is needed.
                    sub!(5, {
                        let Self {
                            workers, scratch, ..
                        } = self;
                        workers.room_into(&mut scratch.room);
                        debug_assert!(scratch.room.iter().enumerate().all(|(q, &r)| {
                            (r > 0)
                                == (workers.state(q) == ProcState::Up && workers.has_bind_room(q))
                        }));
                        for (pr, &room) in scratch.procs.iter_mut().zip(scratch.room.iter()) {
                            if room == 0 {
                                pr.state = ProcState::Reclaimed;
                            }
                        }
                    });
                    self.scratch.pending.clear();
                    self.scratch.pending.extend_from_slice(&self.scratch.pool);
                    // Top-up loop: `try_bind` can reject a placed worker
                    // (it filled up from an earlier bind this slot, or
                    // already holds a copy of the task), so one round can
                    // under-fill the capacity. Re-request placements for
                    // the still-pending tasks until the capacity is spent,
                    // the pending list drains, or a round binds nothing —
                    // every continuing round binds at least one copy, so
                    // the loop runs at most `capacity + 1` rounds. The
                    // snapshot is *not* refreshed between rounds: bound
                    // copies are invisible to `Delay(q)` (\[D8\]), and a
                    // worker that filled up anyway is rejected by
                    // `try_bind` and retried.
                    let mut remaining = capacity;
                    loop {
                        let want = self.scratch.pending.len().min(remaining);
                        if want == 0 {
                            break;
                        }
                        let placed = sub!(1, {
                            let Self {
                                scratch,
                                scheduler,
                                chains,
                                app,
                                ledger,
                                ..
                            } = self;
                            let view = SchedView {
                                procs: &scratch.procs,
                                chains,
                                t_prog: app.t_prog,
                                t_data: app.t_data,
                                ncom: ledger.ncom(),
                                // Advisory bind-room column: lets the
                                // scheduler retire a worker once its room is
                                // spent instead of stacking placements that
                                // `try_bind` must bounce back into the
                                // top-up loop. Only this engaged branch —
                                // already outside the bit-identical regime —
                                // passes `Some`.
                                room: Some(&scratch.room),
                                app: None,
                            };
                            scratch.placements.clear();
                            scheduler.place_into(&view, want, &mut scratch.placements);
                            scratch.placements.len().min(want)
                        });
                        if placed == 0 {
                            break;
                        }
                        let bound = sub!(2, {
                            let mut bound = 0usize;
                            let mut write = 0usize;
                            for k in 0..self.scratch.pending.len() {
                                let task = self.scratch.pending[k];
                                if k < placed {
                                    let pid = self.scratch.placements[k];
                                    debug_assert!(
                                        self.workers.state(pid.idx()) == ProcState::Up,
                                        "scheduler placed a task on a non-UP processor"
                                    );
                                    if self.try_bind(pid.idx(), CopyId::original(task)) {
                                        bound += 1;
                                        debug_assert!(self.scratch.room[pid.idx()] > 0);
                                        self.scratch.room[pid.idx()] -= 1;
                                        continue;
                                    }
                                }
                                self.scratch.pending[write] = task;
                                write += 1;
                            }
                            self.scratch.pending.truncate(write);
                            bound
                        });
                        if bound == 0 {
                            // Nothing placed survived `try_bind` and the
                            // view is unchanged: a deterministic scheduler
                            // would repeat itself verbatim. Stop rather
                            // than spin.
                            break;
                        }
                        remaining -= bound;
                    }
                }
            }
        }

        // Replication: idle UP workers receive replicas of the least
        // replicated unfinished tasks (≤ max_extra_replicas each).
        //
        // Candidates first: near an iteration barrier every unfinished task
        // already carries its full replica set, so the candidate list — an
        // O(m′) scan over the few unfinished tasks — empties long before
        // the platform runs out of idle workers. Generating it before the
        // free-worker scan turns those slots' O(p) full-platform pass into
        // an early-out. (`replica_candidates_into` reads only iteration
        // state, so the reorder is unobservable when both run.) The free
        // count doubles as the replica path's bind capacity, so this path
        // is demand-driven under *both* placement budgets — `k` below
        // never exceeds what can actually bind.
        if self.options.replication && !self.apps[0].iter.is_complete() {
            sub!(
                3,
                self.apps[0].iter.replica_candidates_into(
                    self.options.max_extra_replicas,
                    &mut self.scratch.cands,
                )
            );
            if !self.scratch.cands.is_empty() {
                let n_free = sub!(4, self.refresh_free_mask());
                let k = self.scratch.cands.len().min(n_free);
                if k > 0 {
                    if !have_snapshot {
                        // The pool was empty, so nothing refreshed the
                        // snapshot yet this slot. Incremental stores patch
                        // the persistent buffer (cheap: only dirty
                        // workers); the oracle layout rebuilds it. Either
                        // way the values a scheduler can read below are
                        // identical to the old direct masked build — a
                        // *free* worker is completely idle, so its full
                        // `delay_estimate` collapses to the program
                        // remainder.
                        sub!(0, self.snapshot_procs());
                    }
                    sub!(5, {
                        let SlotScratch { procs, free, .. } = &mut self.scratch;
                        // Restrict the heuristic's choice to the free
                        // workers by masking everyone else as non-UP — in
                        // place: states are rewritten from the store at the
                        // next consult, so no restore pass is needed, and
                        // masked workers' delays are unread (schedulers
                        // only score UP processors).
                        for (pr, &f) in procs.iter_mut().zip(free.iter()) {
                            if !f {
                                pr.state = ProcState::Reclaimed;
                            }
                        }
                    });
                    sub!(6, {
                        let Self {
                            scratch,
                            scheduler,
                            chains,
                            app,
                            ledger,
                            ..
                        } = self;
                        let view = SchedView {
                            procs: &scratch.procs,
                            chains,
                            t_prog: app.t_prog,
                            t_data: app.t_data,
                            ncom: ledger.ncom(),
                            // Free workers have full room by construction;
                            // the historical contract (`None`) keeps this
                            // path bit-identical under both budgets.
                            room: None,
                            app: None,
                        };
                        scratch.placements.clear();
                        scheduler.place_into(&view, k, &mut scratch.placements);
                    });
                    sub!(7, {
                        let placed = self.scratch.placements.len().min(k);
                        for j in 0..placed {
                            let task = self.scratch.cands[j];
                            let pid = self.scratch.placements[j];
                            let copy = self.apps[0].iter.mint_replica(task);
                            if !self.try_bind(pid.idx(), copy) {
                                self.apps[0].iter.drop_replica(task);
                            }
                        }
                    });
                }
            }
        }
    }

    /// The multi-application schedule phase: pool placements run per
    /// application under the [`SharePolicy`] quotas (originals keep strict
    /// priority over replicas overall, as in Section 6.1), then replica
    /// placements run per application over the workers still free.
    ///
    /// Deliberately a separate body from [`Self::phase_schedule_single`]
    /// rather than a parameterized merge: the single-app phase is the
    /// bit-identity-pinned historical trajectory, and keeping it textually
    /// intact is what keeps that pin trustworthy. This path reuses the
    /// capped-branch machinery (room column, in-place snapshot masking,
    /// bounded top-up rounds), so no application can overrun its quota or
    /// the platform's bind capacity, and the steady-state loop stays
    /// allocation-free (`zero_alloc.rs` pins a two-app configuration).
    ///
    /// Share quotas govern **pool** (original) placements only: replicas
    /// are demand-driven leftovers — they bind to workers that are UP and
    /// completely idle, a resource no pool placement of any application
    /// wanted this slot (see `docs/applications.md`).
    fn phase_schedule_multi(&mut self) {
        self.bind_order.clear();
        let n_apps = self.apps.len();
        let mut have_snapshot = false;

        // --- Pool placements under share quotas --------------------------
        // The slot's bindable capacity is what the share policy divides.
        let capacity = self.workers.bindable_count();
        if capacity > 0 {
            {
                let Self {
                    apps,
                    scratch,
                    share,
                    ..
                } = self;
                scratch.weights.clear();
                scratch.weights.extend(
                    apps.iter()
                        .map(|rt| if rt.finished() { 0 } else { rt.weight }),
                );
                share_quotas(*share, capacity, &scratch.weights, &mut scratch.quotas);
                if *share != SharePolicy::StrictPriority {
                    // Clamp each quota to its application's actual demand
                    // and hand the unusable remainder down in app order —
                    // work-conserving: capacity no pool can use is never
                    // idled by the apportionment. (Strict priority already
                    // grants full capacity as every quota, so there is no
                    // remainder to move.)
                    let mut spare = 0usize;
                    for (a, rt) in apps.iter().enumerate() {
                        let want = rt.iter.pool_len();
                        let granted = scratch.quotas[a].min(want);
                        spare += scratch.quotas[a] - granted;
                        scratch.quotas[a] = granted;
                    }
                    for (a, rt) in apps.iter().enumerate() {
                        if spare == 0 {
                            break;
                        }
                        let extra = (rt.iter.pool_len() - scratch.quotas[a]).min(spare);
                        scratch.quotas[a] += extra;
                        spare -= extra;
                    }
                }
            }
            let mut remaining = capacity;
            for a in 0..n_apps {
                if remaining == 0 {
                    break;
                }
                let quota = self.scratch.quotas[a].min(remaining);
                if quota == 0 {
                    continue;
                }
                self.apps[a].iter.pool_tasks_into(&mut self.scratch.pool);
                if self.scratch.pool.is_empty() {
                    continue;
                }
                // Worker columns and the scheduler see *global* task ids;
                // the iteration state stays local. Map in place.
                let base = self.apps[a].task_base;
                for t in self.scratch.pool.iter_mut() {
                    *t = global_task(base, *t);
                }
                if !have_snapshot {
                    self.snapshot_procs();
                    have_snapshot = true;
                }
                // Fresh room column per app round (earlier applications'
                // binds are already reflected), masking workers without
                // room out of the view. Masking is cumulative across app
                // rounds — sound because room is monotone non-increasing
                // within the phase.
                {
                    let Self {
                        workers, scratch, ..
                    } = self;
                    workers.room_into(&mut scratch.room);
                    for (pr, &room) in scratch.procs.iter_mut().zip(scratch.room.iter()) {
                        if room == 0 {
                            pr.state = ProcState::Reclaimed;
                        }
                    }
                }
                let app_view = AppView {
                    index: a as u32,
                    count: n_apps as u32,
                    weight: self.apps[a].weight,
                    quota: quota as u32,
                };
                self.scratch.pending.clear();
                self.scratch.pending.extend_from_slice(&self.scratch.pool);
                // Top-up rounds, exactly as in the capped single-app branch:
                // every continuing round binds at least one copy, so the
                // loop is bounded by the quota.
                let mut app_remaining = quota;
                loop {
                    let want = self.scratch.pending.len().min(app_remaining);
                    if want == 0 {
                        break;
                    }
                    let placed = {
                        let Self {
                            scratch,
                            scheduler,
                            chains,
                            app,
                            ledger,
                            ..
                        } = self;
                        let view = SchedView {
                            procs: &scratch.procs,
                            chains,
                            t_prog: app.t_prog,
                            t_data: app.t_data,
                            ncom: ledger.ncom(),
                            room: Some(&scratch.room),
                            app: Some(app_view),
                        };
                        scratch.placements.clear();
                        scheduler.place_into(&view, want, &mut scratch.placements);
                        scratch.placements.len().min(want)
                    };
                    if placed == 0 {
                        break;
                    }
                    let mut bound = 0usize;
                    let mut write = 0usize;
                    for k in 0..self.scratch.pending.len() {
                        let task = self.scratch.pending[k];
                        if k < placed {
                            let pid = self.scratch.placements[k];
                            debug_assert!(
                                self.workers.state(pid.idx()) == ProcState::Up,
                                "scheduler placed a task on a non-UP processor"
                            );
                            if self.try_bind(pid.idx(), CopyId::original(task)) {
                                bound += 1;
                                debug_assert!(self.scratch.room[pid.idx()] > 0);
                                self.scratch.room[pid.idx()] -= 1;
                                continue;
                            }
                        }
                        self.scratch.pending[write] = task;
                        write += 1;
                    }
                    self.scratch.pending.truncate(write);
                    if bound == 0 {
                        break;
                    }
                    app_remaining -= bound;
                    remaining -= bound;
                }
            }
        }

        // --- Replica placements, per application over free workers --------
        if self.options.replication {
            for a in 0..n_apps {
                if self.apps[a].finished() || self.apps[a].iter.is_complete() {
                    continue;
                }
                self.apps[a].iter.replica_candidates_into(
                    self.options.max_extra_replicas,
                    &mut self.scratch.cands,
                );
                if self.scratch.cands.is_empty() {
                    continue;
                }
                let base = self.apps[a].task_base;
                for t in self.scratch.cands.iter_mut() {
                    *t = global_task(base, *t);
                }
                // The free mask absorbs earlier applications' replica binds
                // through the store's changed-block feed, so each round sees
                // the *currently* free workers.
                let n_free = self.refresh_free_mask();
                let k = self.scratch.cands.len().min(n_free);
                if k == 0 {
                    continue;
                }
                // Re-snapshot to undo the pool rounds' masking (states are
                // rewritten from the store; cached delays stay exact), then
                // mask down to the free workers for this app's round.
                self.snapshot_procs();
                {
                    let SlotScratch { procs, free, .. } = &mut self.scratch;
                    for (pr, &f) in procs.iter_mut().zip(free.iter()) {
                        if !f {
                            pr.state = ProcState::Reclaimed;
                        }
                    }
                }
                let app_view = AppView {
                    index: a as u32,
                    count: n_apps as u32,
                    weight: self.apps[a].weight,
                    quota: k as u32,
                };
                {
                    let Self {
                        scratch,
                        scheduler,
                        chains,
                        app,
                        ledger,
                        ..
                    } = self;
                    let view = SchedView {
                        procs: &scratch.procs,
                        chains,
                        t_prog: app.t_prog,
                        t_data: app.t_data,
                        ncom: ledger.ncom(),
                        room: None,
                        app: Some(app_view),
                    };
                    scratch.placements.clear();
                    scheduler.place_into(&view, k, &mut scratch.placements);
                }
                let placed = self.scratch.placements.len().min(k);
                for j in 0..placed {
                    let task = self.scratch.cands[j];
                    let pid = self.scratch.placements[j];
                    let copy = {
                        let (it, lt) = iter_for(&mut self.apps, task);
                        let local = it.mint_replica(lt);
                        CopyId {
                            task,
                            replica: local.replica,
                        }
                    };
                    if !self.try_bind(pid.idx(), copy) {
                        let (it, lt) = iter_for(&mut self.apps, task);
                        it.drop_replica(lt);
                    }
                }
            }
        }
    }

    /// Brings the replica path's free-worker mask (`scratch.free[q]` iff
    /// worker `q` is UP ∧ idle) up to date and returns the free total.
    ///
    /// This is the incremental candidate generation of the platform-scale
    /// path: with a summary-tracking store, a valid cache is patched by
    /// recomputing only the blocks the store marked changed since the last
    /// consult (state redraws and occupancy flips both mark — see
    /// [`WorkerStore::changed_blocks`]), so steady-state slots touch a
    /// handful of blocks instead of rescanning all p workers. The oracle
    /// layout (no tracking) and the first consult of a run rebuild densely,
    /// skipping blocks the summaries prove free-less; debug builds
    /// cross-check the patched mask against a dense recompute.
    fn refresh_free_mask(&mut self) -> usize {
        let Self {
            workers, scratch, ..
        } = self;
        let p = workers.len();
        let nblocks = workers.summary_blocks();
        let block_free = |workers: &S, b: usize, free: &mut [bool]| -> u32 {
            let start = b * SUMMARY_BLOCK;
            let end = (start + SUMMARY_BLOCK).min(p);
            let mut n = 0u32;
            #[allow(clippy::needless_range_loop)] // block-bounded sweep
            for q in start..end {
                let f = workers.state(q) == ProcState::Up && workers.is_idle(q);
                free[q] = f;
                n += u32::from(f);
            }
            n
        };
        if S::INCREMENTAL_SNAPSHOTS && scratch.free_valid && scratch.free.len() == p {
            if let Some(changed) = workers.changed_blocks() {
                for &b in changed {
                    let b = b as usize;
                    let n = block_free(workers, b, &mut scratch.free);
                    scratch.free_total =
                        scratch.free_total + n as usize - scratch.free_blocks[b] as usize;
                    scratch.free_blocks[b] = n;
                }
            } else {
                // An incremental store without block tracking would read a
                // stale mask here — the trait default must not be inherited
                // by INCREMENTAL_SNAPSHOTS layouts.
                debug_assert!(false, "incremental store lost its changed-block feed");
                scratch.free_valid = false;
            }
        }
        if !(S::INCREMENTAL_SNAPSHOTS && scratch.free_valid && scratch.free.len() == p) {
            scratch.free.clear();
            scratch.free.resize(p, false);
            scratch.free_blocks.clear();
            scratch.free_blocks.resize(nblocks, 0);
            scratch.free_total = 0;
            for b in 0..nblocks {
                // An all-busy or no-UP block stays all-false without a scan.
                if !workers.block_may_have_free(b) {
                    continue;
                }
                let n = block_free(workers, b, &mut scratch.free);
                scratch.free_blocks[b] = n;
                scratch.free_total += n as usize;
            }
            scratch.free_valid = S::INCREMENTAL_SNAPSHOTS;
        }
        workers.clear_changed_blocks();
        #[cfg(debug_assertions)]
        {
            let mut n = 0usize;
            for q in 0..p {
                let f = workers.state(q) == ProcState::Up && workers.is_idle(q);
                debug_assert_eq!(
                    scratch.free[q], f,
                    "stale free mask on worker {q}: a mutation missed its block mark"
                );
                n += usize::from(f);
            }
            debug_assert_eq!(n, scratch.free_total, "free total drifted");
        }
        scratch.free_total
    }

    fn phase_transfers(&mut self) {
        self.ledger.open_slot();
        let record = self.timeline.is_some();
        let t_prog = self.app.t_prog;
        let t_data = self.app.t_data;

        {
            let Self {
                workers,
                scratch,
                bind_order,
                ..
            } = self;

            // --- Collect requests ---------------------------------------
            // (a) Continuations: in-flight data transfers and partially
            //     received programs on UP workers, oldest first ([D11]).
            //     Both kinds pin a copy (a transfer occupies its pipeline
            //     slot; the program branch checks `busy` itself), so the
            //     busy-restricted walk is exact — no continuation can live
            //     on an idle worker.
            scratch.continuations.clear();
            for_each_busy_worker!(workers, widx, {
                if workers.state(widx) != ProcState::Up {
                    continue; // suspended transfers hold no channel
                }
                if let Some(tr) = workers.transfer(widx) {
                    scratch
                        .continuations
                        .push((tr.began_at, widx, Request::DataCont { widx }));
                } else if workers.prog_done(widx) > 0
                    && !workers.has_program(widx, t_prog)
                    && workers.busy(widx)
                {
                    scratch.continuations.push((
                        workers.prog_began_at(widx),
                        widx,
                        Request::Prog { widx },
                    ));
                }
            });
            // `widx` makes the key unique, so the unstable sort is
            // deterministic (and allocation-free, unlike a stable sort).
            scratch
                .continuations
                .sort_unstable_by_key(|&(t, widx, _)| (t, widx));
            scratch.requests.clear();
            scratch
                .requests
                .extend(scratch.continuations.iter().map(|&(_, _, r)| r));

            // (b) New transfers in binding order: a worker lacking the
            //     program requests the program once; a worker holding it
            //     requests data for its first bound copy if its transfer
            //     slot is free. The request flags only matter while there
            //     are bindings, so their reset is gated on that.
            if !bind_order.is_empty() {
                scratch.prog_requested.clear();
                scratch.prog_requested.resize(workers.len(), false);
                scratch.data_requested.clear();
                scratch.data_requested.resize(workers.len(), false);
            }
            for &(widx, copy) in bind_order.iter() {
                if workers.state(widx) != ProcState::Up || !workers.bound(widx).contains(&copy) {
                    continue;
                }
                if !workers.has_program(widx, t_prog) {
                    if workers.prog_done(widx) == 0 && !scratch.prog_requested[widx] {
                        scratch.prog_requested[widx] = true;
                        scratch.requests.push(Request::Prog { widx });
                    }
                } else if workers.transfer(widx).is_none()
                    && workers.buffered(widx).is_none()
                    && !scratch.data_requested[widx]
                    && t_data > 0
                {
                    scratch.data_requested[widx] = true;
                    scratch.requests.push(Request::DataNew { widx, copy });
                }
            }
        }

        // --- Grant in priority order -------------------------------------
        for k in 0..self.scratch.requests.len() {
            match self.scratch.requests[k] {
                Request::Prog { widx } => {
                    if self.ledger.try_grant(TransferKind::Program) {
                        let done = self.workers.prog_done(widx);
                        if done == 0 {
                            self.workers.set_prog_began_at(widx, self.slot);
                        }
                        self.workers.set_prog_done(widx, done + 1);
                        self.counters.prog_channel_slots += 1;
                        if record {
                            self.slot_marks[widx].recv_prog = true;
                        }
                        if self.workers.has_program(widx, t_prog) {
                            self.counters.programs_delivered += 1;
                        }
                    }
                }
                Request::DataCont { widx } => {
                    if self.ledger.try_grant(TransferKind::Data) {
                        // DataCont is only enqueued for a worker with an
                        // in-flight transfer; a missing one is a phase-4
                        // bookkeeping bug. Debug builds abort; release
                        // builds drop the grant instead of crashing a
                        // whole campaign (the channel slot is burned either
                        // way, matching what the transfer would have used).
                        match self.workers.transfer(widx) {
                            Some(mut tr) => {
                                tr.done += 1;
                                self.workers.set_transfer(widx, Some(tr));
                            }
                            None => {
                                debug_assert!(
                                    false,
                                    "DataCont enqueued for worker {widx} with no in-flight transfer"
                                );
                            }
                        }
                        self.counters.data_channel_slots += 1;
                        if record {
                            self.slot_marks[widx].recv_data = true;
                        }
                    }
                }
                Request::DataNew { widx, copy } => {
                    if self.ledger.try_grant(TransferKind::Data) {
                        self.workers.bound_remove(widx, copy);
                        self.workers.set_transfer(
                            widx,
                            Some(TransferState {
                                copy,
                                done: 1,
                                began_at: self.slot,
                            }),
                        );
                        self.counters.data_channel_slots += 1;
                        if record {
                            self.slot_marks[widx].recv_data = true;
                        }
                        if !copy.is_original() {
                            self.counters.replicas_started += 1;
                        }
                        let (it, lt) = iter_for(&mut self.apps, copy.task);
                        if copy.is_original() {
                            it.pin_original(lt, widx);
                        } else {
                            it.record_replica_pin(lt, widx);
                        }
                    }
                }
            }
        }
        assert!(self.ledger.invariant_holds(), "ncom constraint violated");
    }

    fn phase_compute(&mut self) {
        {
            let record = self.timeline.is_some();
            #[cfg(debug_assertions)]
            let t_prog = self.app.t_prog;
            let Self {
                workers,
                scratch,
                slot_marks,
                ..
            } = self;
            scratch.completions.clear();
            // Busy workers only (bit walk or chunked blocks — the scan is
            // read-only w.r.t. occupancy, and it ascends either way, so
            // completion order is unchanged): an idle worker cannot hold a
            // computation, and a busy-but-not-computing worker falls out of
            // tick_compute's None without touching the fat computing column.
            for_each_busy_worker!(workers, widx, {
                if !workers.busy(widx) || workers.state(widx) != ProcState::Up {
                    continue;
                }
                if let Some((copy, finished)) = workers.tick_compute(widx) {
                    #[cfg(debug_assertions)]
                    debug_assert!(workers.prog_done(widx) >= t_prog);
                    if record {
                        slot_marks[widx].computed = true;
                    }
                    if finished {
                        scratch.completions.push((widx, copy));
                    }
                }
            });
        }
        for k in 0..self.scratch.completions.len() {
            let (widx, copy) = self.scratch.completions[k];
            // A sibling that completed earlier in this slot may have already
            // canceled this copy (cancel_siblings cleared the compute unit);
            // its result is then redundant and counts as waste.
            let still_current = self.workers.computing(widx).is_some_and(|c| c.copy == copy);
            if !still_current {
                self.counters.duplicate_results += 1;
                continue;
            }
            self.workers.set_computing(widx, None);
            self.counters.copies_completed += 1;
            let task = copy.task;
            let a = app_of(task);
            let lt = local_task(task);
            // Capture the pinned original's worker *before* mark_completed
            // erases it; the completing copy itself is already off its
            // worker, so when the original just completed there is no
            // pinned original left to cancel.
            let orig_pinned = if copy.is_original() {
                None
            } else {
                match self.apps[a].iter.original_state(lt) {
                    OriginalState::Pinned { worker } => Some(worker),
                    _ => None,
                }
            };
            let first = self.apps[a].iter.mark_completed(lt);
            debug_assert!(first, "siblings are canceled before they can re-complete");
            self.counters.tasks_completed += 1;
            self.apps[a].tasks_completed += 1;
            if !copy.is_original() {
                self.apps[a].iter.drop_replica(lt);
                self.apps[a].iter.clear_replica_pin(lt, widx);
            }
            self.cancel_siblings(task, orig_pinned);
        }
    }

    /// Cancels every remaining copy of a completed task, platform-wide —
    /// without the former full-platform scan per completion (`O(p)` per
    /// completed task was ~27% of slot cost at `p = 1024`). Every copy's
    /// location is recoverable:
    ///
    /// * the pinned **original**'s worker comes from
    ///   [`IterationState::original_state`] (captured by the caller before
    ///   `mark_completed` erased it);
    /// * still-**bound** copies (transfer not begun) sit in `bind_order`
    ///   with their worker; entries whose transfer began are skipped — the
    ///   bound list no longer holds them — and found as pinned copies;
    /// * pinned **replicas** are canceled straight off the workers recorded
    ///   in [`IterationState`] at grant time — no platform scan exists on
    ///   this path at all (the former early-exit fallback sweep still cost
    ///   `O(p)` per unlucky completion at `p = 131072`).
    ///
    /// Debug builds re-scan the whole platform afterwards and assert no
    /// copy survived, pinning this accounting to the exhaustive semantics.
    fn cancel_siblings(&mut self, task: TaskId, orig_pinned: Option<usize>) {
        let Self {
            workers,
            scratch,
            counters,
            apps,
            bind_order,
            ..
        } = self;
        // Route to the owning application once; worker columns and
        // `bind_order` keep speaking global ids below.
        let lt = local_task(task);
        let iter = &mut apps[app_of(task)].iter;
        scratch.copies.clear();
        let replicas_total = usize::from(iter.replicas_alive(lt));
        if let Some(w) = orig_pinned {
            workers.cancel_task_into(w, task, &mut scratch.copies);
        }
        for &(widx, bound_copy) in bind_order.iter() {
            if bound_copy.task == task && workers.bound(widx).contains(&bound_copy) {
                workers.cancel_task_into(widx, task, &mut scratch.copies);
            }
        }
        // Pinned replicas: the iteration records the worker of every granted
        // replica, so each survivor is canceled with one directed call. The
        // record row is borrowed out of `iter` via scratch so the pins can
        // be cleared while `workers` is mutated.
        scratch.replica_pins.clear();
        scratch
            .replica_pins
            .extend_from_slice(iter.pinned_replica_workers(lt));
        for &w in &scratch.replica_pins {
            if w == NO_REPLICA_WORKER {
                continue;
            }
            let before = scratch.copies.len();
            workers.cancel_task_into(w as usize, task, &mut scratch.copies);
            debug_assert!(
                scratch.copies.len() > before,
                "recorded replica pin of {task} on worker {w} held no copy"
            );
            iter.clear_replica_pin(lt, w as usize);
        }
        debug_assert_eq!(
            scratch.copies.iter().filter(|c| !c.is_original()).count(),
            replicas_total,
            "replica cancel accounting for {task} disagrees with replicas_alive"
        );
        for &copy in &scratch.copies {
            counters.replicas_canceled += 1;
            if !copy.is_original() {
                iter.drop_replica(lt);
            }
            // Originals need no pool transition: mark_completed set Done.
        }
        // Also forget bind-order entries of the canceled copies so they do
        // not request channels later in this slot.
        bind_order.retain(|&(_, c)| c.task != task);
        #[cfg(debug_assertions)]
        for q in 0..workers.len() {
            debug_assert!(
                !workers.has_copy_of(q, task),
                "cancel_siblings missed a copy of {task} on worker {q}"
            );
        }
    }

    /// The promotion half of phase 6 for one busy worker: finished transfer
    /// → buffer, buffer → free compute unit.
    #[inline]
    fn promote_pipeline(workers: &mut S, q: usize, t_data: SlotSpan) {
        if let Some(tr) = workers.transfer(q) {
            if tr.done >= t_data && t_data > 0 {
                debug_assert!(workers.buffered(q).is_none());
                // Clear the transfer slot *before* filling the buffer: the
                // end state is identical, but this order keeps occupancy
                // within its documented bound of 2 at every step (the SoA
                // asserts the bound on each increment).
                workers.set_transfer(q, None);
                workers.set_buffered(q, Some(tr.copy));
            }
        }
        if workers.computing(q).is_none() {
            if let Some(buf) = workers.buffered(q) {
                workers.set_buffered(q, None);
                workers.set_computing(q, Some(ComputeState { copy: buf, done: 0 }));
            }
        }
    }

    /// The bind-dissolution half of phase 7 (\[D5\]) for one busy worker:
    /// unstarted bindings dissolve — originals silently remain in the pool;
    /// replica placeholders evaporate.
    #[inline]
    fn dissolve_binds(workers: &mut S, apps: &mut [AppRuntime], q: usize) {
        workers.drain_bound(q, |copy| {
            if !copy.is_original() {
                let (it, lt) = iter_for(apps, copy.task);
                it.drop_replica(lt);
            }
        });
    }

    /// Phase 6 (promotions) fused with the bind-dissolution half of phase 7
    /// (\[D5\]): both touch only per-worker state (plus the iteration's
    /// replica tallies, which promotions never read), so one pass suffices.
    ///
    /// Release builds walk only busy workers (the bit walk — promotions and
    /// dissolutions never make an idle worker busy, so the visit set is
    /// exact). Debug builds keep the block-chunked sweep so the per-worker
    /// invariants still cover quiet workers: exhaustively on small
    /// platforms, and on a rotating probe block above that (plus every busy
    /// block), so a desynced occupancy column on a quiet worker is caught
    /// within `nblocks` slots rather than hidden forever.
    fn phase_promotions_and_unbind(&mut self) {
        let t_data = self.app.t_data;
        #[cfg(debug_assertions)]
        let t_prog = self.app.t_prog;
        #[cfg(debug_assertions)]
        let slot = self.slot;
        let Self { workers, apps, .. } = self;
        #[cfg(not(debug_assertions))]
        for_each_busy_worker!(workers, q, {
            if workers.busy(q) {
                Self::promote_pipeline(workers, q, t_data);
            }
            if workers.busy(q) {
                Self::dissolve_binds(workers, apps, q);
            }
        });
        #[cfg(debug_assertions)]
        {
            let p = workers.len();
            let nblocks = workers.summary_blocks();
            let exhaustive = exhaustive_debug_checks(p);
            let probe = if nblocks > 0 {
                slot as usize % nblocks
            } else {
                0
            };
            for blk in 0..nblocks {
                let sweep = exhaustive || blk == probe;
                if !sweep && !workers.block_may_be_busy(blk) {
                    continue;
                }
                let start = blk * SUMMARY_BLOCK;
                let end = (start + SUMMARY_BLOCK).min(p);
                for q in start..end {
                    if workers.busy(q) {
                        Self::promote_pipeline(workers, q, t_data);
                    }
                    // Checked for *every* swept worker — not inside the
                    // busy() block — so a desynced occupancy column cannot
                    // hide a worker from its own consistency check (the SoA
                    // validates occupancy here).
                    workers.assert_invariants(q, t_prog, t_data);
                    if workers.busy(q) {
                        Self::dissolve_binds(workers, apps, q);
                    }
                }
            }
        }
    }

    fn phase_slot_end(&mut self) {
        self.bind_order.clear();

        {
            let Self {
                workers,
                scratch,
                slot_marks,
                timeline,
                ..
            } = self;
            if let Some(tl) = timeline {
                scratch.activities.clear();
                scratch.activities.extend(
                    slot_marks
                        .iter()
                        .enumerate()
                        .map(|(q, m)| m.resolve(workers.state(q))),
                );
                tl.push_slot(&scratch.activities);
            }
        }

        // Iteration barriers, per application. With a single app this is
        // the historical barrier verbatim: the finished-guard never fires
        // (the run loop stops before another slot executes), the debug
        // sweep is the same global pinned-count check, and `Fixed`
        // reconfiguration is exactly the old `iter.reset(iterations_done)`.
        let mut up_cache: Option<usize> = None;
        let mut barrier_marked = false;
        for a in 0..self.apps.len() {
            if self.apps[a].finished() || !self.apps[a].iter.is_complete() {
                continue;
            }
            let slot = self.slot;
            self.apps[a].iter.set_completed_at(slot);
            self.apps[a].iteration_completed_at.push(slot);
            self.iteration_completed_at.push(slot);
            self.apps[a].iterations_done += 1;
            if !barrier_marked {
                if let Some(tl) = &mut self.timeline {
                    tl.push_barrier(slot);
                }
                barrier_marked = true;
            }
            #[cfg(debug_assertions)]
            if self.apps.len() == 1 {
                for q in 0..self.workers.len() {
                    debug_assert_eq!(
                        self.workers.pinned_count(q),
                        0,
                        "copies survived the iteration barrier"
                    );
                }
            } else {
                // Other applications may legitimately hold pins, so the
                // check narrows to this application's own copies: every
                // task is complete, so no replica may survive.
                for t in 0..self.apps[a].iter.m() {
                    debug_assert_eq!(
                        self.apps[a].iter.replicas_alive(TaskId(t as u32)),
                        0,
                        "replica of app {a} survived its iteration barrier"
                    );
                }
            }
            if self.apps[a].finished() {
                self.apps[a].completed_at = Some(slot);
            } else {
                // Moldable applications re-pick their size from the *live*
                // UP census at the barrier (ReSHAPE-style reconfiguration
                // points); Fixed applications never consult it.
                let up = match self.apps[a].reconfig {
                    ReconfigPolicy::Fixed => 0,
                    ReconfigPolicy::Moldable(_) => match up_cache {
                        Some(u) => u,
                        None => {
                            let u = self.up_workers();
                            up_cache = Some(u);
                            u
                        }
                    },
                };
                let max_extra = self.options.max_extra_replicas;
                self.apps[a].begin_next_iteration(up, max_extra);
            }
        }
    }

    /// Live UP-worker count at the current slot: O(1) from the store's
    /// block summaries when it maintains them, a dense tally otherwise.
    /// Consulted only at barriers of [`ReconfigPolicy::Moldable`] apps.
    fn up_workers(&self) -> usize {
        match self.workers.state_census() {
            Some(census) => census[ProcState::Up.index()],
            None => (0..self.workers.len())
                .filter(|&q| self.workers.state(q) == ProcState::Up)
                .count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vg_core::HeuristicKind;
    use vg_des::rng::SeedPath;
    use vg_des::SlotSpan;
    use vg_platform::source::{StartPolicy, TailBehavior};
    use vg_platform::{AvailabilityModelConfig, ProcessorConfig, ProcessorSpec, Trace};

    fn always_up(p: usize, w: SlotSpan, ncom: usize) -> PlatformConfig {
        PlatformConfig {
            processors: (0..p)
                .map(|_| ProcessorConfig {
                    spec: ProcessorSpec::new(w),
                    avail: AvailabilityModelConfig::Replay {
                        trace: Trace::parse("u").unwrap(),
                        tail: TailBehavior::HoldLast,
                    },
                    believed: None,
                })
                .collect(),
            ncom,
        }
    }

    fn replay_platform(traces: &[&str], w: SlotSpan, ncom: usize) -> PlatformConfig {
        PlatformConfig {
            processors: traces
                .iter()
                .map(|t| ProcessorConfig {
                    spec: ProcessorSpec::new(w),
                    avail: AvailabilityModelConfig::Replay {
                        trace: Trace::parse(t).unwrap(),
                        tail: TailBehavior::HoldLast,
                    },
                    believed: None,
                })
                .collect(),
            ncom,
        }
    }

    fn sources_for(platform: &PlatformConfig, seed: u64) -> Vec<Box<dyn AvailabilitySource>> {
        let path = SeedPath::root(seed);
        platform
            .processors
            .iter()
            .enumerate()
            .map(|(q, pc)| pc.avail.build_source(path.child(q as u64).rng()))
            .collect()
    }

    fn run(
        platform: &PlatformConfig,
        app: &AppConfig,
        kind: HeuristicKind,
        opts: SimOptions,
    ) -> SimReport {
        let sched = kind.build(SeedPath::root(999).rng());
        let sources = sources_for(platform, 7);
        Simulation::new(platform, app, sched, sources, opts)
            .unwrap()
            .run()
    }

    const NO_REP: SimOptions = SimOptions {
        max_slots: 100_000,
        replication: false,
        max_extra_replicas: 2,
        record_timeline: false,
        placement_budget: PlacementBudget::Uncapped,
    };

    #[test]
    fn single_worker_pipeline_analytic_makespan() {
        // p=1, m=2, Tprog=2, Tdata=1, w=3, always UP:
        // program slots 0-1, data(T0) slot 2, compute T0 slots 3-5,
        // data(T1) slot 3 (overlap), compute T1 slots 6-8 → makespan 9.
        let platform = always_up(1, 3, 1);
        let app = AppConfig {
            tasks_per_iteration: 2,
            iterations: 1,
            t_prog: 2,
            t_data: 1,
        };
        let r = run(&platform, &app, HeuristicKind::Mct, NO_REP);
        assert_eq!(r.makespan, Some(9));
        assert_eq!(r.counters.tasks_completed, 2);
        assert_eq!(r.counters.programs_delivered, 1);
    }

    #[test]
    fn two_workers_split_the_load() {
        // p=2, m=2, ncom=2: both receive program concurrently; each computes
        // one task. Makespan = Tprog + Tdata + w = 2+1+3 = 6.
        let platform = always_up(2, 3, 2);
        let app = AppConfig {
            tasks_per_iteration: 2,
            iterations: 1,
            t_prog: 2,
            t_data: 1,
        };
        let r = run(&platform, &app, HeuristicKind::Mct, NO_REP);
        assert_eq!(r.makespan, Some(6));
    }

    /// Step-wise driver that also reports how often the placement cap
    /// engaged (the consuming `run()` drops the engine before it can be
    /// asked).
    fn run_counting(
        platform: &PlatformConfig,
        app: &AppConfig,
        kind: HeuristicKind,
        opts: SimOptions,
    ) -> (SimReport, u64) {
        let sched = kind.build(SeedPath::root(999).rng());
        let sources = sources_for(platform, 7);
        let mut sim = Simulation::new(platform, app, sched, sources, opts).unwrap();
        while !sim.is_done() {
            sim.step();
        }
        let engagements = sim.cap_engagements();
        (sim.into_report(), engagements)
    }

    const CAPPED_NO_REP: SimOptions = SimOptions {
        max_slots: 100_000,
        replication: false,
        max_extra_replicas: 2,
        record_timeline: false,
        placement_budget: PlacementBudget::BindCapacity,
    };

    #[test]
    fn bind_capacity_defers_excess_placements_without_losing_throughput() {
        // p=1, m=2: the uncapped engine requests placements for both tasks
        // every slot until their data transfers start; the capped engine
        // sees bindable capacity 1 (one idle worker) and requests one. An
        // unstarted binding dissolves back into the pool at slot end
        // ([D5]), so the full pool {T0, T1} re-engages the cap on slots
        // 0–2 — exactly until data(T0) starts mid-slot 2 and pins T0. The
        // deferred T1 bind is absorbed by the channel serialization, so
        // the analytic makespan of
        // `single_worker_pipeline_analytic_makespan` still holds.
        let platform = always_up(1, 3, 1);
        let app = AppConfig {
            tasks_per_iteration: 2,
            iterations: 1,
            t_prog: 2,
            t_data: 1,
        };
        let (r, engagements) = run_counting(&platform, &app, HeuristicKind::Mct, CAPPED_NO_REP);
        assert_eq!(
            engagements, 3,
            "slots 0-2 re-offer the dissolved pool (2) against capacity 1"
        );
        assert_eq!(r.makespan, Some(9));
        assert_eq!(r.counters.tasks_completed, 2);
    }

    #[test]
    fn bind_capacity_that_never_engages_is_bit_identical_to_uncapped() {
        // Capacity (4 idle workers) always covers the pool (2 tasks), so
        // the capped engine takes the uncapped code path on every slot and
        // the reports must match byte for byte.
        let platform = always_up(4, 3, 2);
        let app = AppConfig {
            tasks_per_iteration: 2,
            iterations: 3,
            t_prog: 2,
            t_data: 1,
        };
        let (capped, engagements) =
            run_counting(&platform, &app, HeuristicKind::Mct, CAPPED_NO_REP);
        assert_eq!(engagements, 0, "pool of 2 can never exceed capacity of 4");
        let (uncapped, zero) = run_counting(&platform, &app, HeuristicKind::Mct, NO_REP);
        assert_eq!(zero, 0, "Uncapped never counts engagements");
        assert_eq!(capped, uncapped);
    }

    #[test]
    fn bind_capacity_engages_under_pressure_and_still_completes() {
        // m = 4·p: the first slots of every iteration overwhelm the
        // platform, so the cap engages repeatedly; the top-up loop must
        // still feed every task through and finish both iterations.
        let platform = always_up(2, 3, 2);
        let app = AppConfig {
            tasks_per_iteration: 8,
            iterations: 2,
            t_prog: 2,
            t_data: 1,
        };
        let (r, engagements) = run_counting(&platform, &app, HeuristicKind::Mct, CAPPED_NO_REP);
        assert!(engagements > 0, "a 4x oversubscribed pool must engage");
        assert!(r.finished());
        assert_eq!(r.counters.tasks_completed, 16);
    }

    #[test]
    fn ncom_serializes_program_transfers() {
        // p=2, m=2, ncom=1: the single channel serializes everything.
        // Worker A: prog 0-1, data(T0) 2 (data of the first-placed task
        // outranks B's program start in bind order), compute 3-5.
        // Worker B: prog 3-4, data(T1) 5, compute 6-8 → makespan 9.
        let platform = always_up(2, 3, 1);
        let app = AppConfig {
            tasks_per_iteration: 2,
            iterations: 1,
            t_prog: 2,
            t_data: 1,
        };
        let r = run(&platform, &app, HeuristicKind::Mct, NO_REP);
        assert_eq!(r.makespan, Some(9));
    }

    #[test]
    fn reclaimed_suspends_and_resumes() {
        // One worker, one task, w=2, Tprog=1, Tdata=1.
        // Trace: u r u u u — program slot 0, reclaimed slot 1 (data frozen),
        // data slot 2, compute slots 3-4 → makespan 5.
        let platform = replay_platform(&["uruuu"], 2, 1);
        let app = AppConfig {
            tasks_per_iteration: 1,
            iterations: 1,
            t_prog: 1,
            t_data: 1,
        };
        let r = run(&platform, &app, HeuristicKind::Mct, NO_REP);
        assert_eq!(r.makespan, Some(5));
        assert_eq!(r.counters.copies_lost_to_down, 0);
    }

    #[test]
    fn down_loses_program_and_work() {
        // Worker crashes after receiving program + data and computing 1 slot;
        // must redo everything after coming back UP.
        // Trace: u u u d u u u u u …  (Tprog=1, Tdata=1, w=2)
        // slot0 prog, slot1 data, slot2 compute(1/2), slot3 DOWN (lose all),
        // slot4 prog, slot5 data, slots6-7 compute → makespan 8.
        let platform = replay_platform(&["uuuduuuuu"], 2, 1);
        let app = AppConfig {
            tasks_per_iteration: 1,
            iterations: 1,
            t_prog: 1,
            t_data: 1,
        };
        let r = run(&platform, &app, HeuristicKind::Mct, NO_REP);
        assert_eq!(r.makespan, Some(8));
        assert_eq!(r.counters.copies_lost_to_down, 1);
        assert_eq!(r.counters.programs_delivered, 2);
    }

    #[test]
    fn iterations_chain_without_program_resend() {
        // 2 iterations of 1 task each on one always-up worker: program once.
        // slot0 prog, slot1 data(i0), slots2-3 compute, barrier;
        // slot4 data(i1), slots5-6 compute → makespan 7.
        let platform = always_up(1, 2, 1);
        let app = AppConfig {
            tasks_per_iteration: 1,
            iterations: 2,
            t_prog: 1,
            t_data: 1,
        };
        let r = run(&platform, &app, HeuristicKind::Mct, NO_REP);
        assert_eq!(r.makespan, Some(7));
        assert_eq!(r.counters.programs_delivered, 1);
        assert_eq!(r.iteration_completed_at, vec![3, 6]);
    }

    #[test]
    fn replication_uses_idle_workers() {
        // 2 workers, 1 task: the idle one receives a replica.
        let platform = always_up(2, 5, 2);
        let app = AppConfig {
            tasks_per_iteration: 1,
            iterations: 1,
            t_prog: 1,
            t_data: 1,
        };
        let r = run(&platform, &app, HeuristicKind::Mct, SimOptions::default());
        assert_eq!(r.makespan, Some(7)); // prog 0, data 1, compute 2-6
        assert!(r.counters.replicas_started >= 1);
        assert!(r.counters.replicas_canceled >= 1, "loser copy canceled");
        assert_eq!(r.counters.tasks_completed, 1);
    }

    #[test]
    fn replication_rescues_a_crash() {
        // Worker 0 crashes mid-compute; the replica on worker 1 finishes.
        // Without replication the task would restart from scratch.
        let platform = replay_platform(&["uuuudddddddddd", "uuuuuuuuuuuuuu"], 8, 2);
        let app = AppConfig {
            tasks_per_iteration: 1,
            iterations: 1,
            t_prog: 1,
            t_data: 1,
        };
        let with = run(&platform, &app, HeuristicKind::Mct, SimOptions::default());
        let without = run(&platform, &app, HeuristicKind::Mct, NO_REP);
        assert!(with.finished());
        assert_eq!(with.makespan, Some(10)); // replica: prog 0, data 1, compute 2-9
        assert!(
            !without.finished() || without.makespan_or_cap() > with.makespan_or_cap(),
            "replication must help here: {without:?}"
        );
    }

    #[test]
    fn zero_t_data_computes_immediately() {
        // Tdata=0 (Theorem-1-style instance): bind and compute same slot.
        // slot0: prog; slot1: bind+compute (w=1) → makespan 2.
        let platform = always_up(1, 1, 1);
        let app = AppConfig {
            tasks_per_iteration: 1,
            iterations: 1,
            t_prog: 1,
            t_data: 0,
        };
        let r = run(&platform, &app, HeuristicKind::Mct, NO_REP);
        assert_eq!(r.makespan, Some(2));
    }

    #[test]
    fn zero_t_prog_skips_program_phase() {
        let platform = always_up(1, 2, 1);
        let app = AppConfig {
            tasks_per_iteration: 1,
            iterations: 1,
            t_prog: 0,
            t_data: 1,
        };
        let r = run(&platform, &app, HeuristicKind::Mct, NO_REP);
        // slot0 data, slots1-2 compute → 3.
        assert_eq!(r.makespan, Some(3));
        assert_eq!(r.counters.programs_delivered, 0);
    }

    #[test]
    fn slot_cap_reports_incomplete() {
        // All workers permanently reclaimed: nothing ever runs.
        let platform = replay_platform(&["r"], 1, 1);
        let app = AppConfig {
            tasks_per_iteration: 1,
            iterations: 1,
            t_prog: 1,
            t_data: 1,
        };
        let r = run(
            &platform,
            &app,
            HeuristicKind::Mct,
            SimOptions {
                max_slots: 50,
                ..NO_REP
            },
        );
        assert!(!r.finished());
        assert_eq!(r.slots_run, 50);
        assert_eq!(r.completed_iterations, 0);
    }

    #[test]
    fn determinism_same_seeds_same_report() {
        let platform = markov_platform(4, 3);
        let app = AppConfig {
            tasks_per_iteration: 6,
            iterations: 3,
            t_prog: 5,
            t_data: 1,
        };
        let go = || {
            let sched = HeuristicKind::EmctStar.build(SeedPath::root(11).rng());
            let sources = sources_for(&platform, 42);
            Simulation::new(&platform, &app, sched, sources, SimOptions::default())
                .unwrap()
                .run()
        };
        assert_eq!(go(), go());
    }

    fn markov_platform(p: usize, w: SlotSpan) -> PlatformConfig {
        let mut rng = SeedPath::root(5).rng();
        PlatformConfig {
            processors: (0..p)
                .map(|_| {
                    let chain = vg_markov::availability::AvailabilityChain::sample_paper(
                        &mut rng, 0.90, 0.99,
                    );
                    ProcessorConfig::markov(w, chain, StartPolicy::Up)
                })
                .collect(),
            ncom: 2,
        }
    }

    #[test]
    fn determinism_64_workers_with_and_without_replication() {
        // Identical seeds must yield bit-identical reports at scale, for a
        // stateful random heuristic and a deterministic greedy one, with the
        // replica placement path both exercised and disabled.
        let platform = markov_platform(64, 3);
        let app = AppConfig {
            tasks_per_iteration: 96,
            iterations: 2,
            t_prog: 5,
            t_data: 2,
        };
        for kind in [HeuristicKind::EmctStar, HeuristicKind::Random2w] {
            for replication in [false, true] {
                let go = || {
                    Simulation::run_seeded(
                        &platform,
                        &app,
                        kind.build(SeedPath::root(11).rng()),
                        SeedPath::root(42),
                        SimOptions {
                            max_slots: 100_000,
                            replication,
                            max_extra_replicas: 2,
                            record_timeline: false,
                            placement_budget: PlacementBudget::Uncapped,
                        },
                    )
                    .unwrap()
                };
                let a = go();
                let b = go();
                assert_eq!(a, b, "{kind} replication={replication}");
                assert!(a.finished(), "{kind} replication={replication}: {a}");
            }
        }
    }

    #[test]
    fn seeded_dense_bank_matches_explicit_boxed_sources() {
        // `run_seeded` routes all-Markov platforms through the dense
        // `MarkovSourceBank`; its report must be byte-identical to the
        // boxed-source path (`Simulation::new` with `build_source` per
        // processor, same seed layout) — the bank is an implementation
        // detail, not an observable.
        let platform = markov_platform(48, 3);
        let app = AppConfig {
            tasks_per_iteration: 64,
            iterations: 2,
            t_prog: 5,
            t_data: 2,
        };
        for replication in [false, true] {
            let opts = SimOptions {
                max_slots: 100_000,
                replication,
                max_extra_replicas: 2,
                record_timeline: false,
                placement_budget: PlacementBudget::Uncapped,
            };
            let seeded = Simulation::run_seeded(
                &platform,
                &app,
                HeuristicKind::EmctStar.build(SeedPath::root(11).rng()),
                SeedPath::root(42),
                opts,
            )
            .unwrap();
            let boxed = Simulation::new(
                &platform,
                &app,
                HeuristicKind::EmctStar.build(SeedPath::root(11).rng()),
                sources_for(&platform, 42),
                opts,
            )
            .unwrap()
            .run();
            assert_eq!(seeded, boxed, "replication={replication}");
            // The arena path reuses one warmed bank across runs; it must
            // agree too.
            let arena = SimArena::new()
                .run_seeded(
                    &platform,
                    &app,
                    HeuristicKind::EmctStar.build(SeedPath::root(11).rng()),
                    SeedPath::root(42),
                    opts,
                )
                .unwrap();
            assert_eq!(arena.makespan, seeded.makespan, "replication={replication}");
            assert_eq!(arena.slots_run, seeded.slots_run);
        }
    }

    #[test]
    fn stepping_matches_run() {
        // Driving the engine slot-by-slot through the public `step` must
        // reproduce `run` exactly (the bench and alloc harness rely on it).
        let platform = markov_platform(8, 3);
        let app = AppConfig {
            tasks_per_iteration: 12,
            iterations: 2,
            t_prog: 4,
            t_data: 1,
        };
        let build = || {
            let sched = HeuristicKind::EmctStar.build(SeedPath::root(5).rng());
            let sources = sources_for(&platform, 21);
            Simulation::new(&platform, &app, sched, sources, SimOptions::default()).unwrap()
        };
        let by_run = build().run();
        let mut sim = build();
        while !sim.is_done() {
            sim.step();
        }
        assert_eq!(sim.slots_run(), by_run.slots_run);
        assert_eq!(sim.into_report(), by_run);
    }

    #[test]
    fn arena_run_is_bit_identical_to_cold_engine() {
        // One arena reused across different platform sizes, task counts,
        // heuristics and replication settings — buffers grow AND shrink —
        // must reproduce the cold path exactly, run after run.
        let mut arena = SimArena::new();
        let plans: &[(usize, usize, bool)] = &[
            (8, 12, true),
            (64, 96, false), // grow
            (4, 3, true),    // shrink
            (8, 12, true),   // revisit the first shape with dirty buffers
        ];
        for (round, &(p, m, replication)) in plans.iter().enumerate() {
            let platform = markov_platform(p, 3);
            let app = AppConfig {
                tasks_per_iteration: m,
                iterations: 2,
                t_prog: 4,
                t_data: 1,
            };
            let options = SimOptions {
                max_slots: 100_000,
                replication,
                max_extra_replicas: 2,
                record_timeline: false,
                placement_budget: PlacementBudget::Uncapped,
            };
            for kind in [HeuristicKind::EmctStar, HeuristicKind::Random2w] {
                let seed = (round * 10 + p) as u64;
                let warm = arena
                    .run_seeded(
                        &platform,
                        &app,
                        kind.build(SeedPath::root(seed).rng()),
                        SeedPath::root(seed + 1),
                        options,
                    )
                    .unwrap();
                let cold = Simulation::run_seeded(
                    &platform,
                    &app,
                    kind.build(SeedPath::root(seed).rng()),
                    SeedPath::root(seed + 1),
                    options,
                )
                .unwrap();
                assert_eq!(warm.makespan, cold.makespan, "round {round} {kind}");
                assert_eq!(warm.slots_run, cold.slots_run, "round {round} {kind}");
                assert_eq!(
                    warm.completed_iterations, cold.completed_iterations,
                    "round {round} {kind}"
                );
                assert_eq!(warm.makespan_or_cap(), cold.makespan_or_cap());
                assert_eq!(warm.finished(), cold.finished());
            }
        }
    }

    #[test]
    fn arena_run_configured_matches_run_seeded() {
        // Shared chains + caller-built sources (the general entry point)
        // must be bit-identical to the self-seeding path — including when
        // one arena alternates between equally sized but different
        // platforms (scheduler caches must not leak across runs).
        let mut arena = SimArena::new();
        let app = AppConfig {
            tasks_per_iteration: 8,
            iterations: 2,
            t_prog: 4,
            t_data: 1,
        };
        for (pseed, kind) in [
            (4, HeuristicKind::Ud),
            (5, HeuristicKind::Ud),      // same p, different platform
            (5, HeuristicKind::Random1), // impure scheduler, same platform
            (4, HeuristicKind::Random1), // impure scheduler, platform flip
        ] {
            let platform = {
                let mut rng = SeedPath::root(pseed).rng();
                PlatformConfig {
                    processors: (0..6)
                        .map(|_| {
                            let chain = vg_markov::availability::AvailabilityChain::sample_paper(
                                &mut rng, 0.90, 0.99,
                            );
                            ProcessorConfig::markov(3, chain, StartPolicy::Up)
                        })
                        .collect(),
                    ncom: 2,
                }
            };
            let chains = platform_chain_stats(&platform);
            let configured = arena
                .run_configured(
                    &platform,
                    &app,
                    kind.build(SeedPath::root(9).rng()),
                    &chains,
                    sources_for(&platform, 13),
                    SimOptions::default(),
                )
                .unwrap();
            let seeded = Simulation::run_seeded(
                &platform,
                &app,
                kind.build(SeedPath::root(9).rng()),
                SeedPath::root(13),
                SimOptions::default(),
            )
            .unwrap();
            assert_eq!(configured.makespan, seeded.makespan, "{kind} pseed={pseed}");
            assert_eq!(
                configured.slots_run, seeded.slots_run,
                "{kind} pseed={pseed}"
            );
        }
        // Mismatched chains are rejected, not misused.
        let platform = always_up(2, 1, 1);
        let err = arena.run_configured(
            &platform,
            &app,
            HeuristicKind::Mct.build(SeedPath::root(1).rng()),
            &[],
            sources_for(&platform, 1),
            SimOptions::default(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn arena_rejects_timeline_recording() {
        let platform = always_up(1, 1, 1);
        let app = AppConfig {
            tasks_per_iteration: 1,
            iterations: 1,
            t_prog: 1,
            t_data: 1,
        };
        let mut arena = SimArena::new();
        let err = arena.run_seeded(
            &platform,
            &app,
            HeuristicKind::Mct.build(SeedPath::root(1).rng()),
            SeedPath::root(2),
            SimOptions {
                record_timeline: true,
                ..NO_REP
            },
        );
        assert!(err.is_err());
    }

    #[test]
    fn arena_reports_cap_as_unfinished() {
        let platform = replay_platform(&["r"], 1, 1);
        let app = AppConfig {
            tasks_per_iteration: 1,
            iterations: 1,
            t_prog: 1,
            t_data: 1,
        };
        let mut arena = SimArena::new();
        let outcome = arena
            .run_seeded(
                &platform,
                &app,
                HeuristicKind::Mct.build(SeedPath::root(1).rng()),
                SeedPath::root(2),
                SimOptions {
                    max_slots: 25,
                    ..NO_REP
                },
            )
            .unwrap();
        assert!(!outcome.finished());
        assert_eq!(outcome.makespan, None);
        assert_eq!(outcome.makespan_or_cap(), 25);
        assert_eq!(outcome.completed_iterations, 0);
    }

    #[test]
    fn all_heuristics_complete_on_a_markov_platform() {
        let platform = markov_platform(6, 2);
        let app = AppConfig {
            tasks_per_iteration: 8,
            iterations: 2,
            t_prog: 5,
            t_data: 1,
        };
        for kind in HeuristicKind::ALL {
            let sched = kind.build(SeedPath::root(1).rng());
            let sources = sources_for(&platform, 3);
            let r = Simulation::new(&platform, &app, sched, sources, SimOptions::default())
                .unwrap()
                .run();
            assert!(r.finished(), "{kind} did not finish: {r}");
            assert_eq!(r.counters.tasks_completed, 16, "{kind}");
        }
    }

    #[test]
    fn common_random_numbers_share_traces() {
        // Two different heuristics with the same trace seed must face the
        // same availability: their state_slots tallies may differ only
        // because of different makespans, so compare a fixed-horizon run of
        // a platform with *no* schedulable work (empty pool never happens,
        // but states advance identically regardless of scheduling) — here we
        // simply check that trace sources are scheduler-independent.
        let platform = markov_platform(3, 2);
        let a: Vec<ProcState> = {
            let mut src = platform.processors[0]
                .avail
                .build_source(SeedPath::root(42).child(0).rng());
            (0..100).map(|_| src.next_state()).collect()
        };
        let b: Vec<ProcState> = {
            let mut src = platform.processors[0]
                .avail
                .build_source(SeedPath::root(42).child(0).rng());
            (0..100).map(|_| src.next_state()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn source_count_mismatch_is_an_error() {
        let platform = always_up(2, 1, 1);
        let app = AppConfig {
            tasks_per_iteration: 1,
            iterations: 1,
            t_prog: 1,
            t_data: 1,
        };
        let sched = HeuristicKind::Mct.build(SeedPath::root(1).rng());
        let sources = sources_for(&platform, 1).into_iter().take(1).collect();
        assert!(Simulation::new(&platform, &app, sched, sources, SimOptions::default()).is_err());
    }

    #[test]
    fn bandwidth_utilization_bounded() {
        let platform = markov_platform(5, 2);
        let app = AppConfig {
            tasks_per_iteration: 10,
            iterations: 2,
            t_prog: 5,
            t_data: 2,
        };
        let r = run(
            &platform,
            &app,
            HeuristicKind::MctStar,
            SimOptions::default(),
        );
        assert!(r.mean_bandwidth_utilization >= 0.0);
        assert!(r.mean_bandwidth_utilization <= 1.0);
    }

    #[test]
    fn timeline_recording_matches_run() {
        let platform = replay_platform(&["uuruuuuu"], 2, 1);
        let app = AppConfig {
            tasks_per_iteration: 1,
            iterations: 1,
            t_prog: 1,
            t_data: 1,
        };
        let sched = HeuristicKind::Mct.build(SeedPath::root(1).rng());
        let sources = sources_for(&platform, 7);
        let r = Simulation::new(
            &platform,
            &app,
            sched,
            sources,
            SimOptions {
                record_timeline: true,
                ..NO_REP
            },
        )
        .unwrap()
        .run();
        let tl = r.timeline.as_ref().expect("recording enabled");
        assert_eq!(tl.slots() as u64, r.slots_run);
        assert_eq!(tl.p(), 1);
        // Trace u u r u u…: prog@0, reclaimed@2 appears, data@1,
        // compute@3-4 → makespan 5.
        use crate::timeline::Activity;
        assert_eq!(tl.at(0, 0), Activity::RecvProg);
        assert_eq!(tl.at(0, 1), Activity::RecvData);
        assert_eq!(tl.at(0, 2), Activity::Reclaimed);
        assert_eq!(tl.at(0, 3), Activity::Compute);
        assert_eq!(tl.at(0, 4), Activity::Compute);
        assert_eq!(tl.barriers(), &[4]);
        assert_eq!(r.makespan, Some(5));
        // Recording must not change the outcome.
        let baseline = run(&platform, &app, HeuristicKind::Mct, NO_REP);
        assert_eq!(baseline.makespan, r.makespan);
    }

    #[test]
    fn zero_prog_and_zero_data_compute_only() {
        // Pure computation: m tasks of w slots on one worker.
        let platform = always_up(1, 3, 1);
        let app = AppConfig {
            tasks_per_iteration: 2,
            iterations: 1,
            t_prog: 0,
            t_data: 0,
        };
        let r = run(&platform, &app, HeuristicKind::Mct, NO_REP);
        // Bind+compute from slot 0: 2 tasks × 3 slots = 6.
        assert_eq!(r.makespan, Some(6));
        assert_eq!(r.counters.prog_channel_slots, 0);
        assert_eq!(r.counters.data_channel_slots, 0);
    }

    #[test]
    fn crash_during_program_transfer_restarts_it() {
        // Trace u u d u u u u: program (Tprog=3) gets 2 slots, crashes,
        // restarts: prog 3-5, data 6, compute 7 → makespan 8.
        let platform = replay_platform(&["uuduuuuuu"], 1, 1);
        let app = AppConfig {
            tasks_per_iteration: 1,
            iterations: 1,
            t_prog: 3,
            t_data: 1,
        };
        let r = run(&platform, &app, HeuristicKind::Mct, NO_REP);
        assert_eq!(r.makespan, Some(8));
        // 2 wasted + 3 real program channel-slots.
        assert_eq!(r.counters.prog_channel_slots, 5);
        assert_eq!(r.counters.programs_delivered, 1);
    }

    #[test]
    fn makespan_monotone_in_iterations() {
        let platform = markov_platform(4, 2);
        let mk = |iters| {
            let app = AppConfig {
                tasks_per_iteration: 4,
                iterations: iters,
                t_prog: 3,
                t_data: 1,
            };
            run(&platform, &app, HeuristicKind::Emct, SimOptions::default()).makespan_or_cap()
        };
        assert!(mk(1) <= mk(2));
        assert!(mk(2) <= mk(4));
    }
}
