//! Per-slot activity timelines and an ASCII Gantt renderer.
//!
//! When enabled ([`crate::SimOptions::record_timeline`]), the engine records
//! what every worker did in every slot — the raw material for debugging a
//! scheduling decision, for the `gantt` example, and for computing
//! per-worker utilization. Recording costs one byte per worker per slot.

use vg_des::Slot;
use vg_markov::ProcState;

/// What one worker did during one slot (one byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Activity {
    /// `UP` but no assigned work progressed.
    IdleUp,
    /// Receiving the program.
    RecvProg,
    /// Receiving task data.
    RecvData,
    /// Computing a task.
    Compute,
    /// Computing while receiving the next task's data (the overlap the
    /// model is designed around).
    ComputeAndRecv,
    /// `RECLAIMED` — suspended (pinned work may be waiting).
    Reclaimed,
    /// `DOWN` — crashed.
    Down,
}

impl Activity {
    /// One-character Gantt glyph.
    #[must_use]
    pub fn glyph(self) -> char {
        match self {
            Self::IdleUp => '·',
            Self::RecvProg => 'P',
            Self::RecvData => 'D',
            Self::Compute => 'C',
            Self::ComputeAndRecv => 'B',
            Self::Reclaimed => 'r',
            Self::Down => 'x',
        }
    }

    /// True when the worker made forward progress this slot.
    #[must_use]
    pub fn is_productive(self) -> bool {
        matches!(
            self,
            Self::RecvProg | Self::RecvData | Self::Compute | Self::ComputeAndRecv
        )
    }
}

/// A recorded execution timeline.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Timeline {
    /// `rows[q][t]`: activity of worker `q` at slot `t`.
    rows: Vec<Vec<Activity>>,
    /// Slots at which an iteration completed.
    barriers: Vec<Slot>,
}

impl Timeline {
    /// Creates an empty timeline for `p` workers.
    #[must_use]
    pub fn new(p: usize) -> Self {
        Self {
            rows: vec![Vec::new(); p],
            barriers: Vec::new(),
        }
    }

    /// Number of workers.
    #[must_use]
    pub fn p(&self) -> usize {
        self.rows.len()
    }

    /// Number of recorded slots.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.rows.first().map_or(0, Vec::len)
    }

    /// Activity of worker `q` at slot `t`.
    #[must_use]
    pub fn at(&self, q: usize, t: Slot) -> Activity {
        self.rows[q][t as usize]
    }

    /// Slots at which iterations completed.
    #[must_use]
    pub fn barriers(&self) -> &[Slot] {
        &self.barriers
    }

    /// Appends one slot of activity (engine hook).
    pub fn push_slot(&mut self, activities: &[Activity]) {
        debug_assert_eq!(activities.len(), self.rows.len());
        for (row, &a) in self.rows.iter_mut().zip(activities) {
            row.push(a);
        }
    }

    /// Marks an iteration barrier at `slot` (engine hook).
    pub fn push_barrier(&mut self, slot: Slot) {
        self.barriers.push(slot);
    }

    /// Fraction of recorded slots in which worker `q` made progress.
    #[must_use]
    pub fn utilization(&self, q: usize) -> f64 {
        let row = &self.rows[q];
        if row.is_empty() {
            return 0.0;
        }
        row.iter().filter(|a| a.is_productive()).count() as f64 / row.len() as f64
    }

    /// Renders slots `[from, to)` as an ASCII Gantt chart: one row per
    /// worker, a ruler every 10 slots, `|` marking iteration barriers, and a
    /// legend.
    #[must_use]
    pub fn render(&self, from: Slot, to: Slot) -> String {
        let to = to.min(self.slots() as Slot);
        let from = from.min(to);
        let width = (to - from) as usize;
        let mut out = String::new();

        // Ruler.
        out.push_str("      ");
        for t in from..to {
            out.push(if t % 10 == 0 { '+' } else { ' ' });
        }
        out.push('\n');

        for (q, row) in self.rows.iter().enumerate() {
            out.push_str(&format!("P{q:<4} "));
            for t in from..to {
                out.push(row[t as usize].glyph());
            }
            out.push_str(&format!("  {:>5.1}%\n", 100.0 * self.utilization(q)));
        }

        // Barrier markers.
        if !self.barriers.is_empty() {
            out.push_str("iter  ");
            let mut line = vec![' '; width];
            for &b in &self.barriers {
                if (from..to).contains(&b) {
                    line[(b - from) as usize] = '|';
                }
            }
            out.extend(line);
            out.push('\n');
        }
        out.push_str(
            "      legend: P=program D=data C=compute B=compute+data ·=idle r=reclaimed x=down; | iteration done\n",
        );
        out
    }
}

/// Scratch marks collected by the engine during one slot, combined with the
/// worker's state into an [`Activity`] at slot end.
#[derive(Debug, Clone, Copy, Default)]
pub struct SlotMarks {
    /// A program channel was granted this slot.
    pub recv_prog: bool,
    /// A data channel was granted this slot.
    pub recv_data: bool,
    /// The compute unit advanced this slot.
    pub computed: bool,
}

impl SlotMarks {
    /// Folds the marks and the state into the recorded activity.
    #[must_use]
    pub fn resolve(self, state: ProcState) -> Activity {
        match state {
            ProcState::Down => Activity::Down,
            ProcState::Reclaimed => Activity::Reclaimed,
            ProcState::Up => match (self.computed, self.recv_prog || self.recv_data) {
                (true, true) => Activity::ComputeAndRecv,
                (true, false) => Activity::Compute,
                (false, true) => {
                    if self.recv_prog {
                        Activity::RecvProg
                    } else {
                        Activity::RecvData
                    }
                }
                (false, false) => Activity::IdleUp,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_resolution() {
        let up = ProcState::Up;
        assert_eq!(SlotMarks::default().resolve(up), Activity::IdleUp);
        assert_eq!(
            SlotMarks {
                recv_prog: true,
                ..Default::default()
            }
            .resolve(up),
            Activity::RecvProg
        );
        assert_eq!(
            SlotMarks {
                recv_data: true,
                ..Default::default()
            }
            .resolve(up),
            Activity::RecvData
        );
        assert_eq!(
            SlotMarks {
                computed: true,
                ..Default::default()
            }
            .resolve(up),
            Activity::Compute
        );
        assert_eq!(
            SlotMarks {
                computed: true,
                recv_data: true,
                ..Default::default()
            }
            .resolve(up),
            Activity::ComputeAndRecv
        );
        assert_eq!(
            SlotMarks {
                computed: false,
                ..Default::default()
            }
            .resolve(ProcState::Down),
            Activity::Down
        );
        assert_eq!(
            SlotMarks::default().resolve(ProcState::Reclaimed),
            Activity::Reclaimed
        );
    }

    #[test]
    fn timeline_accumulates_and_measures() {
        let mut tl = Timeline::new(2);
        tl.push_slot(&[Activity::RecvProg, Activity::Reclaimed]);
        tl.push_slot(&[Activity::Compute, Activity::IdleUp]);
        tl.push_slot(&[Activity::Compute, Activity::Down]);
        tl.push_barrier(2);
        assert_eq!(tl.p(), 2);
        assert_eq!(tl.slots(), 3);
        assert_eq!(tl.at(0, 1), Activity::Compute);
        assert!((tl.utilization(0) - 1.0).abs() < 1e-12);
        assert_eq!(tl.utilization(1), 0.0);
        assert_eq!(tl.barriers(), &[2]);
    }

    #[test]
    fn render_contains_rows_and_legend() {
        let mut tl = Timeline::new(2);
        for _ in 0..15 {
            tl.push_slot(&[Activity::Compute, Activity::Reclaimed]);
        }
        tl.push_barrier(14);
        let g = tl.render(0, 15);
        assert!(g.contains("P0"));
        assert!(g.contains("P1"));
        assert!(g.contains("CCCCC"));
        assert!(g.contains("rrrrr"));
        assert!(g.contains("legend"));
        assert!(g.contains('|'), "barrier marker missing:\n{g}");
    }

    #[test]
    fn render_clamps_range() {
        let mut tl = Timeline::new(1);
        tl.push_slot(&[Activity::IdleUp]);
        let g = tl.render(0, 100); // beyond recorded range
        assert!(g.contains('·'));
        let empty = tl.render(5, 3);
        assert!(empty.contains("P0"));
    }

    #[test]
    fn empty_timeline_is_safe() {
        let tl = Timeline::new(3);
        assert_eq!(tl.slots(), 0);
        assert_eq!(tl.utilization(0), 0.0);
        let _ = tl.render(0, 10);
    }
}
