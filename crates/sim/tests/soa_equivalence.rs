//! The SoA ⇄ AoS bit-identity oracle.
//!
//! The production engine runs on the [`WorkerSoA`] hot/cold layout; the
//! original `Vec<WorkerRuntime>` path is retained behind the [`AosWorkers`]
//! adapter (`ReferenceSimulation = Simulation<AosWorkers>`), delegating every
//! per-worker operation to the unchanged pre-refactor methods. This harness
//! proves the refactor safe: across the full 17-heuristic × seed ×
//! platform-size × replication grid, the two engines must produce
//! **identical [`SimReport`]s** — makespans, per-iteration completion slots,
//! every counter, and the bandwidth statistic — same pattern as PR 1's
//! 1632-run pin of the zero-allocation slot loop.
//!
//! Since the incremental-snapshot change, the same grid also pins the
//! **incremental vs. full-rebuild snapshot paths** against each other: the
//! SoA engine patches a persistent snapshot buffer from per-worker dirty
//! bits (`WorkerStore::INCREMENTAL_SNAPSHOTS = true`), while the AoS
//! reference opts out and rebuilds every snapshot from scratch, exactly as
//! before the change. A missed dirty bit therefore shows up here as a
//! report divergence (and, in debug builds, as the engine's per-consult
//! incremental-vs-full assertion firing first).
//!
//! The grid deliberately includes runs that hit the slot cap (the p = 1024
//! cells): capped runs exercise crash/cancel/replica churn for the whole
//! horizon and compare every counter, which is a stronger equivalence check
//! than a short happy path.

use vg_core::{HeuristicKind, SharePolicy};
use vg_des::rng::SeedPath;
use vg_markov::availability::AvailabilityChain;
use vg_platform::source::StartPolicy;
use vg_platform::{AppConfig, PlatformConfig, ProcessorConfig};
use vg_sim::{AppSpec, PlacementBudget, ReferenceSimulation, SimArena, SimOptions, Simulation};

/// Paper-style platform: Markov chains with diagonals in `[0.90, 0.99]`,
/// speeds in `[2, 20]`.
fn platform(p: usize, ncom: usize, seed: u64) -> PlatformConfig {
    let mut rng = SeedPath::root(seed).rng();
    PlatformConfig {
        processors: (0..p)
            .map(|_| {
                let chain = AvailabilityChain::sample_paper(&mut rng, 0.90, 0.99);
                let w = rng.u64_range_inclusive(2, 20);
                ProcessorConfig::markov(w, chain, StartPolicy::Up)
            })
            .collect(),
        ncom,
    }
}

/// One grid cell: platform size, tasks, iterations, slot cap, trace seeds.
struct Cell {
    p: usize,
    m: usize,
    iterations: u64,
    max_slots: u64,
    seeds: &'static [u64],
}

/// The equivalence grid. Larger platforms get a tighter slot cap so the
/// whole grid stays affordable in debug builds; the p = 1024 cells cap out
/// by design (see the module docs).
const GRID: &[Cell] = &[
    Cell {
        p: 32,
        m: 48,
        iterations: 2,
        max_slots: 20_000,
        seeds: &[11, 12, 13],
    },
    Cell {
        p: 256,
        m: 256,
        iterations: 1,
        max_slots: 1_500,
        seeds: &[21, 22],
    },
    Cell {
        p: 1024,
        m: 768,
        iterations: 1,
        max_slots: 260,
        seeds: &[31],
    },
    // Platform-scale row: u ≥ SHARD_MIN_UPS forces the sharded selector
    // and the chunked dense-column passes onto their large-p branches, so
    // this cell pins chunked ≡ unchunked and sharded ≡ monolithic (the
    // AoS reference inherits the conservative per-worker defaults for
    // every block-summary query). Few slots keep the debug grid
    // affordable; the debug oracles sample at this size (see
    // `exhaustive_debug_checks`), so the bit-identity check here is the
    // full-platform one.
    Cell {
        p: 16_384,
        m: 2_048,
        iterations: 1,
        max_slots: 12,
        seeds: &[41],
    },
];

#[test]
fn soa_engine_is_bit_identical_to_aos_reference_across_the_grid() {
    let mut runs = 0usize;
    let mut finished = 0usize;
    for cell in GRID {
        let ncom = (cell.p / 10).max(3);
        for &seed in cell.seeds {
            let platform = platform(cell.p, ncom, seed);
            let app = AppConfig {
                tasks_per_iteration: cell.m,
                iterations: cell.iterations,
                t_prog: 10,
                t_data: 2,
            };
            for replication in [false, true] {
                let options = SimOptions {
                    max_slots: cell.max_slots,
                    replication,
                    max_extra_replicas: 2,
                    record_timeline: false,
                    placement_budget: PlacementBudget::Uncapped,
                };
                for kind in HeuristicKind::ALL {
                    let soa = Simulation::run_seeded(
                        &platform,
                        &app,
                        kind.build(SeedPath::root(seed ^ 0xbeef).rng()),
                        SeedPath::root(seed),
                        options,
                    )
                    .unwrap();
                    let aos = ReferenceSimulation::run_seeded_in(
                        &platform,
                        &app,
                        kind.build(SeedPath::root(seed ^ 0xbeef).rng()),
                        SeedPath::root(seed),
                        options,
                    )
                    .unwrap();
                    assert_eq!(
                        soa, aos,
                        "SoA/AoS divergence: p={} seed={seed} replication={replication} {kind}",
                        cell.p
                    );
                    runs += 2;
                    finished += usize::from(soa.finished());
                }
            }
        }
    }
    assert_eq!(runs, 17 * 2 * 2 * (3 + 2 + 1 + 1), "grid shape drifted");
    // The grid must exercise both completed and capped runs.
    assert!(
        finished > 0,
        "no run finished — grid too tight to mean much"
    );
    assert!(
        finished < runs / 2,
        "every run finished — the capped-run half of the grid is gone"
    );
}

#[test]
fn multi_app_api_with_single_roster_matches_single_app_api_on_both_layouts() {
    // The application runtime layer's spine contract: a one-application
    // roster under `Fixed` reconfiguration and the default equal-split
    // share, driven through the *multi*-application entry points, must be
    // **byte-identical** to the historical single-application API — same
    // grid, all 17 heuristics, both store layouts. The multi API's combined
    // report is compared field-for-field against `run_seeded`, and the SoA
    // and AoS multi engines are pinned against each other, so a divergence
    // in either the app dispatch or the per-layout plumbing lands here.
    let mut runs = 0usize;
    for cell in GRID {
        let ncom = (cell.p / 10).max(3);
        let seed = cell.seeds[0];
        let platform = platform(cell.p, ncom, seed);
        let app = AppConfig {
            tasks_per_iteration: cell.m,
            iterations: cell.iterations,
            t_prog: 10,
            t_data: 2,
        };
        let specs = [AppSpec::rigid(app)];
        for replication in [false, true] {
            let options = SimOptions {
                max_slots: cell.max_slots,
                replication,
                max_extra_replicas: 2,
                record_timeline: false,
                placement_budget: PlacementBudget::Uncapped,
            };
            for kind in HeuristicKind::ALL {
                let single = Simulation::run_seeded(
                    &platform,
                    &app,
                    kind.build(SeedPath::root(seed ^ 0xbeef).rng()),
                    SeedPath::root(seed),
                    options,
                )
                .unwrap();
                let multi = Simulation::run_multi_seeded(
                    &platform,
                    &specs,
                    SharePolicy::default(),
                    kind.build(SeedPath::root(seed ^ 0xbeef).rng()),
                    SeedPath::root(seed),
                    options,
                )
                .unwrap();
                let multi_aos = ReferenceSimulation::run_multi_seeded_in(
                    &platform,
                    &specs,
                    SharePolicy::default(),
                    kind.build(SeedPath::root(seed ^ 0xbeef).rng()),
                    SeedPath::root(seed),
                    options,
                )
                .unwrap();
                assert_eq!(
                    multi.combined, single,
                    "multi-API combined report diverged from the single-app \
                     API: p={} seed={seed} replication={replication} {kind}",
                    cell.p
                );
                assert_eq!(
                    multi, multi_aos,
                    "multi-API SoA/AoS divergence: p={} seed={seed} \
                     replication={replication} {kind}",
                    cell.p
                );
                // The per-app slice of a one-app roster must agree with the
                // combined report.
                assert_eq!(multi.apps.len(), 1);
                let per_app = &multi.apps[0];
                assert_eq!(per_app.completed_iterations, single.completed_iterations);
                assert_eq!(per_app.makespan, single.makespan);
                assert_eq!(per_app.final_m, cell.m);
                assert_eq!(
                    per_app.tasks_completed, single.counters.tasks_completed,
                    "per-app task credit diverged from the shared counter"
                );
                assert_eq!(
                    per_app.iteration_completed_at,
                    single.iteration_completed_at
                );
                runs += 3;
            }
        }
    }
    assert_eq!(runs, 17 * 2 * 4 * 3, "grid shape drifted");
}

#[test]
fn warmed_arena_matches_cold_engines_of_both_layouts_across_resizes() {
    // PR 2's arena-equality test, extended to the new layout: one arena
    // driven through a grow → shrink → grow platform sequence (dirty
    // buffers from each previous shape) must match a cold SoA engine *and*
    // the cold AoS reference, run for run.
    let mut arena = SimArena::new();
    let plans: &[(usize, usize, bool)] = &[
        (8, 12, true),
        (96, 128, false), // grow
        (4, 3, true),     // shrink
        (96, 128, true),  // regrow onto dirty buffers, replicas on
        (8, 12, true),    // original shape again
    ];
    for (round, &(p, m, replication)) in plans.iter().enumerate() {
        let seed = (round * 100 + p) as u64;
        let platform = platform(p, (p / 10).max(2), seed);
        let app = AppConfig {
            tasks_per_iteration: m,
            iterations: 2,
            t_prog: 4,
            t_data: 1,
        };
        let options = SimOptions {
            max_slots: 50_000,
            replication,
            max_extra_replicas: 2,
            record_timeline: false,
            placement_budget: PlacementBudget::Uncapped,
        };
        for kind in [
            HeuristicKind::EmctStar,
            HeuristicKind::Mct,
            HeuristicKind::Random2w,
        ] {
            let warm = arena
                .run_seeded(
                    &platform,
                    &app,
                    kind.build(SeedPath::root(seed).rng()),
                    SeedPath::root(seed + 1),
                    options,
                )
                .unwrap();
            let cold = Simulation::run_seeded(
                &platform,
                &app,
                kind.build(SeedPath::root(seed).rng()),
                SeedPath::root(seed + 1),
                options,
            )
            .unwrap();
            let reference = ReferenceSimulation::run_seeded_in(
                &platform,
                &app,
                kind.build(SeedPath::root(seed).rng()),
                SeedPath::root(seed + 1),
                options,
            )
            .unwrap();
            assert_eq!(warm.makespan, cold.makespan, "round {round} {kind}");
            assert_eq!(warm.slots_run, cold.slots_run, "round {round} {kind}");
            assert_eq!(
                warm.completed_iterations, cold.completed_iterations,
                "round {round} {kind}"
            );
            assert_eq!(cold, reference, "round {round} {kind}: layout divergence");
        }
    }
}

#[test]
fn capped_runs_leave_no_stale_dirty_bits_across_arena_resizes() {
    // Incremental snapshots live off per-worker dirty bits and a persistent
    // snapshot buffer, both retained by the arena across runs. A *capped*
    // run aborts mid-iteration with pipelines full — every bit set, the
    // buffer full of half-finished delays — which is the worst state to
    // inherit. Drive one arena through grow → shrink → grow with tightly
    // capped runs in between and pin each run against cold engines of both
    // layouts: a leaked bit (or a snapshot patched from another platform's
    // buffer) diverges here.
    let mut arena = SimArena::new();
    let plans: &[(usize, usize, u64)] = &[
        (64, 96, 40),     // capped: aborts with every pipeline mid-flight
        (8, 12, 50_000),  // shrink, runs to completion
        (64, 96, 35),     // regrow onto the capped run's dirty buffers
        (256, 256, 60),   // grow past every previous high-water mark
        (64, 96, 50_000), // the capped shape again, now to completion
    ];
    let mut capped = 0usize;
    for (round, &(p, m, max_slots)) in plans.iter().enumerate() {
        let seed = (round * 1000 + p) as u64;
        let platform = platform(p, (p / 10).max(2), seed);
        let app = AppConfig {
            tasks_per_iteration: m,
            iterations: 2,
            t_prog: 4,
            t_data: 1,
        };
        let options = SimOptions {
            max_slots,
            replication: true,
            max_extra_replicas: 2,
            record_timeline: false,
            placement_budget: PlacementBudget::Uncapped,
        };
        for kind in [
            HeuristicKind::EmctStar,
            HeuristicKind::Ud,
            HeuristicKind::Random2w,
        ] {
            let warm = arena
                .run_seeded(
                    &platform,
                    &app,
                    kind.build(SeedPath::root(seed).rng()),
                    SeedPath::root(seed + 1),
                    options,
                )
                .unwrap();
            let cold = Simulation::run_seeded(
                &platform,
                &app,
                kind.build(SeedPath::root(seed).rng()),
                SeedPath::root(seed + 1),
                options,
            )
            .unwrap();
            let reference = ReferenceSimulation::run_seeded_in(
                &platform,
                &app,
                kind.build(SeedPath::root(seed).rng()),
                SeedPath::root(seed + 1),
                options,
            )
            .unwrap();
            assert_eq!(warm.makespan, cold.makespan, "round {round} {kind}");
            assert_eq!(warm.slots_run, cold.slots_run, "round {round} {kind}");
            assert_eq!(
                warm.completed_iterations, cold.completed_iterations,
                "round {round} {kind}"
            );
            assert_eq!(cold, reference, "round {round} {kind}: layout divergence");
            capped += usize::from(!warm.finished());
        }
    }
    assert!(
        capped >= 6,
        "only {capped} capped runs — the caps are too loose to leave dirty state"
    );
}
