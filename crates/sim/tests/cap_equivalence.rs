//! Capped ⇄ uncapped equivalence over the soa_equivalence grid.
//!
//! The [`PlacementBudget::BindCapacity`] engine mode promises that a slot
//! whose pool fits inside the bindable capacity takes the **exact uncapped
//! code path** — so a run in which the cap never *engages* (pool ≤ capacity
//! on every slot) must produce a [`SimReport`] byte-identical to its
//! uncapped twin: same makespan, same per-iteration completion slots, every
//! counter, the bandwidth statistic. This harness drives the full
//! 17-heuristic × seed × platform-size × replication grid of
//! `soa_equivalence.rs` once per budget and pins exactly that: every
//! never-engaging capped run is compared report-for-report against the
//! uncapped run of the same instance.
//!
//! Runs where the cap *does* engage are allowed to diverge — that is the
//! point of the optimisation, and the `cap_fidelity` binary measures the
//! statistical size of the divergence — but the grid must contain a healthy
//! population of **both** kinds of run, or the equivalence half of the test
//! is vacuous. The engine's `cap_engagements()` counter (asserted against a
//! naive capacity rescan inside the engine on every debug-build slot) is
//! what classifies each run.

use vg_core::HeuristicKind;
use vg_des::rng::SeedPath;
use vg_markov::availability::AvailabilityChain;
use vg_platform::source::{AvailabilitySource, StartPolicy};
use vg_platform::{AppConfig, PlatformConfig, ProcessorConfig};
use vg_sim::{PlacementBudget, SimOptions, SimReport, Simulation};

/// Paper-style platform, identical to `soa_equivalence.rs`.
fn platform(p: usize, ncom: usize, seed: u64) -> PlatformConfig {
    let mut rng = SeedPath::root(seed).rng();
    PlatformConfig {
        processors: (0..p)
            .map(|_| {
                let chain = AvailabilityChain::sample_paper(&mut rng, 0.90, 0.99);
                let w = rng.u64_range_inclusive(2, 20);
                ProcessorConfig::markov(w, chain, StartPolicy::Up)
            })
            .collect(),
        ncom,
    }
}

/// One grid cell: platform size, tasks, iterations, slot cap, trace seeds.
struct Cell {
    p: usize,
    m: usize,
    iterations: u64,
    max_slots: u64,
    seeds: &'static [u64],
}

/// The soa_equivalence grid plus one under-subscribed cell. All three
/// inherited cells run `m ≥ 1.5·p` tasks (the paper's oversubscription),
/// which engages the cap within the first slots of every instance — so a
/// grid of only those cells would leave the equivalence half of this test
/// vacuous. The `m = p/4` cell keeps the pool far under the bindable
/// capacity on almost every slot and supplies the never-engaging
/// population.
const GRID: &[Cell] = &[
    Cell {
        p: 32,
        m: 8,
        iterations: 2,
        max_slots: 20_000,
        seeds: &[41, 42],
    },
    Cell {
        p: 32,
        m: 48,
        iterations: 2,
        max_slots: 20_000,
        seeds: &[11, 12, 13],
    },
    Cell {
        p: 256,
        m: 256,
        iterations: 1,
        max_slots: 1_500,
        seeds: &[21, 22],
    },
    Cell {
        p: 1024,
        m: 768,
        iterations: 1,
        max_slots: 260,
        seeds: &[31],
    },
];

/// Runs one instance step-wise (the consuming `run()` would drop the engine
/// before `cap_engagements()` can be read) and returns the report plus the
/// engagement count.
fn run_counting(
    platform: &PlatformConfig,
    app: &AppConfig,
    kind: HeuristicKind,
    sched_seed: u64,
    trace_seed: u64,
    options: SimOptions,
) -> (SimReport, u64) {
    let trace_seeds = SeedPath::root(trace_seed);
    let sources: Vec<Box<dyn AvailabilitySource>> = platform
        .processors
        .iter()
        .enumerate()
        .map(|(q, pc)| pc.avail.build_source(trace_seeds.child(q as u64).rng()))
        .collect();
    let mut sim = Simulation::new(
        platform,
        app,
        kind.build(SeedPath::root(sched_seed).rng()),
        sources,
        options,
    )
    .unwrap();
    while !sim.is_done() {
        sim.step();
    }
    let engagements = sim.cap_engagements();
    (sim.into_report(), engagements)
}

#[test]
fn capped_runs_that_never_engage_are_bit_identical_to_uncapped() {
    let mut runs = 0usize;
    let mut engaged = 0usize;
    let mut quiet = 0usize;
    for cell in GRID {
        let ncom = (cell.p / 10).max(3);
        for &seed in cell.seeds {
            let platform = platform(cell.p, ncom, seed);
            let app = AppConfig {
                tasks_per_iteration: cell.m,
                iterations: cell.iterations,
                t_prog: 10,
                t_data: 2,
            };
            for replication in [false, true] {
                let options = SimOptions {
                    max_slots: cell.max_slots,
                    replication,
                    max_extra_replicas: 2,
                    record_timeline: false,
                    placement_budget: PlacementBudget::Uncapped,
                };
                let capped_options = SimOptions {
                    placement_budget: PlacementBudget::BindCapacity,
                    ..options
                };
                for kind in HeuristicKind::ALL {
                    let (capped, engagements) =
                        run_counting(&platform, &app, kind, seed ^ 0xbeef, seed, capped_options);
                    runs += 1;
                    if engagements > 0 {
                        engaged += 1;
                        continue;
                    }
                    quiet += 1;
                    let (uncapped, zero) =
                        run_counting(&platform, &app, kind, seed ^ 0xbeef, seed, options);
                    assert_eq!(zero, 0, "Uncapped must never count engagements");
                    assert_eq!(
                        capped, uncapped,
                        "never-engaging capped run diverged: p={} seed={seed} \
                         replication={replication} {kind}",
                        cell.p
                    );
                }
            }
        }
    }
    assert_eq!(runs, 17 * 2 * (2 + 3 + 2 + 1), "grid shape drifted");
    // Both populations must be represented, or the test lost its teeth:
    // no quiet runs means the equivalence claim was never checked, no
    // engaged runs means the grid no longer exercises the capped branch
    // at all.
    assert!(
        quiet > 0,
        "every run engaged the cap — the equivalence half of the grid is gone"
    );
    assert!(
        engaged > 0,
        "no run engaged the cap — the grid no longer reaches the capped branch"
    );
}
