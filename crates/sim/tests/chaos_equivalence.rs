//! Chaos-layer degeneracy grid: the volatility stack must vanish exactly.
//!
//! Two passthrough contracts from the volatility layer are pinned across
//! the full 17-heuristic grid, on **both** worker-store layouts (the SoA
//! engine and the AoS oracle):
//!
//! 1. an installed [`ScriptedOverlay`] holding an **empty script** leaves
//!    every run byte-identical to the un-overlaid engine (same makespan,
//!    same per-iteration completion slots, every counter — including
//!    `injected_faults = 0`);
//! 2. a [`CorrelatedSource`] whose group modulators are all
//!    [`OutageChain::identity`] (and no diurnal spec) is byte-identical to
//!    the independent seeded path, because group draws come from their own
//!    seed streams and never shift the worker streams.
//!
//! A third pin ties the two scripted-injection implementations together:
//! for a *non-trivial* script, the row-level overlay and the per-source
//! wrappers of [`CompiledScript::wrap_sources`] must force exactly the same
//! states (the overlay additionally counts its injections; the wrappers by
//! design cannot).

use vg_core::HeuristicKind;
use vg_des::rng::SeedPath;
use vg_markov::availability::AvailabilityChain;
use vg_markov::OutageChain;
use vg_platform::fault::FaultScript;
use vg_platform::source::{AvailabilitySource, StartPolicy};
use vg_platform::volatility::{CorrelatedModel, ScriptedOverlay};
use vg_platform::{AppConfig, CompiledScript, PlatformConfig, ProcessorConfig};
use vg_sim::{AosWorkers, ReferenceSimulation, SimOptions, SimReport, Simulation, WorkerSoA};

fn platform(p: usize, ncom: usize, seed: u64) -> PlatformConfig {
    let mut rng = SeedPath::root(seed).rng();
    PlatformConfig {
        processors: (0..p)
            .map(|_| {
                let chain = AvailabilityChain::sample_paper(&mut rng, 0.90, 0.99);
                let w = rng.u64_range_inclusive(2, 20);
                ProcessorConfig::markov(w, chain, StartPolicy::Up)
            })
            .collect(),
        ncom,
    }
}

fn app() -> AppConfig {
    AppConfig {
        tasks_per_iteration: 24,
        iterations: 1,
        t_prog: 10,
        t_data: 2,
    }
}

fn options() -> SimOptions {
    SimOptions {
        max_slots: 600,
        replication: true,
        max_extra_replicas: 2,
        ..SimOptions::default()
    }
}

/// Base seeded run on layout `S`.
fn run_base<S: vg_sim::WorkerStore>(
    pf: &PlatformConfig,
    kind: HeuristicKind,
    seed: u64,
) -> SimReport {
    Simulation::<S>::new_seeded(
        pf,
        &app(),
        kind.build(SeedPath::root(seed ^ 0xbeef).rng()),
        SeedPath::root(seed),
        options(),
    )
    .unwrap()
    .run()
}

/// Same run with an overlay installed.
fn run_overlaid<S: vg_sim::WorkerStore>(
    pf: &PlatformConfig,
    kind: HeuristicKind,
    seed: u64,
    script: &CompiledScript,
) -> SimReport {
    let mut sim = Simulation::<S>::new_seeded(
        pf,
        &app(),
        kind.build(SeedPath::root(seed ^ 0xbeef).rng()),
        SeedPath::root(seed),
        options(),
    )
    .unwrap();
    sim.set_overlay(ScriptedOverlay::new(script.clone()))
        .unwrap();
    sim.run()
}

/// Same run over a row source built from a correlated model.
fn run_rows<S: vg_sim::WorkerStore>(
    pf: &PlatformConfig,
    kind: HeuristicKind,
    seed: u64,
    model: &CorrelatedModel,
) -> SimReport {
    let rows = model.build(pf, &SeedPath::root(seed)).unwrap();
    Simulation::<S>::new_rows_in(
        pf,
        &app(),
        kind.build(SeedPath::root(seed ^ 0xbeef).rng()),
        Box::new(rows),
        options(),
    )
    .unwrap()
    .run()
}

#[test]
fn empty_script_overlay_is_byte_identical_to_base() {
    let empty = CompiledScript::empty(16);
    // A script with events that all resolve to zero victims is passthrough
    // too — `kill 1%` of 16 workers rounds to zero.
    let rounded = FaultScript::parse("kill 1% at 5")
        .unwrap()
        .compile(16)
        .unwrap();
    assert!(rounded.is_passthrough());
    for seed in [41u64, 42] {
        let pf = platform(16, 3, seed);
        for kind in HeuristicKind::ALL {
            for script in [&empty, &rounded] {
                let base = run_base::<WorkerSoA>(&pf, kind, seed);
                let overlaid = run_overlaid::<WorkerSoA>(&pf, kind, seed, script);
                assert_eq!(base, overlaid, "SoA diverged: seed={seed} {kind}");
                assert_eq!(overlaid.counters.injected_faults, 0);
            }
            let base = run_base::<AosWorkers>(&pf, kind, seed);
            let overlaid = run_overlaid::<AosWorkers>(&pf, kind, seed, &empty);
            assert_eq!(base, overlaid, "AoS diverged: seed={seed} {kind}");
        }
    }
}

#[test]
fn identity_correlated_source_is_byte_identical_to_base() {
    for seed in [41u64, 42] {
        let pf = platform(16, 3, seed);
        for n_groups in [1usize, 4] {
            let model = CorrelatedModel::uniform_groups(16, n_groups, OutageChain::identity());
            for kind in HeuristicKind::ALL {
                let base = run_base::<WorkerSoA>(&pf, kind, seed);
                let rows = run_rows::<WorkerSoA>(&pf, kind, seed, &model);
                assert_eq!(
                    base, rows,
                    "SoA diverged: seed={seed} groups={n_groups} {kind}"
                );
                let base = run_base::<AosWorkers>(&pf, kind, seed);
                let rows = run_rows::<AosWorkers>(&pf, kind, seed, &model);
                assert_eq!(
                    base, rows,
                    "AoS diverged: seed={seed} groups={n_groups} {kind}"
                );
            }
        }
    }
}

#[test]
fn row_overlay_matches_wrapped_sources() {
    let script_text = "group rack0 = 0..8\nkill group rack0 at 20 for 30\ndegrade 25% at 80 for 40";
    let seed = 7u64;
    let pf = platform(16, 3, seed);
    let script = FaultScript::parse(script_text)
        .unwrap()
        .compile(16)
        .unwrap();
    assert!(!script.is_passthrough());
    for kind in HeuristicKind::ALL {
        // Path A: per-source wrappers around the boxed seeded sources.
        let trace_seeds = SeedPath::root(seed);
        let sources: Vec<Box<dyn AvailabilitySource>> = pf
            .processors
            .iter()
            .enumerate()
            .map(|(q, pc)| pc.avail.build_source(trace_seeds.child(q as u64).rng()))
            .collect();
        let wrapped = Simulation::new(
            &pf,
            &app(),
            kind.build(SeedPath::root(seed ^ 0xbeef).rng()),
            script.wrap_sources(sources),
            options(),
        )
        .unwrap()
        .run();
        // Path B: row-level overlay on the dense seeded bank.
        let mut overlaid = run_overlaid::<WorkerSoA>(&pf, kind, seed, &script);
        assert!(
            overlaid.counters.injected_faults > 0,
            "script never injected anything: {kind}"
        );
        // The wrappers cannot count injections; zero the overlay's counter
        // and the two reports must agree bit for bit.
        overlaid.counters.injected_faults = 0;
        assert_eq!(wrapped, overlaid, "overlay vs wrapped sources: {kind}");
    }
}

#[test]
fn chaos_constructors_reject_mismatched_p() {
    let pf = platform(8, 3, 1);
    let script = CompiledScript::empty(9);
    let mut sim = Simulation::<WorkerSoA>::new_seeded(
        &pf,
        &app(),
        HeuristicKind::Emct.build(SeedPath::root(2).rng()),
        SeedPath::root(3),
        options(),
    )
    .unwrap();
    assert!(sim.set_overlay(ScriptedOverlay::new(script)).is_err());

    let model = CorrelatedModel::uniform_groups(9, 2, OutageChain::identity());
    let wide = platform(9, 3, 1);
    let rows = model.build(&wide, &SeedPath::root(3)).unwrap();
    let err = ReferenceSimulation::new_rows_in(
        &pf,
        &app(),
        HeuristicKind::Emct.build(SeedPath::root(2).rng()),
        Box::new(rows),
        options(),
    );
    assert!(err.is_err());
}
