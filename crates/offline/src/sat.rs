//! CNF formulas and a DPLL solver.
//!
//! Theorem 1 reduces 3-SAT to the off-line scheduling problem; to make the
//! reduction *executable* (and testable) this module provides a small,
//! dependency-free DPLL solver with unit propagation and pure-literal
//! elimination. It comfortably solves the formula sizes the reduction
//! experiments use.

use vg_des::rng::StreamRng;

/// A propositional literal: variable index + polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lit {
    /// Variable index (0-based).
    pub var: u32,
    /// `true` for a negated occurrence (`x̄`).
    pub negated: bool,
}

impl Lit {
    /// Positive literal of `var`.
    #[must_use]
    pub fn pos(var: u32) -> Self {
        Self {
            var,
            negated: false,
        }
    }

    /// Negative literal of `var`.
    #[must_use]
    pub fn neg(var: u32) -> Self {
        Self { var, negated: true }
    }

    /// Truth value under an assignment.
    #[must_use]
    pub fn eval(self, assignment: &[bool]) -> bool {
        assignment[self.var as usize] != self.negated
    }
}

impl std::fmt::Display for Lit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.negated {
            write!(f, "¬x{}", self.var)
        } else {
            write!(f, "x{}", self.var)
        }
    }
}

/// A disjunction of literals.
pub type Clause = Vec<Lit>;

/// A CNF formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables (indices `0..n_vars`).
    pub n_vars: u32,
    /// The clauses.
    pub clauses: Vec<Clause>,
}

impl Cnf {
    /// Builds and sanity-checks a formula.
    ///
    /// # Panics
    /// Panics if a clause is empty or references an out-of-range variable.
    #[must_use]
    pub fn new(n_vars: u32, clauses: Vec<Clause>) -> Self {
        for (i, c) in clauses.iter().enumerate() {
            assert!(!c.is_empty(), "clause {i} is empty");
            for l in c {
                assert!(l.var < n_vars, "clause {i} references x{}", l.var);
            }
        }
        Self { n_vars, clauses }
    }

    /// Evaluates the formula under a complete assignment.
    #[must_use]
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| l.eval(assignment)))
    }

    /// Uniform random 3-SAT: `m` clauses of 3 distinct variables each.
    ///
    /// # Panics
    /// Panics if `n_vars < 3`.
    #[must_use]
    pub fn random_3sat(n_vars: u32, m: usize, rng: &mut StreamRng) -> Self {
        assert!(n_vars >= 3, "3-SAT needs at least 3 variables");
        let mut clauses = Vec::with_capacity(m);
        for _ in 0..m {
            let mut vars = Vec::with_capacity(3);
            while vars.len() < 3 {
                let v = rng.index(n_vars as usize) as u32;
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
            clauses.push(
                vars.into_iter()
                    .map(|var| Lit {
                        var,
                        negated: rng.bernoulli(0.5),
                    })
                    .collect(),
            );
        }
        Self::new(n_vars, clauses)
    }
}

impl std::fmt::Display for Cnf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let clause_strs: Vec<String> = self
            .clauses
            .iter()
            .map(|c| {
                let lits: Vec<String> = c.iter().map(Lit::to_string).collect();
                format!("({})", lits.join(" ∨ "))
            })
            .collect();
        write!(f, "{}", clause_strs.join(" ∧ "))
    }
}

/// DPLL with unit propagation and pure-literal elimination. Returns a
/// satisfying assignment or `None` when unsatisfiable.
#[must_use]
pub fn dpll(cnf: &Cnf) -> Option<Vec<bool>> {
    let mut assignment: Vec<Option<bool>> = vec![None; cnf.n_vars as usize];
    if solve(&cnf.clauses, &mut assignment) {
        // Unconstrained variables default to false.
        Some(assignment.into_iter().map(|a| a.unwrap_or(false)).collect())
    } else {
        None
    }
}

fn solve(clauses: &[Clause], assignment: &mut Vec<Option<bool>>) -> bool {
    // Simplify: drop satisfied clauses, prune false literals.
    let mut simplified: Vec<Clause> = Vec::with_capacity(clauses.len());
    for c in clauses {
        let mut reduced: Clause = Vec::with_capacity(c.len());
        let mut satisfied = false;
        for &l in c {
            match assignment[l.var as usize] {
                Some(v) if v != l.negated => {
                    satisfied = true;
                    break;
                }
                Some(_) => {} // literal false, drop it
                None => reduced.push(l),
            }
        }
        if satisfied {
            continue;
        }
        if reduced.is_empty() {
            return false; // conflict
        }
        simplified.push(reduced);
    }
    if simplified.is_empty() {
        return true;
    }

    // Unit propagation.
    if let Some(unit) = simplified.iter().find(|c| c.len() == 1) {
        let l = unit[0];
        assignment[l.var as usize] = Some(!l.negated);
        if solve(&simplified, assignment) {
            return true;
        }
        assignment[l.var as usize] = None;
        return false;
    }

    // Pure-literal elimination.
    {
        let mut seen_pos = vec![false; assignment.len()];
        let mut seen_neg = vec![false; assignment.len()];
        for c in &simplified {
            for l in c {
                if l.negated {
                    seen_neg[l.var as usize] = true;
                } else {
                    seen_pos[l.var as usize] = true;
                }
            }
        }
        if let Some(var) =
            (0..assignment.len()).find(|&v| assignment[v].is_none() && (seen_pos[v] ^ seen_neg[v]))
        {
            assignment[var] = Some(seen_pos[var]);
            if solve(&simplified, assignment) {
                return true;
            }
            assignment[var] = None;
            return false;
        }
    }

    // Branch on the most frequent unassigned variable.
    let mut counts = vec![0u32; assignment.len()];
    for c in &simplified {
        for l in c {
            counts[l.var as usize] += 1;
        }
    }
    let var = (0..assignment.len())
        .filter(|&v| assignment[v].is_none() && counts[v] > 0)
        .max_by_key(|&v| counts[v])
        .expect("simplified formula has unassigned variables");
    for value in [true, false] {
        assignment[var] = Some(value);
        if solve(&simplified, assignment) {
            return true;
        }
    }
    assignment[var] = None;
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use vg_des::rng::SeedPath;

    #[test]
    fn trivial_sat() {
        let cnf = Cnf::new(1, vec![vec![Lit::pos(0)]]);
        let a = dpll(&cnf).unwrap();
        assert!(a[0]);
        assert!(cnf.eval(&a));
    }

    #[test]
    fn trivial_unsat() {
        let cnf = Cnf::new(1, vec![vec![Lit::pos(0)], vec![Lit::neg(0)]]);
        assert!(dpll(&cnf).is_none());
    }

    #[test]
    fn forced_chain_propagates() {
        // x0 ∧ (¬x0 ∨ x1) ∧ (¬x1 ∨ x2) forces all true.
        let cnf = Cnf::new(
            3,
            vec![
                vec![Lit::pos(0)],
                vec![Lit::neg(0), Lit::pos(1)],
                vec![Lit::neg(1), Lit::pos(2)],
            ],
        );
        let a = dpll(&cnf).unwrap();
        assert_eq!(a, vec![true, true, true]);
    }

    #[test]
    fn pigeonhole_2_into_1_unsat() {
        // Two pigeons, one hole: p0 ∧ p1 ∧ (¬p0 ∨ ¬p1).
        let cnf = Cnf::new(
            2,
            vec![
                vec![Lit::pos(0)],
                vec![Lit::pos(1)],
                vec![Lit::neg(0), Lit::neg(1)],
            ],
        );
        assert!(dpll(&cnf).is_none());
    }

    #[test]
    fn all_negative_clause() {
        let cnf = Cnf::new(3, vec![vec![Lit::neg(0), Lit::neg(1), Lit::neg(2)]]);
        let a = dpll(&cnf).unwrap();
        assert!(cnf.eval(&a));
    }

    #[test]
    fn unsat_3sat_all_eight_polarities() {
        // All 8 polarity combinations over 3 variables: unsatisfiable.
        let mut clauses = Vec::new();
        for mask in 0..8u32 {
            clauses.push(
                (0..3)
                    .map(|v| Lit {
                        var: v,
                        negated: (mask >> v) & 1 == 1,
                    })
                    .collect(),
            );
        }
        let cnf = Cnf::new(3, clauses);
        assert!(dpll(&cnf).is_none());
    }

    #[test]
    fn random_3sat_solutions_verify() {
        let mut rng = SeedPath::root(33).rng();
        let mut sat_count = 0;
        for _ in 0..100 {
            let cnf = Cnf::random_3sat(6, 10, &mut rng);
            if let Some(a) = dpll(&cnf) {
                assert!(cnf.eval(&a), "DPLL returned a non-model for {cnf}");
                sat_count += 1;
            }
        }
        // At ratio m/n ≈ 1.7 almost everything is satisfiable.
        assert!(sat_count > 80, "only {sat_count} satisfiable");
    }

    #[test]
    fn dense_random_3sat_mostly_unsat() {
        let mut rng = SeedPath::root(34).rng();
        let mut unsat = 0;
        for _ in 0..20 {
            // With n = 4 each random 3-clause kills 1/8 of the 16
            // assignments in expectation: E[survivors] = 16·(7/8)^48 ≈ 0.03.
            let cnf = Cnf::random_3sat(4, 48, &mut rng);
            if dpll(&cnf).is_none() {
                unsat += 1;
            }
        }
        assert!(unsat >= 16, "only {unsat}/20 unsat");
    }

    #[test]
    #[should_panic(expected = "is empty")]
    fn empty_clause_rejected() {
        let _ = Cnf::new(1, vec![vec![]]);
    }

    #[test]
    fn display_formats() {
        let cnf = Cnf::new(2, vec![vec![Lit::pos(0), Lit::neg(1)]]);
        assert_eq!(cnf.to_string(), "(x0 ∨ ¬x1)");
    }
}
