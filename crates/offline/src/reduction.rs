//! The Theorem-1 reduction: 3-SAT → Off-Line scheduling.
//!
//! Given a formula with `n` variables and `m` clauses, the reduction builds
//! an instance with `p = 2n` processors (one per literal), `ncom = 1`,
//! `T_prog = m`, `T_data = 0`, `w = 1` and horizon `N = m(n + 1)`:
//!
//! * **Clause phase** (slots `0..m`): at slot `j` exactly the processors of
//!   the literals appearing in clause `j+1` are `UP` — receiving a program
//!   slot there "commits" the corresponding literal;
//! * **Variable blocks** (slots `m(i+1)..m(i+2)` for variable `i`): both of
//!   variable `i`'s processors are `UP`, everyone else `RECLAIMED`. With
//!   `ncom = 1`, at most one of the pair can finish the `m`-slot program and
//!   compute — the truth value of the variable.
//!
//! The formula is satisfiable **iff** one iteration of `m` tasks completes
//! within `N` slots. Both directions are executable here: a satisfying
//! assignment materializes into a validated [`Schedule`], and the
//! branch-and-bound solver decides small instances exactly.

use crate::instance::OfflineInstance;
use crate::sat::{Cnf, Lit};
use crate::schedule::{Comm, Schedule};
use vg_markov::ProcState;
use vg_platform::Trace;

/// Processor index of a literal: positive literal of variable `v` → `2v`,
/// negative → `2v + 1`.
#[must_use]
pub fn proc_of_literal(lit: Lit) -> usize {
    (lit.var as usize) * 2 + usize::from(lit.negated)
}

/// Builds the Theorem-1 instance for `cnf`.
#[must_use]
pub fn reduce(cnf: &Cnf) -> OfflineInstance {
    let n = cnf.n_vars as usize;
    let m = cnf.clauses.len();
    assert!(n >= 1 && m >= 1, "reduction needs a non-trivial formula");
    let horizon = (m * (n + 1)) as u64;
    let p = 2 * n;

    let mut states = vec![vec![ProcState::Reclaimed; horizon as usize]; p];
    // Clause phase.
    for (j, clause) in cnf.clauses.iter().enumerate() {
        for &lit in clause {
            states[proc_of_literal(lit)][j] = ProcState::Up;
        }
    }
    // Variable blocks.
    for i in 0..n {
        let start = m * (i + 1);
        for t in start..start + m {
            states[2 * i][t] = ProcState::Up;
            states[2 * i + 1][t] = ProcState::Up;
        }
    }

    OfflineInstance::uniform(
        m,
        m as u64, // T_prog = m
        0,        // T_data = 0
        1,        // w = 1
        Some(1),  // ncom = 1
        horizon,
        states.into_iter().map(Trace::new).collect(),
    )
}

/// Materializes the schedule of the Theorem-1 forward direction from a
/// satisfying assignment: during the clause phase each clause sends one
/// program slot to (the processor of) one of its true literals; during each
/// variable block the chosen processor finishes its program and computes one
/// task per program slot it received in the clause phase.
///
/// Returns `None` if `assignment` does not satisfy the formula.
#[must_use]
pub fn schedule_from_assignment(cnf: &Cnf, assignment: &[bool]) -> Option<Schedule> {
    if !cnf.eval(assignment) {
        return None;
    }
    let n = cnf.n_vars as usize;
    let m = cnf.clauses.len();
    let inst = reduce(cnf);
    let mut schedule = Schedule::empty(&inst);

    // Clause phase: slot j serves the first true literal of clause j.
    let mut received = vec![0usize; 2 * n]; // L_q
    for (j, clause) in cnf.clauses.iter().enumerate() {
        let lit = clause
            .iter()
            .copied()
            .find(|l| l.eval(assignment))
            .expect("assignment satisfies every clause");
        let q = proc_of_literal(lit);
        schedule.action_mut(q, j as u64).comm = Some(Comm::Prog);
        received[q] += 1;
    }

    // Variable blocks: finish programs, compute tasks.
    let mut next_task = 0u32;
    for i in 0..n {
        let q = 2 * i + usize::from(!assignment[i]);
        let l = received[q];
        if l == 0 {
            continue; // no clause chose this variable's literal
        }
        let block = (m * (i + 1)) as u64;
        // m − L remaining program slots…
        for k in 0..(m - l) as u64 {
            schedule.action_mut(q, block + k).comm = Some(Comm::Prog);
        }
        // …then L computations (w = 1, T_data = 0).
        for k in 0..l as u64 {
            schedule.action_mut(q, block + (m - l) as u64 + k).compute = Some(next_task);
            next_task += 1;
        }
    }
    debug_assert_eq!(next_task as usize, m, "Σ L_q must equal m");
    Some(schedule)
}

/// The 6-clause, 4-variable formula of the paper's Figure 1:
/// `(x̄1∨x3∨x4)∧(x1∨x̄2∨x̄3)∧(x2∨x3∨x̄4)∧(x1∨x2∨x4)∧(x̄1∨x̄2∨x̄4)∧(x̄2∨x3∨x4)`
/// (variables renamed to 0-based).
#[must_use]
pub fn figure1_formula() -> Cnf {
    let p = Lit::pos;
    let q = Lit::neg;
    Cnf::new(
        4,
        vec![
            vec![q(0), p(2), p(3)],
            vec![p(0), q(1), q(2)],
            vec![p(1), p(2), q(3)],
            vec![p(0), p(1), p(3)],
            vec![q(0), q(1), q(3)],
            vec![q(1), p(2), p(3)],
        ],
    )
}

/// Renders the availability matrix of a reduced instance in the style of the
/// paper's Figure 1 (rows = processors/literals, columns = slots; `█` = UP).
#[must_use]
pub fn render_figure(cnf: &Cnf, inst: &OfflineInstance) -> String {
    let n = cnf.n_vars as usize;
    let m = cnf.clauses.len();
    let mut out = String::new();
    out.push_str("        ");
    for j in 1..=m {
        out.push_str(&format!("C{j:<2}"));
    }
    for i in 1..=n {
        out.push_str(&format!("| block x{i:<2}"));
    }
    out.push('\n');
    for qv in 0..2 * n {
        let var = qv / 2;
        let label = if qv % 2 == 0 {
            format!("x{}  ", var + 1)
        } else {
            format!("x̄{}  ", var + 1)
        };
        out.push_str(&format!("{label:>7} "));
        for t in 0..inst.horizon {
            let c = if inst.state(qv, t).is_up() {
                '█'
            } else {
                '·'
            };
            out.push(c);
            if (t as usize + 1).is_multiple_of(m) {
                out.push(' ');
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnb;
    use crate::sat::dpll;
    use vg_des::rng::SeedPath;

    #[test]
    fn literal_to_processor_mapping() {
        assert_eq!(proc_of_literal(Lit::pos(0)), 0);
        assert_eq!(proc_of_literal(Lit::neg(0)), 1);
        assert_eq!(proc_of_literal(Lit::pos(3)), 6);
        assert_eq!(proc_of_literal(Lit::neg(3)), 7);
    }

    #[test]
    fn reduction_dimensions() {
        let cnf = figure1_formula();
        let inst = reduce(&cnf);
        assert_eq!(inst.p(), 8);
        assert_eq!(inst.m, 6);
        assert_eq!(inst.t_prog, 6);
        assert_eq!(inst.t_data, 0);
        assert_eq!(inst.ncom, Some(1));
        assert_eq!(inst.horizon, 30); // m(n+1) = 6·5
        assert!(inst.validate().is_ok());
    }

    #[test]
    fn reduction_traces_match_construction() {
        let cnf = figure1_formula();
        let inst = reduce(&cnf);
        // Clause 1 = (x̄1 ∨ x3 ∨ x4): procs 1, 4, 6 are UP at slot 0.
        for q in 0..8 {
            let expect_up = [1usize, 4, 6].contains(&q);
            assert_eq!(inst.state(q, 0).is_up(), expect_up, "proc {q} slot 0");
        }
        // Block of variable 1 (0-based 0): slots 6..12, procs 0 and 1 UP.
        for t in 6..12 {
            for q in 0..8 {
                assert_eq!(inst.state(q, t).is_up(), q < 2, "proc {q} slot {t}");
            }
        }
    }

    #[test]
    fn figure1_assignment_materializes_and_validates() {
        let cnf = figure1_formula();
        let assignment = dpll(&cnf).expect("Figure-1 formula is satisfiable");
        let schedule = schedule_from_assignment(&cnf, &assignment).unwrap();
        let inst = reduce(&cnf);
        let completion = schedule
            .validate(&inst)
            .expect("constructed schedule is legal");
        assert!(completion <= inst.horizon);
    }

    #[test]
    fn unsatisfying_assignment_rejected() {
        let cnf = Cnf::new(3, vec![vec![Lit::pos(0), Lit::pos(1), Lit::pos(2)]]);
        assert!(schedule_from_assignment(&cnf, &[false, false, false]).is_none());
    }

    #[test]
    fn unsat_formula_reduces_to_infeasible_instance() {
        // (x0∨x1∨x2) under every polarity of x0,x1 with x2 pinned false…
        // simplest: a compact UNSAT core over 2 clauses and 1 var can't be
        // 3-SAT; use 3 vars with all-8-polarities (UNSAT) but trim to keep
        // B&B cheap: x∧¬x expressed with padding variables.
        let cnf = Cnf::new(
            3,
            vec![
                vec![Lit::pos(0), Lit::pos(1), Lit::pos(2)],
                vec![Lit::pos(0), Lit::pos(1), Lit::neg(2)],
                vec![Lit::pos(0), Lit::neg(1), Lit::pos(2)],
                vec![Lit::pos(0), Lit::neg(1), Lit::neg(2)],
                vec![Lit::neg(0), Lit::pos(1), Lit::pos(2)],
                vec![Lit::neg(0), Lit::pos(1), Lit::neg(2)],
                vec![Lit::neg(0), Lit::neg(1), Lit::pos(2)],
                vec![Lit::neg(0), Lit::neg(1), Lit::neg(2)],
            ],
        );
        assert!(dpll(&cnf).is_none());
        let inst = reduce(&cnf);
        // 8 clauses × 4 blocks… B&B on the full instance is heavy; instead
        // verify a *necessary* feasibility condition directly: any feasible
        // schedule computes m tasks, needing Σ L = m chosen literals — the
        // forward materializer is the only constructive path and it fails.
        assert!(schedule_from_assignment(&cnf, &[false; 3]).is_none());
        assert!(schedule_from_assignment(&cnf, &[true; 3]).is_none());
        assert_eq!(inst.m, 8);
    }

    #[test]
    fn sat_iff_feasible_on_tiny_formulas() {
        // Exhaustive check on random 2-variable-core formulas small enough
        // for exact branch-and-bound.
        let mut rng = SeedPath::root(77).rng();
        let mut seen_sat = false;
        let mut seen_unsat = false;
        for round in 0..12 {
            // 3 vars, 3 clauses → p = 6, N = 12: B&B-sized.
            let cnf = Cnf::random_3sat(3, 3, &mut rng);
            let sat = dpll(&cnf);
            let inst = reduce(&cnf);
            let feasible = bnb::feasible_within(&inst, inst.horizon, 30_000_000)
                .expect("budget generous for N = 12");
            assert_eq!(sat.is_some(), feasible, "round {round}: {cnf}");
            if let Some(a) = sat {
                seen_sat = true;
                // Forward direction must also materialize + validate.
                let schedule = schedule_from_assignment(&cnf, &a).unwrap();
                assert!(schedule.validate(&inst).is_ok());
            } else {
                seen_unsat = true;
            }
        }
        assert!(seen_sat, "sampler produced no satisfiable formula");
        // Unsat at 3 vars / 3 clauses is rare; don't require it, but the
        // dedicated unsat case below covers the other side.
        let _ = seen_unsat;
    }

    #[test]
    fn forced_unsat_tiny_formula_is_infeasible() {
        // (x0∨x0∨x1)∧(x̄0∨x̄0∨x1)∧(x0∨x1∨x1)… craft a genuinely UNSAT tiny
        // one: x0 ∧ x̄0 via two 1-literal clauses is not 3-SAT but the
        // reduction never required 3 literals — Theorem 1 holds for any CNF.
        let cnf = Cnf::new(1, vec![vec![Lit::pos(0)], vec![Lit::neg(0)]]);
        assert!(dpll(&cnf).is_none());
        let inst = reduce(&cnf);
        // p = 2, N = 4, Tprog = 2: trivially solvable exactly.
        let feasible = bnb::feasible_within(&inst, inst.horizon, 1_000_000).unwrap();
        assert!(!feasible);
    }

    #[test]
    fn forced_sat_tiny_formula_is_feasible() {
        let cnf = Cnf::new(1, vec![vec![Lit::pos(0)], vec![Lit::pos(0)]]);
        let a = dpll(&cnf).unwrap();
        let inst = reduce(&cnf);
        let feasible = bnb::feasible_within(&inst, inst.horizon, 1_000_000).unwrap();
        assert!(feasible);
        let schedule = schedule_from_assignment(&cnf, &a).unwrap();
        assert!(schedule.validate(&inst).is_ok());
    }

    #[test]
    fn render_figure_shape() {
        let cnf = figure1_formula();
        let inst = reduce(&cnf);
        let fig = render_figure(&cnf, &inst);
        assert_eq!(fig.lines().count(), 9); // header + 8 literal rows
        assert!(fig.contains('█'));
    }
}
