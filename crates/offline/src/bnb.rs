//! Exact branch-and-bound solver for the bounded-bandwidth off-line problem.
//!
//! The Off-Line problem is NP-hard (Theorem 1), so exactness costs
//! exponential time; this solver is meant for *small* instances — verifying
//! the Theorem-1 reduction on toy formulas, certifying the Section-4
//! counter-example, and cross-checking heuristics in tests.
//!
//! Search organization: time advances slot by slot. At each slot the only
//! genuine decision is *which eligible processors receive one of the `ncom`
//! channels* — computing is never harmful (a processor with program + data
//! always computes; an exchange argument shows idling cannot help), and
//! receiving more communication weakly dominates receiving less, so only
//! maximal channel subsets are branched on. Visited `(slot, state)` pairs
//! are memoized; an upper bound from the incumbent prunes.

use crate::instance::OfflineInstance;
use vg_des::det::DetHashSet;
use vg_des::Slot;
use vg_markov::ProcState;

/// Pipeline state of one processor (all quantities saturate at their caps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
struct ProcPipeline {
    /// Program slots received.
    prog: u16,
    /// Data slots received toward the current task.
    cur_data: u16,
    /// Compute slots performed on the current task.
    comp: u16,
    /// Prefetched data slots toward the next task.
    pre_data: u16,
}

/// What a processor would receive if granted a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Need {
    Prog,
    CurData,
    PreData,
}

/// Solver failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BnbError {
    /// The state budget was exhausted before the search finished.
    BudgetExceeded,
    /// The instance contains `DOWN` slots. The solver's pipeline state does
    /// not model program loss, so 3-state instances must be compiled away
    /// with [`OfflineInstance::split_down`] first (Section 4's transform).
    ContainsDown,
    /// The instance failed validation.
    InvalidInstance,
}

impl std::fmt::Display for BnbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BudgetExceeded => write!(f, "branch-and-bound state budget exceeded"),
            Self::ContainsDown => {
                write!(f, "instance has DOWN slots; apply split_down() first")
            }
            Self::InvalidInstance => write!(f, "invalid off-line instance"),
        }
    }
}

impl std::error::Error for BnbError {}

/// Exact minimum completion time of one iteration, or `None` if infeasible
/// within the horizon. `state_budget` caps explored states (to keep tests
/// bounded); exceeding it returns `Err(BudgetExceeded)`.
pub fn min_makespan(inst: &OfflineInstance, state_budget: usize) -> Result<Option<Slot>, BnbError> {
    Ok(explore(inst, state_budget)?.makespan)
}

/// Exploration statistics of one exact solve, alongside the answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BnbStats {
    /// Exact minimum completion time (`None`: infeasible within horizon).
    pub makespan: Option<Slot>,
    /// Number of search states expanded.
    ///
    /// Deterministic for a fixed instance and budget: branching enumerates
    /// channel subsets in index order and the memo set is only ever probed
    /// for membership (and hashed with a fixed-seed hasher — see
    /// [`vg_des::det`]), so no iteration order can leak into the search.
    /// Regression tests pin this count.
    pub states: usize,
}

/// [`min_makespan`] with exploration statistics.
pub fn explore(inst: &OfflineInstance, state_budget: usize) -> Result<BnbStats, BnbError> {
    inst.validate().map_err(|_| BnbError::InvalidInstance)?;
    if !inst.is_two_state() {
        return Err(BnbError::ContainsDown);
    }
    let mut solver = Solver {
        inst,
        ncom: inst.ncom.unwrap_or(inst.p()),
        best: None,
        seen: DetHashSet::default(),
        states: 0,
        budget: state_budget,
    };
    let start = vec![ProcPipeline::default(); inst.p()];
    solver.dfs(0, &start, 0)?;
    Ok(BnbStats {
        makespan: solver.best,
        states: solver.states,
    })
}

/// Decision version: can one iteration complete within `deadline` slots?
pub fn feasible_within(
    inst: &OfflineInstance,
    deadline: Slot,
    state_budget: usize,
) -> Result<bool, BnbError> {
    let mut trimmed = inst.clone();
    trimmed.horizon = inst.horizon.min(deadline);
    Ok(min_makespan(&trimmed, state_budget)?.is_some_and(|mk| mk <= deadline))
}

struct Solver<'a> {
    inst: &'a OfflineInstance,
    ncom: usize,
    best: Option<Slot>,
    seen: DetHashSet<(Slot, Vec<ProcPipeline>, usize)>,
    states: usize,
    budget: usize,
}

impl Solver<'_> {
    fn dfs(&mut self, slot: Slot, pipes: &[ProcPipeline], done: usize) -> Result<(), BnbError> {
        if done >= self.inst.m {
            if self.best.is_none_or(|b| slot < b) {
                self.best = Some(slot);
            }
            return Ok(());
        }
        if slot >= self.inst.horizon || self.best.is_some_and(|b| slot + 1 >= b) {
            return Ok(());
        }
        self.states += 1;
        if self.states > self.budget {
            return Err(BnbError::BudgetExceeded);
        }
        let key = (slot, pipes.to_vec(), done);
        if !self.seen.insert(key) {
            return Ok(());
        }

        // Eligible communications this slot (start-of-slot snapshot).
        let mut eligible: Vec<(usize, Need)> = Vec::new();
        for (q, pipe) in pipes.iter().enumerate() {
            if self.inst.state(q, slot) != ProcState::Up {
                continue;
            }
            if u64::from(pipe.prog) < self.inst.t_prog {
                eligible.push((q, Need::Prog));
            } else if u64::from(pipe.cur_data) < self.inst.t_data {
                eligible.push((q, Need::CurData));
            } else if u64::from(pipe.pre_data) < self.inst.t_data && self.can_compute(q, pipe, slot)
            {
                eligible.push((q, Need::PreData));
            }
        }

        let k = self.ncom.min(eligible.len());
        let mut combo: Vec<usize> = Vec::with_capacity(k);
        self.branch_combos(slot, pipes, done, &eligible, k, 0, &mut combo)
    }

    /// True when the processor computes during `slot` given its start-of-slot
    /// pipeline (program complete, current data complete, `UP`).
    fn can_compute(&self, q: usize, pipe: &ProcPipeline, slot: Slot) -> bool {
        self.inst.state(q, slot) == ProcState::Up
            && u64::from(pipe.prog) >= self.inst.t_prog
            && u64::from(pipe.cur_data) >= self.inst.t_data
    }

    /// Enumerates all size-`k` subsets of `eligible` and advances one slot
    /// for each choice.
    #[allow(clippy::too_many_arguments)]
    fn branch_combos(
        &mut self,
        slot: Slot,
        pipes: &[ProcPipeline],
        done: usize,
        eligible: &[(usize, Need)],
        k: usize,
        from: usize,
        combo: &mut Vec<usize>,
    ) -> Result<(), BnbError> {
        if combo.len() == k {
            return self.advance(slot, pipes, done, eligible, combo);
        }
        // Not enough items left to fill the combo.
        if eligible.len() - from < k - combo.len() {
            return Ok(());
        }
        for i in from..eligible.len() {
            combo.push(i);
            self.branch_combos(slot, pipes, done, eligible, k, i + 1, combo)?;
            combo.pop();
        }
        Ok(())
    }

    /// Applies one slot: granted communications, then automatic computation,
    /// then pipeline promotion.
    fn advance(
        &mut self,
        slot: Slot,
        pipes: &[ProcPipeline],
        done: usize,
        eligible: &[(usize, Need)],
        combo: &[usize],
    ) -> Result<(), BnbError> {
        let mut next: Vec<ProcPipeline> = pipes.to_vec();
        let mut new_done = done;

        // Snapshot of who computes this slot (start-of-slot eligibility).
        let computing: Vec<bool> = (0..pipes.len())
            .map(|q| self.can_compute(q, &pipes[q], slot))
            .collect();

        // Granted communications.
        for &i in combo {
            let (q, need) = eligible[i];
            match need {
                Need::Prog => next[q].prog += 1,
                Need::CurData => next[q].cur_data += 1,
                Need::PreData => next[q].pre_data += 1,
            }
        }

        // Computation + retirement.
        for q in 0..next.len() {
            if computing[q] {
                next[q].comp += 1;
                if u64::from(next[q].comp) >= self.inst.w[q] {
                    new_done += 1;
                    next[q].comp = 0;
                    next[q].cur_data = next[q].pre_data;
                    next[q].pre_data = 0;
                }
            }
        }

        self.dfs(slot + 1, &next, new_done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mct::mct_infinite;
    use vg_platform::Trace;

    fn t(s: &str) -> Trace {
        Trace::parse(s).unwrap()
    }

    const BUDGET: usize = 2_000_000;

    #[test]
    fn single_processor_single_task() {
        // prog 2 (slots 0-1), data 1 (slot 2), compute 2 (slots 3-4) → 5.
        let inst = OfflineInstance::uniform(1, 2, 1, 2, Some(1), 10, vec![t("uuuuuuuuuu")]);
        assert_eq!(min_makespan(&inst, BUDGET), Ok(Some(5)));
    }

    #[test]
    fn infeasible_returns_none() {
        let inst = OfflineInstance::uniform(2, 2, 1, 2, Some(1), 6, vec![t("uuuuuu")]);
        assert_eq!(min_makespan(&inst, BUDGET), Ok(None));
    }

    #[test]
    fn paper_counter_example_optimum_is_nine() {
        // Section 4: Tprog = Tdata = 2, m = 2, w = 2, ncom = 1,
        // S1 = uuuuuurrr, S2 = ruuuuuuuu. The optimal schedule waits one
        // slot and serves P2 first, finishing both tasks at time 9; MCT
        // (which grabs P1 immediately) is strictly worse.
        let inst =
            OfflineInstance::uniform(2, 2, 2, 2, Some(1), 9, vec![t("uuuuuurrr"), t("ruuuuuuuu")]);
        assert_eq!(min_makespan(&inst, BUDGET), Ok(Some(9)));
    }

    #[test]
    fn bnb_matches_mct_when_uncontended() {
        // With ncom = p the channel constraint is slack on these instances;
        // B&B must agree with the provably optimal MCT.
        let cases = vec![
            OfflineInstance::uniform(
                2,
                1,
                1,
                2,
                None,
                14,
                vec![t("uuuuuuuuuuuuuu"), t("ruururuuruuruu")],
            ),
            OfflineInstance::uniform(3, 1, 0, 1, None, 10, vec![t("uuuuuuuuuu"), t("uruururuur")]),
            OfflineInstance::uniform(1, 2, 2, 3, None, 12, vec![t("uuuuuuuuuuuu")]),
        ];
        for (i, base) in cases.into_iter().enumerate() {
            let mct = mct_infinite(&base).map(|s| s.makespan);
            let mut bounded = base.clone();
            bounded.ncom = Some(base.p());
            let exact = min_makespan(&bounded, BUDGET).unwrap();
            assert_eq!(mct, exact, "case {i}");
        }
    }

    #[test]
    fn bandwidth_bound_hurts() {
        // Two identical workers, two tasks: with ncom = 2 both stream
        // concurrently; with ncom = 1 everything serializes.
        let traces = vec![t("uuuuuuuuuuuu"), t("uuuuuuuuuuuu")];
        let wide = OfflineInstance::uniform(2, 2, 1, 3, Some(2), 12, traces.clone());
        let narrow = OfflineInstance::uniform(2, 2, 1, 3, Some(1), 12, traces);
        let mk_wide = min_makespan(&wide, BUDGET).unwrap().unwrap();
        let mk_narrow = min_makespan(&narrow, BUDGET).unwrap().unwrap();
        assert!(mk_wide < mk_narrow, "{mk_wide} !< {mk_narrow}");
        assert_eq!(mk_wide, 6); // prog 0-1, data 2, compute 3-5 on both
    }

    #[test]
    fn reclaimed_slots_delay_completion() {
        let solid = OfflineInstance::uniform(1, 1, 1, 2, Some(1), 10, vec![t("uuuuuuuuuu")]);
        let holey = OfflineInstance::uniform(1, 1, 1, 2, Some(1), 10, vec![t("ururururur")]);
        let a = min_makespan(&solid, BUDGET).unwrap().unwrap();
        let b = min_makespan(&holey, BUDGET).unwrap().unwrap();
        assert_eq!(a, 4);
        assert_eq!(b, 7); // u-slots 0,2,4,6: prog 0, data 2, compute 4 & 6
    }

    #[test]
    fn prefetch_is_exploited() {
        // One worker, two tasks, Tdata = 1, w = 2: data(1) must overlap
        // compute(0): prog 0, data0 1, comp0 2-3 (+data1 at 2), comp1 4-5 → 6.
        let inst = OfflineInstance::uniform(2, 1, 1, 2, Some(1), 10, vec![t("uuuuuuuuuu")]);
        assert_eq!(min_makespan(&inst, BUDGET), Ok(Some(6)));
    }

    #[test]
    fn exploration_count_is_pinned() {
        // Regression pin for search determinism: the Section-4
        // counter-example must expand exactly this many states, run after
        // run. Drift here means exploration order became environment
        // dependent (the hazard the fixed-seed `DetHashSet` memo
        // forecloses) or that branching/pruning changed semantics — either
        // way, a deliberate review, not noise.
        let inst =
            OfflineInstance::uniform(2, 2, 2, 2, Some(1), 9, vec![t("uuuuuurrr"), t("ruuuuuuuu")]);
        let run = explore(&inst, BUDGET).unwrap();
        assert_eq!(run.makespan, Some(9));
        assert_eq!(run.states, 53);
        assert_eq!(explore(&inst, BUDGET).unwrap(), run);
    }

    #[test]
    fn budget_exhaustion_reports() {
        let inst = OfflineInstance::uniform(
            3,
            2,
            1,
            2,
            Some(1),
            20,
            vec![
                t("uuuuuuuuuuuuuuuuuuuu"),
                t("uuuuuuuuuuuuuuuuuuuu"),
                t("uuuuuuuuuuuuuuuuuuuu"),
            ],
        );
        assert_eq!(min_makespan(&inst, 10), Err(BnbError::BudgetExceeded));
    }

    #[test]
    fn zero_t_data_instances() {
        // Reduction-style: Tprog = 2, Tdata = 0, w = 1.
        // prog slots 0-1, compute slot 2 → 3; second task computes slot 3.
        let inst = OfflineInstance::uniform(2, 2, 0, 1, Some(1), 6, vec![t("uuuuuu")]);
        assert_eq!(min_makespan(&inst, BUDGET), Ok(Some(4)));
    }

    #[test]
    fn three_state_instances_rejected() {
        let inst = OfflineInstance::uniform(1, 1, 0, 1, Some(1), 4, vec![t("uudu")]);
        assert_eq!(min_makespan(&inst, 1_000), Err(BnbError::ContainsDown));
        // The split form is accepted.
        assert!(min_makespan(&inst.split_down(), 100_000).is_ok());
    }

    #[test]
    fn feasible_within_trims_horizon() {
        let inst = OfflineInstance::uniform(1, 1, 1, 2, Some(1), 10, vec![t("uuuuuuuuuu")]);
        assert_eq!(feasible_within(&inst, 4, BUDGET), Ok(true));
        assert_eq!(feasible_within(&inst, 3, BUDGET), Ok(false));
    }
}
