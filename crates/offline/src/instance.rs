//! Off-line problem instances (Section 4).
//!
//! In the off-line setting the availability vectors `S_q` are known in
//! advance. The paper first shows that `DOWN` states can be compiled away:
//! a processor that crashes is replaced by two 2-state processors (the
//! prefix before the crash and the suffix after it), because the crash's
//! only lasting effect — losing the program and partial work — is exactly
//! what a fresh processor models. [`OfflineInstance::split_down`] implements
//! that transform, so solvers only face `u`/`r` traces.

use vg_des::{Slot, SlotSpan};
use vg_markov::ProcState;
use vg_platform::Trace;

/// An off-line scheduling instance: complete one iteration of `m` tasks
/// before the horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct OfflineInstance {
    /// Number of tasks in the iteration.
    pub m: usize,
    /// Program transfer time `T_prog`.
    pub t_prog: SlotSpan,
    /// Data transfer time `T_data` (0 allowed; the Theorem-1 reduction uses
    /// it).
    pub t_data: SlotSpan,
    /// Per-processor task cost `w_q` (same length as `traces`).
    pub w: Vec<SlotSpan>,
    /// Master channel bound; `None` means unbounded (`ncom = +∞`, the
    /// polynomial case of Proposition 2).
    pub ncom: Option<usize>,
    /// Scheduling horizon `N`: activity is allowed in slots `0..horizon`.
    pub horizon: Slot,
    /// Known availability vectors, one per processor. Slots beyond a trace's
    /// recorded length count as `RECLAIMED`.
    pub traces: Vec<Trace>,
}

/// Instance validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceError(pub String);

impl std::fmt::Display for InstanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid off-line instance: {}", self.0)
    }
}

impl std::error::Error for InstanceError {}

impl OfflineInstance {
    /// Validates structural consistency.
    pub fn validate(&self) -> Result<(), InstanceError> {
        if self.m == 0 {
            return Err(InstanceError("no tasks".into()));
        }
        if self.traces.is_empty() {
            return Err(InstanceError("no processors".into()));
        }
        if self.w.len() != self.traces.len() {
            return Err(InstanceError(format!(
                "{} speeds for {} traces",
                self.w.len(),
                self.traces.len()
            )));
        }
        if self.w.contains(&0) {
            return Err(InstanceError("zero task cost".into()));
        }
        if self.ncom == Some(0) {
            return Err(InstanceError("ncom must be ≥ 1 (or None for ∞)".into()));
        }
        if self.horizon == 0 {
            return Err(InstanceError("empty horizon".into()));
        }
        Ok(())
    }

    /// Number of processors.
    #[must_use]
    pub fn p(&self) -> usize {
        self.traces.len()
    }

    /// State of processor `q` at slot `t` (`RECLAIMED` beyond the recorded
    /// trace).
    #[must_use]
    pub fn state(&self, q: usize, t: Slot) -> ProcState {
        self.traces[q].get(t).unwrap_or(ProcState::Reclaimed)
    }

    /// True if no trace contains a `DOWN` slot within the horizon.
    #[must_use]
    pub fn is_two_state(&self) -> bool {
        self.traces.iter().all(|tr| {
            tr.states()
                .iter()
                .take(self.horizon as usize)
                .all(|&s| s != ProcState::Down)
        })
    }

    /// The Section-4 transform: replaces every processor whose trace
    /// contains `DOWN` slots by one 2-state processor per maximal
    /// crash-free segment (`RECLAIMED` padding outside the segment).
    /// Segments with no `UP` slot are dropped — they can never contribute.
    ///
    /// The returned instance is equivalent: any schedule for one maps to a
    /// schedule for the other with the same completion slot.
    #[must_use]
    pub fn split_down(&self) -> OfflineInstance {
        let horizon = self.horizon as usize;
        let mut w_out = Vec::new();
        let mut traces_out = Vec::new();
        for (q, tr) in self.traces.iter().enumerate() {
            // Materialize the horizon window (pad with r).
            let window: Vec<ProcState> = (0..horizon)
                .map(|t| tr.get(t as Slot).unwrap_or(ProcState::Reclaimed))
                .collect();
            let mut start = 0usize;
            while start < horizon {
                if window[start] == ProcState::Down {
                    start += 1;
                    continue;
                }
                let mut end = start;
                while end < horizon && window[end] != ProcState::Down {
                    end += 1;
                }
                // Segment [start, end): keep it only if it has an UP slot.
                if window[start..end].iter().any(|s| s.is_up()) {
                    let states: Vec<ProcState> = (0..horizon)
                        .map(|t| {
                            if (start..end).contains(&t) {
                                window[t]
                            } else {
                                ProcState::Reclaimed
                            }
                        })
                        .collect();
                    w_out.push(self.w[q]);
                    traces_out.push(Trace::new(states));
                }
                start = end;
            }
        }
        OfflineInstance {
            m: self.m,
            t_prog: self.t_prog,
            t_data: self.t_data,
            w: w_out,
            ncom: self.ncom,
            horizon: self.horizon,
            traces: traces_out,
        }
    }

    /// Convenience constructor for uniform-speed instances.
    #[must_use]
    pub fn uniform(
        m: usize,
        t_prog: SlotSpan,
        t_data: SlotSpan,
        w: SlotSpan,
        ncom: Option<usize>,
        horizon: Slot,
        traces: Vec<Trace>,
    ) -> Self {
        let p = traces.len();
        Self {
            m,
            t_prog,
            t_data,
            w: vec![w; p],
            ncom,
            horizon,
            traces,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Trace {
        Trace::parse(s).unwrap()
    }

    #[test]
    fn validation_catches_errors() {
        let ok = OfflineInstance::uniform(1, 1, 0, 1, Some(1), 4, vec![t("uuuu")]);
        assert!(ok.validate().is_ok());
        assert!(OfflineInstance { m: 0, ..ok.clone() }.validate().is_err());
        assert!(OfflineInstance {
            horizon: 0,
            ..ok.clone()
        }
        .validate()
        .is_err());
        assert!(OfflineInstance {
            ncom: Some(0),
            ..ok.clone()
        }
        .validate()
        .is_err());
        assert!(OfflineInstance {
            w: vec![],
            ..ok.clone()
        }
        .validate()
        .is_err());
        assert!(OfflineInstance { w: vec![0], ..ok }.validate().is_err());
    }

    #[test]
    fn state_beyond_trace_is_reclaimed() {
        let inst = OfflineInstance::uniform(1, 1, 0, 1, None, 10, vec![t("uu")]);
        assert_eq!(inst.state(0, 1), ProcState::Up);
        assert_eq!(inst.state(0, 5), ProcState::Reclaimed);
    }

    #[test]
    fn split_down_splits_at_each_crash() {
        // u u d u u  -> two processors:
        //   u u r r r   and   r r r u u
        let inst = OfflineInstance::uniform(1, 1, 0, 1, Some(1), 5, vec![t("uudud")]);
        assert!(!inst.is_two_state());
        let split = inst.split_down();
        assert!(split.is_two_state());
        assert_eq!(split.p(), 2);
        assert_eq!(split.traces[0].to_compact_string(), "uurrr");
        assert_eq!(split.traces[1].to_compact_string(), "rrrur");
    }

    #[test]
    fn split_down_keeps_two_state_traces() {
        let inst = OfflineInstance::uniform(2, 1, 0, 1, Some(1), 4, vec![t("urur"), t("ruru")]);
        let split = inst.split_down();
        assert_eq!(split.p(), 2);
        assert_eq!(split.traces[0].to_compact_string(), "urur");
        assert_eq!(split.traces[1].to_compact_string(), "ruru");
    }

    #[test]
    fn split_down_drops_useless_segments() {
        // d r d u -> only the final 'u' segment survives.
        let inst = OfflineInstance::uniform(1, 1, 0, 1, Some(1), 4, vec![t("drdu")]);
        let split = inst.split_down();
        assert_eq!(split.p(), 1);
        assert_eq!(split.traces[0].to_compact_string(), "rrru");
    }

    #[test]
    fn split_down_preserves_speeds() {
        let mut inst = OfflineInstance::uniform(1, 1, 0, 1, Some(1), 4, vec![t("udud"), t("uuuu")]);
        inst.w = vec![3, 7];
        let split = inst.split_down();
        assert_eq!(split.w, vec![3, 3, 7]);
    }

    #[test]
    fn split_down_respects_horizon() {
        // The crash beyond the horizon is irrelevant.
        let inst = OfflineInstance::uniform(1, 1, 0, 1, Some(1), 2, vec![t("uud")]);
        let split = inst.split_down();
        assert_eq!(split.p(), 1);
        assert_eq!(split.traces[0].to_compact_string(), "uu");
    }
}
