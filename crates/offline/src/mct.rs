//! MCT on known traces — optimal for `ncom = +∞` (Proposition 2).
//!
//! With unbounded master bandwidth every processor downloads the program
//! from slot 0, and the greedy Minimum-Completion-Time rule — assign the
//! next task to the processor that would finish it soonest — is *optimal*
//! (the paper proves it by an exchange argument). This module implements the
//! greedy, a per-processor timeline that walks the known trace, a brute
//! force used by the tests to confirm optimality on small instances, and a
//! materializer producing an explicit [`Schedule`].

use crate::instance::OfflineInstance;
use crate::schedule::{Comm, Schedule};
use vg_des::{Slot, SlotSpan};
use vg_markov::ProcState;

/// Incremental execution timeline of one processor over its known trace.
///
/// Tracks where the next communication and computation can start; appending
/// a task advances the pipeline exactly as the simulator would execute it
/// (program first, sequential data transfers, one-task prefetch overlap,
/// sequential computations — all on `UP` slots only).
#[derive(Debug, Clone)]
pub struct ProcTimeline<'a> {
    inst: &'a OfflineInstance,
    q: usize,
    /// Slot from which the next comm u-slot is searched.
    comm_cursor: Slot,
    /// Slot from which the next compute u-slot is searched.
    compute_cursor: Slot,
    /// First compute slot of the last appended task (look-ahead gate).
    last_compute_start: Slot,
    /// Tasks appended so far.
    tasks: usize,
    /// Slot after which the program is fully received (slot index of the
    /// `T_prog`-th `UP` slot, plus one); `None` if the program cannot be
    /// received within the horizon.
    prog_ready: Option<Slot>,
}

/// Completion info for a hypothetical or committed append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Slot of the first data slot (`None` when `T_data = 0`).
    pub data_start: Option<Slot>,
    /// Slot after the task's data is complete.
    pub data_ready: Slot,
    /// First compute slot.
    pub compute_start: Slot,
    /// Completion time: last compute slot + 1.
    pub completion: Slot,
}

impl<'a> ProcTimeline<'a> {
    /// Builds the timeline of processor `q`; the program is scheduled on the
    /// earliest `T_prog` `UP` slots (ncom = ∞: no contention).
    #[must_use]
    pub fn new(inst: &'a OfflineInstance, q: usize) -> Self {
        let prog_ready = if inst.t_prog == 0 {
            Some(0)
        } else {
            nth_up(inst, q, 0, inst.t_prog).map(|last| last + 1)
        };
        Self {
            inst,
            q,
            comm_cursor: prog_ready.unwrap_or(inst.horizon),
            compute_cursor: 0,
            last_compute_start: 0,
            tasks: 0,
            prog_ready,
        }
    }

    /// Number of committed tasks.
    #[must_use]
    pub fn tasks(&self) -> usize {
        self.tasks
    }

    /// Slot after which the program is complete, if receivable.
    #[must_use]
    pub fn prog_ready(&self) -> Option<Slot> {
        self.prog_ready
    }

    /// Evaluates appending one more task without committing.
    ///
    /// Returns `None` when the task cannot complete within the horizon.
    #[must_use]
    pub fn evaluate(&self) -> Option<Placement> {
        let inst = self.inst;
        self.prog_ready?;
        let (data_start, data_ready) = if inst.t_data == 0 {
            (
                None,
                self.comm_cursor.max(self.prog_ready.expect("checked")),
            )
        } else {
            // Look-ahead: data for task k may only flow once task k−1 has
            // started computing (and the link must be free).
            let lower = if self.tasks == 0 {
                self.comm_cursor
            } else {
                self.comm_cursor.max(self.last_compute_start)
            };
            let first = nth_up(inst, self.q, lower, 1)?;
            let last = nth_up(inst, self.q, lower, inst.t_data)?;
            (Some(first), last + 1)
        };
        let compute_lower = self.compute_cursor.max(data_ready);
        let compute_start = nth_up(inst, self.q, compute_lower, 1)?;
        let last_compute = nth_up(inst, self.q, compute_lower, inst.w[self.q])?;
        Some(Placement {
            data_start,
            data_ready,
            compute_start,
            completion: last_compute + 1,
        })
    }

    /// Commits the evaluated append.
    pub fn commit(&mut self, placement: Placement) {
        self.comm_cursor = placement.data_ready;
        self.compute_cursor = placement.completion;
        self.last_compute_start = placement.compute_start;
        self.tasks += 1;
    }
}

/// Slot of the `n`-th `UP` slot of processor `q` at or after `from`
/// (`n ≥ 1`), within the horizon.
fn nth_up(inst: &OfflineInstance, q: usize, from: Slot, n: SlotSpan) -> Option<Slot> {
    debug_assert!(n >= 1);
    let mut remaining = n;
    let mut t = from;
    while t < inst.horizon {
        if inst.state(q, t) == ProcState::Up {
            remaining -= 1;
            if remaining == 0 {
                return Some(t);
            }
        }
        t += 1;
    }
    None
}

/// Result of the greedy MCT solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MctSolution {
    /// `assignment[k]` = processor that computes task `k`.
    pub assignment: Vec<usize>,
    /// Completion time of the iteration (max over processors).
    pub makespan: Slot,
}

/// Greedy MCT for `ncom = +∞`. Returns `None` when the iteration cannot
/// complete within the horizon.
///
/// # Panics
/// Panics if the instance has a finite `ncom` (the algorithm would not be
/// optimal there — see the counter-example test; use the branch-and-bound
/// solver instead).
#[must_use]
pub fn mct_infinite(inst: &OfflineInstance) -> Option<MctSolution> {
    assert!(
        inst.ncom.is_none(),
        "MCT is only optimal without a bandwidth bound (Proposition 2)"
    );
    inst.validate().ok()?;
    let mut timelines: Vec<ProcTimeline> =
        (0..inst.p()).map(|q| ProcTimeline::new(inst, q)).collect();
    let mut assignment = Vec::with_capacity(inst.m);
    let mut makespan = 0;
    for _task in 0..inst.m {
        let mut best: Option<(usize, Placement)> = None;
        for (q, tl) in timelines.iter().enumerate() {
            if let Some(p) = tl.evaluate() {
                // Strict `<` keeps the lowest processor id on ties.
                if best.is_none() || p.completion < best.expect("checked").1.completion {
                    best = Some((q, p));
                }
            }
        }
        let (q, p) = best?;
        timelines[q].commit(p);
        assignment.push(q);
        makespan = makespan.max(p.completion);
    }
    Some(MctSolution {
        assignment,
        makespan,
    })
}

/// Materializes an explicit [`Schedule`] from a task→processor assignment by
/// replaying the timelines (used to double-check MCT against the validator).
#[must_use]
pub fn materialize(inst: &OfflineInstance, assignment: &[usize]) -> Option<Schedule> {
    let mut schedule = Schedule::empty(inst);
    let mut timelines: Vec<ProcTimeline> =
        (0..inst.p()).map(|q| ProcTimeline::new(inst, q)).collect();
    // Program slots for every processor that computes something.
    for q in 0..inst.p() {
        if assignment.contains(&q) && inst.t_prog > 0 {
            let mut placed = 0;
            let mut t = 0;
            while placed < inst.t_prog {
                if inst.state(q, t) == ProcState::Up {
                    schedule.action_mut(q, t).comm = Some(Comm::Prog);
                    placed += 1;
                }
                t += 1;
            }
        }
    }
    for (k, &q) in assignment.iter().enumerate() {
        let p = timelines[q].evaluate()?;
        timelines[q].commit(p);
        // Data slots.
        if inst.t_data > 0 {
            let mut placed = 0;
            let mut t = p.data_start.expect("t_data > 0");
            while placed < inst.t_data {
                if inst.state(q, t) == ProcState::Up {
                    debug_assert!(schedule.action(q, t).comm.is_none());
                    schedule.action_mut(q, t).comm = Some(Comm::Data(k as u32));
                    placed += 1;
                }
                t += 1;
            }
        }
        // Compute slots.
        let mut placed = 0;
        let mut t = p.compute_start;
        while placed < inst.w[q] {
            if inst.state(q, t) == ProcState::Up {
                schedule.action_mut(q, t).compute = Some(k as u32);
                placed += 1;
            }
            t += 1;
        }
    }
    Some(schedule)
}

/// Exhaustive optimum for `ncom = +∞` by enumerating task counts per
/// processor (tasks are identical, so only counts matter). Exponential —
/// test-sized instances only.
#[must_use]
pub fn brute_force_infinite(inst: &OfflineInstance) -> Option<Slot> {
    fn completion_with(inst: &OfflineInstance, q: usize, count: usize) -> Option<Slot> {
        let mut tl = ProcTimeline::new(inst, q);
        let mut last = 0;
        for _ in 0..count {
            let p = tl.evaluate()?;
            tl.commit(p);
            last = p.completion;
        }
        Some(last)
    }
    fn recurse(
        inst: &OfflineInstance,
        q: usize,
        remaining: usize,
        current_max: Slot,
        best: &mut Option<Slot>,
    ) {
        if q == inst.p() {
            if remaining == 0 && best.is_none_or(|b| current_max < b) {
                *best = Some(current_max);
            }
            return;
        }
        for count in 0..=remaining {
            match completion_with(inst, q, count) {
                Some(c) => {
                    let m = current_max.max(c);
                    if best.is_none_or(|b| m < b) {
                        recurse(inst, q + 1, remaining - count, m, best);
                    }
                }
                None => break, // more tasks cannot help either
            }
        }
    }
    let mut best = None;
    recurse(inst, 0, inst.m, 0, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use vg_platform::Trace;

    fn t(s: &str) -> Trace {
        Trace::parse(s).unwrap()
    }

    fn inst(
        m: usize,
        t_prog: SlotSpan,
        t_data: SlotSpan,
        w: SlotSpan,
        horizon: Slot,
        traces: Vec<Trace>,
    ) -> OfflineInstance {
        OfflineInstance::uniform(m, t_prog, t_data, w, None, horizon, traces)
    }

    #[test]
    fn timeline_single_task_always_up() {
        // prog slots 0-1, data slot 2, compute slots 3-4 → completion 5.
        let i = inst(1, 2, 1, 2, 10, vec![t("uuuuuuuuuu")]);
        let tl = ProcTimeline::new(&i, 0);
        let p = tl.evaluate().unwrap();
        assert_eq!(p.data_start, Some(2));
        assert_eq!(p.data_ready, 3);
        assert_eq!(p.compute_start, 3);
        assert_eq!(p.completion, 5);
    }

    #[test]
    fn timeline_respects_reclaimed_gaps() {
        // u r u r u r u r …  prog=1 → slot 0; data=1 → slot 2;
        // compute w=2 → slots 4, 6 → completion 7.
        let i = inst(1, 1, 1, 2, 10, vec![t("ururururur")]);
        let p = ProcTimeline::new(&i, 0).evaluate().unwrap();
        assert_eq!(p.completion, 7);
    }

    #[test]
    fn timeline_pipelines_second_task() {
        // Always up, prog=1, data=1, w=3.
        // T1: data 1, compute 2-4. T2: data 2 (overlap), compute 5-7 → 8.
        let i = inst(2, 1, 1, 3, 20, vec![t("uuuuuuuuuuuuuuuuuuuu")]);
        let mut tl = ProcTimeline::new(&i, 0);
        let p1 = tl.evaluate().unwrap();
        tl.commit(p1);
        assert_eq!(p1.completion, 5);
        let p2 = tl.evaluate().unwrap();
        assert_eq!(p2.data_start, Some(2));
        assert_eq!(p2.completion, 8);
    }

    #[test]
    fn timeline_infeasible_within_horizon() {
        let i = inst(1, 2, 1, 2, 4, vec![t("uurr")]);
        assert!(ProcTimeline::new(&i, 0).evaluate().is_none());
    }

    #[test]
    fn timeline_zero_t_data() {
        // prog=2: slots 0-1; compute w=1 at slot 2.
        let i = inst(1, 2, 0, 1, 5, vec![t("uuuuu")]);
        let p = ProcTimeline::new(&i, 0).evaluate().unwrap();
        assert_eq!(p.data_start, None);
        assert_eq!(p.completion, 3);
    }

    #[test]
    fn mct_balances_two_processors() {
        let i = inst(
            2,
            1,
            1,
            3,
            20,
            vec![t("uuuuuuuuuuuuuuuuuuuu"), t("uuuuuuuuuuuuuuuuuuuu")],
        );
        let sol = mct_infinite(&i).unwrap();
        assert_eq!(sol.assignment, vec![0, 1]);
        assert_eq!(sol.makespan, 5);
    }

    #[test]
    fn mct_prefers_faster_processor() {
        let mut i = inst(
            1,
            1,
            1,
            1,
            20,
            vec![t("uuuuuuuuuuuuuuuuuuuu"), t("uuuuuuuuuuuuuuuuuuuu")],
        );
        i.w = vec![5, 2];
        let sol = mct_infinite(&i).unwrap();
        assert_eq!(sol.assignment, vec![1]);
    }

    #[test]
    fn mct_skips_unavailable_processor() {
        let i = inst(1, 1, 1, 2, 8, vec![t("rrrrrrrr"), t("uuuuuuuu")]);
        let sol = mct_infinite(&i).unwrap();
        assert_eq!(sol.assignment, vec![1]);
        assert_eq!(sol.makespan, 4);
    }

    #[test]
    fn mct_none_when_infeasible() {
        let i = inst(3, 1, 1, 2, 5, vec![t("uuuuu")]);
        assert!(mct_infinite(&i).is_none());
    }

    #[test]
    #[should_panic(expected = "Proposition 2")]
    fn mct_rejects_bounded_ncom() {
        let mut i = inst(1, 1, 1, 1, 5, vec![t("uuuuu")]);
        i.ncom = Some(1);
        let _ = mct_infinite(&i);
    }

    #[test]
    fn materialized_schedule_validates() {
        let i = inst(
            3,
            2,
            1,
            2,
            30,
            vec![
                t("uuuuuuuuuuuuuuuuuuuuuuuuuuuuuu"),
                t("ururururururururururururururur"),
            ],
        );
        let sol = mct_infinite(&i).unwrap();
        let schedule = materialize(&i, &sol.assignment).unwrap();
        let completion = schedule.validate(&i).unwrap();
        assert_eq!(completion, sol.makespan);
    }

    #[test]
    fn mct_matches_brute_force_on_crafted_instances() {
        let cases = vec![
            inst(
                3,
                1,
                1,
                2,
                20,
                vec![t("uuuuuuuuuuuuuuuuuuuu"), t("uruururuuruuruuruuru")],
            ),
            inst(
                4,
                2,
                1,
                1,
                25,
                vec![
                    t("uuuuuuuuuuuuuuuuuuuuuuuuu"),
                    t("rrrrruuuuuuuuuuuuuuuuuuuu"),
                    t("uururururururururururuuuu"),
                ],
            ),
            inst(
                2,
                0,
                2,
                3,
                15,
                vec![t("uuuuuuuuuuuuuuu"), t("uuruuruuruuruur")],
            ),
        ];
        for (idx, i) in cases.into_iter().enumerate() {
            let greedy = mct_infinite(&i).map(|s| s.makespan);
            let exact = brute_force_infinite(&i);
            assert_eq!(greedy, exact, "case {idx}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_mct_is_optimal_proposition2(
            seed_traces in proptest::collection::vec(
                proptest::collection::vec(0usize..2, 12..20), 1..4),
            m in 1usize..5,
            t_prog in 0u64..3,
            t_data in 0u64..3,
            w in 1u64..4,
        ) {
            let traces: Vec<Trace> = seed_traces
                .iter()
                .map(|codes| codes.iter().map(|&c| if c == 0 {
                    vg_markov::ProcState::Up
                } else {
                    vg_markov::ProcState::Reclaimed
                }).collect())
                .collect();
            let horizon = traces[0].len() as Slot;
            let i = OfflineInstance::uniform(m, t_prog, t_data, w, None, horizon, traces);
            let greedy = mct_infinite(&i).map(|s| s.makespan);
            let exact = brute_force_infinite(&i);
            prop_assert_eq!(greedy, exact);
        }

        #[test]
        fn prop_materialized_schedules_validate(
            seed_traces in proptest::collection::vec(
                proptest::collection::vec(0usize..2, 15..20), 1..3),
            m in 1usize..4,
        ) {
            let traces: Vec<Trace> = seed_traces
                .iter()
                .map(|codes| codes.iter().map(|&c| if c == 0 {
                    vg_markov::ProcState::Up
                } else {
                    vg_markov::ProcState::Reclaimed
                }).collect())
                .collect();
            let horizon = traces[0].len() as Slot;
            let i = OfflineInstance::uniform(m, 1, 1, 2, None, horizon, traces);
            if let Some(sol) = mct_infinite(&i) {
                let schedule = materialize(&i, &sol.assignment).unwrap();
                let completion = schedule.validate(&i);
                prop_assert_eq!(completion, Ok(sol.makespan));
            }
        }
    }
}
