//! Explicit off-line schedules and their validator.
//!
//! A schedule says, for every processor and slot, which communication the
//! master performs toward it and which task it computes. The validator
//! checks every model rule of Section 3 (\[D15\] in DESIGN.md):
//!
//! 1. activity only on `UP` slots and inside the horizon;
//! 2. at most `ncom` simultaneous communications per slot;
//! 3. at most one communication per worker per slot (single inbound link);
//! 4. the full program (`T_prog` slots) precedes any data or compute;
//! 5. each computed task has its `T_data` data slots, fully received before
//!    its first compute slot; data receptions per worker are sequential and
//!    ordered like the computations;
//! 6. look-ahead: data for a task may only be received once the previous
//!    task's computation has started (at most one task of prefetch);
//! 7. computations of distinct tasks on one worker do not interleave, and a
//!    computed task receives exactly `w_q` compute slots;
//! 8. every task of the iteration is computed exactly once.

use crate::instance::OfflineInstance;
use vg_des::Slot;

/// A communication toward a worker during one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comm {
    /// One slot of the program.
    Prog,
    /// One slot of the given task's input data.
    Data(u32),
}

/// What one worker does during one slot (communication and computation
/// overlap freely — the paper's model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SlotAction {
    /// Inbound communication, if any.
    pub comm: Option<Comm>,
    /// Task being computed, if any.
    pub compute: Option<u32>,
}

impl SlotAction {
    /// No activity.
    pub const IDLE: SlotAction = SlotAction {
        comm: None,
        compute: None,
    };

    /// True when nothing happens.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.comm.is_none() && self.compute.is_none()
    }
}

/// A complete schedule: `actions[q][t]` for processor `q`, slot `t`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    actions: Vec<Vec<SlotAction>>,
}

/// A rule violation found by the validator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleError {
    /// Offending processor (`None` for global violations).
    pub proc: Option<usize>,
    /// Offending slot (`None` for structural violations).
    pub slot: Option<Slot>,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.proc, self.slot) {
            (Some(q), Some(t)) => write!(f, "P{q}@{t}: {}", self.message),
            (Some(q), None) => write!(f, "P{q}: {}", self.message),
            _ => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl Schedule {
    /// An all-idle schedule sized for `inst`.
    #[must_use]
    pub fn empty(inst: &OfflineInstance) -> Self {
        Self {
            actions: vec![vec![SlotAction::IDLE; inst.horizon as usize]; inst.p()],
        }
    }

    /// Direct access to one cell.
    #[must_use]
    pub fn action(&self, q: usize, t: Slot) -> SlotAction {
        self.actions[q][t as usize]
    }

    /// Mutable access to one cell.
    pub fn action_mut(&mut self, q: usize, t: Slot) -> &mut SlotAction {
        &mut self.actions[q][t as usize]
    }

    /// Last slot with any activity, plus one (i.e., the completion time);
    /// 0 for an all-idle schedule.
    #[must_use]
    pub fn completion_time(&self) -> Slot {
        let mut last = 0;
        for row in &self.actions {
            for (t, a) in row.iter().enumerate() {
                if !a.is_idle() {
                    last = last.max(t as Slot + 1);
                }
            }
        }
        last
    }

    /// Validates against `inst`; returns the completion time on success.
    pub fn validate(&self, inst: &OfflineInstance) -> Result<Slot, ScheduleError> {
        let err = |proc: Option<usize>, slot: Option<Slot>, message: String| ScheduleError {
            proc,
            slot,
            message,
        };
        inst.validate()
            .map_err(|e| err(None, None, e.to_string()))?;
        if self.actions.len() != inst.p() {
            return Err(err(None, None, "wrong processor count".into()));
        }
        let horizon = inst.horizon as usize;
        for (q, row) in self.actions.iter().enumerate() {
            if row.len() != horizon {
                return Err(err(Some(q), None, "wrong slot count".into()));
            }
        }

        // Rule 2: ncom per slot.
        if let Some(ncom) = inst.ncom {
            for t in 0..horizon {
                let comms = self
                    .actions
                    .iter()
                    .filter(|row| row[t].comm.is_some())
                    .count();
                if comms > ncom {
                    return Err(err(
                        None,
                        Some(t as Slot),
                        format!("{comms} simultaneous communications, ncom = {ncom}"),
                    ));
                }
            }
        }

        let mut computed_by: Vec<Option<usize>> = vec![None; inst.m];

        for (q, row) in self.actions.iter().enumerate() {
            // Rule 1: UP only.
            for (t, a) in row.iter().enumerate() {
                if !a.is_idle() && !inst.state(q, t as Slot).is_up() {
                    return Err(err(
                        Some(q),
                        Some(t as Slot),
                        format!("activity while {}", inst.state(q, t as Slot)),
                    ));
                }
            }

            // Gather this worker's comm and compute timelines.
            let prog_slots: Vec<usize> = (0..horizon)
                .filter(|&t| row[t].comm == Some(Comm::Prog))
                .collect();
            let comm_slots: Vec<(usize, Comm)> = (0..horizon)
                .filter_map(|t| row[t].comm.map(|c| (t, c)))
                .collect();
            let compute_slots: Vec<(usize, u32)> = (0..horizon)
                .filter_map(|t| row[t].compute.map(|k| (t, k)))
                .collect();

            let uses_program = !compute_slots.is_empty()
                || comm_slots.iter().any(|(_, c)| matches!(c, Comm::Data(_)));
            // Rule 4: program complete, and before any data/compute.
            if uses_program {
                if (prog_slots.len() as u64) != inst.t_prog {
                    return Err(err(
                        Some(q),
                        None,
                        format!(
                            "{} program slots, T_prog = {}",
                            prog_slots.len(),
                            inst.t_prog
                        ),
                    ));
                }
                let prog_done = prog_slots.last().copied().map_or(0, |t| t + 1);
                if let Some(&(t, _)) = compute_slots.first() {
                    if t < prog_done {
                        return Err(err(
                            Some(q),
                            Some(t as Slot),
                            "compute before program complete".into(),
                        ));
                    }
                }
                if let Some(&(t, _)) = comm_slots.iter().find(|(_, c)| matches!(c, Comm::Data(_))) {
                    if t < prog_done {
                        return Err(err(
                            Some(q),
                            Some(t as Slot),
                            "data before program complete".into(),
                        ));
                    }
                }
            } else if !prog_slots.is_empty() && (prog_slots.len() as u64) != inst.t_prog {
                return Err(err(
                    Some(q),
                    None,
                    "partial program transfer with no use".into(),
                ));
            }

            // Rule 7: computations per task contiguous-in-order, w_q slots.
            let mut task_order: Vec<u32> = Vec::new();
            for &(_, k) in &compute_slots {
                if task_order.last() != Some(&k) {
                    if task_order.contains(&k) {
                        return Err(err(
                            Some(q),
                            None,
                            format!("task {k} computed in two separate bursts"),
                        ));
                    }
                    task_order.push(k);
                }
            }
            for &k in &task_order {
                let count = compute_slots.iter().filter(|&&(_, kk)| kk == k).count() as u64;
                if count != inst.w[q] {
                    return Err(err(
                        Some(q),
                        None,
                        format!("task {k} got {count} compute slots, w = {}", inst.w[q]),
                    ));
                }
                let k_us = k as usize;
                if k_us >= inst.m {
                    return Err(err(Some(q), None, format!("unknown task {k}")));
                }
                // Rule 8: computed once globally.
                if let Some(other) = computed_by[k_us] {
                    return Err(err(
                        Some(q),
                        None,
                        format!("task {k} also computed by P{other}"),
                    ));
                }
                computed_by[k_us] = Some(q);
            }

            // Rule 5 + 6: data slots per computed task, ordered, before
            // compute, with ≤ 1 task of prefetch.
            if inst.t_data > 0 {
                // Expected data sequence: T_data slots per task, in compute
                // order. Non-computed tasks must not receive data here (it
                // would be wasted — we forbid it to keep schedules canonical).
                let data_seq: Vec<(usize, u32)> = comm_slots
                    .iter()
                    .filter_map(|&(t, c)| match c {
                        Comm::Data(k) => Some((t, k)),
                        Comm::Prog => None,
                    })
                    .collect();
                let expected: Vec<u32> = task_order
                    .iter()
                    .flat_map(|&k| std::iter::repeat_n(k, inst.t_data as usize))
                    .collect();
                let got: Vec<u32> = data_seq.iter().map(|&(_, k)| k).collect();
                if got != expected {
                    return Err(err(
                        Some(q),
                        None,
                        format!("data sequence {got:?} does not match computations {task_order:?}"),
                    ));
                }
                for (i, &k) in task_order.iter().enumerate() {
                    let last_data = data_seq
                        .iter()
                        .filter(|&&(_, kk)| kk == k)
                        .map(|&(t, _)| t)
                        .max()
                        .expect("sequence checked");
                    let first_compute = compute_slots
                        .iter()
                        .find(|&&(_, kk)| kk == k)
                        .map(|&(t, _)| t)
                        .expect("task_order from compute_slots");
                    if last_data >= first_compute {
                        return Err(err(
                            Some(q),
                            Some(first_compute as Slot),
                            format!("task {k} computes before its data completes"),
                        ));
                    }
                    if i >= 1 {
                        let first_data = data_seq
                            .iter()
                            .find(|&&(_, kk)| kk == k)
                            .map(|&(t, _)| t)
                            .expect("sequence checked");
                        let prev_first_compute = compute_slots
                            .iter()
                            .find(|&&(_, kk)| kk == task_order[i - 1])
                            .map(|&(t, _)| t)
                            .expect("previous task computes");
                        if first_data < prev_first_compute {
                            return Err(err(
                                Some(q),
                                Some(first_data as Slot),
                                format!("task {k} prefetched more than one task ahead"),
                            ));
                        }
                    }
                }
            } else {
                // T_data = 0: no data communications may appear at all.
                if comm_slots.iter().any(|(_, c)| matches!(c, Comm::Data(_))) {
                    return Err(err(Some(q), None, "data slots with T_data = 0".into()));
                }
            }
        }

        // Rule 8: all m tasks computed.
        if let Some(k) = computed_by.iter().position(Option::is_none) {
            return Err(err(None, None, format!("task {k} never computed")));
        }
        Ok(self.completion_time())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vg_platform::Trace;

    fn t(s: &str) -> Trace {
        Trace::parse(s).unwrap()
    }

    /// One worker, always up: prog 2, data 1, compute 2 — the canonical
    /// hand-built schedule used in several tests.
    fn simple_instance() -> OfflineInstance {
        OfflineInstance::uniform(1, 2, 1, 2, Some(1), 6, vec![t("uuuuuu")])
    }

    fn simple_schedule() -> Schedule {
        let inst = simple_instance();
        let mut s = Schedule::empty(&inst);
        s.action_mut(0, 0).comm = Some(Comm::Prog);
        s.action_mut(0, 1).comm = Some(Comm::Prog);
        s.action_mut(0, 2).comm = Some(Comm::Data(0));
        s.action_mut(0, 3).compute = Some(0);
        s.action_mut(0, 4).compute = Some(0);
        s
    }

    #[test]
    fn valid_schedule_passes() {
        let inst = simple_instance();
        assert_eq!(simple_schedule().validate(&inst), Ok(5));
    }

    #[test]
    fn activity_on_reclaimed_slot_rejected() {
        let inst = OfflineInstance::uniform(1, 2, 1, 2, Some(1), 6, vec![t("uruuuu")]);
        let s = simple_schedule();
        let e = s.validate(&inst).unwrap_err();
        assert!(e.message.contains("activity while r"), "{e}");
    }

    #[test]
    fn ncom_violation_rejected() {
        let inst = OfflineInstance::uniform(2, 1, 0, 1, Some(1), 4, vec![t("uuuu"), t("uuuu")]);
        let mut s = Schedule::empty(&inst);
        // Both receive the program at slot 0 with ncom = 1.
        s.action_mut(0, 0).comm = Some(Comm::Prog);
        s.action_mut(1, 0).comm = Some(Comm::Prog);
        s.action_mut(0, 1).compute = Some(0);
        s.action_mut(1, 1).compute = Some(1);
        let e = s.validate(&inst).unwrap_err();
        assert!(e.message.contains("simultaneous"), "{e}");

        // Relaxing ncom fixes it.
        let mut relaxed = inst;
        relaxed.ncom = None;
        assert!(s.validate(&relaxed).is_ok());
    }

    #[test]
    fn incomplete_program_rejected() {
        let inst = simple_instance();
        let mut s = simple_schedule();
        s.action_mut(0, 1).comm = None; // only 1 of 2 program slots
        let e = s.validate(&inst).unwrap_err();
        assert!(e.message.contains("program slots"), "{e}");
    }

    #[test]
    fn compute_before_program_rejected() {
        let inst = OfflineInstance::uniform(1, 2, 0, 1, Some(1), 6, vec![t("uuuuuu")]);
        let mut s = Schedule::empty(&inst);
        s.action_mut(0, 0).comm = Some(Comm::Prog);
        s.action_mut(0, 1).compute = Some(0); // program not complete
        s.action_mut(0, 2).comm = Some(Comm::Prog);
        let e = s.validate(&inst).unwrap_err();
        assert!(
            e.message.contains("compute before program") || e.message.contains("program slots"),
            "{e}"
        );
    }

    #[test]
    fn compute_before_data_rejected() {
        let inst = simple_instance();
        let mut s = Schedule::empty(&inst);
        s.action_mut(0, 0).comm = Some(Comm::Prog);
        s.action_mut(0, 1).comm = Some(Comm::Prog);
        s.action_mut(0, 2).compute = Some(0); // data never sent
        s.action_mut(0, 3).compute = Some(0);
        let e = s.validate(&inst).unwrap_err();
        assert!(e.message.contains("data sequence"), "{e}");
    }

    #[test]
    fn split_compute_burst_rejected() {
        let inst = OfflineInstance::uniform(2, 1, 0, 2, Some(1), 8, vec![t("uuuuuuuu")]);
        let mut s = Schedule::empty(&inst);
        s.action_mut(0, 0).comm = Some(Comm::Prog);
        s.action_mut(0, 1).compute = Some(0);
        s.action_mut(0, 2).compute = Some(1); // interleaved!
        s.action_mut(0, 3).compute = Some(0);
        s.action_mut(0, 4).compute = Some(1);
        let e = s.validate(&inst).unwrap_err();
        assert!(e.message.contains("two separate bursts"), "{e}");
    }

    #[test]
    fn wrong_compute_count_rejected() {
        let inst = simple_instance();
        let mut s = simple_schedule();
        s.action_mut(0, 5).compute = Some(0); // 3 slots instead of w = 2
        let e = s.validate(&inst).unwrap_err();
        assert!(e.message.contains("compute slots"), "{e}");
    }

    #[test]
    fn task_computed_twice_rejected() {
        let inst = OfflineInstance::uniform(2, 1, 0, 1, Some(2), 4, vec![t("uuuu"), t("uuuu")]);
        let mut s = Schedule::empty(&inst);
        s.action_mut(0, 0).comm = Some(Comm::Prog);
        s.action_mut(1, 0).comm = Some(Comm::Prog);
        s.action_mut(0, 1).compute = Some(0);
        s.action_mut(1, 1).compute = Some(0); // duplicate
        let e = s.validate(&inst).unwrap_err();
        assert!(e.message.contains("also computed"), "{e}");
    }

    #[test]
    fn missing_task_rejected() {
        let inst = OfflineInstance::uniform(2, 1, 0, 1, Some(1), 6, vec![t("uuuuuu")]);
        let mut s = Schedule::empty(&inst);
        s.action_mut(0, 0).comm = Some(Comm::Prog);
        s.action_mut(0, 1).compute = Some(0);
        let e = s.validate(&inst).unwrap_err();
        assert!(e.message.contains("never computed"), "{e}");
    }

    #[test]
    fn prefetch_overlap_is_legal() {
        // Receive data(1) while computing task 0 — the intended overlap.
        let inst = OfflineInstance::uniform(2, 1, 1, 2, Some(1), 8, vec![t("uuuuuuuu")]);
        let mut s = Schedule::empty(&inst);
        s.action_mut(0, 0).comm = Some(Comm::Prog);
        s.action_mut(0, 1).comm = Some(Comm::Data(0));
        s.action_mut(0, 2).compute = Some(0);
        s.action_mut(0, 2).comm = Some(Comm::Data(1)); // prefetch during compute
        s.action_mut(0, 3).compute = Some(0);
        s.action_mut(0, 4).compute = Some(1);
        s.action_mut(0, 5).compute = Some(1);
        assert_eq!(s.validate(&inst), Ok(6));
    }

    #[test]
    fn prefetch_two_ahead_rejected() {
        // Data(1) before task 0 even starts computing: more than one ahead.
        let inst = OfflineInstance::uniform(2, 1, 1, 2, Some(1), 10, vec![t("uuuuuuuuuu")]);
        let mut s = Schedule::empty(&inst);
        s.action_mut(0, 0).comm = Some(Comm::Prog);
        s.action_mut(0, 1).comm = Some(Comm::Data(0));
        s.action_mut(0, 2).comm = Some(Comm::Data(1)); // too early
        s.action_mut(0, 3).compute = Some(0);
        s.action_mut(0, 4).compute = Some(0);
        s.action_mut(0, 5).compute = Some(1);
        s.action_mut(0, 6).compute = Some(1);
        let e = s.validate(&inst).unwrap_err();
        assert!(e.message.contains("prefetched"), "{e}");
    }

    #[test]
    fn completion_time_of_idle_is_zero() {
        let inst = simple_instance();
        assert_eq!(Schedule::empty(&inst).completion_time(), 0);
    }
}
