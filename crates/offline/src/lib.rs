//! # vg-offline — the off-line scheduling problem (Section 4)
//!
//! When availability traces are known in advance, minimizing the time to
//! complete one iteration is NP-hard (Theorem 1, by reduction from 3-SAT)
//! and inapproximable within 8/7 − ε (Proposition 1), yet polynomial when
//! the master bandwidth is unbounded (Proposition 2: greedy MCT is optimal).
//! This crate makes all three results executable:
//!
//! * [`instance`] — off-line instances and the `DOWN`-splitting transform;
//! * [`schedule`] — explicit schedules plus a validator for every model rule;
//! * [`mct`] — optimal greedy MCT for `ncom = ∞`, with a brute-force
//!   cross-check of Proposition 2;
//! * [`bnb`] — exact branch-and-bound for bounded `ncom` (small instances);
//! * [`sat`] — CNF + DPLL solver substrate;
//! * [`reduction`] — the executable Theorem-1 reduction, including the
//!   paper's Figure-1 gadget.

// Small fixed-dimension (3x3) matrix code indexes several arrays with one
// loop variable; iterator-zip rewrites obscure the math, so the pedantic
// range-loop lint is disabled crate-wide.
#![allow(clippy::needless_range_loop)]

pub mod bnb;
pub mod instance;
pub mod mct;
pub mod reduction;
pub mod sat;
pub mod schedule;

pub use instance::OfflineInstance;
pub use schedule::{Comm, Schedule, ScheduleError, SlotAction};
