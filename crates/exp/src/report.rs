//! Terminal-friendly report rendering: aligned tables, CSV, ASCII plots.

use crate::campaign::HeuristicSummary;

/// Renders an aligned text table. `headers.len()` must match every row.
#[must_use]
pub fn text_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let pad = widths[i] - cell.chars().count();
            // Right-align numbers-ish cells, left-align the first column.
            if i == 0 {
                out.push_str(cell);
                out.push_str(&" ".repeat(pad));
            } else {
                out.push_str(&" ".repeat(pad));
                out.push_str(cell);
            }
        }
        out.push('\n');
    };
    render_row(
        &headers.iter().map(|s| (*s).to_string()).collect::<Vec<_>>(),
        &mut out,
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        render_row(row, &mut out);
    }
    out
}

/// Renders the Table-2-style summary (heuristic, average dfb ± 95% CI half
/// width, wins). When any heuristic hit the slot cap on scored instances, a
/// `#capped` column is appended (those dfb entries are lower bounds).
#[must_use]
pub fn summary_table(summaries: &[HeuristicSummary]) -> String {
    let any_capped = summaries.iter().any(|s| s.capped_runs > 0);
    let rows: Vec<Vec<String>> = summaries
        .iter()
        .map(|s| {
            let mut row = vec![
                s.kind.name().to_string(),
                format!("{:.2}", s.dfb.mean()),
                format!("±{:.2}", s.dfb.confidence_interval(0.95).half_width()),
                format!("{}", s.wins),
            ];
            if any_capped {
                row.push(format!("{}", s.capped_runs));
            }
            row
        })
        .collect();
    let mut headers = vec!["Algorithm", "Average dfb", "95% CI", "#wins"];
    if any_capped {
        headers.push("#capped");
    }
    text_table(&headers, &rows)
}

/// CSV rendering with a header row.
#[must_use]
pub fn csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&headers.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Plots series as ASCII (x = category index, y = value). Each series gets a
/// distinct glyph; collisions show the later glyph.
#[must_use]
pub fn ascii_plot(
    x_labels: &[String],
    series: &[(&str, Vec<f64>)],
    width: usize,
    height: usize,
) -> String {
    assert!(height >= 2 && width >= 8);
    const GLYPHS: [char; 8] = ['o', '*', '+', 'x', '#', '@', '%', '&'];
    let y_max = series
        .iter()
        .flat_map(|(_, ys)| ys.iter().copied())
        .fold(f64::NEG_INFINITY, f64::max)
        .max(1e-9);
    let y_min = 0.0;
    let n = x_labels.len().max(2);
    let mut grid = vec![vec![' '; width]; height];
    for (s, (_, ys)) in series.iter().enumerate() {
        let glyph = GLYPHS[s % GLYPHS.len()];
        for (i, &y) in ys.iter().enumerate() {
            let gx = i * (width - 1) / (n - 1);
            let frac = ((y - y_min) / (y_max - y_min)).clamp(0.0, 1.0);
            let gy = height - 1 - (frac * (height - 1) as f64).round() as usize;
            grid[gy][gx] = glyph;
        }
    }
    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let y_val = y_max - (y_max - y_min) * r as f64 / (height - 1) as f64;
        out.push_str(&format!("{y_val:>8.1} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>8} +{}\n", "", "-".repeat(width)));
    // X labels, spread across the width.
    let mut label_line = vec![' '; width + 10];
    for (i, lab) in x_labels.iter().enumerate() {
        let gx = 10 + i * (width - 1) / (n - 1);
        for (k, ch) in lab.chars().enumerate() {
            if gx + k < label_line.len() {
                label_line[gx + k] = ch;
            }
        }
    }
    out.extend(label_line.iter());
    out.push('\n');
    // Legend.
    for (s, (name, _)) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", GLYPHS[s % GLYPHS.len()], name));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vg_core::HeuristicKind;
    use vg_des::stats::OnlineStats;

    #[test]
    fn text_table_aligns() {
        let t = text_table(
            &["Name", "Value"],
            &[
                vec!["short".into(), "1".into()],
                vec!["a-much-longer-name".into(), "123".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Name"));
        assert!(lines[3].contains("123"));
        // All rows same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = text_table(&["A", "B"], &[vec!["x".into()]]);
    }

    #[test]
    fn summary_table_contains_names() {
        let mut dfb = OnlineStats::new();
        dfb.push(4.5);
        let s = summary_table(&[HeuristicSummary {
            kind: HeuristicKind::EmctStar,
            dfb,
            wins: 12,
            capped_runs: 0,
        }]);
        assert!(s.contains("EMCT*"));
        assert!(s.contains("4.50"));
        assert!(s.contains("12"));
        assert!(s.contains("95% CI"));
        assert!(s.contains('±'));
        assert!(!s.contains("#capped"), "column hidden when nothing capped");
    }

    #[test]
    fn summary_table_shows_capped_column_when_relevant() {
        let mut dfb = OnlineStats::new();
        dfb.push(4.5);
        let s = summary_table(&[HeuristicSummary {
            kind: HeuristicKind::Mct,
            dfb,
            wins: 3,
            capped_runs: 2,
        }]);
        assert!(s.contains("#capped"));
        assert!(s.contains('2'));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let out = csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(out, "a,b\n1,2\n");
    }

    #[test]
    fn ascii_plot_renders_points_and_legend() {
        let plot = ascii_plot(
            &["1".into(), "2".into(), "3".into()],
            &[("mct", vec![1.0, 2.0, 3.0]), ("emct", vec![3.0, 2.0, 1.0])],
            40,
            10,
        );
        assert!(plot.contains('o'));
        assert!(plot.contains('*'));
        assert!(plot.contains("mct"));
        assert!(plot.contains("emct"));
    }
}
