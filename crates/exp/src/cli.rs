//! Minimal flag parsing shared by the experiment binaries.
//!
//! Hand-rolled on purpose: the binaries need five flags, not a dependency.
//! Supported forms: `--flag value` and `--flag` (boolean).

use vg_des::par::ParallelismConfig;

/// Common experiment options parsed from `std::env::args`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpArgs {
    /// Scenarios per grid cell.
    pub scenarios: usize,
    /// Trials per scenario.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
    /// Worker threads (`None` = auto).
    pub threads: Option<usize>,
    /// Paper-scale run (247 scenarios × 10 trials).
    pub paper_scale: bool,
    /// Quick run for smoke tests (2 × 1).
    pub quick: bool,
    /// Also emit CSV to stdout after the table.
    pub csv: bool,
}

impl Default for ExpArgs {
    fn default() -> Self {
        Self {
            scenarios: 8,
            trials: 2,
            seed: 42,
            threads: None,
            paper_scale: false,
            quick: false,
            csv: false,
        }
    }
}

/// Parse error with the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "argument error: {}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl ExpArgs {
    /// Parses from an iterator of tokens (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, ArgError> {
        let mut out = Self::default();
        let mut it = args.into_iter();
        let next_value = |name: &str, it: &mut dyn Iterator<Item = String>| {
            it.next()
                .ok_or_else(|| ArgError(format!("{name} needs a value")))
        };
        while let Some(tok) = it.next() {
            match tok.as_str() {
                "--scenarios" => {
                    out.scenarios = next_value("--scenarios", &mut it)?
                        .parse()
                        .map_err(|_| ArgError("--scenarios expects an integer".into()))?;
                }
                "--trials" => {
                    out.trials = next_value("--trials", &mut it)?
                        .parse()
                        .map_err(|_| ArgError("--trials expects an integer".into()))?;
                }
                "--seed" => {
                    out.seed = next_value("--seed", &mut it)?
                        .parse()
                        .map_err(|_| ArgError("--seed expects an integer".into()))?;
                }
                "--threads" => {
                    out.threads = Some(
                        next_value("--threads", &mut it)?
                            .parse()
                            .map_err(|_| ArgError("--threads expects an integer".into()))?,
                    );
                }
                "--paper-scale" => out.paper_scale = true,
                "--quick" => out.quick = true,
                "--csv" => out.csv = true,
                "--help" | "-h" => {
                    return Err(ArgError(USAGE.trim().to_string()));
                }
                other => return Err(ArgError(format!("unknown flag {other}\n{USAGE}"))),
            }
        }
        if out.paper_scale {
            out.scenarios = 247;
            out.trials = 10;
        } else if out.quick {
            out.scenarios = 2;
            out.trials = 1;
        }
        Ok(out)
    }

    /// Parses the process arguments, exiting with usage on error.
    #[must_use]
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }

    /// The parallelism configuration implied by `--threads`.
    #[must_use]
    pub fn parallelism(&self) -> ParallelismConfig {
        match self.threads {
            Some(n) => ParallelismConfig::fixed(n),
            None => ParallelismConfig::Auto,
        }
    }
}

/// Usage text shared by the binaries.
pub const USAGE: &str = "
Options:
  --scenarios K    random scenarios per grid cell (default 8)
  --trials T       trials per scenario (default 2)
  --seed S         master seed (default 42)
  --threads N      worker threads (default: all cores)
  --paper-scale    247 scenarios x 10 trials (the paper's campaign size)
  --quick          2 scenarios x 1 trial (smoke test)
  --csv            also print CSV after the table
";

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<ExpArgs, ArgError> {
        ExpArgs::parse(tokens.iter().map(|s| (*s).to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a, ExpArgs::default());
    }

    #[test]
    fn explicit_values() {
        let a = parse(&[
            "--scenarios",
            "5",
            "--trials",
            "3",
            "--seed",
            "9",
            "--threads",
            "2",
            "--csv",
        ])
        .unwrap();
        assert_eq!(a.scenarios, 5);
        assert_eq!(a.trials, 3);
        assert_eq!(a.seed, 9);
        assert_eq!(a.threads, Some(2));
        assert!(a.csv);
    }

    #[test]
    fn paper_scale_overrides_counts() {
        let a = parse(&["--scenarios", "3", "--paper-scale"]).unwrap();
        assert_eq!(a.scenarios, 247);
        assert_eq!(a.trials, 10);
    }

    #[test]
    fn quick_overrides_counts() {
        let a = parse(&["--quick"]).unwrap();
        assert_eq!(a.scenarios, 2);
        assert_eq!(a.trials, 1);
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--scenarios"]).is_err());
        assert!(parse(&["--scenarios", "abc"]).is_err());
    }

    #[test]
    fn parallelism_mapping() {
        assert_eq!(parse(&[]).unwrap().parallelism(), ParallelismConfig::Auto);
        assert_eq!(
            parse(&["--threads", "3"]).unwrap().parallelism(),
            ParallelismConfig::fixed(3)
        );
    }
}
