//! # vg-exp — the evaluation campaign of Section 7
//!
//! Regenerates every table and figure of Casanova, Dufossé, Robert & Vivien
//! (IPDPS 2011):
//!
//! | artifact | binary | module |
//! |---|---|---|
//! | Table 1 (parameter grid) | `table1` | [`scenario`] |
//! | Table 2 (dfb + wins, all 17 heuristics) | `table2` | [`campaign`] |
//! | Figure 2 (dfb vs `wmin`) | `figure2` | [`campaign`] |
//! | Table 3 (contention-prone, ×5/×10) | `table3` | [`campaign`] + [`scenario`] |
//! | Figure 1 (Theorem-1 gadget) | `figure1` | `vg_offline::reduction` |
//! | robustness study (Section-8 future work) | `robustness` | [`robustness`] |
//! | moldable + co-scheduling fidelity | `mold_cosched` | [`scenario`] + the multi-app engine |
//!
//! All binaries accept `--scenarios`, `--trials`, `--seed`, `--threads`,
//! `--paper-scale`, `--quick` and `--csv` (see [`cli::USAGE`]). Scaled-down
//! defaults run in minutes on a laptop; `--paper-scale` reproduces the full
//! 247 × 10 campaign.

pub mod campaign;
pub mod cli;
pub mod report;
pub mod robustness;
pub mod scenario;

pub use campaign::{
    run_campaign, run_campaign_reference, run_instance, run_instance_fresh, run_instance_in,
    CampaignConfig, CampaignResult, CellStats, HeuristicSummary, InstanceOutcome,
};
pub use scenario::{make_scenario, Scenario, ScenarioParams};
