//! Experimental-scenario generation (Section 7, Table 1).
//!
//! A scenario fixes the platform and application of one experiment cell:
//! `p = 20` processors whose Markov chains draw their self-loop
//! probabilities uniformly from `[0.90, 0.99]` (exits split evenly), task
//! costs `w_q ~ U[wmin, 10·wmin]`, `T_data = wmin`, `T_prog = 5·wmin`, and
//! 10 iterations of `n` tasks. The grid sweeps `n ∈ {5,10,20,40}`,
//! `ncom ∈ {5,10,20}`, `wmin ∈ 1..=10`. Table 3's contention-prone variants
//! scale both communication times by 5 or 10.

use serde::{Deserialize, Serialize};
use vg_des::rng::SeedPath;
use vg_des::SlotSpan;
use vg_markov::availability::AvailabilityChain;
use vg_markov::OutageChain;
use vg_platform::volatility::{CorrelatedModel, DiurnalSpec};
use vg_platform::{
    AppConfig, CompiledScript, ConfigError, FaultScript, PlatformConfig, ProcessorConfig,
    StartPolicy,
};
use vg_sim::{AppSpec, MoldableParams};

/// Chaos family applied on top of a cell's base availability model.
///
/// `Independent` is the paper's setting (every worker its own chain) and the
/// default; the other variants inject the volatility stack of
/// `vg_platform::volatility` into the campaign runners. Because scripted
/// overlays act *after* base sampling and correlated group draws come from
/// their own seed streams, every family shares the cell's base availability
/// trace under common random numbers — paired chaos-vs-baseline differences
/// measure the chaos alone.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum VolatilitySpec {
    /// Independent per-worker chains (the paper's model; no chaos).
    #[default]
    Independent,
    /// Scripted mass kill: `pct`% of the workers forced `DOWN` at slot
    /// `at` for `lasts` slots (the `kill pct% at T for N` DSL form).
    MassKill {
        /// Percentage of workers hit (0..=100).
        pct: u32,
        /// First affected slot.
        at: u64,
        /// Outage length in slots.
        lasts: u64,
    },
    /// Correlated group bursts: `groups` contiguous racks, each driven by a
    /// shared `Normal ⇄ Outage` chain forcing its members `DOWN`.
    CorrelatedBursts {
        /// Number of contiguous worker groups.
        groups: usize,
        /// Per-slot `Normal → Outage` probability.
        p_fail: f64,
        /// Per-slot `Outage → Normal` probability.
        p_recover: f64,
    },
    /// Diurnal phase: groups cycle through a periodic off-window during
    /// which their `UP` members are demoted to `RECLAIMED`, staggered like
    /// timezones.
    Diurnal {
        /// Number of contiguous worker groups.
        groups: usize,
        /// Cycle length in slots.
        period: u64,
        /// Off-window length at the head of each cycle.
        off_len: u64,
        /// Per-group phase shift in slots.
        stagger: u64,
    },
}

impl VolatilitySpec {
    /// The scripted-overlay half of this spec: a compiled fault script for a
    /// `p`-worker platform, or `None` when the family injects nothing
    /// through the script path. Errors are loud (bad percentage, zero
    /// duration) rather than silently un-chaotic.
    pub fn fault_script(&self, p: usize) -> Result<Option<CompiledScript>, ConfigError> {
        match *self {
            Self::MassKill { pct, at, lasts } => {
                let text = format!("kill {pct}% at {at} for {lasts}");
                let script = FaultScript::parse(&text)
                    .map_err(|e| ConfigError(format!("mass-kill spec: {e}")))?
                    .compile(p)
                    .map_err(|e| ConfigError(format!("mass-kill spec: {e}")))?;
                Ok(Some(script))
            }
            Self::Independent | Self::CorrelatedBursts { .. } | Self::Diurnal { .. } => Ok(None),
        }
    }

    /// The row-source half of this spec: a correlated model for a
    /// `p`-worker platform, or `None` when the family leaves the base
    /// per-worker sampling untouched.
    pub fn correlated_model(&self, p: usize) -> Result<Option<CorrelatedModel>, ConfigError> {
        match *self {
            Self::CorrelatedBursts {
                groups,
                p_fail,
                p_recover,
            } => {
                let outage = OutageChain::new(p_fail, p_recover)
                    .map_err(|e| ConfigError(format!("correlated-burst spec: {e}")))?;
                let model = CorrelatedModel::uniform_groups(p, groups, outage);
                model.validate(p)?;
                Ok(Some(model))
            }
            Self::Diurnal {
                groups,
                period,
                off_len,
                stagger,
            } => {
                let mut model = CorrelatedModel::uniform_groups(p, groups, OutageChain::identity());
                model.diurnal = Some(DiurnalSpec {
                    period,
                    off_len,
                    group_stagger: stagger,
                });
                model.validate(p)?;
                Ok(Some(model))
            }
            Self::Independent | Self::MassKill { .. } => Ok(None),
        }
    }

    /// Short machine-readable family name for reports.
    #[must_use]
    pub fn family(&self) -> &'static str {
        match self {
            Self::Independent => "independent",
            Self::MassKill { .. } => "mass_kill",
            Self::CorrelatedBursts { .. } => "correlated_bursts",
            Self::Diurnal { .. } => "diurnal",
        }
    }
}

/// Parameters of one experiment cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioParams {
    /// Processors (`p`; the paper fixes 20).
    pub p: usize,
    /// Tasks per iteration (`n` in Table 1).
    pub n_tasks: usize,
    /// Master channel bound.
    pub ncom: usize,
    /// Base time unit: fastest-possible task cost.
    pub wmin: SlotSpan,
    /// Multiplier on both communication times (1 = base grid; 5 and 10 are
    /// the Table-3 contention-prone settings).
    pub comm_scale: SlotSpan,
    /// Iterations to complete (the paper fixes 10).
    pub iterations: u64,
    /// Lower bound of the self-loop probability draw.
    pub diag_lo: f64,
    /// Upper bound of the self-loop probability draw.
    pub diag_hi: f64,
    /// Chaos family layered on the base availability model
    /// ([`VolatilitySpec::Independent`] reproduces the paper exactly).
    pub volatility: VolatilitySpec,
}

impl ScenarioParams {
    /// Paper defaults for a given `(n, ncom, wmin)` cell.
    #[must_use]
    pub fn paper(n_tasks: usize, ncom: usize, wmin: SlotSpan) -> Self {
        Self {
            p: 20,
            n_tasks,
            ncom,
            wmin,
            comm_scale: 1,
            iterations: 10,
            diag_lo: 0.90,
            diag_hi: 0.99,
            volatility: VolatilitySpec::Independent,
        }
    }

    /// The same cell under a chaos family — the paired-run twin used by the
    /// `chaos_robustness` study (identical platform and seeds; only the
    /// volatility layer differs).
    #[must_use]
    pub fn with_volatility(self, volatility: VolatilitySpec) -> Self {
        Self { volatility, ..self }
    }

    /// `T_data = comm_scale · wmin`.
    #[must_use]
    pub fn t_data(&self) -> SlotSpan {
        self.comm_scale * self.wmin
    }

    /// `T_prog = 5 · comm_scale · wmin`.
    #[must_use]
    pub fn t_prog(&self) -> SlotSpan {
        5 * self.comm_scale * self.wmin
    }

    /// The full Table-1 grid: `n × ncom × wmin` = 4·3·10 = 120 cells.
    #[must_use]
    pub fn table1_grid() -> Vec<ScenarioParams> {
        let mut grid = Vec::with_capacity(120);
        for &n in &[5usize, 10, 20, 40] {
            for &ncom in &[5usize, 10, 20] {
                for wmin in 1..=10 {
                    grid.push(Self::paper(n, ncom, wmin));
                }
            }
        }
        grid
    }

    /// The Table-3 contention-prone cell: `n = 20`, `ncom = 5`, `wmin = 1`
    /// with communications scaled by `scale` (the paper uses 5 and 10).
    #[must_use]
    pub fn contention_prone(scale: SlotSpan) -> Self {
        Self {
            comm_scale: scale,
            ..Self::paper(20, 5, 1)
        }
    }

    /// The cell's application configuration — shared by every roster below
    /// and by [`make_scenario`].
    #[must_use]
    pub fn app(&self) -> AppConfig {
        AppConfig {
            tasks_per_iteration: self.n_tasks,
            iterations: self.iterations,
            t_prog: self.t_prog(),
            t_data: self.t_data(),
        }
    }

    /// Rigid single-application roster: the historical campaign workload,
    /// bit-identical to the single-application engine path.
    #[must_use]
    pub fn rigid_spec(&self) -> AppSpec {
        AppSpec::rigid(self.app())
    }

    /// The moldable resizing rule of this cell: `n/p` tasks per UP worker,
    /// so a fully-available platform re-picks exactly the configured `n`
    /// and a half-down platform shrinks the iteration proportionally. The
    /// pick is clamped to `[max(1, n/4), 2n]` — the application can shed at
    /// most three quarters of an iteration or grow to twice the configured
    /// size when the platform over-delivers.
    #[must_use]
    pub fn moldable_params(&self) -> MoldableParams {
        MoldableParams {
            tasks_per_up_num: u32::try_from(self.n_tasks).unwrap_or(u32::MAX),
            tasks_per_up_den: u32::try_from(self.p).unwrap_or(u32::MAX).max(1),
            min_tasks: (self.n_tasks / 4).max(1),
            max_tasks: 2 * self.n_tasks,
        }
    }

    /// Moldable single-application roster built from
    /// [`Self::moldable_params`].
    #[must_use]
    pub fn moldable_spec(&self) -> AppSpec {
        AppSpec::moldable(self.app(), self.moldable_params())
    }

    /// Two identical rigid applications co-scheduled on the cell's
    /// platform — the workload of the co-scheduling fidelity study, whose
    /// back-to-back baseline is two consecutive [`Self::rigid_spec`] runs.
    #[must_use]
    pub fn cosched_specs(&self) -> [AppSpec; 2] {
        [self.rigid_spec(), self.rigid_spec()]
    }
}

/// A fully instantiated scenario (sampled platform + application).
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The generating parameters.
    pub params: ScenarioParams,
    /// The sampled platform: chains and speeds.
    pub platform: PlatformConfig,
    /// The application derived from the parameters.
    pub app: AppConfig,
}

/// Samples a scenario. All randomness derives from `seed`, so a scenario is
/// reproducible from `(params, seed)` alone.
#[must_use]
pub fn make_scenario(params: ScenarioParams, seed: SeedPath) -> Scenario {
    let mut rng = seed.rng();
    let processors = (0..params.p)
        .map(|_| {
            let chain = AvailabilityChain::sample_paper(&mut rng, params.diag_lo, params.diag_hi);
            let w = rng.u64_range_inclusive(params.wmin, 10 * params.wmin);
            ProcessorConfig::markov(w, chain, StartPolicy::Up)
        })
        .collect();
    Scenario {
        params,
        platform: PlatformConfig {
            processors,
            ncom: params.ncom,
        },
        app: params.app(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_120_cells() {
        let grid = ScenarioParams::table1_grid();
        assert_eq!(grid.len(), 120);
        assert!(grid.iter().all(|c| c.p == 20 && c.iterations == 10));
        // Spot-check corners.
        assert_eq!((grid[0].n_tasks, grid[0].ncom, grid[0].wmin), (5, 5, 1));
        let last = grid.last().unwrap();
        assert_eq!((last.n_tasks, last.ncom, last.wmin), (40, 20, 10));
    }

    #[test]
    fn communication_times_follow_the_paper() {
        let base = ScenarioParams::paper(20, 5, 3);
        assert_eq!(base.t_data(), 3);
        assert_eq!(base.t_prog(), 15);
        let prone = ScenarioParams::contention_prone(5);
        assert_eq!(prone.t_data(), 5);
        assert_eq!(prone.t_prog(), 25);
        assert_eq!((prone.n_tasks, prone.ncom, prone.wmin), (20, 5, 1));
    }

    #[test]
    fn scenario_is_reproducible() {
        let params = ScenarioParams::paper(10, 5, 2);
        let a = make_scenario(params, SeedPath::root(7).child(1));
        let b = make_scenario(params, SeedPath::root(7).child(1));
        assert_eq!(a.platform, b.platform);
        assert_eq!(a.app, b.app);
        let c = make_scenario(params, SeedPath::root(7).child(2));
        assert_ne!(a.platform, c.platform);
    }

    #[test]
    fn sampled_speeds_in_range() {
        let params = ScenarioParams::paper(5, 5, 4);
        let s = make_scenario(params, SeedPath::root(3));
        assert_eq!(s.platform.p(), 20);
        for pc in &s.platform.processors {
            assert!((4..=40).contains(&pc.spec.w), "w = {}", pc.spec.w);
        }
        assert!(s.platform.validate().is_ok());
        assert!(s.app.validate().is_ok());
    }

    #[test]
    fn moldable_rule_repicks_the_configured_size_at_full_availability() {
        let params = ScenarioParams::paper(40, 5, 1);
        let m = params.moldable_params();
        // All 20 workers UP → exactly the configured n; proportional below;
        // clamped at the floor when the platform collapses.
        assert_eq!(m.pick_m(params.p), 40);
        assert_eq!(m.pick_m(params.p / 2), 20);
        assert_eq!(m.pick_m(0), 10);
        assert_eq!(m.pick_m(3 * params.p), 80);
        let spec = params.moldable_spec();
        assert_eq!(spec.config, params.app());
        assert_eq!(spec.weight, 1);
    }

    #[test]
    fn cosched_roster_is_two_rigid_twins() {
        let params = ScenarioParams::paper(10, 5, 2);
        let specs = params.cosched_specs();
        assert_eq!(specs[0], params.rigid_spec());
        assert_eq!(specs[1], specs[0]);
        assert_eq!(
            specs[0].config,
            make_scenario(params, SeedPath::root(1)).app
        );
    }

    #[test]
    fn sampled_chains_have_paper_diagonals() {
        let params = ScenarioParams::paper(5, 5, 1);
        let s = make_scenario(params, SeedPath::root(9));
        for pc in &s.platform.processors {
            let chain = pc.believed_chain();
            for i in 0..3 {
                assert!((0.90..=0.99).contains(&chain.raw()[i][i]));
            }
        }
    }
}
