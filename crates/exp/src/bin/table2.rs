//! Regenerates **Table 2**: average degradation-from-best and number of
//! wins for all 17 heuristics over the full Table-1 grid.
//!
//! ```text
//! cargo run -p vg-exp --release --bin table2 -- [--scenarios K] [--trials T]
//!                                               [--paper-scale] [--csv]
//! ```
//!
//! Paper reference (296,400 instances): EMCT 4.77 / EMCT* 4.81 / MCT 5.35 /
//! MCT* 5.46 / UD* 7.06 / UD 8.09 / LW* 11.15 / LW 12.74 / Random*w ≈ 28–31 /
//! Random* ≈ 44–48. Expect the same ordering (up to neighbor swaps) at
//! reduced scale; absolute values drift with the instance sample.

use std::time::Instant;
use vg_exp::campaign::{run_campaign, CampaignConfig};
use vg_exp::cli::ExpArgs;
use vg_exp::report::{csv, summary_table};
use vg_exp::scenario::ScenarioParams;

fn main() {
    let args = ExpArgs::from_env();
    let grid = ScenarioParams::table1_grid();
    let cfg = CampaignConfig {
        scenarios_per_cell: args.scenarios,
        trials: args.trials,
        master_seed: args.seed,
        parallelism: args.parallelism(),
        ..CampaignConfig::default()
    };
    let instances = grid.len() * cfg.scenarios_per_cell * cfg.trials as usize;
    eprintln!(
        "table2: {} cells x {} scenarios x {} trials = {} instances x {} heuristics",
        grid.len(),
        cfg.scenarios_per_cell,
        cfg.trials,
        instances,
        cfg.heuristics.len()
    );
    let t0 = Instant::now();
    let result = run_campaign(&grid, &cfg);
    let summaries = result.summarize();
    eprintln!("done in {:.1}s", t0.elapsed().as_secs_f64());
    if result.capped_instances() > 0 || result.degenerate_instances() > 0 {
        eprintln!(
            "excluded from scoring: {} capped instance(s) (no heuristic finished), {} degenerate instance(s) (best makespan 0)",
            result.capped_instances(),
            result.degenerate_instances()
        );
    }

    println!("Table 2: results over all problem instances\n");
    println!("{}", summary_table(&summaries));

    if args.csv {
        let rows: Vec<Vec<String>> = summaries
            .iter()
            .map(|s| {
                vec![
                    s.kind.name().to_string(),
                    format!("{:.4}", s.dfb.mean()),
                    format!("{:.4}", s.dfb.std_dev()),
                    s.wins.to_string(),
                    s.dfb.count().to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            csv(
                &["algorithm", "avg_dfb", "sd_dfb", "wins", "instances"],
                &rows
            )
        );
    }
}
