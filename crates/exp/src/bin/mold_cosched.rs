//! Fidelity study for the application runtime layer: what do **moldable
//! resizing** and **two-application co-scheduling** buy on the paper's
//! volatile platforms?
//!
//! Two paired sub-studies over the Table-1 grid, both under common random
//! numbers — every compared pair of runs sees the byte-identical platform,
//! availability trace and scheduler seed, so differences are attributable
//! to the policy alone:
//!
//! 1. **Moldable vs rigid.** The same application run rigid
//!    ([`ScenarioParams::rigid_spec`]) and moldable
//!    ([`ScenarioParams::moldable_spec`]: `n/p` tasks per UP worker,
//!    clamped to `[max(1, n/4), 2n]`). A moldable iteration that shrinks
//!    completes *less work*, so raw makespan alone would flatter it; the
//!    study therefore pairs the **relative makespan delta** with the
//!    **relative throughput delta** (tasks completed per slot), the
//!    work-rate metric that stays comparable across resizes.
//! 2. **Co-scheduled vs back-to-back.** Two identical rigid applications
//!    run together ([`ScenarioParams::cosched_specs`], equal-split quotas)
//!    versus one after the other on the same trace. Both sides complete
//!    identical work, so the metric is the **relative makespan saving**
//!    `100·(2·solo − cosched)/(2·solo)` — positive when interleaving two
//!    applications hides each other's barrier stalls.
//!
//! A cell's verdict follows the `cap_fidelity` methodology: the paired 95%
//! confidence interval of the per-cell delta, with completion flips (one
//! side finished, the other burned the slot cap) tracked separately.
//!
//! ```text
//! cargo run -p vg-exp --release --bin mold_cosched -- [--quick] [--scenarios K] [--trials T]
//! ```
//!
//! Writes a JSON report to `$MOLD_COSCHED_OUT` (default
//! `target/MOLD_COSCHED.json`) and prints a text summary (see
//! `docs/applications.md` for the committed full-grid run).

use std::fmt::Write as _;
use std::time::Instant;

use vg_core::{HeuristicKind, SharePolicy};
use vg_des::par::par_map;
use vg_des::rng::SeedPath;
use vg_des::stats::OnlineStats;
use vg_exp::cli::ExpArgs;
use vg_exp::report::text_table;
use vg_exp::ScenarioParams;
use vg_exp::{make_scenario, Scenario};
use vg_sim::{SimArena, SimOptions};

/// One (cell, scenario, trial) instance of the paired design.
struct Unit {
    cell: usize,
    scenario: usize,
    trial: u64,
}

/// Per-heuristic paired deltas of one instance; `None` where the pair is
/// unusable (a completion flip or a zero baseline).
struct UnitDeltas {
    cell: usize,
    /// Relative makespan delta (%) moldable − rigid.
    mold_mk: Vec<Option<f64>>,
    /// Relative throughput delta (%) moldable − rigid (tasks per slot).
    mold_tput: Vec<Option<f64>>,
    /// Final iteration size the moldable run landed on.
    mold_final_m: Vec<Option<f64>>,
    mold_flips: u64,
    /// Relative makespan saving (%) of co-scheduling vs back-to-back.
    co_saved: Vec<Option<f64>>,
    co_flips: u64,
}

fn run_unit(
    unit: &Unit,
    cells: &[ScenarioParams],
    heuristics: &[HeuristicKind],
    master_seed: u64,
    sim: SimOptions,
) -> UnitDeltas {
    let root = SeedPath::root(master_seed);
    // The same derivation as the campaign runner, so this study's platforms
    // and traces are the very instances of the Table-2 campaign.
    let scenario_seed = root
        .child_str("scenario")
        .child(unit.cell as u64)
        .child(unit.scenario as u64);
    let params = cells[unit.cell];
    let Scenario { platform, .. } = make_scenario(params, scenario_seed);
    let trace = root
        .child_str("trace")
        .child(unit.cell as u64)
        .child(unit.scenario as u64)
        .child(unit.trial);
    let sched = root
        .child_str("sched")
        .child(unit.cell as u64)
        .child(unit.scenario as u64)
        .child(unit.trial);

    let mut arena = SimArena::new();
    let mut out = UnitDeltas {
        cell: unit.cell,
        mold_mk: Vec::with_capacity(heuristics.len()),
        mold_tput: Vec::with_capacity(heuristics.len()),
        mold_final_m: Vec::with_capacity(heuristics.len()),
        mold_flips: 0,
        co_saved: Vec::with_capacity(heuristics.len()),
        co_flips: 0,
    };
    for (h, kind) in heuristics.iter().enumerate() {
        let h_seed = sched.child(h as u64);
        // Three runs per heuristic, all on the same trace and scheduler
        // seed. The rigid run doubles as the back-to-back baseline: two
        // consecutive solo runs on this platform see the same trace from
        // slot 0, so the baseline total is exactly twice its makespan.
        let rigid = arena
            .run_apps_seeded(
                &platform,
                &[params.rigid_spec()],
                SharePolicy::EqualSplit,
                kind.build(h_seed.rng()),
                trace,
                sim,
            )
            .expect("valid rigid configuration");
        let mold = arena
            .run_apps_seeded(
                &platform,
                &[params.moldable_spec()],
                SharePolicy::EqualSplit,
                kind.build(h_seed.rng()),
                trace,
                sim,
            )
            .expect("valid moldable configuration");
        let co = arena
            .run_apps_seeded(
                &platform,
                &params.cosched_specs(),
                SharePolicy::EqualSplit,
                kind.build(h_seed.rng()),
                trace,
                sim,
            )
            .expect("valid co-scheduled configuration");

        let rigid_done = rigid.combined.finished();
        match (rigid_done, mold.combined.finished()) {
            (true, true) => {
                let mk_r = rigid.combined.makespan_or_cap() as f64;
                let mk_m = mold.combined.makespan_or_cap() as f64;
                let tput_r = rigid.apps[0].tasks_completed as f64 / mk_r;
                let tput_m = mold.apps[0].tasks_completed as f64 / mk_m;
                let ok = mk_r > 0.0 && mk_m > 0.0 && tput_r > 0.0;
                out.mold_mk.push(ok.then(|| 100.0 * (mk_m - mk_r) / mk_r));
                out.mold_tput
                    .push(ok.then(|| 100.0 * (tput_m - tput_r) / tput_r));
                out.mold_final_m.push(Some(mold.apps[0].final_m as f64));
            }
            (true, false) | (false, true) => {
                out.mold_flips += 1;
                out.mold_mk.push(None);
                out.mold_tput.push(None);
                out.mold_final_m.push(None);
            }
            (false, false) => {
                out.mold_mk.push(None);
                out.mold_tput.push(None);
                out.mold_final_m.push(None);
            }
        }
        match (rigid_done, co.combined.finished()) {
            (true, true) => {
                let b2b = 2.0 * rigid.combined.makespan_or_cap() as f64;
                let mk_co = co.combined.makespan_or_cap() as f64;
                out.co_saved
                    .push((b2b > 0.0).then(|| 100.0 * (b2b - mk_co) / b2b));
            }
            (true, false) | (false, true) => {
                out.co_flips += 1;
                out.co_saved.push(None);
            }
            (false, false) => out.co_saved.push(None),
        }
    }
    out
}

/// Aggregated verdicts of one grid cell.
struct CellVerdict {
    params: ScenarioParams,
    mold_mk: OnlineStats,
    mold_tput: OnlineStats,
    mold_final_m: OnlineStats,
    mold_flips: u64,
    co_saved: OnlineStats,
    co_flips: u64,
    /// Moldable's throughput CI is strictly positive and no run flipped.
    mold_tput_wins: bool,
    /// Co-scheduling's saving CI is strictly positive and no run flipped.
    cosched_wins: bool,
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(!s.contains('"') && !s.contains('\\'), "needs escaping: {s}");
    s
}

fn main() {
    let args = ExpArgs::from_env();
    let cells = if args.quick {
        vec![ScenarioParams::paper(20, 5, 1)]
    } else {
        ScenarioParams::table1_grid()
    };
    let heuristics = HeuristicKind::ALL.to_vec();
    let nh = heuristics.len();
    println!(
        "mold_cosched: {} cells x {} scenarios x {} trials, {} heuristics, \
         rigid vs moldable vs 2-app co-schedule ({} simulations total)",
        cells.len(),
        args.scenarios,
        args.trials,
        nh,
        cells.len() * args.scenarios * args.trials as usize * nh * 3,
    );

    let mut units = Vec::with_capacity(cells.len() * args.scenarios * args.trials as usize);
    for cell in 0..cells.len() {
        for scenario in 0..args.scenarios {
            for trial in 0..args.trials {
                units.push(Unit {
                    cell,
                    scenario,
                    trial,
                });
            }
        }
    }

    let t0 = Instant::now();
    let sim = SimOptions::default();
    let deltas: Vec<UnitDeltas> = par_map(&units, args.parallelism(), |unit| {
        run_unit(unit, &cells, &heuristics, args.seed, sim)
    });
    let elapsed = t0.elapsed().as_secs_f64();

    // Fold per-instance deltas into per-cell and per-heuristic statistics.
    let mut cell_mold_mk = vec![OnlineStats::new(); cells.len()];
    let mut cell_mold_tput = vec![OnlineStats::new(); cells.len()];
    let mut cell_mold_final_m = vec![OnlineStats::new(); cells.len()];
    let mut cell_mold_flips = vec![0u64; cells.len()];
    let mut cell_co_saved = vec![OnlineStats::new(); cells.len()];
    let mut cell_co_flips = vec![0u64; cells.len()];
    let mut h_mold_tput = vec![OnlineStats::new(); nh];
    let mut h_co_saved = vec![OnlineStats::new(); nh];
    for d in &deltas {
        cell_mold_flips[d.cell] += d.mold_flips;
        cell_co_flips[d.cell] += d.co_flips;
        for h in 0..nh {
            if let Some(x) = d.mold_mk[h] {
                cell_mold_mk[d.cell].push(x);
            }
            if let Some(x) = d.mold_tput[h] {
                cell_mold_tput[d.cell].push(x);
                h_mold_tput[h].push(x);
            }
            if let Some(x) = d.mold_final_m[h] {
                cell_mold_final_m[d.cell].push(x);
            }
            if let Some(x) = d.co_saved[h] {
                cell_co_saved[d.cell].push(x);
                h_co_saved[h].push(x);
            }
        }
    }

    let verdicts: Vec<CellVerdict> = cells
        .iter()
        .enumerate()
        .map(|(i, &params)| {
            let tput_ci = cell_mold_tput[i].confidence_interval(0.95);
            let saved_ci = cell_co_saved[i].confidence_interval(0.95);
            CellVerdict {
                params,
                mold_mk: cell_mold_mk[i],
                mold_tput: cell_mold_tput[i],
                mold_final_m: cell_mold_final_m[i],
                mold_flips: cell_mold_flips[i],
                co_saved: cell_co_saved[i],
                co_flips: cell_co_flips[i],
                mold_tput_wins: cell_mold_flips[i] == 0 && tput_ci.lo > 0.0,
                cosched_wins: cell_co_flips[i] == 0 && saved_ci.lo > 0.0,
            }
        })
        .collect();

    let mold_wins = verdicts.iter().filter(|v| v.mold_tput_wins).count();
    let co_wins = verdicts.iter().filter(|v| v.cosched_wins).count();
    println!(
        "\nmoldable throughput wins in {mold_wins}/{} cells, co-scheduling saves \
         makespan in {co_wins}/{} cells (paired 95% CI strictly positive, no \
         completion flips)",
        verdicts.len(),
        verdicts.len()
    );

    // The cells where each policy moves the needle the most.
    let mut by_tput: Vec<&CellVerdict> = verdicts.iter().collect();
    by_tput.sort_by(|a, b| {
        b.mold_tput
            .mean()
            .abs()
            .total_cmp(&a.mold_tput.mean().abs())
    });
    let rows: Vec<Vec<String>> = by_tput
        .iter()
        .take(10)
        .map(|v| {
            let tput_ci = v.mold_tput.confidence_interval(0.95);
            vec![
                format!("{}", v.params.n_tasks),
                format!("{}", v.params.ncom),
                format!("{}", v.params.wmin),
                format!("{:+.3}", v.mold_mk.mean()),
                format!("{:+.3}", v.mold_tput.mean()),
                format!("[{:+.3}, {:+.3}]", tput_ci.lo, tput_ci.hi),
                format!("{:.1}", v.mold_final_m.mean()),
                format!("{}", v.mold_flips),
            ]
        })
        .collect();
    println!(
        "\nmoldable vs rigid, largest |throughput delta| first:\n{}",
        text_table(
            &[
                "n",
                "ncom",
                "wmin",
                "mk Δ%",
                "tput Δ%",
                "tput 95% CI",
                "final m",
                "flips"
            ],
            &rows
        )
    );

    let mut by_saved: Vec<&CellVerdict> = verdicts.iter().collect();
    by_saved.sort_by(|a, b| b.co_saved.mean().total_cmp(&a.co_saved.mean()));
    let rows: Vec<Vec<String>> = by_saved
        .iter()
        .take(10)
        .map(|v| {
            let ci = v.co_saved.confidence_interval(0.95);
            vec![
                format!("{}", v.params.n_tasks),
                format!("{}", v.params.ncom),
                format!("{}", v.params.wmin),
                format!("{:+.3}", v.co_saved.mean()),
                format!("[{:+.3}, {:+.3}]", ci.lo, ci.hi),
                format!("{}", v.co_flips),
            ]
        })
        .collect();
    println!(
        "co-scheduled vs back-to-back, largest saving first:\n{}",
        text_table(&["n", "ncom", "wmin", "saved %", "95% CI", "flips"], &rows)
    );

    let rows: Vec<Vec<String>> = heuristics
        .iter()
        .enumerate()
        .map(|(h, kind)| {
            let t_ci = h_mold_tput[h].confidence_interval(0.95);
            let s_ci = h_co_saved[h].confidence_interval(0.95);
            vec![
                kind.name().to_string(),
                format!("{}", h_mold_tput[h].count()),
                format!("{:+.4}", h_mold_tput[h].mean()),
                format!("[{:+.4}, {:+.4}]", t_ci.lo, t_ci.hi),
                format!("{:+.4}", h_co_saved[h].mean()),
                format!("[{:+.4}, {:+.4}]", s_ci.lo, s_ci.hi),
            ]
        })
        .collect();
    println!(
        "per-heuristic deltas:\n{}",
        text_table(
            &[
                "Algorithm",
                "pairs",
                "mold tput Δ%",
                "95% CI",
                "cosched saved %",
                "95% CI"
            ],
            &rows
        )
    );
    eprintln!("done in {elapsed:.1}s");

    // JSON report artifact, shaped like CAP_FIDELITY.json.
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"study\": \"mold_cosched\",");
    let _ = writeln!(
        json,
        "  \"config\": {{\"scenarios\": {}, \"trials\": {}, \"seed\": {}, \"quick\": {}}},",
        args.scenarios, args.trials, args.seed, args.quick
    );
    let _ = writeln!(
        json,
        "  \"cells_total\": {}, \"cells_mold_tput_wins\": {mold_wins}, \
         \"cells_cosched_wins\": {co_wins},",
        verdicts.len()
    );
    let _ = writeln!(json, "  \"cells\": [");
    for (i, v) in verdicts.iter().enumerate() {
        let tput_ci = v.mold_tput.confidence_interval(0.95);
        let saved_ci = v.co_saved.confidence_interval(0.95);
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"ncom\": {}, \"wmin\": {}, \"pairs\": {}, \
             \"mold_mk_delta_pct_mean\": {:.6}, \"mold_tput_delta_pct_mean\": {:.6}, \
             \"mold_tput_ci95_lo\": {:.6}, \"mold_tput_ci95_hi\": {:.6}, \
             \"mold_final_m_mean\": {:.3}, \"mold_flips\": {}, \"mold_tput_wins\": {}, \
             \"cosched_saved_pct_mean\": {:.6}, \"cosched_ci95_lo\": {:.6}, \
             \"cosched_ci95_hi\": {:.6}, \"cosched_flips\": {}, \"cosched_wins\": {}}}{}",
            v.params.n_tasks,
            v.params.ncom,
            v.params.wmin,
            v.mold_tput.count(),
            v.mold_mk.mean(),
            v.mold_tput.mean(),
            tput_ci.lo,
            tput_ci.hi,
            v.mold_final_m.mean(),
            v.mold_flips,
            v.mold_tput_wins,
            v.co_saved.mean(),
            saved_ci.lo,
            saved_ci.hi,
            v.co_flips,
            v.cosched_wins,
            if i + 1 < verdicts.len() { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"per_heuristic\": [");
    for (h, kind) in heuristics.iter().enumerate() {
        let t_ci = h_mold_tput[h].confidence_interval(0.95);
        let s_ci = h_co_saved[h].confidence_interval(0.95);
        let _ = writeln!(
            json,
            "    {{\"heuristic\": \"{}\", \"pairs\": {}, \
             \"mold_tput_delta_pct_mean\": {:.6}, \"mold_tput_ci95_lo\": {:.6}, \
             \"mold_tput_ci95_hi\": {:.6}, \"cosched_saved_pct_mean\": {:.6}, \
             \"cosched_ci95_lo\": {:.6}, \"cosched_ci95_hi\": {:.6}}}{}",
            json_escape_free(kind.name()),
            h_mold_tput[h].count(),
            h_mold_tput[h].mean(),
            t_ci.lo,
            t_ci.hi,
            h_co_saved[h].mean(),
            s_ci.lo,
            s_ci.hi,
            if h + 1 < nh { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    let out =
        std::env::var("MOLD_COSCHED_OUT").unwrap_or_else(|_| "target/MOLD_COSCHED.json".into());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&out, &json).expect("write fidelity report");
    println!("report written to {out}");

    if args.csv {
        println!(
            "n,ncom,wmin,pairs,mold_mk_delta_pct_mean,mold_tput_delta_pct_mean,\
             mold_tput_ci95_lo,mold_tput_ci95_hi,mold_final_m_mean,mold_flips,\
             cosched_saved_pct_mean,cosched_ci95_lo,cosched_ci95_hi,cosched_flips"
        );
        for v in &verdicts {
            let tput_ci = v.mold_tput.confidence_interval(0.95);
            let saved_ci = v.co_saved.confidence_interval(0.95);
            println!(
                "{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.3},{},{:.6},{:.6},{:.6},{}",
                v.params.n_tasks,
                v.params.ncom,
                v.params.wmin,
                v.mold_tput.count(),
                v.mold_mk.mean(),
                v.mold_tput.mean(),
                tput_ci.lo,
                tput_ci.hi,
                v.mold_final_m.mean(),
                v.mold_flips,
                v.co_saved.mean(),
                saved_ci.lo,
                saved_ci.hi,
                v.co_flips
            );
        }
    }
}
