//! Regenerates **Figure 1**: the NP-completeness gadget of Theorem 1, built
//! from the paper's 6-clause, 4-variable formula — and *verifies* it: DPLL
//! finds a satisfying assignment, the forward construction materializes a
//! schedule, and the validator certifies it feasible within `N = m(n+1)`.
//! As an appendix it replays the Section-4 MCT counter-example with the
//! exact branch-and-bound solver.
//!
//! ```text
//! cargo run -p vg-exp --release --bin figure1
//! ```

use vg_offline::bnb;
use vg_offline::mct;
use vg_offline::reduction::{figure1_formula, reduce, render_figure, schedule_from_assignment};
use vg_offline::sat::dpll;
use vg_offline::OfflineInstance;
use vg_platform::Trace;

fn main() {
    let cnf = figure1_formula();
    let inst = reduce(&cnf);
    println!("Figure 1: reduction gadget for\n  {cnf}\n");
    println!(
        "instance: p = {}, m = {}, T_prog = {}, T_data = {}, ncom = 1, N = {}\n",
        inst.p(),
        inst.m,
        inst.t_prog,
        inst.t_data,
        inst.horizon
    );
    println!("{}", render_figure(&cnf, &inst));

    match dpll(&cnf) {
        Some(assignment) => {
            let pretty: Vec<String> = assignment
                .iter()
                .enumerate()
                .map(|(i, &v)| format!("x{} = {}", i + 1, v))
                .collect();
            println!("DPLL: satisfiable with {}", pretty.join(", "));
            let schedule =
                schedule_from_assignment(&cnf, &assignment).expect("assignment satisfies");
            let completion = schedule
                .validate(&inst)
                .expect("Theorem-1 forward construction is feasible");
            println!(
                "constructed schedule validates; completes at slot {completion} <= N = {}\n",
                inst.horizon
            );
        }
        None => println!("DPLL: unsatisfiable — the instance is infeasible within N\n"),
    }

    // Appendix: the Section-4 example showing MCT is not optimal when
    // ncom is bounded.
    println!("Appendix: Section-4 MCT counter-example (ncom = 1)");
    let inst = OfflineInstance::uniform(
        2,
        2,
        2,
        2,
        Some(1),
        9,
        vec![
            Trace::parse("uuuuuurrr").unwrap(),
            Trace::parse("ruuuuuuuu").unwrap(),
        ],
    );
    let optimal = bnb::min_makespan(&inst, 10_000_000)
        .expect("instance is tiny")
        .expect("feasible");
    println!("  exact optimum (branch-and-bound): {optimal} slots");

    let mut relaxed = inst.clone();
    relaxed.ncom = None;
    let mct = mct::mct_infinite(&relaxed).expect("feasible without the bound");
    println!(
        "  MCT pretending ncom = inf: {} slots on assignment {:?} — but that schedule
  violates ncom = 1; the paper's point: greedy MCT commits P1 immediately
  and cannot reach the optimum {optimal} under the bandwidth bound.",
        mct.makespan, mct.assignment
    );
}
