//! Model-misspecification study (the paper's Section-8 "next step"):
//! true availability is a heavy-tailed semi-Markov process; the scheduler's
//! Markov beliefs are fitted from training traces. Compares the greedy
//! heuristics' dfb under the Markov truth (paper setting) and under the
//! semi-Markov truth, at matched time scales.
//!
//! ```text
//! cargo run -p vg-exp --release --bin robustness -- [--scenarios K] [--trials T]
//! ```

use std::time::Instant;
use vg_core::HeuristicKind;
use vg_des::rng::SeedPath;
use vg_exp::campaign::{run_instance_fresh, CampaignConfig, CellStats, InstanceOutcome};
use vg_exp::cli::ExpArgs;
use vg_exp::report::{summary_table, text_table};
use vg_exp::robustness::{expected_up_occupancy, make_robustness_scenario, RobustnessParams};
use vg_exp::scenario::{make_scenario, ScenarioParams};
use vg_exp::HeuristicSummary;

/// Folds instances through the campaign's shared scoring routine, so capped
/// and degenerate instances are excluded here exactly as in Table 2 (a
/// burned slot cap is a lower bound, never a makespan or a win).
fn summarize(
    label: &str,
    outcomes: &[InstanceOutcome],
    kinds: &[HeuristicKind],
) -> Vec<HeuristicSummary> {
    let mut stats = CellStats::new(kinds.len());
    for outcome in outcomes {
        stats.absorb(outcome);
    }
    let mut out: Vec<HeuristicSummary> = kinds
        .iter()
        .enumerate()
        .map(|(h, &kind)| HeuristicSummary {
            kind,
            dfb: stats.dfb[h],
            wins: stats.wins[h],
            capped_runs: stats.capped_runs[h],
        })
        .collect();
    out.sort_by(|a, b| a.dfb.mean().total_cmp(&b.dfb.mean()));
    println!("{label}\n");
    if stats.capped_instances > 0 || stats.degenerate_instances > 0 {
        println!(
            "(excluded from scoring: {} capped, {} degenerate instance(s))\n",
            stats.capped_instances, stats.degenerate_instances
        );
    }
    println!("{}", summary_table(&out));
    out
}

fn main() {
    let args = ExpArgs::from_env();
    let kinds = HeuristicKind::GREEDY.to_vec();
    let rp = RobustnessParams::default();
    let params = ScenarioParams::paper(20, 5, 5);
    let cfg = CampaignConfig::default();
    let scenarios = args.scenarios.max(4);

    println!(
        "robustness: true availability semi-Markov (Weibull shape {}, mean UP {} slots, UP occupancy {:.2})",
        rp.up_shape,
        rp.up_mean,
        expected_up_occupancy(&rp)
    );
    println!(
        "scheduler belief: Markov chain fitted on {} training slots\n",
        rp.training_slots
    );

    let t0 = Instant::now();
    let root = SeedPath::root(args.seed);

    // Arm A: the paper's setting (Markov truth, exact belief).
    let mut markov_outcomes = Vec::new();
    for s_idx in 0..scenarios {
        let scenario = make_scenario(params, root.child_str("mk-scn").child(s_idx as u64));
        for trial in 0..args.trials {
            markov_outcomes.push(run_instance_fresh(
                &scenario, &kinds, args.seed, 0, s_idx, trial, cfg.sim,
            ));
        }
    }
    let markov_summaries = summarize(
        "Arm A — Markov truth (paper setting)",
        &markov_outcomes,
        &kinds,
    );

    // Arm B: semi-Markov truth, fitted belief.
    let mut semi_outcomes = Vec::new();
    for s_idx in 0..scenarios {
        let scenario =
            make_robustness_scenario(params, &rp, root.child_str("sm-scn").child(s_idx as u64));
        for trial in 0..args.trials {
            semi_outcomes.push(run_instance_fresh(
                &scenario, &kinds, args.seed, 1, s_idx, trial, cfg.sim,
            ));
        }
    }
    let semi_summaries = summarize(
        "Arm B — semi-Markov truth, fitted Markov belief",
        &semi_outcomes,
        &kinds,
    );
    eprintln!("done in {:.1}s", t0.elapsed().as_secs_f64());

    // Head-to-head: how much of each failure-aware heuristic's edge survives.
    let rows: Vec<Vec<String>> = kinds
        .iter()
        .map(|k| {
            let a = markov_summaries
                .iter()
                .find(|s| s.kind == *k)
                .expect("present");
            let b = semi_summaries
                .iter()
                .find(|s| s.kind == *k)
                .expect("present");
            vec![
                k.name().to_string(),
                format!("{:.2}", a.dfb.mean()),
                format!("{:.2}", b.dfb.mean()),
                format!("{:+.2}", b.dfb.mean() - a.dfb.mean()),
            ]
        })
        .collect();
    println!(
        "{}",
        text_table(
            &["Algorithm", "dfb (Markov)", "dfb (semi-Markov)", "delta"],
            &rows
        )
    );
}
