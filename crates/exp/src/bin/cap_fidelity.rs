//! Fidelity study for [`PlacementBudget::BindCapacity`]: does capping the
//! pool/replica placement rounds at the slot's bindable capacity change
//! *answers*, or only *throughput*?
//!
//! Runs the Table-1 campaign grid twice — once uncapped, once capped — with
//! the **same master seed**, so the two campaigns see byte-identical
//! scenarios and availability traces (common random numbers). The batched
//! pipeline streams outcomes back in input order, so the two
//! `CampaignResult::outcomes` vectors align index-by-index and every capped
//! run can be paired with its uncapped twin.
//!
//! Per (cell, heuristic, instance) pair where both runs completed, the study
//! records the **relative makespan delta** `100·(capped − uncapped)/uncapped`
//! into per-cell paired statistics. A cell is *statistically
//! indistinguishable* when the 95% confidence interval of its paired delta
//! contains zero (and no run flipped between completing and burning the slot
//! cap). Only such cells are candidates for making the cap the default;
//! divergent cells are documented with their deltas in the report (see
//! `docs/placement_budget.md`).
//!
//! ```text
//! cargo run -p vg-exp --release --bin cap_fidelity -- [--quick] [--scenarios K] [--trials T]
//! ```
//!
//! Writes a JSON report to `$CAP_FIDELITY_OUT` (default
//! `target/CAP_FIDELITY.json`) and prints a text summary.

use std::fmt::Write as _;
use std::time::Instant;

use vg_des::stats::OnlineStats;
use vg_exp::cli::ExpArgs;
use vg_exp::report::text_table;
use vg_exp::{run_campaign, CampaignConfig, CampaignResult, ScenarioParams};
use vg_sim::{PlacementBudget, SimOptions};

/// Paired per-cell aggregates over the campaign grid.
struct CellDelta {
    params: ScenarioParams,
    /// Relative makespan delta (%) over pairs where both runs completed.
    mk_delta: OnlineStats,
    /// Mean dfb delta in percentage points (capped − uncapped), averaged
    /// over heuristics.
    dfb_delta_pp: f64,
    /// Pairs where exactly one of the two runs burned the slot cap.
    completion_flips: u64,
    /// Verdict: paired 95% CI contains 0 and no completion flips.
    indistinguishable: bool,
}

fn campaign(args: &ExpArgs, cells: &[ScenarioParams], budget: PlacementBudget) -> CampaignResult {
    let cfg = CampaignConfig {
        scenarios_per_cell: args.scenarios,
        trials: args.trials,
        master_seed: args.seed,
        parallelism: args.parallelism(),
        sim: SimOptions {
            placement_budget: budget,
            ..SimOptions::default()
        },
        keep_outcomes: true,
        ..CampaignConfig::default()
    };
    run_campaign(cells, &cfg)
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(!s.contains('"') && !s.contains('\\'), "needs escaping: {s}");
    s
}

fn main() {
    let args = ExpArgs::from_env();
    // The CI smoke run (`--quick`) exercises one small contention-free cell;
    // the real study sweeps the full 120-cell Table-1 grid.
    let cells = if args.quick {
        vec![ScenarioParams::paper(20, 5, 1)]
    } else {
        ScenarioParams::table1_grid()
    };
    let runs_per_budget = cells.len() * args.scenarios * args.trials as usize * 17;
    println!(
        "cap_fidelity: {} cells x {} scenarios x {} trials, 17 heuristics, capped vs uncapped \
         ({} simulations total)",
        cells.len(),
        args.scenarios,
        args.trials,
        2 * runs_per_budget,
    );

    let t0 = Instant::now();
    let uncapped = campaign(&args, &cells, PlacementBudget::Uncapped);
    let capped = campaign(&args, &cells, PlacementBudget::BindCapacity);
    let elapsed = t0.elapsed().as_secs_f64();

    let unc = uncapped.outcomes.as_ref().expect("keep_outcomes set");
    let cap = capped.outcomes.as_ref().expect("keep_outcomes set");
    assert_eq!(
        unc.len(),
        cap.len(),
        "campaign shapes must match for pairing"
    );

    // Pair the aligned outcome streams into per-cell delta statistics.
    let nh = uncapped.heuristics.len();
    let mut mk_delta: Vec<OnlineStats> = vec![OnlineStats::new(); cells.len()];
    let mut per_heuristic: Vec<OnlineStats> = vec![OnlineStats::new(); nh];
    let mut flips: Vec<u64> = vec![0; cells.len()];
    for (u, c) in unc.iter().zip(cap) {
        assert_eq!(u.cell, c.cell, "outcome streams misaligned");
        for (h, stats) in per_heuristic.iter_mut().enumerate() {
            match (u.completed[h], c.completed[h]) {
                (true, true) => {
                    if u.makespans[h] > 0 {
                        let delta = 100.0 * (c.makespans[h] as f64 - u.makespans[h] as f64)
                            / u.makespans[h] as f64;
                        mk_delta[u.cell].push(delta);
                        stats.push(delta);
                    }
                }
                (true, false) | (false, true) => flips[u.cell] += 1,
                (false, false) => {}
            }
        }
    }

    let deltas: Vec<CellDelta> = cells
        .iter()
        .enumerate()
        .map(|(i, &params)| {
            let dfb_unc: f64 = uncapped.cell_stats[i]
                .dfb
                .iter()
                .map(OnlineStats::mean)
                .sum::<f64>()
                / nh as f64;
            let dfb_cap: f64 = capped.cell_stats[i]
                .dfb
                .iter()
                .map(OnlineStats::mean)
                .sum::<f64>()
                / nh as f64;
            let ci = mk_delta[i].confidence_interval(0.95);
            CellDelta {
                params,
                mk_delta: mk_delta[i],
                dfb_delta_pp: dfb_cap - dfb_unc,
                completion_flips: flips[i],
                indistinguishable: flips[i] == 0 && ci.contains(0.0),
            }
        })
        .collect();

    let indistinguishable = deltas.iter().filter(|d| d.indistinguishable).count();
    println!(
        "\n{indistinguishable}/{} cells statistically indistinguishable \
         (paired 95% CI of the relative makespan delta contains 0, no completion flips)",
        deltas.len()
    );

    // The cells where the cap changes answers the most, by |mean delta|.
    let mut ranked: Vec<&CellDelta> = deltas.iter().filter(|d| !d.indistinguishable).collect();
    ranked.sort_by(|a, b| b.mk_delta.mean().abs().total_cmp(&a.mk_delta.mean().abs()));
    if !ranked.is_empty() {
        let rows: Vec<Vec<String>> = ranked
            .iter()
            .take(10)
            .map(|d| {
                let ci = d.mk_delta.confidence_interval(0.95);
                vec![
                    format!("{}", d.params.n_tasks),
                    format!("{}", d.params.ncom),
                    format!("{}", d.params.wmin),
                    format!("{:+.3}", d.mk_delta.mean()),
                    format!("[{:+.3}, {:+.3}]", ci.lo, ci.hi),
                    format!("{:+.3}", d.dfb_delta_pp),
                    format!("{}", d.completion_flips),
                ]
            })
            .collect();
        println!(
            "\nmost divergent cells (capped − uncapped):\n{}",
            text_table(
                &["n", "ncom", "wmin", "mk Δ%", "95% CI", "dfb Δpp", "flips"],
                &rows
            )
        );
    }

    let rows: Vec<Vec<String>> = uncapped
        .heuristics
        .iter()
        .zip(&per_heuristic)
        .map(|(kind, stats)| {
            let ci = stats.confidence_interval(0.95);
            vec![
                kind.name().to_string(),
                format!("{}", stats.count()),
                format!("{:+.4}", stats.mean()),
                format!("[{:+.4}, {:+.4}]", ci.lo, ci.hi),
            ]
        })
        .collect();
    println!(
        "per-heuristic relative makespan delta (%):\n{}",
        text_table(&["Algorithm", "pairs", "mean Δ%", "95% CI"], &rows)
    );
    eprintln!("done in {elapsed:.1}s");

    // JSON report artifact.
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"study\": \"cap_fidelity\",");
    let _ = writeln!(
        json,
        "  \"config\": {{\"scenarios\": {}, \"trials\": {}, \"seed\": {}, \"quick\": {}}},",
        args.scenarios, args.trials, args.seed, args.quick
    );
    let _ = writeln!(
        json,
        "  \"cells_total\": {}, \"cells_indistinguishable\": {},",
        deltas.len(),
        indistinguishable
    );
    let _ = writeln!(json, "  \"cells\": [");
    for (i, d) in deltas.iter().enumerate() {
        let ci = d.mk_delta.confidence_interval(0.95);
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"ncom\": {}, \"wmin\": {}, \"pairs\": {}, \
             \"mk_delta_pct_mean\": {:.6}, \"ci95_lo\": {:.6}, \"ci95_hi\": {:.6}, \
             \"dfb_delta_pp\": {:.6}, \"completion_flips\": {}, \"indistinguishable\": {}}}{}",
            d.params.n_tasks,
            d.params.ncom,
            d.params.wmin,
            d.mk_delta.count(),
            d.mk_delta.mean(),
            ci.lo,
            ci.hi,
            d.dfb_delta_pp,
            d.completion_flips,
            d.indistinguishable,
            if i + 1 < deltas.len() { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"per_heuristic\": [");
    for (h, (kind, stats)) in uncapped.heuristics.iter().zip(&per_heuristic).enumerate() {
        let ci = stats.confidence_interval(0.95);
        let _ = writeln!(
            json,
            "    {{\"heuristic\": \"{}\", \"pairs\": {}, \"mk_delta_pct_mean\": {:.6}, \
             \"ci95_lo\": {:.6}, \"ci95_hi\": {:.6}}}{}",
            json_escape_free(kind.name()),
            stats.count(),
            stats.mean(),
            ci.lo,
            ci.hi,
            if h + 1 < nh { "," } else { "" },
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    let out =
        std::env::var("CAP_FIDELITY_OUT").unwrap_or_else(|_| "target/CAP_FIDELITY.json".into());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&out, &json).expect("write fidelity report");
    println!("report written to {out}");

    if args.csv {
        println!("n,ncom,wmin,pairs,mk_delta_pct_mean,ci95_lo,ci95_hi,dfb_delta_pp,completion_flips,indistinguishable");
        for d in &deltas {
            let ci = d.mk_delta.confidence_interval(0.95);
            println!(
                "{},{},{},{},{:.6},{:.6},{:.6},{:.6},{},{}",
                d.params.n_tasks,
                d.params.ncom,
                d.params.wmin,
                d.mk_delta.count(),
                d.mk_delta.mean(),
                ci.lo,
                ci.hi,
                d.dfb_delta_pp,
                d.completion_flips,
                d.indistinguishable
            );
        }
    }
}
