//! Regenerates **Table 3**: the contention-prone experiments. Communication
//! times are scaled ×5 (`T_data = 5·wmin`, `T_prog = 25·wmin`) and ×10 on
//! the `n = 20, ncom = 5, wmin = 1` cell; only the 8 greedy heuristics are
//! compared (the paper's table).
//!
//! ```text
//! cargo run -p vg-exp --release --bin table3 -- [--scenarios K] [--trials T]
//! ```
//!
//! Paper reference — ×5: EMCT* 3.87, MCT* 4.10, UD* 5.23, EMCT 6.13,
//! UD 6.42, MCT 7.70, LW* 8.76, LW 10.11. ×10: UD* 2.76, UD 3.20,
//! EMCT* 3.66, LW* 4.02, MCT* 4.22, LW 4.46, EMCT 8.02, MCT 15.50.
//! The headline shape: starred (contention-aware) variants overtake their
//! plain twins, and UD* tops the ×10 column.

use std::time::Instant;
use vg_core::HeuristicKind;
use vg_exp::campaign::{run_campaign, CampaignConfig};
use vg_exp::cli::ExpArgs;
use vg_exp::report::{csv, summary_table};
use vg_exp::scenario::ScenarioParams;

fn main() {
    let args = ExpArgs::from_env();
    // The paper runs 100 scenarios x 10 trials per scale; our default is
    // smaller unless --paper-scale (which for this table means 100 x 10).
    let scenarios = if args.paper_scale {
        100
    } else {
        args.scenarios.max(4)
    };
    let trials = if args.paper_scale { 10 } else { args.trials };

    for scale in [5u64, 10] {
        let cell = ScenarioParams::contention_prone(scale);
        let cfg = CampaignConfig {
            heuristics: HeuristicKind::GREEDY.to_vec(),
            scenarios_per_cell: scenarios,
            trials,
            master_seed: args.seed,
            parallelism: args.parallelism(),
            ..CampaignConfig::default()
        };
        eprintln!(
            "table3 x{scale}: {} scenarios x {} trials",
            cfg.scenarios_per_cell, cfg.trials
        );
        let t0 = Instant::now();
        let result = run_campaign(std::slice::from_ref(&cell), &cfg);
        let summaries = result.summarize();
        eprintln!("done in {:.1}s", t0.elapsed().as_secs_f64());
        if result.capped_instances() > 0 || result.degenerate_instances() > 0 {
            eprintln!(
                "excluded from scoring: {} capped, {} degenerate instance(s)",
                result.capped_instances(),
                result.degenerate_instances()
            );
        }

        println!("Table 3: communication times x{scale}\n");
        println!("{}", summary_table(&summaries));

        if args.csv {
            let rows: Vec<Vec<String>> = summaries
                .iter()
                .map(|s| {
                    vec![
                        format!("x{scale}"),
                        s.kind.name().to_string(),
                        format!("{:.4}", s.dfb.mean()),
                        s.wins.to_string(),
                    ]
                })
                .collect();
            println!("{}", csv(&["scale", "algorithm", "avg_dfb", "wins"], &rows));
        }
    }
}
