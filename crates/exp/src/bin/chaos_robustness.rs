//! Chaos robustness study: how much do the paper's 17 heuristics degrade
//! when the platform's volatility stops being independent?
//!
//! Reruns the Table-1 campaign grid once per **chaos family** — scripted
//! mass kills, correlated group bursts, diurnal phase — plus the independent
//! baseline, all with the **same master seed**. Scripted overlays force
//! states *after* base sampling and correlated group modulators draw from
//! their own seed streams, so every family sees byte-identical base
//! availability (common random numbers): the paired per-instance makespan
//! delta `100·(chaos − baseline)/baseline` measures the chaos alone, exactly
//! the cap_fidelity pairing methodology.
//!
//! Chaos timescales ride the cell's `wmin` (the paper's base time unit), so
//! a `wmin = 10` cell is hit at the same *phase* of its execution as a
//! `wmin = 1` cell, not at the same absolute slot.
//!
//! ```text
//! cargo run -p vg-exp --release --bin chaos_robustness -- [--quick] [--scenarios K] [--trials T]
//! ```
//!
//! Writes a JSON report to `$CHAOS_ROBUSTNESS_OUT` (default
//! `target/CHAOS_ROBUSTNESS.json`) and prints a text summary.

use std::fmt::Write as _;
use std::time::Instant;

use vg_des::stats::OnlineStats;
use vg_exp::cli::ExpArgs;
use vg_exp::report::text_table;
use vg_exp::scenario::VolatilitySpec;
use vg_exp::{run_campaign, CampaignConfig, CampaignResult, ScenarioParams};
use vg_sim::SimOptions;

/// One chaos family: a name plus the `wmin`-aware spec builder.
struct Family {
    name: &'static str,
    spec: fn(&ScenarioParams) -> VolatilitySpec,
}

/// The studied families. Mass kill hits 30% of the platform mid-execution;
/// bursts take one of four racks down for ~20 slots at a time; the diurnal
/// cycle parks half of each "day" across four staggered timezones.
const FAMILIES: &[Family] = &[
    Family {
        name: "mass_kill",
        spec: |c| VolatilitySpec::MassKill {
            pct: 30,
            at: 50 * c.wmin,
            lasts: 100 * c.wmin,
        },
    },
    Family {
        name: "correlated_bursts",
        spec: |_| VolatilitySpec::CorrelatedBursts {
            groups: 4,
            p_fail: 0.01,
            p_recover: 0.05,
        },
    },
    Family {
        name: "diurnal",
        spec: |c| VolatilitySpec::Diurnal {
            groups: 4,
            period: 400 * c.wmin,
            off_len: 120 * c.wmin,
            stagger: 100 * c.wmin,
        },
    },
];

/// Per-cell paired aggregates of one family against the baseline.
struct CellDelta {
    params: ScenarioParams,
    mk_delta: OnlineStats,
    completion_flips: u64,
    /// Paired 95% CI of the relative makespan delta contains 0 and no run
    /// flipped between completing and burning the slot cap.
    indistinguishable: bool,
}

/// One family's full pairing against the baseline.
struct FamilyReport {
    name: &'static str,
    cells: Vec<CellDelta>,
    per_heuristic: Vec<OnlineStats>,
    flips_total: u64,
}

fn campaign(args: &ExpArgs, cells: &[ScenarioParams]) -> CampaignResult {
    let cfg = CampaignConfig {
        scenarios_per_cell: args.scenarios,
        trials: args.trials,
        master_seed: args.seed,
        parallelism: args.parallelism(),
        sim: SimOptions::default(),
        keep_outcomes: true,
        ..CampaignConfig::default()
    };
    run_campaign(cells, &cfg)
}

/// Pairs a chaos campaign against the baseline index-by-index (both stream
/// outcomes in input order under the same seed derivation, so instance `i`
/// of either run saw the same scenario, trial and base availability).
fn pair(base: &CampaignResult, chaos: &CampaignResult, cells: &[ScenarioParams]) -> FamilyReport {
    let b = base.outcomes.as_ref().expect("keep_outcomes set");
    let c = chaos.outcomes.as_ref().expect("keep_outcomes set");
    assert_eq!(b.len(), c.len(), "campaign shapes must match for pairing");
    let nh = base.heuristics.len();
    let mut mk_delta: Vec<OnlineStats> = vec![OnlineStats::new(); cells.len()];
    let mut per_heuristic: Vec<OnlineStats> = vec![OnlineStats::new(); nh];
    let mut flips: Vec<u64> = vec![0; cells.len()];
    for (u, v) in b.iter().zip(c) {
        assert_eq!(u.cell, v.cell, "outcome streams misaligned");
        for (h, stats) in per_heuristic.iter_mut().enumerate() {
            match (u.completed[h], v.completed[h]) {
                (true, true) => {
                    if u.makespans[h] > 0 {
                        let delta = 100.0 * (v.makespans[h] as f64 - u.makespans[h] as f64)
                            / u.makespans[h] as f64;
                        mk_delta[u.cell].push(delta);
                        stats.push(delta);
                    }
                }
                (true, false) | (false, true) => flips[u.cell] += 1,
                (false, false) => {}
            }
        }
    }
    let cells = cells
        .iter()
        .enumerate()
        .map(|(i, &params)| {
            let ci = mk_delta[i].confidence_interval(0.95);
            CellDelta {
                params,
                mk_delta: mk_delta[i],
                completion_flips: flips[i],
                indistinguishable: flips[i] == 0 && ci.contains(0.0),
            }
        })
        .collect();
    FamilyReport {
        name: "",
        cells,
        per_heuristic,
        flips_total: flips.iter().sum(),
    }
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(!s.contains('"') && !s.contains('\\'), "needs escaping: {s}");
    s
}

fn main() {
    let args = ExpArgs::from_env();
    let cells = if args.quick {
        vec![ScenarioParams::paper(20, 5, 1)]
    } else {
        ScenarioParams::table1_grid()
    };
    let runs_per_campaign = cells.len() * args.scenarios * args.trials as usize * 17;
    println!(
        "chaos_robustness: {} cells x {} scenarios x {} trials, 17 heuristics, \
         baseline + {} chaos families ({} simulations total)",
        cells.len(),
        args.scenarios,
        args.trials,
        FAMILIES.len(),
        (1 + FAMILIES.len()) * runs_per_campaign,
    );

    let t0 = Instant::now();
    let baseline = campaign(&args, &cells);
    let reports: Vec<FamilyReport> = FAMILIES
        .iter()
        .map(|family| {
            let chaos_cells: Vec<ScenarioParams> = cells
                .iter()
                .map(|c| c.with_volatility((family.spec)(c)))
                .collect();
            let result = campaign(&args, &chaos_cells);
            let mut report = pair(&baseline, &result, &cells);
            report.name = family.name;
            println!(
                "  {} campaign done ({:.1}s)",
                family.name,
                t0.elapsed().as_secs_f64()
            );
            report
        })
        .collect();
    let elapsed = t0.elapsed().as_secs_f64();

    // Text summary: per family, the overall paired delta and the most
    // degraded heuristics.
    for report in &reports {
        let all: f64 = report
            .per_heuristic
            .iter()
            .map(OnlineStats::mean)
            .sum::<f64>()
            / report.per_heuristic.len() as f64;
        let indist = report.cells.iter().filter(|d| d.indistinguishable).count();
        println!(
            "\n=== {} === mean makespan delta {:+.2}% | {}/{} cells indistinguishable | {} flips",
            report.name,
            all,
            indist,
            report.cells.len(),
            report.flips_total
        );
        let mut ranked: Vec<(usize, &OnlineStats)> =
            report.per_heuristic.iter().enumerate().collect();
        ranked.sort_by(|a, b| b.1.mean().total_cmp(&a.1.mean()));
        let rows: Vec<Vec<String>> = ranked
            .iter()
            .take(5)
            .chain(ranked.iter().rev().take(3).rev())
            .map(|(h, stats)| {
                let ci = stats.confidence_interval(0.95);
                vec![
                    baseline.heuristics[*h].name().to_string(),
                    format!("{}", stats.count()),
                    format!("{:+.3}", stats.mean()),
                    format!("[{:+.3}, {:+.3}]", ci.lo, ci.hi),
                ]
            })
            .collect();
        println!(
            "{}",
            text_table(&["Algorithm", "pairs", "mk Δ%", "95% CI"], &rows)
        );
    }
    eprintln!("done in {elapsed:.1}s");

    // JSON report artifact.
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"study\": \"chaos_robustness\",");
    let _ = writeln!(
        json,
        "  \"config\": {{\"scenarios\": {}, \"trials\": {}, \"seed\": {}, \"quick\": {}}},",
        args.scenarios, args.trials, args.seed, args.quick
    );
    let _ = writeln!(json, "  \"families\": [");
    for (f, report) in reports.iter().enumerate() {
        let indist = report.cells.iter().filter(|d| d.indistinguishable).count();
        let _ = writeln!(json, "    {{");
        let _ = writeln!(
            json,
            "      \"family\": \"{}\", \"cells_total\": {}, \"cells_indistinguishable\": {}, \
             \"completion_flips\": {},",
            json_escape_free(report.name),
            report.cells.len(),
            indist,
            report.flips_total
        );
        let _ = writeln!(json, "      \"cells\": [");
        for (i, d) in report.cells.iter().enumerate() {
            let ci = d.mk_delta.confidence_interval(0.95);
            let _ = writeln!(
                json,
                "        {{\"n\": {}, \"ncom\": {}, \"wmin\": {}, \"pairs\": {}, \
                 \"mk_delta_pct_mean\": {:.6}, \"ci95_lo\": {:.6}, \"ci95_hi\": {:.6}, \
                 \"completion_flips\": {}, \"indistinguishable\": {}}}{}",
                d.params.n_tasks,
                d.params.ncom,
                d.params.wmin,
                d.mk_delta.count(),
                d.mk_delta.mean(),
                ci.lo,
                ci.hi,
                d.completion_flips,
                d.indistinguishable,
                if i + 1 < report.cells.len() { "," } else { "" },
            );
        }
        let _ = writeln!(json, "      ],");
        let _ = writeln!(json, "      \"per_heuristic\": [");
        let nh = report.per_heuristic.len();
        for (h, (kind, stats)) in baseline
            .heuristics
            .iter()
            .zip(&report.per_heuristic)
            .enumerate()
        {
            let ci = stats.confidence_interval(0.95);
            let _ = writeln!(
                json,
                "        {{\"heuristic\": \"{}\", \"pairs\": {}, \"mk_delta_pct_mean\": {:.6}, \
                 \"ci95_lo\": {:.6}, \"ci95_hi\": {:.6}}}{}",
                json_escape_free(kind.name()),
                stats.count(),
                stats.mean(),
                ci.lo,
                ci.hi,
                if h + 1 < nh { "," } else { "" },
            );
        }
        let _ = writeln!(json, "      ]");
        let _ = writeln!(
            json,
            "    }}{}",
            if f + 1 < reports.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    let out = std::env::var("CHAOS_ROBUSTNESS_OUT")
        .unwrap_or_else(|_| "target/CHAOS_ROBUSTNESS.json".into());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&out, &json).expect("write chaos report");
    println!("report written to {out}");

    if args.csv {
        println!("family,n,ncom,wmin,pairs,mk_delta_pct_mean,ci95_lo,ci95_hi,completion_flips,indistinguishable");
        for report in &reports {
            for d in &report.cells {
                let ci = d.mk_delta.confidence_interval(0.95);
                println!(
                    "{},{},{},{},{},{:.6},{:.6},{:.6},{},{}",
                    report.name,
                    d.params.n_tasks,
                    d.params.ncom,
                    d.params.wmin,
                    d.mk_delta.count(),
                    d.mk_delta.mean(),
                    ci.lo,
                    ci.hi,
                    d.completion_flips,
                    d.indistinguishable
                );
            }
        }
    }
}
