//! Free-form single-cell exploration: run any `(p, n, ncom, wmin,
//! comm-scale)` cell with any heuristic subset and print the dfb summary —
//! the tool for poking at regimes the paper's grid does not cover.
//!
//! ```text
//! cargo run -p vg-exp --release --bin sweep -- \
//!     --n 30 --ncom 2 --wmin 8 --comm-scale 3 \
//!     --heuristics EMCT*,MCT,UD* --scenarios 10 --trials 3
//! ```

use vg_core::HeuristicKind;
use vg_des::par::ParallelismConfig;
use vg_exp::campaign::{run_campaign, CampaignConfig};
use vg_exp::report::summary_table;
use vg_exp::scenario::ScenarioParams;
use vg_sim::SimOptions;

#[derive(Debug)]
struct SweepArgs {
    p: usize,
    n: usize,
    ncom: usize,
    wmin: u64,
    comm_scale: u64,
    iterations: u64,
    heuristics: Vec<HeuristicKind>,
    scenarios: usize,
    trials: u64,
    seed: u64,
}

impl Default for SweepArgs {
    fn default() -> Self {
        Self {
            p: 20,
            n: 20,
            ncom: 5,
            wmin: 5,
            comm_scale: 1,
            iterations: 10,
            heuristics: HeuristicKind::GREEDY.to_vec(),
            scenarios: 8,
            trials: 2,
            seed: 42,
        }
    }
}

const USAGE: &str = "
sweep — run one custom experiment cell

Options (all optional):
  --p K             processors                    (default 20)
  --n K             tasks per iteration           (default 20)
  --ncom K          master channels               (default 5)
  --wmin K          base task cost                (default 5)
  --comm-scale K    multiply T_data and T_prog    (default 1)
  --iterations K    iterations per run            (default 10)
  --heuristics L    comma-separated paper names   (default: the 8 greedy)
  --scenarios K     sampled scenarios             (default 8)
  --trials K        trials per scenario           (default 2)
  --seed S          master seed                   (default 42)
";

fn parse_args() -> Result<SweepArgs, String> {
    let mut out = SweepArgs::default();
    let mut it = std::env::args().skip(1);
    while let Some(tok) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match tok.as_str() {
            "--p" => out.p = val("--p")?.parse().map_err(|e| format!("--p: {e}"))?,
            "--n" => out.n = val("--n")?.parse().map_err(|e| format!("--n: {e}"))?,
            "--ncom" => out.ncom = val("--ncom")?.parse().map_err(|e| format!("--ncom: {e}"))?,
            "--wmin" => out.wmin = val("--wmin")?.parse().map_err(|e| format!("--wmin: {e}"))?,
            "--comm-scale" => {
                out.comm_scale = val("--comm-scale")?
                    .parse()
                    .map_err(|e| format!("--comm-scale: {e}"))?;
            }
            "--iterations" => {
                out.iterations = val("--iterations")?
                    .parse()
                    .map_err(|e| format!("--iterations: {e}"))?;
            }
            "--heuristics" => {
                let list = val("--heuristics")?;
                out.heuristics = list
                    .split(',')
                    .map(|name| {
                        HeuristicKind::parse(name.trim())
                            .ok_or_else(|| format!("unknown heuristic {name:?}"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if out.heuristics.is_empty() {
                    return Err("need at least one heuristic".into());
                }
            }
            "--scenarios" => {
                out.scenarios = val("--scenarios")?
                    .parse()
                    .map_err(|e| format!("--scenarios: {e}"))?;
            }
            "--trials" => {
                out.trials = val("--trials")?
                    .parse()
                    .map_err(|e| format!("--trials: {e}"))?;
            }
            "--seed" => out.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--help" | "-h" => return Err(USAGE.trim().to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(out)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let cell = ScenarioParams {
        p: args.p,
        n_tasks: args.n,
        ncom: args.ncom,
        wmin: args.wmin,
        comm_scale: args.comm_scale,
        iterations: args.iterations,
        diag_lo: 0.90,
        diag_hi: 0.99,
        volatility: vg_exp::scenario::VolatilitySpec::Independent,
    };
    println!(
        "sweep: p={} n={} ncom={} wmin={} T_data={} T_prog={} iterations={}",
        cell.p,
        cell.n_tasks,
        cell.ncom,
        cell.wmin,
        cell.t_data(),
        cell.t_prog(),
        cell.iterations
    );
    let cfg = CampaignConfig {
        heuristics: args.heuristics,
        scenarios_per_cell: args.scenarios,
        trials: args.trials,
        master_seed: args.seed,
        parallelism: ParallelismConfig::Auto,
        sim: SimOptions::default(),
        keep_outcomes: false,
    };
    let result = run_campaign(std::slice::from_ref(&cell), &cfg);
    println!(
        "{} instances\n\n{}",
        result.instances,
        summary_table(&result.summarize())
    );
}
