//! Regenerates **Table 1**: the experimental parameter grid, plus one fully
//! sampled scenario so the derived quantities are visible.
//!
//! ```text
//! cargo run -p vg-exp --release --bin table1
//! ```

use vg_des::rng::SeedPath;
use vg_exp::report::text_table;
use vg_exp::scenario::{make_scenario, ScenarioParams};

fn main() {
    println!("Table 1: parameter values for the Markov experiments\n");
    let rows = vec![
        vec!["p".to_string(), "20".to_string()],
        vec!["n".to_string(), "5, 10, 20, 40".to_string()],
        vec!["ncom".to_string(), "5, 10, 20".to_string()],
        vec!["wmin".to_string(), "1..=10".to_string()],
        vec!["P(x,x)".to_string(), "U[0.90, 0.99]".to_string()],
        vec!["P(x,y)".to_string(), "(1 - P(x,x)) / 2".to_string()],
        vec!["w_q".to_string(), "U[wmin, 10*wmin]".to_string()],
        vec!["T_data".to_string(), "wmin".to_string()],
        vec!["T_prog".to_string(), "5*wmin".to_string()],
        vec!["iterations".to_string(), "10".to_string()],
    ];
    println!("{}", text_table(&["parameter", "values"], &rows));

    let grid = ScenarioParams::table1_grid();
    println!("grid cells: {} (4 x 3 x 10)\n", grid.len());

    let params = ScenarioParams::paper(10, 5, 2);
    let s = make_scenario(params, SeedPath::root(42).child_str("scenario"));
    println!(
        "sample scenario (n={}, ncom={}, wmin={}): T_prog={}, T_data={}",
        params.n_tasks, params.ncom, params.wmin, s.app.t_prog, s.app.t_data
    );
    let rows: Vec<Vec<String>> = s
        .platform
        .processors
        .iter()
        .enumerate()
        .map(|(q, pc)| {
            let c = pc.believed_chain();
            let pi = c.stationary();
            vec![
                format!("P{q}"),
                format!("{}", pc.spec.w),
                format!("{:.3}", c.p_uu()),
                format!("{:.3}", c.p_rr()),
                format!("{:.3}", c.raw()[2][2]),
                format!("{:.3}", pi[0]),
                format!("{:.4}", c.p_plus()),
                format!("{:.2}", c.e_w(pc.spec.w)),
            ]
        })
        .collect();
    println!(
        "{}",
        text_table(
            &["proc", "w", "P(u,u)", "P(r,r)", "P(d,d)", "pi_u", "P+", "E(w)"],
            &rows
        )
    );
}
