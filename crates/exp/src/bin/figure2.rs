//! Regenerates **Figure 2**: average degradation-from-best versus `wmin`
//! for MCT, MCT*, EMCT, EMCT*, UD* and LW* (the paper's plotted subset).
//!
//! ```text
//! cargo run -p vg-exp --release --bin figure2 -- [--scenarios K] [--trials T] [--csv]
//! ```
//!
//! Paper shape to look for: the MCT curves rise steeply with `wmin`
//! (availability transitions per task grow), the EMCT curves overtake MCT
//! around `wmin ≈ 3`, and UD* closes in on (or overtakes) EMCT at the
//! volatile end (`wmin ≳ 7`).

use std::time::Instant;
use vg_core::HeuristicKind;
use vg_exp::campaign::{run_campaign, CampaignConfig};
use vg_exp::cli::ExpArgs;
use vg_exp::report::{ascii_plot, csv, text_table};
use vg_exp::scenario::ScenarioParams;

fn main() {
    let args = ExpArgs::from_env();
    let grid = ScenarioParams::table1_grid();
    let kinds = HeuristicKind::FIGURE2;
    let cfg = CampaignConfig {
        // Run the full roster so dfb's "best" matches Table 2 semantics.
        heuristics: HeuristicKind::ALL.to_vec(),
        scenarios_per_cell: args.scenarios,
        trials: args.trials,
        master_seed: args.seed,
        parallelism: args.parallelism(),
        ..CampaignConfig::default()
    };
    eprintln!(
        "figure2: {} cells x {} scenarios x {} trials",
        grid.len(),
        cfg.scenarios_per_cell,
        cfg.trials
    );
    let t0 = Instant::now();
    let result = run_campaign(&grid, &cfg);
    let (wmins, series) = result.by_wmin(&kinds);
    eprintln!("done in {:.1}s", t0.elapsed().as_secs_f64());
    if result.capped_instances() > 0 || result.degenerate_instances() > 0 {
        eprintln!(
            "excluded from scoring: {} capped, {} degenerate instance(s)",
            result.capped_instances(),
            result.degenerate_instances()
        );
    }

    println!("Figure 2: averaged dfb results vs. wmin\n");
    let headers: Vec<String> = std::iter::once("wmin".to_string())
        .chain(kinds.iter().map(|k| k.name().to_string()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = wmins
        .iter()
        .enumerate()
        .map(|(i, w)| {
            std::iter::once(w.to_string())
                .chain(series.iter().map(|s| format!("{:.2}", s[i])))
                .collect()
        })
        .collect();
    println!("{}", text_table(&header_refs, &rows));

    let labels: Vec<String> = wmins.iter().map(u64::to_string).collect();
    let plot_series: Vec<(&str, Vec<f64>)> = kinds
        .iter()
        .zip(&series)
        .map(|(k, s)| (k.name(), s.clone()))
        .collect();
    println!("{}", ascii_plot(&labels, &plot_series, 60, 16));

    if args.csv {
        let csv_rows: Vec<Vec<String>> = rows;
        println!("{}", csv(&header_refs, &csv_rows));
    }
}
