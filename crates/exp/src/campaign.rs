//! Campaign runner: degradation-from-best over scenario grids.
//!
//! The paper's quality metric (Section 7): for each problem instance
//! (scenario × trial), run every heuristic against *identical* availability
//! (common random numbers), take the best makespan, and charge each
//! heuristic its percentage excess over that best — the *degradation from
//! best* (dfb). A heuristic "wins" an instance when it attains (or ties) the
//! best makespan. Averaging dfb over instances and counting wins yields
//! Table 2; slicing by `wmin` yields Figure 2; the contention-prone cells
//! yield Table 3.

use vg_core::HeuristicKind;
use vg_des::par::{par_map, ParallelismConfig};
use vg_des::rng::SeedPath;
use vg_des::stats::OnlineStats;
use vg_des::Slot;
use vg_sim::{SimOptions, Simulation};

use crate::scenario::{make_scenario, Scenario, ScenarioParams};

/// Campaign-wide settings.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Heuristics to compare.
    pub heuristics: Vec<HeuristicKind>,
    /// Random scenarios per grid cell (the paper uses 247).
    pub scenarios_per_cell: usize,
    /// Trials (trace re-seeds) per scenario (the paper uses 10).
    pub trials: u64,
    /// Master seed; everything derives from it.
    pub master_seed: u64,
    /// Fan-out across cores.
    pub parallelism: ParallelismConfig,
    /// Engine options (slot cap, replication).
    pub sim: SimOptions,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            heuristics: HeuristicKind::ALL.to_vec(),
            scenarios_per_cell: 8,
            trials: 2,
            master_seed: 42,
            parallelism: ParallelismConfig::Auto,
            sim: SimOptions::default(),
        }
    }
}

/// One unit of work: a scenario × trial, run under every heuristic.
#[derive(Debug, Clone, Copy)]
struct WorkUnit {
    cell: usize,
    scenario: usize,
    trial: u64,
}

/// Makespans of all heuristics on one instance (same order as config).
#[derive(Debug, Clone)]
pub struct InstanceOutcome {
    /// Which grid cell the instance belongs to.
    pub cell: usize,
    /// Makespan (or slot cap) per heuristic.
    pub makespans: Vec<Slot>,
}

/// Aggregated per-heuristic results.
#[derive(Debug, Clone)]
pub struct HeuristicSummary {
    /// The heuristic.
    pub kind: HeuristicKind,
    /// dfb percentage statistics over all instances.
    pub dfb: OnlineStats,
    /// Number of instances where this heuristic was (or tied) the best.
    pub wins: u64,
}

/// Full campaign result.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The grid that was run.
    pub cells: Vec<ScenarioParams>,
    /// Heuristic order used throughout.
    pub heuristics: Vec<HeuristicKind>,
    /// Per-instance outcomes (cell index + makespans).
    pub outcomes: Vec<InstanceOutcome>,
    /// Total instances run.
    pub instances: usize,
}

impl CampaignResult {
    /// Per-heuristic dfb/wins over all instances (Table 2).
    #[must_use]
    pub fn summarize(&self) -> Vec<HeuristicSummary> {
        self.summarize_filtered(|_| true)
    }

    /// Per-heuristic dfb/wins over instances whose cell passes `keep` —
    /// e.g. `|c| c.wmin == 3` for one Figure-2 point.
    #[must_use]
    pub fn summarize_filtered(&self, keep: impl Fn(&ScenarioParams) -> bool) -> Vec<HeuristicSummary> {
        let mut stats: Vec<(OnlineStats, u64)> =
            vec![(OnlineStats::new(), 0); self.heuristics.len()];
        for outcome in &self.outcomes {
            if !keep(&self.cells[outcome.cell]) {
                continue;
            }
            let best = *outcome
                .makespans
                .iter()
                .min()
                .expect("at least one heuristic");
            debug_assert!(best > 0);
            for (h, &mk) in outcome.makespans.iter().enumerate() {
                let dfb = 100.0 * (mk - best) as f64 / best as f64;
                stats[h].0.push(dfb);
                if mk == best {
                    stats[h].1 += 1;
                }
            }
        }
        let mut out: Vec<HeuristicSummary> = self
            .heuristics
            .iter()
            .zip(stats)
            .map(|(&kind, (dfb, wins))| HeuristicSummary { kind, dfb, wins })
            .collect();
        out.sort_by(|a, b| {
            a.dfb
                .mean()
                .partial_cmp(&b.dfb.mean())
                .expect("dfb is finite")
        });
        out
    }

    /// Figure-2 series: mean dfb per `wmin` value for each heuristic, in the
    /// heuristic order of `kinds`. Returns `(wmins, series)` where
    /// `series[k][i]` is heuristic `k`'s mean dfb at `wmins[i]`.
    #[must_use]
    pub fn by_wmin(&self, kinds: &[HeuristicKind]) -> (Vec<u64>, Vec<Vec<f64>>) {
        let mut wmins: Vec<u64> = self.cells.iter().map(|c| c.wmin).collect();
        wmins.sort_unstable();
        wmins.dedup();
        let mut series = vec![Vec::with_capacity(wmins.len()); kinds.len()];
        for &wmin in &wmins {
            let summaries = self.summarize_filtered(|c| c.wmin == wmin);
            for (k, &kind) in kinds.iter().enumerate() {
                let s = summaries
                    .iter()
                    .find(|s| s.kind == kind)
                    .expect("kind was part of the campaign");
                series[k].push(s.dfb.mean());
            }
        }
        (wmins, series)
    }
}

/// Runs one instance: every heuristic on byte-identical availability.
///
/// Returns makespans in heuristic order (slot cap when incomplete).
#[must_use]
pub fn run_instance(
    scenario: &Scenario,
    heuristics: &[HeuristicKind],
    master_seed: u64,
    cell: usize,
    scenario_idx: usize,
    trial: u64,
    sim: SimOptions,
) -> Vec<Slot> {
    let root = SeedPath::root(master_seed);
    // Trace seeds depend only on (cell, scenario, trial, processor): every
    // heuristic sees identical availability.
    let trace_path = root
        .child_str("trace")
        .child(cell as u64)
        .child(scenario_idx as u64)
        .child(trial);
    heuristics
        .iter()
        .enumerate()
        .map(|(h, kind)| {
            let sched_rng = root
                .child_str("sched")
                .child(cell as u64)
                .child(scenario_idx as u64)
                .child(trial)
                .child(h as u64)
                .rng();
            let report = Simulation::run_seeded(
                &scenario.platform,
                &scenario.app,
                kind.build(sched_rng),
                trace_path,
                sim,
            )
            .expect("scenario configs validate");
            report.makespan_or_cap()
        })
        .collect()
}

/// Runs a campaign over `cells`.
#[must_use]
pub fn run_campaign(cells: &[ScenarioParams], cfg: &CampaignConfig) -> CampaignResult {
    let mut units = Vec::with_capacity(cells.len() * cfg.scenarios_per_cell * cfg.trials as usize);
    for cell in 0..cells.len() {
        for scenario in 0..cfg.scenarios_per_cell {
            for trial in 0..cfg.trials {
                units.push(WorkUnit {
                    cell,
                    scenario,
                    trial,
                });
            }
        }
    }
    let root = SeedPath::root(cfg.master_seed);
    let outcomes: Vec<InstanceOutcome> = par_map(&units, cfg.parallelism, |unit| {
        let scenario_seed = root
            .child_str("scenario")
            .child(unit.cell as u64)
            .child(unit.scenario as u64);
        let scenario = make_scenario(cells[unit.cell], scenario_seed);
        let makespans = run_instance(
            &scenario,
            &cfg.heuristics,
            cfg.master_seed,
            unit.cell,
            unit.scenario,
            unit.trial,
            cfg.sim,
        );
        InstanceOutcome {
            cell: unit.cell,
            makespans,
        }
    });
    CampaignResult {
        cells: cells.to_vec(),
        heuristics: cfg.heuristics.clone(),
        outcomes,
        instances: units.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(heuristics: Vec<HeuristicKind>) -> CampaignConfig {
        CampaignConfig {
            heuristics,
            scenarios_per_cell: 2,
            trials: 1,
            master_seed: 7,
            parallelism: ParallelismConfig::Sequential,
            sim: SimOptions {
                max_slots: 200_000,
                ..SimOptions::default()
            },
        }
    }

    fn tiny_cells() -> Vec<ScenarioParams> {
        vec![
            ScenarioParams {
                p: 6,
                ..ScenarioParams::paper(5, 5, 1)
            },
            ScenarioParams {
                p: 6,
                ..ScenarioParams::paper(5, 5, 3)
            },
        ]
    }

    #[test]
    fn campaign_runs_and_aggregates() {
        let cfg = tiny_config(vec![HeuristicKind::Mct, HeuristicKind::Emct, HeuristicKind::Random]);
        let result = run_campaign(&tiny_cells(), &cfg);
        assert_eq!(result.instances, 4);
        assert_eq!(result.outcomes.len(), 4);
        let summaries = result.summarize();
        assert_eq!(summaries.len(), 3);
        // Every instance has at least one winner; ties allowed.
        let total_wins: u64 = summaries.iter().map(|s| s.wins).sum();
        assert!(total_wins >= 4);
        // The best heuristic has dfb mean 0 only if it always wins; all
        // dfbs are non-negative.
        for s in &summaries {
            assert!(s.dfb.mean() >= 0.0, "{}: {}", s.kind, s.dfb.mean());
            assert_eq!(s.dfb.count(), 4);
        }
        // Sorted ascending by mean dfb.
        for pair in summaries.windows(2) {
            assert!(pair[0].dfb.mean() <= pair[1].dfb.mean());
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let cfg = tiny_config(vec![HeuristicKind::Mct, HeuristicKind::Lw]);
        let a = run_campaign(&tiny_cells(), &cfg);
        let b = run_campaign(&tiny_cells(), &cfg);
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.makespans, y.makespans);
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let mut cfg = tiny_config(vec![HeuristicKind::Mct, HeuristicKind::Ud]);
        let seq = run_campaign(&tiny_cells(), &cfg);
        cfg.parallelism = ParallelismConfig::fixed(4);
        let par = run_campaign(&tiny_cells(), &cfg);
        for (x, y) in seq.outcomes.iter().zip(&par.outcomes) {
            assert_eq!(x.makespans, y.makespans);
        }
    }

    #[test]
    fn by_wmin_produces_one_point_per_value() {
        let cfg = tiny_config(vec![HeuristicKind::Mct, HeuristicKind::Emct]);
        let result = run_campaign(&tiny_cells(), &cfg);
        let (wmins, series) = result.by_wmin(&[HeuristicKind::Mct, HeuristicKind::Emct]);
        assert_eq!(wmins, vec![1, 3]);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].len(), 2);
    }

    #[test]
    fn filtered_summary_restricts_instances() {
        let cfg = tiny_config(vec![HeuristicKind::Mct]);
        let result = run_campaign(&tiny_cells(), &cfg);
        let all = result.summarize();
        let only_w1 = result.summarize_filtered(|c| c.wmin == 1);
        assert_eq!(all[0].dfb.count(), 4);
        assert_eq!(only_w1[0].dfb.count(), 2);
    }
}
