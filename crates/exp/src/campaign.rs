//! Campaign runner: degradation-from-best over scenario grids.
//!
//! The paper's quality metric (Section 7): for each problem instance
//! (scenario × trial), run every heuristic against *identical* availability
//! (common random numbers), take the best makespan, and charge each
//! heuristic its percentage excess over that best — the *degradation from
//! best* (dfb). A heuristic "wins" an instance when it attains (or ties) the
//! best makespan. Averaging dfb over instances and counting wins yields
//! Table 2; slicing by `wmin` yields Figure 2; the contention-prone cells
//! yield Table 3.
//!
//! ## The batched, arena-reusing pipeline
//!
//! [`run_campaign`] fans out one work unit per **scenario** (not per
//! instance): all trials and heuristics of a scenario run on the worker that
//! pulled it, so the `make_scenario` platform construction is paid once per
//! scenario instead of once per trial. Each worker thread keeps one warmed
//! [`SimArena`] for its whole lifetime, so back-to-back simulations reuse
//! every engine buffer. Instance results stream back to the calling thread
//! in input order (`vg_des::par::par_map_init_consume`) and fold immediately
//! into per-cell [`CellStats`], keeping memory O(cells × heuristics) at
//! paper scale; set [`CampaignConfig::keep_outcomes`] to also retain the raw
//! per-instance [`InstanceOutcome`]s.
//!
//! Because all seeds derive from `(master_seed, cell, scenario, trial,
//! heuristic)` — never from the thread schedule — and the in-order fold is
//! the same code on every path, [`run_campaign`] is bit-identical to the
//! per-unit reference runner [`run_campaign_reference`] at any parallelism.
//!
//! ## Capped and degenerate instances
//!
//! A run that hits [`SimOptions::max_slots`] has no makespan — only a burned
//! cap, a *lower bound* on the truth. Scoring caps as makespans would award
//! dfb 0 and a "win" to every heuristic on an instance where everyone
//! capped. Instead:
//!
//! * an instance where **no** heuristic finished is excluded from dfb/wins
//!   and tallied in [`CellStats::capped_instances`];
//! * on an instance where some finished, `best` ranges over the finishers
//!   only; a capped heuristic is charged its (lower-bound) cap dfb and
//!   counted in [`HeuristicSummary::capped_runs`], but can never win;
//! * an instance whose best makespan is 0 (degenerate configuration) is
//!   excluded and tallied in [`CellStats::degenerate_instances`] — release
//!   builds never divide by zero, so dfb is always finite and the summary
//!   sort cannot panic.

use vg_core::HeuristicKind;
use vg_des::par::{par_map, par_map_init_consume, ParallelismConfig};
use vg_des::rng::SeedPath;
use vg_des::stats::OnlineStats;
use vg_des::Slot;
use vg_markov::availability::ChainStats;
use vg_platform::source::{AvailabilitySource, SharedTraceMatrix};
use vg_platform::volatility::ScriptedOverlay;
use vg_platform::CompiledScript;
use vg_sim::{platform_chain_stats, SimArena, SimOptions, Simulation, WorkerSoA};

use crate::scenario::{make_scenario, Scenario, ScenarioParams};

/// Campaign-wide settings.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Heuristics to compare.
    pub heuristics: Vec<HeuristicKind>,
    /// Random scenarios per grid cell (the paper uses 247).
    pub scenarios_per_cell: usize,
    /// Trials (trace re-seeds) per scenario (the paper uses 10).
    pub trials: u64,
    /// Master seed; everything derives from it.
    pub master_seed: u64,
    /// Fan-out across cores.
    pub parallelism: ParallelismConfig,
    /// Engine options (slot cap, replication).
    pub sim: SimOptions,
    /// Retain every per-instance [`InstanceOutcome`] in the result
    /// (O(instances × heuristics) memory). Off by default: summaries are
    /// folded streamingly into per-cell statistics and the raw outcomes are
    /// dropped.
    pub keep_outcomes: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            heuristics: HeuristicKind::ALL.to_vec(),
            scenarios_per_cell: 8,
            trials: 2,
            master_seed: 42,
            parallelism: ParallelismConfig::Auto,
            sim: SimOptions::default(),
            keep_outcomes: false,
        }
    }
}

/// One batched unit of work: a scenario, run for every trial × heuristic on
/// one worker pull (amortizing platform construction and arena warmth).
#[derive(Debug, Clone, Copy)]
struct ScenarioUnit {
    cell: usize,
    scenario: usize,
}

/// Makespans and completion flags of all heuristics on one instance (same
/// order as the campaign's heuristic list).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceOutcome {
    /// Which grid cell the instance belongs to.
    pub cell: usize,
    /// Makespan (or burned slot cap) per heuristic.
    pub makespans: Vec<Slot>,
    /// Whether each heuristic actually completed all iterations; `false`
    /// means the corresponding makespan is a slot cap, i.e. a lower bound.
    pub completed: Vec<bool>,
}

impl InstanceOutcome {
    /// Best makespan among the heuristics that finished, if any did.
    #[must_use]
    pub fn best_completed(&self) -> Option<Slot> {
        self.makespans
            .iter()
            .zip(&self.completed)
            .filter(|&(_, &done)| done)
            .map(|(&mk, _)| mk)
            .min()
    }
}

/// Streaming per-cell aggregates: everything `summarize`/`by_wmin` need,
/// with memory independent of the instance count.
#[derive(Debug, Clone, PartialEq)]
pub struct CellStats {
    /// dfb statistics per heuristic (campaign heuristic order).
    pub dfb: Vec<OnlineStats>,
    /// Wins per heuristic (completed runs attaining the best makespan).
    pub wins: Vec<u64>,
    /// Per-heuristic capped runs on *scored* instances (charged a
    /// lower-bound dfb, never a win).
    pub capped_runs: Vec<u64>,
    /// Instances that entered the dfb/wins statistics.
    pub scored_instances: u64,
    /// Instances excluded because no heuristic finished under the slot cap.
    pub capped_instances: u64,
    /// Instances excluded because the best makespan was 0.
    pub degenerate_instances: u64,
}

impl CellStats {
    /// Empty aggregates for `heuristics` heuristics.
    #[must_use]
    pub fn new(heuristics: usize) -> Self {
        Self {
            dfb: vec![OnlineStats::new(); heuristics],
            wins: vec![0; heuristics],
            capped_runs: vec![0; heuristics],
            scored_instances: 0,
            capped_instances: 0,
            degenerate_instances: 0,
        }
    }

    /// Folds one instance into the aggregates — the single scoring routine
    /// shared by every runner (and reusable by custom studies such as the
    /// `robustness` binary), so all consumers score capped and degenerate
    /// instances identically.
    pub fn absorb(&mut self, outcome: &InstanceOutcome) {
        let Some(best) = outcome.best_completed() else {
            // Every heuristic burned its cap: the instance carries no
            // ranking information, only a tally.
            self.capped_instances += 1;
            return;
        };
        if best == 0 {
            // Degenerate (e.g. a zero-slot cap): dividing would yield
            // NaN/inf dfb; exclude rather than poison the summary sort.
            self.degenerate_instances += 1;
            return;
        }
        self.scored_instances += 1;
        for (h, (&mk, &done)) in outcome.makespans.iter().zip(&outcome.completed).enumerate() {
            // A capped run's `mk` is its burned cap ≥ best, so this charge
            // is a lower bound on its true degradation.
            let dfb = 100.0 * (mk - best) as f64 / best as f64;
            self.dfb[h].push(dfb);
            if done && mk == best {
                self.wins[h] += 1;
            }
            if !done {
                self.capped_runs[h] += 1;
            }
        }
    }
}

/// Aggregated per-heuristic results.
#[derive(Debug, Clone)]
pub struct HeuristicSummary {
    /// The heuristic.
    pub kind: HeuristicKind,
    /// dfb percentage statistics over all scored instances.
    pub dfb: OnlineStats,
    /// Number of scored instances where this heuristic was (or tied) the
    /// best *and finished*.
    pub wins: u64,
    /// Runs that hit the slot cap on scored instances (their dfb entries
    /// are lower bounds).
    pub capped_runs: u64,
}

/// Full campaign result: per-cell streaming aggregates, plus the raw
/// outcomes when [`CampaignConfig::keep_outcomes`] was set.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The grid that was run.
    pub cells: Vec<ScenarioParams>,
    /// Heuristic order used throughout.
    pub heuristics: Vec<HeuristicKind>,
    /// Streaming aggregates, one per cell.
    pub cell_stats: Vec<CellStats>,
    /// Total instances run (scored + excluded).
    pub instances: usize,
    /// Per-instance outcomes, kept only when the config asked for them.
    pub outcomes: Option<Vec<InstanceOutcome>>,
}

impl CampaignResult {
    /// Instances excluded because every heuristic hit the slot cap.
    #[must_use]
    pub fn capped_instances(&self) -> u64 {
        self.cell_stats.iter().map(|c| c.capped_instances).sum()
    }

    /// Instances excluded because the best makespan was 0.
    #[must_use]
    pub fn degenerate_instances(&self) -> u64 {
        self.cell_stats.iter().map(|c| c.degenerate_instances).sum()
    }

    /// Instances that entered the dfb/wins statistics.
    #[must_use]
    pub fn scored_instances(&self) -> u64 {
        self.cell_stats.iter().map(|c| c.scored_instances).sum()
    }

    /// Per-heuristic dfb/wins over all instances (Table 2).
    #[must_use]
    pub fn summarize(&self) -> Vec<HeuristicSummary> {
        self.summarize_filtered(|_| true)
    }

    /// Per-heuristic dfb/wins over instances whose cell passes `keep` —
    /// e.g. `|c| c.wmin == 3` for one Figure-2 point. Cells are the
    /// aggregation granularity, so any cell-level filter is exact.
    #[must_use]
    pub fn summarize_filtered(
        &self,
        keep: impl Fn(&ScenarioParams) -> bool,
    ) -> Vec<HeuristicSummary> {
        let mut out: Vec<HeuristicSummary> = self
            .heuristics
            .iter()
            .map(|&kind| HeuristicSummary {
                kind,
                dfb: OnlineStats::new(),
                wins: 0,
                capped_runs: 0,
            })
            .collect();
        for (cell, stats) in self.cell_stats.iter().enumerate() {
            if !keep(&self.cells[cell]) {
                continue;
            }
            for (h, summary) in out.iter_mut().enumerate() {
                summary.dfb.merge(&stats.dfb[h]);
                summary.wins += stats.wins[h];
                summary.capped_runs += stats.capped_runs[h];
            }
        }
        // `total_cmp` is panic-free even on pathological inputs; dfb means
        // are finite by construction (degenerate instances are excluded).
        out.sort_by(|a, b| a.dfb.mean().total_cmp(&b.dfb.mean()));
        out
    }

    /// Figure-2 series: mean dfb per `wmin` value for each heuristic, in the
    /// heuristic order of `kinds`. Returns `(wmins, series)` where
    /// `series[k][i]` is heuristic `k`'s mean dfb at `wmins[i]`.
    ///
    /// A kind in `kinds` that was **not** part of the campaign yields an
    /// empty series (`series[k].is_empty()`) instead of a panic, so a plot
    /// request can never abort a finished multi-hour campaign.
    #[must_use]
    pub fn by_wmin(&self, kinds: &[HeuristicKind]) -> (Vec<u64>, Vec<Vec<f64>>) {
        let mut wmins: Vec<u64> = self.cells.iter().map(|c| c.wmin).collect();
        wmins.sort_unstable();
        wmins.dedup();
        let mut series = vec![Vec::with_capacity(wmins.len()); kinds.len()];
        for &wmin in &wmins {
            let summaries = self.summarize_filtered(|c| c.wmin == wmin);
            for (k, &kind) in kinds.iter().enumerate() {
                if let Some(s) = summaries.iter().find(|s| s.kind == kind) {
                    series[k].push(s.dfb.mean());
                }
            }
        }
        (wmins, series)
    }
}

/// Derives the per-instance seed paths shared by every runner: trace seeds
/// depend only on `(cell, scenario, trial, processor)` so every heuristic
/// sees identical availability; scheduler seeds additionally mix in the
/// heuristic index.
fn instance_seeds(
    master_seed: u64,
    cell: usize,
    scenario_idx: usize,
    trial: u64,
) -> (SeedPath, SeedPath) {
    let root = SeedPath::root(master_seed);
    let trace_path = root
        .child_str("trace")
        .child(cell as u64)
        .child(scenario_idx as u64)
        .child(trial);
    let sched_path = root
        .child_str("sched")
        .child(cell as u64)
        .child(scenario_idx as u64)
        .child(trial);
    (trace_path, sched_path)
}

/// Runs one instance through a **warmed arena**: every heuristic on
/// byte-identical availability, reusing the arena's buffers across runs.
///
/// `chains` must be `platform_chain_stats(&scenario.platform)` — computed
/// once per scenario and shared across its trials and heuristics. The
/// availability trace is sampled once into a
/// [`SharedTraceMatrix`] by whichever run gets furthest first and replayed
/// by the other 16 heuristics (common random numbers make their traces
/// byte-identical anyway). Results are bit-identical to [`run_instance`].
#[must_use]
#[allow(clippy::too_many_arguments)] // mirrors run_instance's identity tuple plus the shared state
pub fn run_instance_in(
    arena: &mut SimArena,
    scenario: &Scenario,
    chains: &[ChainStats],
    heuristics: &[HeuristicKind],
    master_seed: u64,
    cell: usize,
    scenario_idx: usize,
    trial: u64,
    sim: SimOptions,
) -> InstanceOutcome {
    let (trace_path, sched_path) = instance_seeds(master_seed, cell, scenario_idx, trial);
    let p = scenario.platform.p();
    // The chaos layer of the cell, resolved once per instance. A malformed
    // spec scores every heuristic as capped (the generators only emit valid
    // specs, but a campaign must not abort mid-flight).
    let chaos = scenario
        .params
        .volatility
        .fault_script(p)
        .and_then(|script| {
            let model = scenario.params.volatility.correlated_model(p)?;
            Ok((script, model))
        });
    let (script, model) = match chaos {
        Ok(parts) => parts,
        Err(e) => {
            debug_assert!(false, "volatility spec rejected: {e}");
            return InstanceOutcome {
                cell,
                makespans: vec![sim.max_slots; heuristics.len()],
                completed: vec![false; heuristics.len()],
            };
        }
    };
    let trace = match model {
        // Correlated rows replace the per-worker sampling; the base worker
        // streams inside the row source use the exact per-processor seeds of
        // the independent path, so identity models reproduce it bit for bit.
        Some(model) => match model.build(&scenario.platform, &trace_path) {
            Ok(rows) => SharedTraceMatrix::record_rows(Box::new(rows)),
            Err(e) => {
                debug_assert!(false, "volatility spec rejected: {e}");
                return InstanceOutcome {
                    cell,
                    makespans: vec![sim.max_slots; heuristics.len()],
                    completed: vec![false; heuristics.len()],
                };
            }
        },
        None => {
            let live: Vec<Box<dyn AvailabilitySource>> = scenario
                .platform
                .processors
                .iter()
                .enumerate()
                .map(|(q, pc)| pc.avail.build_source(trace_path.child(q as u64).rng()))
                .collect();
            SharedTraceMatrix::record(live)
        }
    };
    let mut makespans = Vec::with_capacity(heuristics.len());
    let mut completed = Vec::with_capacity(heuristics.len());
    for (h, kind) in heuristics.iter().enumerate() {
        match arena.run_shared_trace_overlay(
            &scenario.platform,
            &scenario.app,
            kind.build(sched_path.child(h as u64).rng()),
            chains,
            &trace,
            script.as_ref(),
            sim,
        ) {
            Ok(outcome) => {
                makespans.push(outcome.makespan_or_cap());
                completed.push(outcome.finished());
            }
            Err(e) => {
                // Scenario generators only emit valid configs, but an
                // engine-rejected one must not abort a multi-hour campaign:
                // score it as a capped run (a lower bound that can never
                // win), exactly like a run that burned its slot cap.
                debug_assert!(false, "scenario config rejected: {e}");
                makespans.push(sim.max_slots);
                completed.push(false);
            }
        }
    }
    InstanceOutcome {
        cell,
        makespans,
        completed,
    }
}

/// Runs one instance with a **fresh engine per run** (the PR 1 path): every
/// heuristic on byte-identical availability, no buffer reuse.
#[must_use]
pub fn run_instance_fresh(
    scenario: &Scenario,
    heuristics: &[HeuristicKind],
    master_seed: u64,
    cell: usize,
    scenario_idx: usize,
    trial: u64,
    sim: SimOptions,
) -> InstanceOutcome {
    let (trace_path, sched_path) = instance_seeds(master_seed, cell, scenario_idx, trial);
    let p = scenario.platform.p();
    let chaos = scenario
        .params
        .volatility
        .fault_script(p)
        .and_then(|script| {
            let model = scenario.params.volatility.correlated_model(p)?;
            Ok((script, model))
        });
    let (script, model) = match chaos {
        Ok(parts) => parts,
        Err(e) => {
            debug_assert!(false, "volatility spec rejected: {e}");
            return InstanceOutcome {
                cell,
                makespans: vec![sim.max_slots; heuristics.len()],
                completed: vec![false; heuristics.len()],
            };
        }
    };
    let mut makespans = Vec::with_capacity(heuristics.len());
    let mut completed = Vec::with_capacity(heuristics.len());
    for (h, kind) in heuristics.iter().enumerate() {
        let report = run_fresh_one(
            scenario,
            *kind,
            &sched_path.child(h as u64),
            &trace_path,
            script.as_ref(),
            model.as_ref(),
            sim,
        );
        match report {
            Ok(report) => {
                makespans.push(report.makespan_or_cap());
                completed.push(report.finished());
            }
            Err(e) => {
                // Same capped-run scoring as `run_instance_in`: the two
                // runners must stay bit-identical on every path, rejected
                // configurations included.
                debug_assert!(false, "scenario config rejected: {e}");
                makespans.push(sim.max_slots);
                completed.push(false);
            }
        }
    }
    InstanceOutcome {
        cell,
        makespans,
        completed,
    }
}

/// One fresh-engine run of `run_instance_fresh`, chaos layers included —
/// the reference twin of the arena's shared-trace-plus-overlay path.
fn run_fresh_one(
    scenario: &Scenario,
    kind: HeuristicKind,
    sched_seed: &SeedPath,
    trace_path: &SeedPath,
    script: Option<&CompiledScript>,
    model: Option<&vg_platform::volatility::CorrelatedModel>,
    sim: SimOptions,
) -> Result<vg_sim::SimReport, vg_platform::ConfigError> {
    let mut engine = match model {
        Some(model) => Simulation::<WorkerSoA>::new_rows_in(
            &scenario.platform,
            &scenario.app,
            kind.build(sched_seed.rng()),
            Box::new(model.build(&scenario.platform, trace_path)?),
            sim,
        )?,
        None => Simulation::<WorkerSoA>::new_seeded(
            &scenario.platform,
            &scenario.app,
            kind.build(sched_seed.rng()),
            *trace_path,
            sim,
        )?,
    };
    if let Some(script) = script {
        engine.set_overlay(ScriptedOverlay::new(script.clone()))?;
    }
    Ok(engine.run())
}

/// Runs one instance, returning makespans in heuristic order (slot cap when
/// incomplete). Compatibility shim over [`run_instance_fresh`]; callers that
/// care about completion status or throughput should use
/// [`run_instance_fresh`] / [`run_instance_in`].
#[must_use]
pub fn run_instance(
    scenario: &Scenario,
    heuristics: &[HeuristicKind],
    master_seed: u64,
    cell: usize,
    scenario_idx: usize,
    trial: u64,
    sim: SimOptions,
) -> Vec<Slot> {
    run_instance_fresh(
        scenario,
        heuristics,
        master_seed,
        cell,
        scenario_idx,
        trial,
        sim,
    )
    .makespans
}

fn empty_result(cells: &[ScenarioParams], cfg: &CampaignConfig) -> CampaignResult {
    CampaignResult {
        cells: cells.to_vec(),
        heuristics: cfg.heuristics.clone(),
        cell_stats: (0..cells.len())
            .map(|_| CellStats::new(cfg.heuristics.len()))
            .collect(),
        instances: 0,
        outcomes: cfg.keep_outcomes.then(Vec::new),
    }
}

/// Runs a campaign over `cells` through the batched, arena-reusing pipeline
/// (see the module docs). Bit-identical to [`run_campaign_reference`] at any
/// [`ParallelismConfig`].
#[must_use]
pub fn run_campaign(cells: &[ScenarioParams], cfg: &CampaignConfig) -> CampaignResult {
    let mut units = Vec::with_capacity(cells.len() * cfg.scenarios_per_cell);
    for cell in 0..cells.len() {
        for scenario in 0..cfg.scenarios_per_cell {
            units.push(ScenarioUnit { cell, scenario });
        }
    }
    let mut result = empty_result(cells, cfg);
    let root = SeedPath::root(cfg.master_seed);
    // A handful of scenarios per claim keeps the atomic/channel overhead
    // negligible while staying fine-grained enough to balance makespan
    // variance across threads.
    let chunk = (units.len() / (cfg.parallelism.threads() * 8)).clamp(1, 4);
    par_map_init_consume(
        &units,
        cfg.parallelism,
        chunk,
        SimArena::new,
        |arena, unit| {
            let scenario_seed = root
                .child_str("scenario")
                .child(unit.cell as u64)
                .child(unit.scenario as u64);
            let scenario = make_scenario(cells[unit.cell], scenario_seed);
            // Chain statistics are a pure function of the platform: compute
            // them once per scenario, share across trials × heuristics.
            let chains = platform_chain_stats(&scenario.platform);
            (0..cfg.trials)
                .map(|trial| {
                    run_instance_in(
                        arena,
                        &scenario,
                        &chains,
                        &cfg.heuristics,
                        cfg.master_seed,
                        unit.cell,
                        unit.scenario,
                        trial,
                        cfg.sim,
                    )
                })
                .collect::<Vec<InstanceOutcome>>()
        },
        |_, unit_outcomes| {
            for outcome in unit_outcomes {
                result.cell_stats[outcome.cell].absorb(&outcome);
                result.instances += 1;
                if let Some(kept) = &mut result.outcomes {
                    kept.push(outcome);
                }
            }
        },
    );
    result
}

/// The PR 1 **per-unit reference runner**: one work item per (scenario,
/// trial), a fresh platform and a fresh engine for every run, results
/// collected then folded. Kept as the bit-identity oracle for
/// [`run_campaign`]'s batched pipeline and as the baseline of the campaign
/// throughput bench; prefer [`run_campaign`] everywhere else.
#[must_use]
pub fn run_campaign_reference(cells: &[ScenarioParams], cfg: &CampaignConfig) -> CampaignResult {
    #[derive(Clone, Copy)]
    struct WorkUnit {
        cell: usize,
        scenario: usize,
        trial: u64,
    }
    let mut units = Vec::with_capacity(cells.len() * cfg.scenarios_per_cell * cfg.trials as usize);
    for cell in 0..cells.len() {
        for scenario in 0..cfg.scenarios_per_cell {
            for trial in 0..cfg.trials {
                units.push(WorkUnit {
                    cell,
                    scenario,
                    trial,
                });
            }
        }
    }
    let root = SeedPath::root(cfg.master_seed);
    let all: Vec<InstanceOutcome> = par_map(&units, cfg.parallelism, |unit| {
        let scenario_seed = root
            .child_str("scenario")
            .child(unit.cell as u64)
            .child(unit.scenario as u64);
        let scenario = make_scenario(cells[unit.cell], scenario_seed);
        run_instance_fresh(
            &scenario,
            &cfg.heuristics,
            cfg.master_seed,
            unit.cell,
            unit.scenario,
            unit.trial,
            cfg.sim,
        )
    });
    let mut result = empty_result(cells, cfg);
    for outcome in all {
        result.cell_stats[outcome.cell].absorb(&outcome);
        result.instances += 1;
        if let Some(kept) = &mut result.outcomes {
            kept.push(outcome);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(heuristics: Vec<HeuristicKind>) -> CampaignConfig {
        CampaignConfig {
            heuristics,
            scenarios_per_cell: 2,
            trials: 1,
            master_seed: 7,
            parallelism: ParallelismConfig::Sequential,
            sim: SimOptions {
                max_slots: 200_000,
                ..SimOptions::default()
            },
            keep_outcomes: false,
        }
    }

    fn tiny_cells() -> Vec<ScenarioParams> {
        vec![
            ScenarioParams {
                p: 6,
                ..ScenarioParams::paper(5, 5, 1)
            },
            ScenarioParams {
                p: 6,
                ..ScenarioParams::paper(5, 5, 3)
            },
        ]
    }

    #[test]
    fn campaign_runs_and_aggregates() {
        let cfg = tiny_config(vec![
            HeuristicKind::Mct,
            HeuristicKind::Emct,
            HeuristicKind::Random,
        ]);
        let result = run_campaign(&tiny_cells(), &cfg);
        assert_eq!(result.instances, 4);
        assert_eq!(result.scored_instances(), 4);
        assert_eq!(result.capped_instances(), 0);
        assert_eq!(result.degenerate_instances(), 0);
        assert!(result.outcomes.is_none(), "streaming mode drops outcomes");
        let summaries = result.summarize();
        assert_eq!(summaries.len(), 3);
        // Every instance has at least one winner; ties allowed.
        let total_wins: u64 = summaries.iter().map(|s| s.wins).sum();
        assert!(total_wins >= 4);
        // The best heuristic has dfb mean 0 only if it always wins; all
        // dfbs are non-negative.
        for s in &summaries {
            assert!(s.dfb.mean() >= 0.0, "{}: {}", s.kind, s.dfb.mean());
            assert_eq!(s.dfb.count(), 4);
            assert_eq!(s.capped_runs, 0);
        }
        // Sorted ascending by mean dfb.
        for pair in summaries.windows(2) {
            assert!(pair[0].dfb.mean() <= pair[1].dfb.mean());
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let mut cfg = tiny_config(vec![HeuristicKind::Mct, HeuristicKind::Lw]);
        cfg.keep_outcomes = true;
        let a = run_campaign(&tiny_cells(), &cfg);
        let b = run_campaign(&tiny_cells(), &cfg);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.cell_stats, b.cell_stats);
    }

    #[test]
    fn parallel_equals_sequential() {
        let mut cfg = tiny_config(vec![HeuristicKind::Mct, HeuristicKind::Ud]);
        cfg.keep_outcomes = true;
        let seq = run_campaign(&tiny_cells(), &cfg);
        cfg.parallelism = ParallelismConfig::fixed(4);
        let par = run_campaign(&tiny_cells(), &cfg);
        assert_eq!(seq.outcomes, par.outcomes);
        // The in-order streaming fold makes even the floating-point
        // aggregates bit-identical, not merely close.
        assert_eq!(seq.cell_stats, par.cell_stats);
    }

    #[test]
    fn batched_is_bit_identical_to_reference_runner() {
        // The acceptance gate: batched + parallel + arena-reusing must
        // reproduce the per-unit, fresh-engine-per-run PR 1 path bit for
        // bit — outcomes AND folded statistics.
        let mut cfg = tiny_config(vec![
            HeuristicKind::Mct,
            HeuristicKind::EmctStar,
            HeuristicKind::Random2w,
        ]);
        cfg.trials = 2;
        cfg.keep_outcomes = true;
        let reference = run_campaign_reference(&tiny_cells(), &cfg);
        cfg.parallelism = ParallelismConfig::fixed(4);
        let batched = run_campaign(&tiny_cells(), &cfg);
        assert_eq!(reference.instances, 8);
        assert_eq!(batched.instances, 8);
        assert_eq!(reference.outcomes, batched.outcomes);
        assert_eq!(reference.cell_stats, batched.cell_stats);
    }

    #[test]
    fn chaos_families_stay_bit_identical_across_runners() {
        // The volatility layer must preserve the batched ≡ reference
        // contract: shared-trace-plus-overlay in the arena vs fresh engines
        // with row sources / set_overlay, same bits either way.
        use crate::scenario::VolatilitySpec;
        let families = [
            VolatilitySpec::MassKill {
                pct: 50,
                at: 10,
                lasts: 40,
            },
            VolatilitySpec::CorrelatedBursts {
                groups: 3,
                p_fail: 0.02,
                p_recover: 0.05,
            },
            VolatilitySpec::Diurnal {
                groups: 2,
                period: 40,
                off_len: 15,
                stagger: 20,
            },
        ];
        let mut cfg = tiny_config(vec![HeuristicKind::Mct, HeuristicKind::EmctStar]);
        cfg.keep_outcomes = true;
        let baseline = run_campaign(&tiny_cells(), &cfg);
        for family in families {
            let cells: Vec<ScenarioParams> = tiny_cells()
                .into_iter()
                .map(|c| c.with_volatility(family))
                .collect();
            let reference = run_campaign_reference(&cells, &cfg);
            let mut par_cfg = cfg.clone();
            par_cfg.parallelism = ParallelismConfig::fixed(4);
            let batched = run_campaign(&cells, &par_cfg);
            assert_eq!(
                reference.outcomes, batched.outcomes,
                "{family:?}: batched diverged from reference"
            );
            assert_eq!(reference.cell_stats, batched.cell_stats);
            // And the chaos must actually bite: at least one makespan moves
            // relative to the independent baseline.
            assert_ne!(
                baseline.outcomes, batched.outcomes,
                "{family:?}: chaos changed nothing"
            );
        }
    }

    #[test]
    fn forced_cap_instances_do_not_pollute_wins_or_dfb() {
        // A cap so tight nothing can finish: every instance is capped, so
        // no heuristic may record a win or a dfb observation.
        let mut cfg = tiny_config(vec![HeuristicKind::Mct, HeuristicKind::Emct]);
        cfg.sim.max_slots = 3;
        let result = run_campaign(&tiny_cells(), &cfg);
        assert_eq!(result.instances, 4);
        assert_eq!(result.capped_instances(), 4);
        assert_eq!(result.scored_instances(), 0);
        let summaries = result.summarize();
        for s in &summaries {
            assert_eq!(
                s.wins, 0,
                "{}: capped instances must not count wins",
                s.kind
            );
            assert_eq!(
                s.dfb.count(),
                0,
                "{}: capped instances must not enter dfb",
                s.kind
            );
        }
        // The summary sort must survive the all-empty (mean 0) case.
        assert_eq!(summaries.len(), 2);
        // by_wmin on a fully-capped campaign: finite, no panic.
        let (wmins, series) = result.by_wmin(&[HeuristicKind::Mct]);
        assert_eq!(wmins, vec![1, 3]);
        assert!(series[0].iter().all(|v| v.is_finite()));
    }

    #[test]
    fn partially_capped_instance_charges_cap_but_never_wins() {
        let mut stats = CellStats::new(2);
        // Heuristic 0 finished in 10; heuristic 1 burned a 10-slot cap.
        // Identical numbers — but the cap must not tie-win.
        stats.absorb(&InstanceOutcome {
            cell: 0,
            makespans: vec![10, 10],
            completed: vec![true, false],
        });
        assert_eq!(stats.scored_instances, 1);
        assert_eq!(stats.wins, vec![1, 0]);
        assert_eq!(stats.capped_runs, vec![0, 1]);
        assert_eq!(stats.dfb[0].count(), 1);
        assert_eq!(stats.dfb[0].mean(), 0.0);
        // The capped run is charged its lower-bound dfb (here 0%).
        assert_eq!(stats.dfb[1].count(), 1);

        // A capped run far beyond the best is charged the full gap.
        stats.absorb(&InstanceOutcome {
            cell: 0,
            makespans: vec![10, 50],
            completed: vec![true, false],
        });
        assert_eq!(stats.dfb[1].count(), 2);
        assert_eq!(stats.dfb[1].max(), 400.0);
        assert_eq!(stats.wins, vec![2, 0]);
    }

    #[test]
    fn degenerate_best_zero_is_excluded_not_nan() {
        let mut stats = CellStats::new(2);
        stats.absorb(&InstanceOutcome {
            cell: 0,
            makespans: vec![0, 0],
            completed: vec![true, true],
        });
        assert_eq!(stats.degenerate_instances, 1);
        assert_eq!(stats.scored_instances, 0);
        assert_eq!(stats.wins, vec![0, 0]);
        assert_eq!(stats.dfb[0].count(), 0);

        // Summarizing a result containing only degenerate instances must
        // yield finite means and a panic-free sort.
        let result = CampaignResult {
            cells: vec![ScenarioParams::paper(5, 5, 1)],
            heuristics: vec![HeuristicKind::Mct, HeuristicKind::Emct],
            cell_stats: vec![stats],
            instances: 1,
            outcomes: None,
        };
        let summaries = result.summarize();
        assert_eq!(summaries.len(), 2);
        for s in &summaries {
            assert!(s.dfb.mean().is_finite());
            assert_eq!(s.dfb.count(), 0);
        }
        assert_eq!(result.degenerate_instances(), 1);
    }

    #[test]
    fn by_wmin_produces_one_point_per_value() {
        let cfg = tiny_config(vec![HeuristicKind::Mct, HeuristicKind::Emct]);
        let result = run_campaign(&tiny_cells(), &cfg);
        let (wmins, series) = result.by_wmin(&[HeuristicKind::Mct, HeuristicKind::Emct]);
        assert_eq!(wmins, vec![1, 3]);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].len(), 2);
    }

    #[test]
    fn by_wmin_skips_kinds_absent_from_the_campaign() {
        // Asking to plot a heuristic that never ran must not panic after a
        // finished campaign — it yields an empty series instead.
        let cfg = tiny_config(vec![HeuristicKind::Mct]);
        let result = run_campaign(&tiny_cells(), &cfg);
        let (wmins, series) = result.by_wmin(&[HeuristicKind::Mct, HeuristicKind::Emct]);
        assert_eq!(wmins, vec![1, 3]);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].len(), 2, "present kind gets its full series");
        assert!(series[1].is_empty(), "absent kind yields an empty series");
    }

    #[test]
    fn filtered_summary_restricts_instances() {
        let cfg = tiny_config(vec![HeuristicKind::Mct]);
        let result = run_campaign(&tiny_cells(), &cfg);
        let all = result.summarize();
        let only_w1 = result.summarize_filtered(|c| c.wmin == 1);
        assert_eq!(all[0].dfb.count(), 4);
        assert_eq!(only_w1[0].dfb.count(), 2);
    }

    #[test]
    fn kept_outcomes_match_instance_order() {
        let mut cfg = tiny_config(vec![HeuristicKind::Mct, HeuristicKind::Emct]);
        cfg.keep_outcomes = true;
        cfg.trials = 2;
        let result = run_campaign(&tiny_cells(), &cfg);
        let outcomes = result.outcomes.as_ref().expect("kept");
        assert_eq!(outcomes.len(), result.instances);
        // (cell, scenario, trial) lexicographic order: cells change slowest.
        let cells_seen: Vec<usize> = outcomes.iter().map(|o| o.cell).collect();
        assert_eq!(cells_seen, vec![0, 0, 0, 0, 1, 1, 1, 1]);
        for o in outcomes {
            assert_eq!(o.makespans.len(), 2);
            assert_eq!(o.completed.len(), 2);
        }
    }
}
