//! Model-misspecification study (the paper's Section-8 future work).
//!
//! The paper's heuristics assume Markov availability, but real desktop-grid
//! interval durations are Weibull/log-normal. This module builds scenarios
//! whose *true* availability is a semi-Markov process with heavy-tailed
//! sojourns, while the scheduler reasons with a Markov chain *fitted* to a
//! training trace (maximum-likelihood estimation, exactly what a production
//! master would do). Running the standard campaign on such scenarios
//! measures how much of the failure-aware heuristics' advantage survives
//! when the memoryless assumption is wrong.

use vg_des::rng::SeedPath;
use vg_des::SlotSpan;
use vg_markov::availability::ProcState;
use vg_markov::dist::SojournDist;
use vg_markov::estimate::TransitionCounts;
use vg_markov::semi_markov::{SemiMarkovModel, SemiMarkovStream};
use vg_platform::{
    AppConfig, AvailabilityModelConfig, PlatformConfig, ProcessorConfig, ProcessorSpec, StartPolicy,
};

use crate::scenario::{Scenario, ScenarioParams};

/// How the semi-Markov truth is parameterized per processor.
#[derive(Debug, Clone, Copy)]
pub struct RobustnessParams {
    /// Weibull shape of the `UP` sojourn (< 1 ⇒ heavy-tailed, the regime
    /// reported for desktop grids).
    pub up_shape: f64,
    /// Mean `UP` sojourn in slots (scale derives from it).
    pub up_mean: f64,
    /// Slots of training trace used to fit the scheduler's Markov belief.
    pub training_slots: usize,
}

impl Default for RobustnessParams {
    fn default() -> Self {
        Self {
            up_shape: 0.7,
            up_mean: 40.0,
            training_slots: 20_000,
        }
    }
}

/// Builds a heavy-tailed desktop model with the requested mean UP sojourn.
#[must_use]
pub fn desktop_model(rp: &RobustnessParams, jitter: f64) -> SemiMarkovModel {
    // Scale so that the continuous Weibull mean matches up_mean·jitter:
    // E[Weibull(λ, k)] = λ Γ(1 + 1/k)  ⇒  λ = mean / Γ(1 + 1/k).
    let mean = rp.up_mean * jitter;
    let scale = mean / vg_markov::dist::gamma_fn(1.0 + 1.0 / rp.up_shape);
    SemiMarkovModel::new(
        [[0.0, 0.85, 0.15], [0.90, 0.0, 0.10], [1.0, 0.0, 0.0]],
        [
            SojournDist::Weibull {
                scale,
                shape: rp.up_shape,
            },
            SojournDist::LogNormal {
                mu: 1.5,
                sigma: 0.8,
            },
            SojournDist::Weibull {
                scale: 2.0 * mean,
                shape: 1.0,
            },
        ],
    )
    .expect("template parameters are valid")
}

/// Fits a Markov chain to a training trace of the model (MLE with light
/// smoothing so unseen rows stay well-defined).
#[must_use]
pub fn fit_belief(
    model: &SemiMarkovModel,
    training_slots: usize,
    seed: SeedPath,
) -> vg_markov::AvailabilityChain {
    let mut stream = SemiMarkovStream::new(model.clone(), ProcState::Up, seed.rng());
    let mut counts = TransitionCounts::new();
    let trace: Vec<ProcState> = (0..training_slots).map(|_| stream.next_state()).collect();
    counts.observe_trace(&trace);
    counts
        .estimate(1.0)
        .expect("smoothed estimation always succeeds")
}

/// Samples a robustness scenario: true availability is semi-Markov, the
/// scheduler's belief is a fitted Markov chain.
#[must_use]
pub fn make_robustness_scenario(
    params: ScenarioParams,
    rp: &RobustnessParams,
    seed: SeedPath,
) -> Scenario {
    let mut rng = seed.rng();
    let processors = (0..params.p)
        .map(|q| {
            // Per-processor jitter keeps the platform heterogeneous.
            let jitter = rng.f64_range(0.5, 2.0);
            let model = desktop_model(rp, jitter);
            let belief = fit_belief(&model, rp.training_slots, seed.child(1_000 + q as u64));
            let w = rng.u64_range_inclusive(params.wmin, 10 * params.wmin);
            ProcessorConfig {
                spec: ProcessorSpec::new(w),
                avail: AvailabilityModelConfig::SemiMarkov {
                    model,
                    start: StartPolicy::Up,
                },
                believed: Some(belief),
            }
        })
        .collect();
    Scenario {
        params,
        platform: PlatformConfig {
            processors,
            ncom: params.ncom,
        },
        app: AppConfig {
            tasks_per_iteration: params.n_tasks,
            iterations: params.iterations,
            t_prog: params.t_prog(),
            t_data: params.t_data(),
        },
    }
}

/// Mean `UP` occupancy implied by `rp` (sanity metric for reports).
#[must_use]
pub fn expected_up_occupancy(rp: &RobustnessParams) -> f64 {
    desktop_model(rp, 1.0).occupancy()[ProcState::Up.index()]
}

/// Scales a [`SlotSpan`] workload to the model's time base (helper for
/// report annotations: tasks per mean UP interval).
#[must_use]
pub fn tasks_per_up_interval(rp: &RobustnessParams, w: SlotSpan) -> f64 {
    rp.up_mean / w as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desktop_model_mean_matches_request() {
        let rp = RobustnessParams::default();
        let model = desktop_model(&rp, 1.0);
        let mean = model.sojourn()[0].approx_mean();
        assert!(
            (mean - rp.up_mean).abs() < 1.5,
            "requested {} got {mean}",
            rp.up_mean
        );
    }

    #[test]
    fn fitted_belief_is_plausible() {
        let rp = RobustnessParams::default();
        let model = desktop_model(&rp, 1.0);
        let belief = fit_belief(&model, 50_000, SeedPath::root(3));
        // Mean UP sojourn 40 ⇒ P(stay UP) ≈ 1 − 1/40.
        assert!(belief.p_uu() > 0.9, "p_uu = {}", belief.p_uu());
        // Fitted chain's stationary UP mass should be near the true
        // occupancy.
        let occ = model.occupancy()[0];
        let pi = belief.stationary()[0];
        assert!((occ - pi).abs() < 0.1, "occ {occ} vs π_u {pi}");
    }

    #[test]
    fn robustness_scenario_builds_and_validates() {
        let params = ScenarioParams {
            p: 4,
            ..ScenarioParams::paper(5, 5, 2)
        };
        let rp = RobustnessParams {
            training_slots: 2_000,
            ..RobustnessParams::default()
        };
        let s = make_robustness_scenario(params, &rp, SeedPath::root(11));
        assert!(s.platform.validate().is_ok());
        assert_eq!(s.platform.p(), 4);
        for pc in &s.platform.processors {
            assert!(pc.believed.is_some());
            assert!(matches!(
                pc.avail,
                AvailabilityModelConfig::SemiMarkov { .. }
            ));
        }
    }

    #[test]
    fn scenario_is_reproducible() {
        let params = ScenarioParams {
            p: 3,
            ..ScenarioParams::paper(5, 5, 1)
        };
        let rp = RobustnessParams {
            training_slots: 1_000,
            ..RobustnessParams::default()
        };
        let a = make_robustness_scenario(params, &rp, SeedPath::root(5));
        let b = make_robustness_scenario(params, &rp, SeedPath::root(5));
        assert_eq!(a.platform, b.platform);
    }

    #[test]
    fn occupancy_metric_is_sane() {
        let occ = expected_up_occupancy(&RobustnessParams::default());
        assert!(occ > 0.3 && occ < 0.95, "{occ}");
        assert!((tasks_per_up_interval(&RobustnessParams::default(), 10) - 4.0).abs() < 1e-9);
    }
}
