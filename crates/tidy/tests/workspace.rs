//! The gate, as a test: the committed workspace must be tidy-clean. This is
//! what keeps the fixtures honest (they are excluded from the walk) and what
//! fails `cargo test` locally before CI would.

use std::path::Path;

#[test]
fn workspace_is_tidy_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = vg_tidy::run_from_root(&root).expect("tidy pass runs");
    assert!(report.files_scanned > 50, "walk found the workspace");
    let rendered: Vec<String> = report.findings.iter().map(ToString::to_string).collect();
    assert!(
        report.is_clean(),
        "workspace has tidy findings:\n{}",
        rendered.join("\n")
    );
}
