//! Self-tests: every rule must fire on its fixture file, exactly where the
//! fixture says it should, and nowhere else.

use vg_tidy::config::Config;
use vg_tidy::rules::{check_file, FileMeta, Finding};

/// Loads a fixture and checks it as if it were library code at `rel`.
fn run(fixture: &str, rel: &str, config: &Config) -> Vec<Finding> {
    let path = format!("{}/fixtures/{fixture}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let meta = FileMeta {
        rel: rel.to_string(),
        crate_dir: rel.split('/').take(2).collect::<Vec<_>>().join("/"),
        is_lib: true,
    };
    check_file(&meta, &src, config).findings
}

fn config() -> Config {
    Config::parse_str(
        r#"
[wall_clock]
allow_crates = ["crates/bench"]

[float_cmp]
allow = []

[hot_alloc]
paths = ["crates/fake/src/hot.rs"]
"#,
    )
    .expect("fixture config parses")
}

/// (rule, line) pairs, sorted — the shape the assertions compare.
fn fired(findings: &[Finding]) -> Vec<(&'static str, u32)> {
    let mut v: Vec<(&'static str, u32)> = findings.iter().map(|f| (f.rule, f.line)).collect();
    v.sort_unstable();
    v
}

#[test]
fn default_hasher_fires() {
    let f = run("default_hasher.rs", "crates/fake/src/lib.rs", &config());
    assert_eq!(
        fired(&f),
        vec![
            ("default_hasher", 4),
            ("default_hasher", 6),
            ("default_hasher", 9)
        ]
    );
}

#[test]
fn wall_clock_fires_and_respects_crate_allowlist() {
    let cfg = config();
    let f = run("wall_clock.rs", "crates/fake/src/lib.rs", &cfg);
    assert_eq!(
        fired(&f),
        vec![("wall_clock", 3), ("wall_clock", 6), ("wall_clock", 10)]
    );
    // The same file inside an allowlisted crate is clean.
    let f = run("wall_clock.rs", "crates/bench/src/lib.rs", &cfg);
    assert_eq!(fired(&f), vec![]);
}

#[test]
fn float_cmp_fires_on_literal_comparisons_only() {
    let f = run("float_cmp.rs", "crates/fake/src/lib.rs", &config());
    assert_eq!(fired(&f), vec![("float_cmp", 5), ("float_cmp", 6)]);
}

#[test]
fn hot_alloc_fires_only_in_declared_hot_files() {
    let cfg = config();
    // Not declared hot: the alloc idioms are silent — so the fixture's
    // waiver has nothing to suppress and is itself flagged as unused.
    let f = run("hot_alloc.rs", "crates/fake/src/cold.rs", &cfg);
    assert_eq!(fired(&f), vec![("waiver", 12)]);
    // Declared hot: one finding per idiom, waived line excluded.
    let f = run("hot_alloc.rs", "crates/fake/src/hot.rs", &cfg);
    assert_eq!(
        fired(&f),
        vec![
            ("hot_alloc", 5),  // vec!
            ("hot_alloc", 6),  // collect
            ("hot_alloc", 7),  // format!
            ("hot_alloc", 8),  // Box::new
            ("hot_alloc", 9),  // String::from
            ("hot_alloc", 10), // .clone()
            ("hot_alloc", 11), // .to_vec()
        ]
    );
}

#[test]
fn unsafe_safety_fires_on_uncommented_unsafe_only() {
    let f = run("unsafe_safety.rs", "crates/fake/src/lib.rs", &config());
    assert_eq!(fired(&f), vec![("unsafe_safety", 7), ("unsafe_safety", 18)]);
}

#[test]
fn waiver_hygiene_is_enforced() {
    let f = run("waivers.rs", "crates/fake/src/lib.rs", &config());
    assert_eq!(
        fired(&f),
        vec![("waiver", 4), ("waiver", 7), ("waiver", 10)]
    );
}
