//! Fixture: the `wall_clock` rule must fire on both uses below.

pub fn now() -> std::time::Instant {
    // "Instant" in a comment or string is fine.
    let _s = "std::time::Instant";
    std::time::Instant::now()
}

pub fn stamp() {
    let _ = std::time::SystemTime::now();
}
