//! Fixture: the `default_hasher` rule must fire on both lines below —
//! and only on them (the string, comment, and test-mod mentions are noise).

use std::collections::HashMap;

pub fn build() -> HashSet<u32> {
    // HashMap in a comment does not count.
    let _doc = "a HashSet in a string does not count";
    HashSet::new()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let _m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    }
}
