//! Fixture: the `unsafe_safety` rule must fire on the bare block and the
//! bare impl, and stay quiet on the commented ones and on `unsafe fn`.

pub unsafe fn caller_beware() {} // declaration: obligation is on callers

pub fn bad(p: *const u8) -> u8 {
    unsafe { *p } // fires: no SAFETY comment
}

pub fn good(p: *const u8) -> u8 {
    // SAFETY: fixture pretends `p` is valid for reads; the point is the
    // comment shape, spanning two lines, directly above the block.
    unsafe { *p }
}

pub struct Marker;

unsafe impl Send for Marker {} // fires: no SAFETY comment

pub struct Marker2;

// SAFETY: Marker2 holds no data at all.
unsafe impl Send for Marker2 {}
