//! Fixture: the `float_cmp` rule must fire on the two literal comparisons
//! below; integer comparisons and ranges must not fire.

pub fn checks(x: f64, n: u64) -> bool {
    let a = x == 1.0; // fires
    let b = 0.5 != x; // fires
    let c = n == 1; // integer: no finding
    let d = (1..2).contains(&(n as usize)); // range dots are not floats
    a || b || c || d
}
