//! Fixture: waiver hygiene — malformed, unknown-rule, reason-less, and
//! unused waivers are all findings in their own right.

// tidy:allow(no_such_rule): unknown rule name — fires
pub fn a() {}

// tidy:allow(wall_clock)
pub fn missing_reason() {}

// tidy:allow(wall_clock): nothing on the next line uses a clock — unused, fires
pub fn c() {}
