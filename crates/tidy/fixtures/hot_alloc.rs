//! Fixture: with this file declared hot, every allocation idiom below must
//! fire once — except the waived one and the test-mod one.

pub fn churn(xs: &[u64]) -> Vec<u64> {
    let v = vec![0u64; xs.len()];
    let w: Vec<u64> = xs.iter().copied().collect();
    let s = format!("{}", xs.len());
    let b = Box::new(xs.len());
    let t = String::from("hot");
    let c = v.clone();
    let y = xs.to_vec();
    // tidy:allow(hot_alloc): waived on purpose — the self-test counts this as used.
    let z = y.clone();
    drop((w, s, b, t, c, z));
    Vec::new()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let _ = vec![1, 2, 3].clone();
    }
}
