//! The lint rules, run over the token stream of one file at a time.
//!
//! Scope vocabulary (decided by the walker, consumed here):
//!
//! - **library code**: files under a `src/` directory that are not in a
//!   `src/bin/` subtree. Integration tests, benches, examples, and binary
//!   targets are *not* library code — a progress `Instant::now()` in a CLI
//!   is fine; one in the engine is not.
//! - **test region**: the token range of any item annotated `#[cfg(test)]`
//!   (or any `cfg(...)` attribute mentioning `test`, e.g. `all(test, ...)`).
//!   Determinism / allocation / panic rules skip test regions.
//!
//! Every rule except the panic-surface ratchet honors inline waivers:
//!
//! ```text
//! // tidy:allow(rule_name): reason the invariant holds here anyway
//! ```
//!
//! on the offending line or the line directly above. The reason is
//! mandatory, unknown rule names are findings, and *unused* waivers are
//! findings too — a waiver must never outlive the code it excuses. The
//! ratchet instead uses the committed baseline (`tidy_baseline.toml`) as
//! its only escape hatch.

use crate::config::Config;
use crate::lexer::{lex, Lexed, Token, TokenKind};

/// Rule identifiers, as used in waivers and reports.
pub const RULES: &[&str] = &[
    "default_hasher",
    "wall_clock",
    "float_cmp",
    "hot_alloc",
    "unsafe_safety",
];

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule identifier (see [`RULES`]; plus `waiver` for waiver hygiene and
    /// `panic_ratchet` for baseline violations, reported by the runner).
    pub rule: &'static str,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// What the walker knows about a file before the rules run.
#[derive(Debug, Clone)]
pub struct FileMeta {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Ratchet bucket: `crates/<name>` for crate code, `src` for the root
    /// package's library.
    pub crate_dir: String,
    /// True for non-binary `src/` code (see module docs).
    pub is_lib: bool,
}

/// Per-file rule output.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Violations (waivers already applied).
    pub findings: Vec<Finding>,
    /// Lines of `unwrap`/`expect`/panic-macro sites in non-test library
    /// code, for the ratchet tally.
    pub panic_sites: Vec<u32>,
}

struct Waiver {
    /// Line the waiver comment ends on.
    line: u32,
    rule: String,
    used: bool,
}

/// Runs every rule over one file.
#[must_use]
pub fn check_file(meta: &FileMeta, src: &str, config: &Config) -> FileReport {
    let lexed = lex(src);
    let sig: Vec<usize> = lexed
        .tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .map(|(i, _)| i)
        .collect();
    let in_test = test_regions(&lexed, &sig);
    let mut report = FileReport::default();
    let waivers = collect_waivers(&lexed, meta, &mut report.findings);
    let mut check = FileCheck {
        meta,
        lexed,
        sig,
        in_test,
        waivers,
        report,
    };

    check.rule_default_hasher();
    check.rule_wall_clock(config);
    check.rule_float_cmp(config);
    check.rule_hot_alloc(config);
    check.rule_unsafe_safety();
    check.count_panic_sites();
    check.flag_unused_waivers();

    let mut report = check.report;
    report.findings.sort();
    report
}

/// Parses `tidy:allow(rule): reason` waivers out of comments. Malformed
/// waivers (unknown rule, missing reason) become findings directly.
fn collect_waivers(lexed: &Lexed<'_>, meta: &FileMeta, findings: &mut Vec<Finding>) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for t in &lexed.tokens {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let text = lexed.text(t);
        // Doc comments never carry waivers — they are documentation, and may
        // legitimately *describe* the waiver syntax (this crate's own docs
        // do). Waivers live in plain `//` / `/* */` comments only.
        if text.starts_with("///")
            || text.starts_with("//!")
            || text.starts_with("/**")
            || text.starts_with("/*!")
        {
            continue;
        }
        let Some(at) = text.find("tidy:allow(") else {
            continue;
        };
        let end_line = t.line + text.matches('\n').count() as u32;
        let rest = &text[at + "tidy:allow(".len()..];
        let Some(close) = rest.find(')') else {
            findings.push(Finding {
                file: meta.rel.clone(),
                line: t.line,
                rule: "waiver",
                msg: "malformed waiver: missing `)`".to_string(),
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if !RULES.contains(&rule.as_str()) {
            findings.push(Finding {
                file: meta.rel.clone(),
                line: t.line,
                rule: "waiver",
                msg: format!(
                    "waiver names unknown rule `{rule}` (known: {}; the panic \
                     ratchet is governed by tidy_baseline.toml, not waivers)",
                    RULES.join(", ")
                ),
            });
            continue;
        }
        if reason.is_empty() {
            findings.push(Finding {
                file: meta.rel.clone(),
                line: t.line,
                rule: "waiver",
                msg: format!(
                    "waiver for `{rule}` has no reason — write \
                     `tidy:allow({rule}): why this is sound`"
                ),
            });
            continue;
        }
        waivers.push(Waiver {
            line: end_line,
            rule,
            used: false,
        });
    }
    waivers
}

/// Marks, for each significant token, whether it lies inside an item
/// annotated with a `cfg` attribute that mentions `test`.
fn test_regions(lexed: &Lexed<'_>, sig: &[usize]) -> Vec<bool> {
    let n = sig.len();
    let mut mask = vec![false; n];
    let tok = |k: usize| &lexed.tokens[sig[k]];
    let text = |k: usize| lexed.text(tok(k));
    // Finds the index of the `]` matching the `[` at `open`.
    let close_bracket = |open: usize| -> usize {
        let mut depth = 0usize;
        let mut j = open;
        while j < n {
            match text(j) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        n
    };
    let mut k = 0;
    while k < n {
        // Outer attribute `#[ ... ]` (`#![...]` inner forms never wrap an
        // item region — skip them).
        if !(tok(k).kind == TokenKind::Punct && text(k) == "#") {
            k += 1;
            continue;
        }
        if k + 1 < n && text(k + 1) == "!" {
            k += 2;
            continue;
        }
        if !(k + 1 < n && text(k + 1) == "[") {
            k += 1;
            continue;
        }
        let attr_end = close_bracket(k + 1);
        if attr_end >= n {
            break;
        }
        let is_cfg_test = k + 2 < n && text(k + 2) == "cfg" && {
            let mut saw_test = false;
            for j in k + 3..attr_end {
                if tok(j).kind == TokenKind::Ident && text(j) == "test" {
                    saw_test = true;
                }
            }
            saw_test
        };
        if !is_cfg_test {
            k = attr_end + 1;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut item = attr_end + 1;
        while item + 1 < n && text(item) == "#" && text(item + 1) == "[" {
            item = close_bracket(item + 1) + 1;
        }
        // The item extends to the first `;` at brace depth 0, or to the
        // matching `}` of the first `{` it opens.
        let mut brace = 0usize;
        let mut m = item;
        let mut opened = false;
        while m < n {
            match text(m) {
                "{" => {
                    brace += 1;
                    opened = true;
                }
                "}" => {
                    brace -= 1;
                    if opened && brace == 0 {
                        break;
                    }
                }
                ";" if brace == 0 => break,
                _ => {}
            }
            m += 1;
        }
        let item_end = if n == 0 { 0 } else { m.min(n - 1) };
        for slot in mask.iter_mut().take(item_end + 1).skip(k) {
            *slot = true;
        }
        k = item_end + 1;
    }
    mask
}

struct FileCheck<'a> {
    meta: &'a FileMeta,
    lexed: Lexed<'a>,
    /// Indices into `lexed.tokens` of non-comment tokens.
    sig: Vec<usize>,
    /// Parallel to `sig`: true when the token sits inside a `#[cfg(test)]`
    /// item.
    in_test: Vec<bool>,
    waivers: Vec<Waiver>,
    report: FileReport,
}

impl FileCheck<'_> {
    fn tok(&self, k: usize) -> &Token {
        &self.lexed.tokens[self.sig[k]]
    }

    fn text(&self, k: usize) -> &str {
        self.lexed.text(&self.lexed.tokens[self.sig[k]])
    }

    fn is_ident(&self, k: usize, name: &str) -> bool {
        k < self.sig.len() && self.tok(k).kind == TokenKind::Ident && self.text(k) == name
    }

    fn is_punct(&self, k: usize, op: &str) -> bool {
        k < self.sig.len() && self.tok(k).kind == TokenKind::Punct && self.text(k) == op
    }

    /// Emits a finding unless a matching waiver covers its line.
    fn finding(&mut self, rule: &'static str, line: u32, msg: String) {
        for w in &mut self.waivers {
            if w.rule == rule && (w.line == line || w.line + 1 == line) {
                w.used = true;
                return;
            }
        }
        self.report.findings.push(Finding {
            file: self.meta.rel.clone(),
            line,
            rule,
            msg,
        });
    }

    fn flag_unused_waivers(&mut self) {
        let mut unused: Vec<(u32, String)> = Vec::new();
        for w in &self.waivers {
            if !w.used {
                unused.push((w.line, w.rule.clone()));
            }
        }
        for (line, rule) in unused {
            self.report.findings.push(Finding {
                file: self.meta.rel.clone(),
                line,
                rule: "waiver",
                msg: format!(
                    "unused waiver for `{rule}`: nothing on this or the next \
                     line triggers it — delete the waiver"
                ),
            });
        }
    }

    /// True when rule scanning should skip this token for "non-test library
    /// code" rules.
    fn skip_lib_rule(&self, k: usize) -> bool {
        !self.meta.is_lib || self.in_test[k]
    }

    // ----- determinism rules ------------------------------------------------

    fn rule_default_hasher(&mut self) {
        for k in 0..self.sig.len() {
            if self.skip_lib_rule(k) {
                continue;
            }
            if self.tok(k).kind == TokenKind::Ident {
                let name = self.text(k);
                if name == "HashMap" || name == "HashSet" {
                    let line = self.tok(k).line;
                    let msg = format!(
                        "`{name}` uses the per-process randomized default hasher; \
                         iteration order (and any order-dependent downstream) \
                         varies run to run — use `vg_des::det::Det{name}` \
                         (fixed-seed) or a BTree collection"
                    );
                    self.finding("default_hasher", line, msg);
                }
            }
        }
    }

    fn rule_wall_clock(&mut self, config: &Config) {
        if config
            .wall_clock_allow_crates
            .contains(&self.meta.crate_dir)
        {
            return;
        }
        for k in 0..self.sig.len() {
            if self.skip_lib_rule(k) {
                continue;
            }
            if self.tok(k).kind == TokenKind::Ident {
                let name = self.text(k);
                if name == "Instant" || name == "SystemTime" {
                    let line = self.tok(k).line;
                    let msg = format!(
                        "`{name}` reads the wall clock — simulated time must come \
                         from slots, not the host; timing belongs in vg-bench \
                         or binary targets"
                    );
                    self.finding("wall_clock", line, msg);
                }
            }
        }
    }

    fn rule_float_cmp(&mut self, config: &Config) {
        if config.float_cmp_allow.contains(&self.meta.rel) {
            return;
        }
        for k in 0..self.sig.len() {
            if self.skip_lib_rule(k) {
                continue;
            }
            if self.tok(k).kind != TokenKind::Punct {
                continue;
            }
            let op = self.text(k);
            if op != "==" && op != "!=" {
                continue;
            }
            let float_neighbor = |j: usize| {
                j < self.sig.len() && matches!(self.tok(j).kind, TokenKind::NumLit { float: true })
            };
            if (k > 0 && float_neighbor(k - 1)) || float_neighbor(k + 1) {
                let line = self.tok(k).line;
                let msg = format!(
                    "float `{op}` against a literal — exact float equality is a \
                     bit-identity hazard; use `total_cmp`, packed integer keys, \
                     or add the file to tidy.toml's [float_cmp] allowlist with \
                     a comment"
                );
                self.finding("float_cmp", line, msg);
            }
        }
    }

    // ----- hot-path allocation rule -----------------------------------------

    fn rule_hot_alloc(&mut self, config: &Config) {
        if !config.hot_paths.contains(&self.meta.rel) {
            return;
        }
        let mut hits: Vec<(u32, String)> = Vec::new();
        for k in 0..self.sig.len() {
            if self.in_test[k] {
                continue;
            }
            let t = self.tok(k);
            let line = t.line;
            match t.kind {
                TokenKind::Ident => {
                    let name = self.text(k);
                    if (name == "vec" || name == "format") && self.is_punct(k + 1, "!") {
                        hits.push((line, format!("`{name}!` allocates")));
                    } else if name == "Box"
                        && self.is_punct(k + 1, "::")
                        && self.is_ident(k + 2, "new")
                    {
                        hits.push((line, "`Box::new` allocates".to_string()));
                    } else if name == "String"
                        && self.is_punct(k + 1, "::")
                        && self.is_ident(k + 2, "from")
                    {
                        hits.push((line, "`String::from` allocates".to_string()));
                    }
                }
                TokenKind::Punct if self.text(k) == "." => {
                    if self.is_ident(k + 1, "collect") || self.is_ident(k + 1, "to_vec") {
                        hits.push((
                            self.tok(k + 1).line,
                            format!("`.{}()` allocates", self.text(k + 1)),
                        ));
                    } else if self.is_ident(k + 1, "clone")
                        && self.is_punct(k + 2, "(")
                        && self.is_punct(k + 3, ")")
                    {
                        hits.push((
                            self.tok(k + 1).line,
                            "`.clone()` may deep-copy heap storage".to_string(),
                        ));
                    }
                }
                _ => {}
            }
        }
        for (line, what) in hits {
            let msg = format!(
                "{what}, and this file is declared hot in tidy.toml — the slot \
                 loop must stay allocation-free (the runtime alloc-counter only \
                 covers three configs); hoist into scratch/setup or waive with \
                 the reason it is outside the hot loop"
            );
            self.finding("hot_alloc", line, msg);
        }
    }

    // ----- panic-surface ratchet (count only; runner compares) --------------

    fn count_panic_sites(&mut self) {
        for k in 0..self.sig.len() {
            if self.skip_lib_rule(k) {
                continue;
            }
            let t = self.tok(k);
            match t.kind {
                TokenKind::Punct
                    if self.text(k) == "."
                        && (self.is_ident(k + 1, "unwrap") || self.is_ident(k + 1, "expect"))
                        && self.is_punct(k + 2, "(") =>
                {
                    let line = self.tok(k + 1).line;
                    self.report.panic_sites.push(line);
                }
                TokenKind::Ident => {
                    let name = self.text(k);
                    if matches!(name, "panic" | "unreachable" | "todo" | "unimplemented")
                        && self.is_punct(k + 1, "!")
                    {
                        self.report.panic_sites.push(t.line);
                    }
                }
                _ => {}
            }
        }
    }

    // ----- unsafe hygiene ---------------------------------------------------

    fn rule_unsafe_safety(&mut self) {
        // Comment spans (end line, has SAFETY marker). A multi-line `//`
        // explanation is one logical comment: merge runs of comments on
        // consecutive lines, so `// SAFETY: ...` followed by continuation
        // lines covers the code directly below the run.
        let mut comments: Vec<(u32, bool)> = Vec::new();
        for t in &self.lexed.tokens {
            if matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
                let text = self.lexed.text(t);
                let end = t.line + text.matches('\n').count() as u32;
                match comments.last_mut() {
                    Some((prev_end, prev_safety)) if *prev_end + 1 >= t.line => {
                        *prev_end = end;
                        *prev_safety |= text.contains("SAFETY:");
                    }
                    _ => comments.push((end, text.contains("SAFETY:"))),
                }
            }
        }
        let mut pending: Vec<(u32, &'static str)> = Vec::new();
        for k in 0..self.sig.len() {
            if !self.is_ident(k, "unsafe") {
                continue;
            }
            let line = self.tok(k).line;
            let form = if self.is_punct(k + 1, "{") {
                "unsafe block"
            } else if self.is_ident(k + 1, "impl") {
                "unsafe impl"
            } else {
                // `unsafe fn` / `unsafe trait` / `unsafe extern`: the
                // obligation is on callers/implementors and belongs in doc
                // comments; rustdoc + clippy police those.
                continue;
            };
            // Adjacent SAFETY comment: ends on this line (legal for block
            // comments) or on the line directly above. A SAFETY comment
            // stranded above a run of attributes does NOT count — keep the
            // justification next to the unsafety.
            let covered = comments
                .iter()
                .any(|&(end, safety)| safety && (end == line || end + 1 == line));
            if !covered {
                pending.push((line, form));
            }
        }
        for (line, form) in pending {
            let msg = format!(
                "{form} without an adjacent `// SAFETY:` comment — state the \
                 invariant that makes this sound on the line above"
            );
            self.finding("unsafe_safety", line, msg);
        }
    }
}
