//! A small hand-rolled Rust lexer — just enough token structure for the
//! source-level lint rules in this crate, with **no external dependencies**
//! (the workspace builds offline, so `syn`/`proc-macro2` are not options).
//!
//! The lexer's one job is to be *right about what is code and what is not*:
//! comments (line, block — including nesting), string literals (plain, raw
//! with any `#` count, byte, C), char literals vs. lifetimes, and float vs.
//! integer literals. Rules then scan the token stream and can never
//! false-fire on an identifier that only appears inside a comment or a
//! string.
//!
//! It is *not* a full lexer: it does not validate escapes, reject invalid
//! programs, or track every multi-character operator — only the operators a
//! rule needs as a unit (`==`, `!=`, `::`, ranges). Input is assumed to be
//! code that `rustc` accepts (everything scanned is a compiling workspace
//! file); on malformed input it degrades by consuming to end of file rather
//! than failing.

/// Token classification. `Punct` carries the operator text via its span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unsafe`, `HashMap`, `r#type`, ...).
    Ident,
    /// A lifetime or loop label: `'a`, `'static`, `'outer`.
    Lifetime,
    /// Character literal `'x'` (including escapes) or byte char `b'x'`.
    CharLit,
    /// String literal of any flavor: `"..."`, `r#"..."#`, `b"..."`, `c"..."`.
    StrLit,
    /// Numeric literal. `float` distinguishes `1.0` / `1e3` / `1f64` from
    /// integers (`1`, `0xff`, `1u32`), including the `1.` trailing-dot form
    /// but *not* `1..2` (range) or `1.max(2)` (method call).
    NumLit {
        /// True for floating-point literals.
        float: bool,
    },
    /// `//` comment, doc (`///`, `//!`) included. Text spans to end of line.
    LineComment,
    /// `/* */` comment (nesting handled), doc forms included.
    BlockComment,
    /// Punctuation / operator. Multi-character operators that rules consume
    /// as a unit (`==`, `!=`, `::`, `..`, `..=`, `->`, `=>`, `&&`, `||`,
    /// shifts, compound assignments) are single tokens.
    Punct,
}

/// One token: kind plus byte span and 1-based start line in the source.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Token classification.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
}

/// A lexed source file: the text plus its token stream.
pub struct Lexed<'a> {
    /// The source text the spans index into.
    pub src: &'a str,
    /// Tokens in source order. Comments are included.
    pub tokens: Vec<Token>,
}

impl Lexed<'_> {
    /// The source text of `t`.
    #[must_use]
    pub fn text(&self, t: &Token) -> &str {
        &self.src[t.start..t.end]
    }
}

/// Multi-character operators lexed as single tokens, longest first.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// True for bytes that can start an identifier. Non-ASCII bytes are treated
/// as identifier characters — good enough for lint purposes (they can only
/// appear in identifiers, literals, or comments, and literals/comments are
/// consumed before this classification is consulted).
fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

/// True for bytes that can continue an identifier.
fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

struct Cursor<'a> {
    src: &'a str,
    b: &'a [u8],
    i: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.b.get(self.i + ahead).unwrap_or(&0)
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        self.tokens.push(Token {
            kind,
            start,
            end: self.i,
            line,
        });
    }

    /// Advances past `n` bytes, counting newlines.
    fn bump_counting_lines(&mut self, n: usize) {
        for _ in 0..n {
            if self.peek(0) == b'\n' {
                self.line += 1;
            }
            self.i += 1;
        }
    }

    fn line_comment(&mut self) {
        let (start, line) = (self.i, self.line);
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.i += 1;
        }
        self.push(TokenKind::LineComment, start, line);
    }

    fn block_comment(&mut self) {
        let (start, line) = (self.i, self.line);
        self.i += 2; // consume `/*`
        let mut depth = 1u32;
        while self.i < self.b.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.i += 2;
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.i += 2;
            } else {
                self.bump_counting_lines(1);
            }
        }
        self.push(TokenKind::BlockComment, start, line);
    }

    /// Consumes a `"..."` body, `self.i` on the opening quote. Handles
    /// escapes (`\"`, `\\`, and by skipping the byte after any `\`, every
    /// other escape form as well) and multi-line strings.
    fn quoted_string(&mut self) {
        self.i += 1; // opening quote
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'"' => {
                    self.i += 1;
                    return;
                }
                b'\\' => {
                    self.i += 1; // the backslash
                    self.bump_counting_lines(1); // whatever it escapes
                }
                _ => self.bump_counting_lines(1),
            }
        }
    }

    /// Consumes a raw string starting at `self.i` on the `r` (after any
    /// `b`/`c` prefix was consumed by the caller): `r"..."`, `r#"..."#`, ...
    fn raw_string_body(&mut self) {
        self.i += 1; // `r`
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.i += 1;
        }
        debug_assert_eq!(self.peek(0), b'"');
        self.i += 1;
        while self.i < self.b.len() {
            if self.b[self.i] == b'"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(1 + k) != b'#' {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.i += 1 + hashes;
                    return;
                }
            }
            self.bump_counting_lines(1);
        }
    }

    /// `self.i` is on a `'`. Distinguishes lifetimes from char literals.
    fn quote(&mut self) {
        let (start, line) = (self.i, self.line);
        self.i += 1;
        if self.peek(0) == b'\\' {
            // Escaped char literal: consume to the closing quote.
            self.i += 1; // backslash
            self.i += 1; // escaped byte (enough even for \u{..}: loop below)
            while self.i < self.b.len() && self.b[self.i] != b'\'' {
                self.bump_counting_lines(1);
            }
            self.i += 1; // closing quote
            self.push(TokenKind::CharLit, start, line);
        } else if is_ident_start(self.peek(0)) || self.peek(0).is_ascii_digit() {
            // Either a lifetime (`'a`, `'static`) or a char literal of an
            // identifier-class character (`'a'`, `'√'`): consume the run,
            // then decide by whether a closing quote follows.
            while is_ident_continue(self.peek(0)) {
                self.i += 1;
            }
            if self.peek(0) == b'\'' {
                self.i += 1;
                self.push(TokenKind::CharLit, start, line);
            } else {
                self.push(TokenKind::Lifetime, start, line);
            }
        } else {
            // Char literal of a non-identifier character: `'+'`, `' '`.
            self.bump_counting_lines(1);
            if self.peek(0) == b'\'' {
                self.i += 1;
            }
            self.push(TokenKind::CharLit, start, line);
        }
    }

    fn number(&mut self) {
        let (start, line) = (self.i, self.line);
        let mut float = false;
        if self.peek(0) == b'0' && matches!(self.peek(1), b'x' | b'o' | b'b') {
            self.i += 2;
            while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
                self.i += 1;
            }
            self.push(TokenKind::NumLit { float: false }, start, line);
            return;
        }
        while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
            self.i += 1;
        }
        if self.peek(0) == b'.' {
            let after = self.peek(1);
            if after.is_ascii_digit() {
                // `1.5` — fraction digits.
                self.i += 1;
                while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                    self.i += 1;
                }
                float = true;
            } else if after != b'.' && !is_ident_start(after) {
                // `1.` trailing dot (but not `1..2` nor `1.max(2)`).
                self.i += 1;
                float = true;
            }
        }
        if matches!(self.peek(0), b'e' | b'E') {
            let (a, b2) = (self.peek(1), self.peek(2));
            if a.is_ascii_digit() || (matches!(a, b'+' | b'-') && b2.is_ascii_digit()) {
                self.i += 1;
                if matches!(self.peek(0), b'+' | b'-') {
                    self.i += 1;
                }
                while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                    self.i += 1;
                }
                float = true;
            }
        }
        // Suffix: `u32`, `f64`, ... — an `f` suffix makes it a float.
        if is_ident_start(self.peek(0)) {
            if self.peek(0) == b'f' {
                float = true;
            }
            while is_ident_continue(self.peek(0)) {
                self.i += 1;
            }
        }
        self.push(TokenKind::NumLit { float }, start, line);
    }

    fn ident_or_prefixed_literal(&mut self) {
        let (start, line) = (self.i, self.line);
        let c = self.peek(0);
        // String/char prefixes: r"", r#"", b"", br"", b'', c"", cr#"".
        match c {
            b'r' => {
                if self.peek(1) == b'"' || (self.peek(1) == b'#' && self.raw_hashes_then_quote(1)) {
                    self.raw_string_body();
                    self.push(TokenKind::StrLit, start, line);
                    return;
                }
                if self.peek(1) == b'#' && is_ident_start(self.peek(2)) {
                    // Raw identifier `r#type`.
                    self.i += 2;
                    while is_ident_continue(self.peek(0)) {
                        self.i += 1;
                    }
                    self.push(TokenKind::Ident, start, line);
                    return;
                }
            }
            b'b' | b'c' => {
                if self.peek(1) == b'"' {
                    self.i += 1;
                    self.quoted_string();
                    self.push(TokenKind::StrLit, start, line);
                    return;
                }
                if self.peek(1) == b'r'
                    && (self.peek(2) == b'"'
                        || (self.peek(2) == b'#' && self.raw_hashes_then_quote(2)))
                {
                    self.i += 1;
                    self.raw_string_body();
                    self.push(TokenKind::StrLit, start, line);
                    return;
                }
                if c == b'b' && self.peek(1) == b'\'' {
                    self.i += 1;
                    self.quote();
                    // `quote` pushed a CharLit starting at the `'`; widen it
                    // to include the `b` prefix.
                    if let Some(t) = self.tokens.last_mut() {
                        t.start = start;
                    }
                    return;
                }
            }
            _ => {}
        }
        while is_ident_continue(self.peek(0)) {
            self.i += 1;
        }
        self.push(TokenKind::Ident, start, line);
    }

    /// True when, starting `off` bytes ahead, a run of `#`s ends at a `"`
    /// (i.e. the `r` the caller is standing near opens a raw string).
    fn raw_hashes_then_quote(&self, off: usize) -> bool {
        let mut k = off;
        while self.peek(k) == b'#' {
            k += 1;
        }
        k > off && self.peek(k) == b'"'
    }

    fn punct(&mut self) {
        let (start, line) = (self.i, self.line);
        let rest = &self.src[self.i..];
        for op in OPERATORS {
            if rest.starts_with(op) {
                self.i += op.len();
                self.push(TokenKind::Punct, start, line);
                return;
            }
        }
        self.i += 1;
        self.push(TokenKind::Punct, start, line);
    }
}

/// Lexes `src` into a token stream. Total: malformed input degrades to
/// consuming through end of file rather than erroring (every scanned file
/// is one `rustc` already accepts).
#[must_use]
pub fn lex(src: &str) -> Lexed<'_> {
    let mut cur = Cursor {
        src,
        b: src.as_bytes(),
        i: 0,
        line: 1,
        tokens: Vec::new(),
    };
    while cur.i < cur.b.len() {
        let c = cur.b[cur.i];
        match c {
            b'\n' => {
                cur.line += 1;
                cur.i += 1;
            }
            b' ' | b'\t' | b'\r' => cur.i += 1,
            b'/' if cur.peek(1) == b'/' => cur.line_comment(),
            b'/' if cur.peek(1) == b'*' => cur.block_comment(),
            b'"' => {
                let (start, line) = (cur.i, cur.line);
                cur.quoted_string();
                cur.push(TokenKind::StrLit, start, line);
            }
            b'\'' => cur.quote(),
            _ if c.is_ascii_digit() => cur.number(),
            _ if is_ident_start(c) => cur.ident_or_prefixed_literal(),
            _ => cur.punct(),
        }
    }
    Lexed {
        src,
        tokens: cur.tokens,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// (kind, text) pairs for every token, comments included.
    fn toks(src: &str) -> Vec<(TokenKind, String)> {
        let lexed = lex(src);
        lexed
            .tokens
            .iter()
            .map(|t| (t.kind, lexed.text(t).to_string()))
            .collect()
    }

    /// Texts of the `Ident` tokens only — what the rules mostly match on.
    fn idents(src: &str) -> Vec<String> {
        toks(src)
            .into_iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, s)| s)
            .collect()
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let t = toks("/* a /* b /* c */ */ still comment */ after");
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].0, TokenKind::BlockComment);
        assert_eq!(t[1], (TokenKind::Ident, "after".to_string()));
    }

    #[test]
    fn unterminated_block_comment_consumes_to_eof() {
        let t = toks("/* never closed\nHashMap");
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].0, TokenKind::BlockComment);
    }

    #[test]
    fn raw_strings_match_hash_counts() {
        // The `"#` inside must not close a `r##` string.
        let t = toks(r####"r##"contains "# and // and /*"## x"####);
        assert_eq!(t[0].0, TokenKind::StrLit);
        assert_eq!(t[1], (TokenKind::Ident, "x".to_string()));
        // Zero-hash raw string.
        let t = toks(r#"r"\no escape" y"#);
        assert_eq!(t[0].0, TokenKind::StrLit);
        assert_eq!(t[1], (TokenKind::Ident, "y".to_string()));
    }

    #[test]
    fn prefixed_literals_and_raw_idents() {
        let t = toks(r##"b"bytes" c"cstr" br#"raw bytes"# r#type b'\n'"##);
        assert_eq!(
            t.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![
                TokenKind::StrLit,
                TokenKind::StrLit,
                TokenKind::StrLit,
                TokenKind::Ident,
                TokenKind::CharLit,
            ]
        );
        assert_eq!(t[3].1, "r#type");
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let t = toks("&'static str; 'a' ; <'a, 'b> 'outer: loop {} '\\'' '_");
        let kinds: Vec<(TokenKind, &str)> = t.iter().map(|(k, s)| (*k, s.as_str())).collect();
        assert!(kinds.contains(&(TokenKind::Lifetime, "'static")));
        assert!(kinds.contains(&(TokenKind::CharLit, "'a'")));
        assert!(kinds.contains(&(TokenKind::Lifetime, "'a")));
        assert!(kinds.contains(&(TokenKind::Lifetime, "'b")));
        assert!(kinds.contains(&(TokenKind::Lifetime, "'outer")));
        assert!(kinds.contains(&(TokenKind::CharLit, "'\\''")));
        assert!(kinds.contains(&(TokenKind::Lifetime, "'_")));
    }

    #[test]
    fn string_escapes_do_not_end_early() {
        let t = toks(r#""a\"b" next"#);
        assert_eq!(t[0], (TokenKind::StrLit, r#""a\"b""#.to_string()));
        assert_eq!(t[1], (TokenKind::Ident, "next".to_string()));
    }

    #[test]
    fn no_false_idents_inside_comments_or_strings() {
        let src = r#"
            // HashMap in a line comment
            /* HashSet in a block comment */
            let s = "std::time::Instant::now()";
            real_ident
        "#;
        assert_eq!(idents(src), vec!["let", "s", "real_ident"]);
    }

    #[test]
    fn float_vs_int_literals() {
        let f = |src: &str| -> Vec<bool> {
            toks(src)
                .into_iter()
                .filter_map(|(k, _)| match k {
                    TokenKind::NumLit { float } => Some(float),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(f("1.0 2. 1e3 1E-3 1f64 2.5e2"), vec![true; 6]);
        assert_eq!(f("1 0xff 0o77 0b11 1_000 9u64"), vec![false; 6]);
        // Range and method-call dots do not make floats.
        assert_eq!(f("1..2"), vec![false, false]);
        assert_eq!(f("1..=2"), vec![false, false]);
        assert_eq!(f("1.max(2)"), vec![false, false]);
    }

    #[test]
    fn multi_char_operators_are_single_tokens() {
        let t = toks("a == b != c :: d ..= e");
        let puncts: Vec<&str> = t
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "::", "..="]);
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let lexed = lex("/* one\ntwo\nthree */ x\ny");
        let x = &lexed.tokens[1];
        let y = &lexed.tokens[2];
        assert_eq!((lexed.text(x), x.line), ("x", 3));
        assert_eq!((lexed.text(y), y.line), ("y", 4));
    }
}
