//! Configuration (`tidy.toml`) and ratchet baseline (`tidy_baseline.toml`).
//!
//! The workspace builds offline, so there is no `toml` crate to lean on;
//! this module hand-parses the **small TOML subset** the two files actually
//! use — `[section]` headers, `key = "string"`, `key = integer`, and
//! `key = [ "a", "b" ]` string arrays (multi-line allowed), with `#`
//! comments. Keys may be bare or double-quoted. Anything fancier is a parse
//! error, loudly: the config is part of the lint contract and must not be
//! half-read.
//!
//! `BTreeMap` throughout — tidy holds itself to its own determinism rules,
//! and sorted iteration gives stable reports and baselines for free.

use std::collections::BTreeMap;
use std::fmt;

/// A value in the supported TOML subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// `key = "text"`
    Str(String),
    /// `key = 42`
    Int(u64),
    /// `key = ["a", "b"]`
    StrList(Vec<String>),
}

/// One parsed file: section name → key → value. The implicit top-level
/// section is named `""`.
pub type Doc = BTreeMap<String, BTreeMap<String, Value>>;

/// Parse failure: 1-based line plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line the error was detected on.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, msg: impl Into<String>) -> ParseError {
    ParseError {
        line,
        msg: msg.into(),
    }
}

/// Strips a trailing `#` comment that is not inside a double-quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

/// Parses one double-quoted string starting at `s[0] == '"'`. Returns the
/// unescaped content and the number of chars consumed (quotes included).
fn parse_quoted(s: &str, line: usize) -> Result<(String, usize), ParseError> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    let _ = chars.next(); // opening quote
    let mut escaped = false;
    for (i, c) in chars {
        if escaped {
            out.push(match c {
                'n' => '\n',
                't' => '\t',
                '\\' => '\\',
                '"' => '"',
                other => other,
            });
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            return Ok((out, i + c.len_utf8()));
        } else {
            out.push(c);
        }
    }
    Err(err(line, "unterminated string"))
}

/// Parses a `[ "a", "b", ... ]` body (brackets included) into strings.
fn parse_array(body: &str, line: usize) -> Result<Vec<String>, ParseError> {
    let inner = body
        .strip_prefix('[')
        .and_then(|r| r.trim_end().strip_suffix(']'))
        .ok_or_else(|| err(line, "malformed array"))?;
    let mut out = Vec::new();
    let mut rest = inner.trim_start();
    while !rest.is_empty() {
        if !rest.starts_with('"') {
            return Err(err(line, format!("expected string in array, got `{rest}`")));
        }
        let (s, used) = parse_quoted(rest, line)?;
        out.push(s);
        rest = rest[used..].trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        } else if !rest.is_empty() {
            return Err(err(line, "expected `,` or `]` in array"));
        }
    }
    Ok(out)
}

/// Parses the supported TOML subset. See the module docs for the grammar.
pub fn parse(text: &str) -> Result<Doc, ParseError> {
    let mut doc: Doc = BTreeMap::new();
    let mut section = String::new();
    doc.entry(section.clone()).or_default();

    let mut lines = text.lines().enumerate();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| err(lineno, "malformed section header"))?;
            section = name.trim().to_string();
            doc.entry(section.clone()).or_default();
            continue;
        }
        let eq = line
            .find('=')
            .ok_or_else(|| err(lineno, format!("expected `key = value`, got `{line}`")))?;
        let key_raw = line[..eq].trim();
        let key = if key_raw.starts_with('"') {
            parse_quoted(key_raw, lineno)?.0
        } else {
            key_raw.to_string()
        };
        let mut val = line[eq + 1..].trim().to_string();
        if val.starts_with('[') {
            // Multi-line array: accumulate until brackets balance outside
            // strings (strings in these files never contain brackets, so a
            // simple count is enough — and is validated by parse_array).
            while val.matches('[').count() > val.matches(']').count() {
                let (cont_idx, cont) = lines
                    .next()
                    .ok_or_else(|| err(lineno, "unterminated array"))?;
                let _ = cont_idx;
                val.push(' ');
                val.push_str(strip_comment(cont).trim());
            }
        }
        let value = if val.starts_with('[') {
            Value::StrList(parse_array(&val, lineno)?)
        } else if val.starts_with('"') {
            Value::Str(parse_quoted(&val, lineno)?.0)
        } else {
            let n: u64 = val
                .parse()
                .map_err(|_| err(lineno, format!("expected integer, got `{val}`")))?;
            Value::Int(n)
        };
        let dup = doc
            .entry(section.clone())
            .or_default()
            .insert(key.clone(), value);
        if dup.is_some() {
            return Err(err(lineno, format!("duplicate key `{key}`")));
        }
    }
    Ok(doc)
}

/// The rule configuration read from `tidy.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Files (workspace-relative) where the hot-path allocation rule runs.
    pub hot_paths: Vec<String>,
    /// Files where float `==`/`!=` is allowed (the committed allowlist).
    pub float_cmp_allow: Vec<String>,
    /// Crate directories (e.g. `crates/bench`) where wall-clock types are
    /// allowed.
    pub wall_clock_allow_crates: Vec<String>,
}

fn take_list(doc: &Doc, section: &str, key: &str) -> Result<Vec<String>, ParseError> {
    match doc.get(section).and_then(|s| s.get(key)) {
        Some(Value::StrList(v)) => Ok(v.clone()),
        Some(_) => Err(err(0, format!("[{section}] {key} must be a string array"))),
        None => Ok(Vec::new()),
    }
}

impl Config {
    /// Reads a [`Config`] out of parsed `tidy.toml` contents.
    pub fn from_doc(doc: &Doc) -> Result<Self, ParseError> {
        Ok(Config {
            hot_paths: take_list(doc, "hot_alloc", "paths")?,
            float_cmp_allow: take_list(doc, "float_cmp", "allow")?,
            wall_clock_allow_crates: take_list(doc, "wall_clock", "allow_crates")?,
        })
    }

    /// Parses `tidy.toml` text.
    pub fn parse_str(text: &str) -> Result<Self, ParseError> {
        Self::from_doc(&parse(text)?)
    }
}

/// The panic-surface ratchet baseline: crate directory → allowed count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `crates/sim` → number of permitted `unwrap`/`expect`/panic sites.
    pub panic_surface: BTreeMap<String, u64>,
}

impl Baseline {
    /// Parses `tidy_baseline.toml` text.
    pub fn parse_str(text: &str) -> Result<Self, ParseError> {
        let doc = parse(text)?;
        let mut panic_surface = BTreeMap::new();
        if let Some(section) = doc.get("panic_surface") {
            for (k, v) in section {
                match v {
                    Value::Int(n) => {
                        panic_surface.insert(k.clone(), *n);
                    }
                    _ => {
                        return Err(err(0, format!("[panic_surface] {k} must be an integer")));
                    }
                }
            }
        }
        Ok(Baseline { panic_surface })
    }

    /// Renders the baseline back to `tidy_baseline.toml` text (used by
    /// `--write-baseline`).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Panic-surface ratchet baseline — maintained by `vg-tidy`.\n\
             #\n\
             # Counts of `.unwrap()` / `.expect(` / `panic!` / `unreachable!` /\n\
             # `todo!` / `unimplemented!` in each crate's non-test library code.\n\
             # The gate fails if a crate's count RISES above its entry (new panic\n\
             # surface) and also if it DROPS below (ratchet: regenerate with\n\
             # `cargo run -p vg-tidy -- --write-baseline` so the win is locked in).\n\
             # Entries may only ever go down over time.\n\n[panic_surface]\n",
        );
        for (k, v) in &self.panic_surface {
            out.push_str(&format!("\"{k}\" = {v}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_strings_ints_arrays() {
        let doc = parse(
            "top = 3\n[a]\nx = \"hi # not a comment\" # real comment\n\
             y = [\"p\", \"q\"]\n[b.c]\n\"quoted/key.rs\" = 7\n",
        )
        .unwrap();
        assert_eq!(doc[""]["top"], Value::Int(3));
        assert_eq!(doc["a"]["x"], Value::Str("hi # not a comment".into()));
        assert_eq!(doc["a"]["y"], Value::StrList(vec!["p".into(), "q".into()]));
        assert_eq!(doc["b.c"]["quoted/key.rs"], Value::Int(7));
    }

    #[test]
    fn parses_multiline_arrays_with_comments() {
        let doc = parse("[s]\npaths = [\n  \"a.rs\", # one\n  \"b.rs\",\n]\n").unwrap();
        assert_eq!(
            doc["s"]["paths"],
            Value::StrList(vec!["a.rs".into(), "b.rs".into()])
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("[unclosed\n").is_err());
        assert!(parse("novalue\n").is_err());
        assert!(parse("x = nope\n").is_err());
        assert!(parse("x = [1, 2]\n").is_err());
        assert!(parse("x = 1\nx = 2\n").is_err());
    }

    #[test]
    fn baseline_roundtrips() {
        let b = Baseline::parse_str("[panic_surface]\n\"crates/sim\" = 4\n\"src\" = 0\n").unwrap();
        assert_eq!(b.panic_surface["crates/sim"], 4);
        let again = Baseline::parse_str(&b.render()).unwrap();
        assert_eq!(b, again);
    }
}
