//! The `vg-tidy` gate binary. See the crate docs and `docs/tidy.md`.
//!
//! Usage:
//!
//! ```text
//! cargo run -p vg-tidy --release                  # full gate (CI entry)
//! cargo run -p vg-tidy --release -- --root DIR    # scan another tree
//! cargo run -p vg-tidy --release -- --write-baseline
//! ```
//!
//! Exit status: `0` clean, `1` findings, `2` the pass itself failed
//! (I/O or config parse error).

use std::path::PathBuf;
use std::process::ExitCode;
use vg_tidy::config::{Baseline, Config};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("vg-tidy: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--write-baseline" => write_baseline = true,
            "--help" | "-h" => {
                println!(
                    "vg-tidy — workspace static-analysis gate\n\n\
                     \t--root DIR         scan DIR instead of the workspace root\n\
                     \t--write-baseline   regenerate tidy_baseline.toml from current counts\n\n\
                     Rules and waiver syntax: docs/tidy.md"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("vg-tidy: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    // The binary lives at crates/tidy; the workspace root is two levels up.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });

    let config_path = root.join("tidy.toml");
    let config = match std::fs::read_to_string(&config_path) {
        Ok(text) => match Config::parse_str(&text) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("vg-tidy: {}: {e}", config_path.display());
                return ExitCode::from(2);
            }
        },
        Err(e) => {
            eprintln!("vg-tidy: {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };

    if write_baseline {
        return match vg_tidy::run_workspace(&root, &config, None) {
            Ok(report) => {
                let baseline = Baseline {
                    panic_surface: report.panic_counts.clone(),
                };
                let path = root.join("tidy_baseline.toml");
                if let Err(e) = std::fs::write(&path, baseline.render()) {
                    eprintln!("vg-tidy: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
                println!(
                    "vg-tidy: wrote {} ({} crates)",
                    path.display(),
                    report.panic_counts.len()
                );
                // Other findings still gate: the baseline only covers the
                // panic ratchet.
                finish(report)
            }
            Err(e) => {
                eprintln!("vg-tidy: {e}");
                ExitCode::from(2)
            }
        };
    }

    match vg_tidy::run_from_root(&root) {
        Ok(report) => finish(report),
        Err(e) => {
            eprintln!("vg-tidy: {e}");
            ExitCode::from(2)
        }
    }
}

fn finish(report: vg_tidy::WorkspaceReport) -> ExitCode {
    for f in &report.findings {
        println!("{f}");
    }
    let surface: Vec<String> = report
        .panic_counts
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect();
    println!(
        "vg-tidy: {} file(s) scanned, {} finding(s); panic surface: {}",
        report.files_scanned,
        report.findings.len(),
        if surface.is_empty() {
            "none".to_string()
        } else {
            surface.join(" ")
        }
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
