//! `vg-tidy` — a workspace source-level static-analysis pass, in the
//! tradition of rustc's `tidy` tool.
//!
//! Every result this reproduction reports rests on invariants the compiler
//! cannot see: bit-identical [`SimReport`]s across store layouts and
//! parallelism, common-random-number pairing in the fidelity studies, and an
//! allocation-free slot loop. The runtime tests pin those invariants on a
//! handful of configurations; this pass enforces them *at the source level*
//! on every line of the workspace:
//!
//! - **`default_hasher`** — no `HashMap`/`HashSet` with the randomized
//!   default hasher in non-test library code.
//! - **`wall_clock`** — no `Instant`/`SystemTime` outside `vg-bench` and
//!   binary targets; simulated time comes from slots.
//! - **`float_cmp`** — no float `==`/`!=` against literals outside the
//!   committed allowlist; the codebase's idiom is `total_cmp` and packed
//!   integer keys.
//! - **`hot_alloc`** — in `tidy.toml`-declared hot modules, allocation
//!   idioms (`vec!`, `collect`, `to_vec`, `format!`, `Box::new`,
//!   `String::from`, `.clone()`) are flagged, complementing the runtime
//!   alloc-counter which only covers three configurations.
//! - **panic-surface ratchet** — per-crate `unwrap`/`expect`/panic-macro
//!   counts in library code are checked against `tidy_baseline.toml`, which
//!   may only go down.
//! - **`unsafe_safety`** — every `unsafe` block / `unsafe impl` needs an
//!   adjacent `// SAFETY:` comment.
//!
//! See `docs/tidy.md` for the rule catalog, waiver syntax
//! (`// tidy:allow(rule): reason`), and the ratchet workflow. The gate runs
//! in CI as `cargo run -p vg-tidy --release` and exits non-zero on any
//! non-waived finding or baseline growth.
//!
//! [`SimReport`]: ../vg_sim/report/struct.SimReport.html

pub mod config;
pub mod lexer;
pub mod rules;

use config::{Baseline, Config};
use rules::{check_file, FileMeta, Finding};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Directory names never descended into, anywhere in the tree.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", ".github"];

/// Workspace-relative path prefixes excluded from scanning. The fixtures
/// are rule-violation corpora for the self-tests — they *must* fire.
const SKIP_PREFIXES: &[&str] = &["crates/tidy/fixtures/"];

/// A failure of the pass itself (I/O, config parse) — distinct from lint
/// findings, and exits with a different status so CI can tell them apart.
#[derive(Debug)]
pub enum TidyError {
    /// Reading a file or directory failed.
    Io(PathBuf, std::io::Error),
    /// `tidy.toml` / `tidy_baseline.toml` did not parse.
    Config(PathBuf, config::ParseError),
}

impl fmt::Display for TidyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TidyError::Io(p, e) => write!(f, "{}: {e}", p.display()),
            TidyError::Config(p, e) => write!(f, "{}: {e}", p.display()),
        }
    }
}

impl std::error::Error for TidyError {}

/// The aggregated result of one workspace pass.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// All violations, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Panic-surface counts per crate directory (library code only).
    pub panic_counts: BTreeMap<String, u64>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl WorkspaceReport {
    /// True when the workspace is clean.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Collects every workspace `.rs` file (relative, forward slashes, sorted —
/// the report order is part of the deterministic contract).
pub fn collect_files(root: &Path) -> Result<Vec<String>, TidyError> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = fs::read_dir(&dir).map_err(|e| TidyError::Io(dir.clone(), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| TidyError::Io(dir.clone(), e))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                if SKIP_PREFIXES.iter().any(|p| rel.starts_with(p)) {
                    continue;
                }
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Derives the scope classification for one workspace-relative path.
#[must_use]
pub fn classify(rel: &str) -> FileMeta {
    let crate_dir = if let Some(rest) = rel.strip_prefix("crates/") {
        match rest.split('/').next() {
            Some(name) => format!("crates/{name}"),
            None => "crates".to_string(),
        }
    } else {
        match rel.split('/').next() {
            Some(first) => first.to_string(),
            None => String::new(),
        }
    };
    let in_src = rel.starts_with("src/") || {
        rel.strip_prefix(&crate_dir)
            .is_some_and(|r| r.starts_with("/src/"))
    };
    // `src/main.rs` and `src/bin/*` are binary targets, not library code.
    let is_lib = in_src && !rel.contains("/bin/") && !rel.ends_with("src/main.rs");
    FileMeta {
        rel: rel.to_string(),
        crate_dir,
        is_lib,
    }
}

/// Runs the full pass: walk, lint, ratchet. `baseline` of `None` skips the
/// ratchet comparison (used by `--write-baseline` to seed the file).
pub fn run_workspace(
    root: &Path,
    config: &Config,
    baseline: Option<&Baseline>,
) -> Result<WorkspaceReport, TidyError> {
    let mut report = WorkspaceReport::default();
    let mut panic_sites: BTreeMap<String, Vec<(String, u32)>> = BTreeMap::new();

    for rel in collect_files(root)? {
        let meta = classify(&rel);
        let path = root.join(&rel);
        let src = fs::read_to_string(&path).map_err(|e| TidyError::Io(path.clone(), e))?;
        let file_report = check_file(&meta, &src, config);
        report.findings.extend(file_report.findings);
        if meta.is_lib && !file_report.panic_sites.is_empty() {
            let bucket = panic_sites.entry(meta.crate_dir.clone()).or_default();
            for line in file_report.panic_sites {
                bucket.push((rel.clone(), line));
            }
        }
        report.files_scanned += 1;
    }

    for (crate_dir, sites) in &panic_sites {
        report
            .panic_counts
            .insert(crate_dir.clone(), sites.len() as u64);
    }

    if let Some(baseline) = baseline {
        ratchet(&mut report, &panic_sites, baseline);
    }

    report.findings.sort();
    Ok(report)
}

/// Compares panic-surface counts against the baseline, in both directions.
fn ratchet(
    report: &mut WorkspaceReport,
    sites: &BTreeMap<String, Vec<(String, u32)>>,
    baseline: &Baseline,
) {
    let mut crates: Vec<&String> = baseline.panic_surface.keys().collect();
    for k in sites.keys() {
        if !baseline.panic_surface.contains_key(k) {
            crates.push(k);
        }
    }
    for crate_dir in crates {
        let count = sites.get(crate_dir).map_or(0, |v| v.len() as u64);
        let allowed = baseline.panic_surface.get(crate_dir).copied().unwrap_or(0);
        if count > allowed {
            let listed: Vec<String> = sites
                .get(crate_dir)
                .map(|v| v.iter().map(|(f, l)| format!("{f}:{l}")).collect())
                .unwrap_or_default();
            report.findings.push(Finding {
                file: "tidy_baseline.toml".to_string(),
                line: 0,
                rule: "panic_ratchet",
                msg: format!(
                    "{crate_dir}: {count} unwrap/expect/panic sites in library \
                     code, baseline allows {allowed} — the panic surface may \
                     only shrink; return a Result or cite the violated contract \
                     in an expect() AND keep the total at or below the \
                     baseline. Sites: {}",
                    listed.join(", ")
                ),
            });
        } else if count < allowed {
            report.findings.push(Finding {
                file: "tidy_baseline.toml".to_string(),
                line: 0,
                rule: "panic_ratchet",
                msg: format!(
                    "{crate_dir}: {count} panic sites but the baseline still \
                     says {allowed} — lock the improvement in: run \
                     `cargo run -p vg-tidy -- --write-baseline` and commit"
                ),
            });
        }
    }
}

/// Convenience entry: load `tidy.toml` + `tidy_baseline.toml` from `root`
/// and run the pass.
pub fn run_from_root(root: &Path) -> Result<WorkspaceReport, TidyError> {
    let config_path = root.join("tidy.toml");
    let config_text =
        fs::read_to_string(&config_path).map_err(|e| TidyError::Io(config_path.clone(), e))?;
    let config =
        Config::parse_str(&config_text).map_err(|e| TidyError::Config(config_path.clone(), e))?;
    let baseline_path = root.join("tidy_baseline.toml");
    let baseline_text =
        fs::read_to_string(&baseline_path).map_err(|e| TidyError::Io(baseline_path.clone(), e))?;
    let baseline = Baseline::parse_str(&baseline_text)
        .map_err(|e| TidyError::Config(baseline_path.clone(), e))?;
    run_workspace(root, &config, Some(&baseline))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let m = classify("crates/sim/src/engine.rs");
        assert_eq!(m.crate_dir, "crates/sim");
        assert!(m.is_lib);
        assert!(!classify("crates/sim/tests/soa_equivalence.rs").is_lib);
        assert!(!classify("crates/exp/src/bin/table1.rs").is_lib);
        assert!(!classify("crates/tidy/src/main.rs").is_lib);
        assert!(!classify("crates/bench/benches/slotloop.rs").is_lib);
        assert!(classify("src/lib.rs").is_lib);
        assert_eq!(classify("src/lib.rs").crate_dir, "src");
        assert!(!classify("examples/gantt.rs").is_lib);
        assert!(!classify("tests/simulator_invariants.rs").is_lib);
    }
}
