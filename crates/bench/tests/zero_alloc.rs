//! The zero-allocation claim of the slot loop, as a test.
//!
//! Run with: `cargo test -p vg-bench --features alloc-counter --release`
//!
//! The engine promises (see `vg_sim::engine` module docs) that once its
//! scratch buffers have warmed up, a steady-state slot — including scheduler
//! placement, the replica path, transfers, compute, task completions and
//! sibling cancellation — performs **zero** heap allocations. This binary
//! installs the counting global allocator, warms a mid-iteration simulation
//! up, and asserts allocator silence over a long run of subsequent slots.
//!
//! This file holds exactly one test so the default multi-threaded test
//! harness cannot run a neighbor concurrently and pollute the counters.
#![cfg(feature = "alloc-counter")]

use vg_bench::alloc_counter::{snapshot, CountingAllocator};
use vg_bench::{paper_app, paper_platform};
use vg_core::{HeuristicKind, SharePolicy};
use vg_des::rng::SeedPath;
use vg_markov::OutageChain;
use vg_platform::source::AvailabilitySource;
use vg_platform::volatility::{CorrelatedModel, DiurnalSpec, ScriptedOverlay};
use vg_platform::FaultScript;
use vg_sim::{AppSpec, PlacementBudget, SimOptions, Simulation};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn warmed_simulation(p: usize, replication: bool, placement_budget: PlacementBudget) -> Simulation {
    let platform = paper_platform(p, (p / 10).max(2), 2, 11);
    // Many iterations keep the workload alive for the whole measured
    // window. Iteration barriers are themselves allocation-free
    // (IterationState::reset reuses buffers; the completion log is
    // preallocated), so the window may span them freely.
    let app = paper_app(2 * p, 10_000, 2, 1);
    let sources: Vec<Box<dyn AvailabilitySource>> = platform
        .processors
        .iter()
        .enumerate()
        .map(|(q, pc)| {
            pc.avail
                .build_source(SeedPath::root(2).child(q as u64).rng())
        })
        .collect();
    Simulation::new(
        &platform,
        &app,
        HeuristicKind::EmctStar.build(SeedPath::root(1).rng()),
        sources,
        SimOptions {
            max_slots: 1_000_000,
            replication,
            max_extra_replicas: 2,
            record_timeline: false,
            placement_budget,
        },
    )
    .expect("valid configuration")
}

/// The full chaos stack in steady state: a [`CorrelatedModel`] row source
/// (per-worker base chains × 4 group modulators × diurnal phase) feeding the
/// engine through `SourceBank::Rows`, with a scripted overlay whose spans
/// stay **active across the entire measured window** — every measured slot
/// pays the row fill, the group draws, the diurnal demotion and the overlay
/// forcing. All of it must be exactly as silent as the plain slot loop.
fn warmed_chaos_simulation(p: usize) -> Simulation {
    let platform = paper_platform(p, (p / 10).max(2), 2, 11);
    let app = paper_app(2 * p, 10_000, 2, 1);
    let mut model =
        CorrelatedModel::uniform_groups(p, 4, OutageChain::new(0.01, 0.20).expect("probabilities"));
    model.diurnal = Some(DiurnalSpec {
        period: 200,
        off_len: 60,
        group_stagger: 50,
    });
    let rows = model
        .build(&platform, &SeedPath::root(2))
        .expect("valid model");
    // One span covering every slot of the run plus a long kill burst inside
    // the measured window: the overlay scan always has live spans to apply.
    let script = FaultScript::parse("degrade 25% at 0 for 1000000\nkill 10% at 3000 for 2000")
        .expect("valid script")
        .compile(p)
        .expect("compiles");
    let mut sim = Simulation::new_rows_in(
        &platform,
        &app,
        HeuristicKind::EmctStar.build(SeedPath::root(1).rng()),
        Box::new(rows),
        SimOptions {
            max_slots: 1_000_000,
            replication: true,
            max_extra_replicas: 2,
            record_timeline: false,
            placement_budget: PlacementBudget::Uncapped,
        },
    )
    .expect("valid configuration");
    sim.set_overlay(ScriptedOverlay::new(script))
        .expect("matching p");
    sim
}

/// A 2-application co-scheduled simulation in steady state: the
/// multi-application dispatch (share quotas, per-app pool and replica
/// rounds, per-app barrier records) must be exactly as silent as the
/// single-application path once warmed.
fn warmed_two_app_simulation(p: usize) -> Simulation {
    let platform = paper_platform(p, (p / 10).max(2), 2, 11);
    let app = paper_app(p, 10_000, 2, 1);
    let specs = [AppSpec::rigid(app), AppSpec::weighted(app, 3)];
    let sources: Vec<Box<dyn AvailabilitySource>> = platform
        .processors
        .iter()
        .enumerate()
        .map(|(q, pc)| {
            pc.avail
                .build_source(SeedPath::root(2).child(q as u64).rng())
        })
        .collect();
    Simulation::new_multi(
        &platform,
        &specs,
        SharePolicy::Weighted,
        HeuristicKind::EmctStar.build(SeedPath::root(1).rng()),
        sources,
        SimOptions {
            max_slots: 1_000_000,
            replication: true,
            max_extra_replicas: 2,
            record_timeline: false,
            placement_budget: PlacementBudget::Uncapped,
        },
    )
    .expect("valid configuration")
}

#[test]
fn steady_state_slot_loop_is_allocation_free() {
    // p = 64 exercises the SoA column scans and the linear-scan side of the
    // greedy selection; p = 256 with replication pushes the post-barrier
    // and replica placement bursts (count ≈ 2p over ~p UP candidates) far
    // across the structured-selector crossover (`SelectorKind::choose`:
    // count · u ≥ 4096), so every such round runs on the loser tree — its
    // tournament storage (node, key and build-scratch vectors) is pinned
    // as persistent scheduler scratch, warmed to the high-water platform
    // size during the warm-up window and silent over all 5000 measured
    // slots thereafter.
    // The final config re-runs the heaviest cell under the BindCapacity
    // placement budget: at iteration starts its pool (2p tasks) dwarfs the
    // bindable capacity (≤ p workers), so the capped branch and its top-up
    // loop — pending-list seeding, per-round re-requests, in-place
    // compaction — run on most measured slots and must be exactly as
    // silent as the uncapped path (the `pending` buffer lives in the
    // persistent SlotScratch, warmed like every other column).
    for (p, replication, budget) in [
        (64, false, PlacementBudget::Uncapped),
        (64, true, PlacementBudget::Uncapped),
        (256, true, PlacementBudget::Uncapped),
        (256, true, PlacementBudget::BindCapacity),
    ] {
        let mut sim = warmed_simulation(p, replication, budget);
        // Warm-up: scratch buffers, worker bound-lists and scheduler
        // internals (including the loser tree and the per-candidate hot
        // rows) reach their high-water capacities.
        for _ in 0..2_000 {
            sim.step();
            if sim.is_done() {
                panic!("warm-up exhausted the workload; enlarge the app");
            }
        }
        let before = snapshot();
        for _ in 0..5_000 {
            sim.step();
            if sim.is_done() {
                break;
            }
        }
        let delta = snapshot().delta(before);
        assert!(
            delta.is_quiet(),
            "steady-state slots allocated (p={p} replication={replication} {budget:?}): \
             {} allocs, {} reallocs, {} bytes over {} measured slots",
            delta.allocs,
            delta.reallocs,
            delta.bytes,
            5_000,
        );
    }

    // The multi-application engine: two weighted co-scheduled apps through
    // the quota-sharing schedule phase and the per-app barrier loop. The
    // 10_000-iteration apps keep both alive for the whole window; the
    // per-app completion logs are preallocated for every barrier, so
    // crossing barriers mid-window must stay silent too.
    let mut sim = warmed_two_app_simulation(64);
    for _ in 0..2_000 {
        sim.step();
        if sim.is_done() {
            panic!("warm-up exhausted the 2-app workload; enlarge the apps");
        }
    }
    let before = snapshot();
    for _ in 0..5_000 {
        sim.step();
        if sim.is_done() {
            break;
        }
    }
    let delta = snapshot().delta(before);
    assert!(
        delta.is_quiet(),
        "steady-state 2-app slots allocated: {} allocs, {} reallocs, {} bytes over 5000 slots",
        delta.allocs,
        delta.reallocs,
        delta.bytes,
    );

    // The scripted-injection stack: correlated rows + diurnal demotion +
    // an always-active overlay. The warm-up crosses the kill burst's start
    // (slot 3000), so the measured window covers both the burst and the
    // steady degrade span.
    let mut sim = warmed_chaos_simulation(64);
    for _ in 0..2_000 {
        sim.step();
        if sim.is_done() {
            panic!("warm-up exhausted the chaos workload; enlarge the app");
        }
    }
    let before = snapshot();
    for _ in 0..5_000 {
        sim.step();
        if sim.is_done() {
            break;
        }
    }
    let delta = snapshot().delta(before);
    assert!(
        delta.is_quiet(),
        "steady-state chaos slots allocated: {} allocs, {} reallocs, {} bytes over 5000 slots",
        delta.allocs,
        delta.reallocs,
        delta.bytes,
    );
}
