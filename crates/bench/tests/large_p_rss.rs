//! Platform-scale memory-footprint smoke test: a `p = 131072` run must fit
//! the SoA store's expected per-worker budget.
//!
//! The dense columns cost a few hundred bytes per worker (state/occupancy
//! bytes, copy slots, delay estimates, dirty bits, block summaries, the
//! availability chains and snapshot buffers), so the whole platform should
//! stay within a ~1 KiB/worker envelope plus a fixed process baseline —
//! an accidental `O(p)` *per-slot* or per-task allocation (or a dense
//! `p × m` structure) blows through that envelope immediately, which is
//! exactly what this test exists to catch. The reading is the kernel's
//! process-wide `VmHWM`, so this file must stay its own integration-test
//! binary (one process, no unrelated allocations in the high-water mark).
//!
//! This is a *smoke* test: few slots, one heuristic — the throughput story
//! lives in the `slotloop` bench cells and the byte-identity story in the
//! `soa_equivalence` grid (p = 16384 row).

use vg_bench::{paper_app, paper_platform, peak_rss_bytes};
use vg_core::HeuristicKind;
use vg_des::rng::SeedPath;
use vg_sim::{PlacementBudget, SimOptions, Simulation};

#[cfg(target_os = "linux")]
#[test]
fn p_131072_run_stays_within_the_per_worker_memory_budget() {
    let p = 131_072usize;
    let platform = paper_platform(p, (p / 10).max(2), 2, 11);
    let app = paper_app(4096, 2, 2, 1);
    let options = SimOptions {
        max_slots: 6,
        replication: true,
        max_extra_replicas: 2,
        record_timeline: false,
        placement_budget: PlacementBudget::BindCapacity,
    };
    let report = Simulation::run_seeded(
        &platform,
        &app,
        HeuristicKind::EmctStar.build(SeedPath::root(1).rng()),
        SeedPath::root(2),
        options,
    )
    .expect("valid platform-scale run");
    assert!(report.slots_run > 0);

    let rss = peak_rss_bytes();
    assert!(
        rss > 0,
        "VmHWM unavailable — cannot smoke-test the footprint"
    );
    // Budget: 1 KiB per worker for every per-worker structure in the
    // process (store columns, chains, traces, snapshots, scratch) plus a
    // 64 MiB fixed baseline for the binary, the task state, and allocator
    // slack. p = 131072 ⇒ 192 MiB ceiling; the run fits comfortably
    // today, so tripping this means a platform-sized structure was
    // duplicated or a per-slot allocation scales with p.
    let budget = 64 * (1 << 20) + (p as u64) * 1024;
    assert!(
        rss <= budget,
        "peak RSS {} MiB exceeds the platform-scale budget {} MiB \
         (≈{} bytes/worker)",
        rss >> 20,
        budget >> 20,
        rss / p as u64,
    );
}
