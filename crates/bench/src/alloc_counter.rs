//! A counting global allocator, for pinning "this loop does not allocate"
//! claims as tests instead of comments.
//!
//! Enabled by the `alloc-counter` feature. A test binary opts in with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: vg_bench::alloc_counter::CountingAllocator =
//!     vg_bench::alloc_counter::CountingAllocator;
//! ```
//!
//! and then brackets the section under scrutiny with [`snapshot`] /
//! [`Snapshot::delta`]. Counting is process-global and thread-safe; tests
//! that measure must run single-threaded (`--test-threads=1` or a dedicated
//! integration-test binary with one test) so concurrent tests cannot
//! pollute the window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A `#[global_allocator]` wrapper around [`System`] that counts calls.
pub struct CountingAllocator;

// SAFETY: every method delegates directly to `System`, which upholds the
// full `GlobalAlloc` contract (alignment, provenance, non-aliasing); the
// added counter updates are lock-free atomics with no allocation of their
// own, so they cannot reenter the allocator or unwind across it.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: `layout` is forwarded unchanged from our caller, who per
        // the `GlobalAlloc` contract guarantees it has non-zero size.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr`/`layout` are forwarded unchanged; our caller
        // guarantees `ptr` came from this allocator (which always handed
        // out `System` blocks) with this same layout.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        REALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        // SAFETY: arguments forwarded unchanged; our caller guarantees
        // `ptr` is a live `System` block of `layout`, and that `new_size`
        // is non-zero and does not overflow when rounded up to the layout's
        // alignment.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Counter values at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    /// `alloc` calls so far.
    pub allocs: u64,
    /// `dealloc` calls so far.
    pub deallocs: u64,
    /// `realloc` calls so far.
    pub reallocs: u64,
    /// Bytes requested so far (alloc + realloc).
    pub bytes: u64,
}

impl Snapshot {
    /// Counter deltas since `earlier`.
    #[must_use]
    pub fn delta(self, earlier: Snapshot) -> Snapshot {
        Snapshot {
            allocs: self.allocs - earlier.allocs,
            deallocs: self.deallocs - earlier.deallocs,
            reallocs: self.reallocs - earlier.reallocs,
            bytes: self.bytes - earlier.bytes,
        }
    }

    /// True when no allocator activity happened in the delta.
    #[must_use]
    pub fn is_quiet(self) -> bool {
        self.allocs == 0 && self.reallocs == 0
    }
}

/// Reads the current counters.
#[must_use]
pub fn snapshot() -> Snapshot {
    Snapshot {
        allocs: ALLOCS.load(Ordering::Relaxed),
        deallocs: DEALLOCS.load(Ordering::Relaxed),
        reallocs: REALLOCS.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
    }
}
