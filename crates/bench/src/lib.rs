//! Shared fixtures for the benchmark suite.
//!
//! Every bench target mirrors one evaluation artifact of the paper (a table
//! or figure) or ablates one design choice; the fixtures here keep the
//! platforms identical across targets so numbers are comparable.

use vg_des::rng::SeedPath;
use vg_markov::availability::AvailabilityChain;
use vg_platform::{AppConfig, PlatformConfig, ProcessorConfig, StartPolicy};

#[cfg(feature = "alloc-counter")]
pub mod alloc_counter;

/// A paper-style Markov platform: `p` processors, diagonals in
/// `[0.90, 0.99]`, speeds in `[wmin, 10·wmin]`.
#[must_use]
pub fn paper_platform(p: usize, ncom: usize, wmin: u64, seed: u64) -> PlatformConfig {
    let mut rng = SeedPath::root(seed).rng();
    PlatformConfig {
        processors: (0..p)
            .map(|_| {
                let chain = AvailabilityChain::sample_paper(&mut rng, 0.90, 0.99);
                let w = rng.u64_range_inclusive(wmin, 10 * wmin);
                ProcessorConfig::markov(w, chain, StartPolicy::Up)
            })
            .collect(),
        ncom,
    }
}

/// Matching application: `n` tasks, `iterations` iterations, paper ratios.
#[must_use]
pub fn paper_app(n: usize, iterations: u64, wmin: u64, comm_scale: u64) -> AppConfig {
    AppConfig {
        tasks_per_iteration: n,
        iterations,
        t_prog: 5 * wmin * comm_scale,
        t_data: wmin * comm_scale,
    }
}

/// A deterministic sampled chain for micro-benches.
#[must_use]
pub fn sample_chain(seed: u64) -> AvailabilityChain {
    let mut rng = SeedPath::root(seed).rng();
    AvailabilityChain::sample_paper(&mut rng, 0.90, 0.99)
}

/// Peak resident set size of the current process in bytes — the kernel's
/// high-water mark (`VmHWM` in `/proc/self/status`), so it is monotone
/// over the process lifetime: a reading taken after a cell reflects the
/// largest footprint of *any* work so far, which is exactly the bound the
/// platform-scale cells track. Returns 0 when the field is unavailable
/// (non-Linux, restricted `/proc`), so callers treat 0 as "unknown"
/// rather than "tiny".
#[must_use]
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
            return 0;
        };
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb = rest
                    .trim()
                    .trim_end_matches("kB")
                    .trim()
                    .parse::<u64>()
                    .unwrap_or(0);
                return kb * 1024;
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_valid() {
        let p = paper_platform(6, 2, 3, 1);
        assert!(p.validate().is_ok());
        let a = paper_app(10, 2, 3, 1);
        assert!(a.validate().is_ok());
        assert_eq!(a.t_prog, 15);
        let _ = sample_chain(1);
    }

    #[test]
    fn peak_rss_reads_a_plausible_high_water_mark() {
        let rss = peak_rss_bytes();
        #[cfg(target_os = "linux")]
        {
            // A running test binary has megabytes resident; anything in
            // [1 MiB, 1 TiB] is a plausible VmHWM, 0 means the parse broke.
            assert!(rss > 1 << 20, "VmHWM parse returned {rss}");
            assert!(rss < 1 << 40, "VmHWM parse returned {rss}");
            // Monotone: a later reading never shrinks.
            let again = peak_rss_bytes();
            assert!(again >= rss);
        }
        #[cfg(not(target_os = "linux"))]
        assert_eq!(rss, 0);
    }
}
