//! Shared fixtures for the benchmark suite.
//!
//! Every bench target mirrors one evaluation artifact of the paper (a table
//! or figure) or ablates one design choice; the fixtures here keep the
//! platforms identical across targets so numbers are comparable.

use vg_des::rng::SeedPath;
use vg_markov::availability::AvailabilityChain;
use vg_platform::{AppConfig, PlatformConfig, ProcessorConfig, StartPolicy};

#[cfg(feature = "alloc-counter")]
pub mod alloc_counter;

/// A paper-style Markov platform: `p` processors, diagonals in
/// `[0.90, 0.99]`, speeds in `[wmin, 10·wmin]`.
#[must_use]
pub fn paper_platform(p: usize, ncom: usize, wmin: u64, seed: u64) -> PlatformConfig {
    let mut rng = SeedPath::root(seed).rng();
    PlatformConfig {
        processors: (0..p)
            .map(|_| {
                let chain = AvailabilityChain::sample_paper(&mut rng, 0.90, 0.99);
                let w = rng.u64_range_inclusive(wmin, 10 * wmin);
                ProcessorConfig::markov(w, chain, StartPolicy::Up)
            })
            .collect(),
        ncom,
    }
}

/// Matching application: `n` tasks, `iterations` iterations, paper ratios.
#[must_use]
pub fn paper_app(n: usize, iterations: u64, wmin: u64, comm_scale: u64) -> AppConfig {
    AppConfig {
        tasks_per_iteration: n,
        iterations,
        t_prog: 5 * wmin * comm_scale,
        t_data: wmin * comm_scale,
    }
}

/// A deterministic sampled chain for micro-benches.
#[must_use]
pub fn sample_chain(seed: u64) -> AvailabilityChain {
    let mut rng = SeedPath::root(seed).rng();
    AvailabilityChain::sample_paper(&mut rng, 0.90, 0.99)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_valid() {
        let p = paper_platform(6, 2, 3, 1);
        assert!(p.validate().is_ok());
        let a = paper_app(10, 2, 3, 1);
        assert!(a.validate().is_ok());
        assert_eq!(a.t_prog, 15);
        let _ = sample_chain(1);
    }
}
