//! Bench-regression gate over `BENCH_slotloop.json` artifacts.
//!
//! ```text
//! bench_guard <baseline.json> <candidate.json> [min_ratio] [min_small_ratio] [phase_profile.json]
//! ```
//!
//! Compares the freshly measured slot-loop throughput against a baseline
//! measurement and **exits non-zero** if the candidate's slots/sec at
//! `p = 1024` (either replication setting) drops below `min_ratio ×
//! baseline` (default 0.85 — runners are noisy; a real regression from a
//! hot-path change shows up far below that), or if any *other* cell
//! (`p ≤ 256`) drops below `min_small_ratio × baseline` (default 0.95 —
//! the selector work's acceptance bar: large-`p` wins must not tax the
//! small platforms where the linear rescan still runs). Absolute
//! slots/sec vary with hardware, so the baseline must come from the
//! **same machine** — CI benches the merge-base revision in the same job
//! and passes that file here (the committed `BENCH_slotloop.json` is a
//! recorded trajectory, not a cross-machine gate). Every baseline cell is
//! printed and gated, and a cell missing from where it must exist fails
//! loudly instead of un-gating itself — **both** p = 1024 cells
//! (replication off AND on) must be present in both files, and every
//! baseline cell must still exist in the candidate (a dropped or
//! truncated row is exactly how a regression slips through); only cells
//! the *candidate* adds (a grown grid) pass ungated, having no baseline.
//!
//! Since the demand-driven placement work the grid also carries **capped**
//! cells (`"capped": true` — the `PlacementBudget::BindCapacity` engine
//! mode); cells are matched on `(p, replication, capped)` and a row
//! without the field is uncapped (pre-cap artifacts stay parseable). The
//! *candidate* must contain both capped `p = 1024` cells — dropping them
//! from the bench grid would silently retire the optimisation's
//! regression gate — while a baseline from a pre-cap revision is exempt
//! (its capped cells simply pass ungated until the grid lands). When a
//! phase-profile artifact path is given, it too must contain a capped
//! `p = 1024` row, so the sub-split trajectory of the capped slot loop
//! cannot quietly vanish from CI.
//!
//! Since the platform-scale work the grid further carries `p ∈ {16384,
//! 131072}` cells (chunked dense-column passes + sharded selection, with
//! a `peak_rss_bytes` footprint field this parser simply ignores). Those
//! are required of the *candidate* with the same pre-existing-baseline
//! exemption, and — being non-1024 cells — they gate at the
//! `min_small_ratio` floor (0.95) whenever the baseline measured them.
//!
//! The parser is deliberately tiny and fixed to the one-object-per-line
//! format `slotloop` emits — no serde needed for a CI gate.

use std::process::ExitCode;

/// One `{"p": …, "replication": …, …, "slots_per_sec": …}` cell.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CellPerf {
    p: u64,
    replication: bool,
    capped: bool,
    /// Worker threads the cell was measured with; rows without the field
    /// (every single-threaded artifact recorded before the campaign bench
    /// grew its multi-worker cell) default to 1.
    threads: u64,
    slots_per_sec: f64,
}

/// Extracts the JSON number (or bare token) following `"key": `.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let rest = rest.trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// Parses every benchmark cell out of a `BENCH_slotloop.json` body. A line
/// without a `"capped"` field is an uncapped cell (artifacts recorded
/// before the placement-budget grid remain parseable).
fn parse_cells(json: &str) -> Vec<CellPerf> {
    json.lines()
        .filter_map(|line| {
            Some(CellPerf {
                p: field(line, "p")?.parse().ok()?,
                replication: field(line, "replication")? == "true",
                capped: field(line, "capped") == Some("true"),
                threads: field(line, "threads")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(1),
                slots_per_sec: field(line, "slots_per_sec")?.parse().ok()?,
            })
        })
        .collect()
}

/// Requires the phase-profile artifact to carry a capped `p = 1024` row
/// (the sub-split trajectory of the capped slot loop).
fn check_phase_profile(path: &str, json: &str) -> Result<(), String> {
    let has = json.lines().any(|line| {
        field(line, "p").and_then(|v| v.parse::<u64>().ok()) == Some(1024)
            && field(line, "capped") == Some("true")
    });
    if has {
        Ok(())
    } else {
        Err(format!(
            "{path} is missing the capped p=1024 phase-profile row"
        ))
    }
}

fn run(
    baseline_path: &str,
    candidate_path: &str,
    min_ratio: f64,
    min_small_ratio: f64,
    phase_profile_path: Option<&str>,
) -> Result<(), String> {
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let baseline = parse_cells(&read(baseline_path)?);
    let candidate = parse_cells(&read(candidate_path)?);
    if baseline.is_empty() || candidate.is_empty() {
        return Err(format!(
            "no benchmark cells parsed ({} baseline, {} candidate)",
            baseline.len(),
            candidate.len()
        ));
    }
    // The gate is only meaningful if every gated cell actually exists in
    // both artifacts — a missing cell must fail loudly, not un-gate itself.
    for replication in [false, true] {
        for (file, cells) in [(baseline_path, &baseline), (candidate_path, &candidate)] {
            if !cells
                .iter()
                .any(|c| c.p == 1024 && c.replication == replication && !c.capped)
            {
                return Err(format!(
                    "{file} is missing the gated cell p=1024 replication={replication}"
                ));
            }
        }
        // The capped grid is required of the *candidate* only: a baseline
        // from a pre-cap merge-base cannot have measured it, but current
        // code dropping the capped cells would silently retire the
        // placement-budget regression gate.
        if !candidate
            .iter()
            .any(|c| c.p == 1024 && c.replication == replication && c.capped)
        {
            return Err(format!(
                "{candidate_path} is missing the capped cell p=1024 replication={replication}"
            ));
        }
        // The platform-scale grid (p ≥ 16384) is likewise required of the
        // candidate only: dropping those cells would silently retire the
        // chunked-pass/sharded-selector regression gate, while a
        // merge-base baseline from before the grid existed passes them
        // ungated.
        for p in [16_384u64, 131_072] {
            for capped in [false, true] {
                if !candidate
                    .iter()
                    .any(|c| c.p == p && c.replication == replication && c.capped == capped)
                {
                    return Err(format!(
                        "{candidate_path} is missing the platform-scale cell p={p} \
                         replication={replication} capped={capped}"
                    ));
                }
            }
        }
    }
    if let Some(path) = phase_profile_path {
        check_phase_profile(path, &read(path)?)?;
    }
    let mut gated = 0usize;
    let mut failures = Vec::new();
    for base in &baseline {
        let Some(cand) = candidate.iter().find(|c| {
            c.p == base.p && c.replication == base.replication && c.capped == base.capped
        }) else {
            // A cell the baseline measured but the candidate no longer
            // emits must fail loudly, not un-gate itself — dropping a row
            // from the bench grid (or a truncated artifact) is exactly how
            // a small-cell regression would slip past its floor. (Cells
            // only the candidate has — a grown grid — have no baseline to
            // gate against and are fine.)
            return Err(format!(
                "candidate is missing the baseline cell p={} replication={} capped={}",
                base.p, base.replication, base.capped
            ));
        };
        if cand.threads != base.threads {
            // Thread-count mismatch: the two measurements ran with
            // different worker-pool sizes (e.g. a baseline recorded on a
            // machine with a different core count), so their throughput
            // ratio carries no regression signal. Skip rather than gate —
            // but say so, a silent skip would look like coverage.
            println!(
                "p={:<5} replication={:<5} capped={:<5} SKIPPED: thread count differs \
                 (baseline {} vs candidate {})",
                base.p, base.replication, base.capped, base.threads, cand.threads,
            );
            continue;
        }
        let ratio = cand.slots_per_sec / base.slots_per_sec;
        // p = 1024 is the scale the structured selectors exist for; the
        // smaller cells gate at the wider small-cell floor so selector
        // crossover changes cannot quietly tax the linear-scan band.
        let floor = if base.p == 1024 {
            min_ratio
        } else {
            min_small_ratio
        };
        println!(
            "p={:<5} replication={:<5} capped={:<5} baseline={:>12.1} candidate={:>12.1} ratio={:.3}  [floor {floor}]",
            base.p, base.replication, base.capped, base.slots_per_sec, cand.slots_per_sec, ratio,
        );
        if base.p == 1024 {
            gated += 1;
        }
        if ratio < floor {
            failures.push(format!(
                "p={} replication={} capped={}: {:.1} slots/sec is {:.3}× the baseline {:.1} \
                 (floor {floor})",
                base.p,
                base.replication,
                base.capped,
                cand.slots_per_sec,
                ratio,
                base.slots_per_sec
            ));
        }
    }
    if failures.is_empty() {
        println!(
            "bench guard OK ({gated} p=1024 cells ≥ {min_ratio}×, \
             small cells ≥ {min_small_ratio}× baseline)"
        );
        Ok(())
    } else {
        Err(format!(
            "slot-loop regression:\n  {}",
            failures.join("\n  ")
        ))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 || args.len() > 6 {
        eprintln!(
            "usage: bench_guard <baseline.json> <candidate.json> \
             [min_ratio] [min_small_ratio] [phase_profile.json]"
        );
        return ExitCode::FAILURE;
    }
    let min_ratio = args
        .get(3)
        .map(|s| s.parse::<f64>().expect("min_ratio must be a float"))
        .unwrap_or(0.85);
    let min_small_ratio = args
        .get(4)
        .map(|s| s.parse::<f64>().expect("min_small_ratio must be a float"))
        .unwrap_or(0.95);
    match run(
        &args[1],
        &args[2],
        min_ratio,
        min_small_ratio,
        args.get(5).map(String::as_str),
    ) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bench_guard: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "benchmarks": [
    {"p": 32, "replication": false, "capped": false, "slots": 1, "seconds": 1.0, "slots_per_sec": 1000.0},
    {"p": 1024, "replication": false, "capped": false, "slots": 1, "seconds": 1.0, "slots_per_sec": 3000.0},
    {"p": 1024, "replication": true, "capped": false, "slots": 1, "seconds": 1.0, "slots_per_sec": 1600.0},
    {"p": 1024, "replication": false, "capped": true, "slots": 1, "seconds": 1.0, "slots_per_sec": 5000.0},
    {"p": 1024, "replication": true, "capped": true, "slots": 1, "seconds": 1.0, "slots_per_sec": 2600.0},
    {"p": 16384, "replication": false, "capped": false, "slots": 1, "seconds": 1.0, "slots_per_sec": 2900.0, "peak_rss_bytes": 52428800},
    {"p": 16384, "replication": true, "capped": false, "slots": 1, "seconds": 1.0, "slots_per_sec": 1500.0, "peak_rss_bytes": 52428800},
    {"p": 16384, "replication": false, "capped": true, "slots": 1, "seconds": 1.0, "slots_per_sec": 4500.0, "peak_rss_bytes": 52428800},
    {"p": 16384, "replication": true, "capped": true, "slots": 1, "seconds": 1.0, "slots_per_sec": 2400.0, "peak_rss_bytes": 52428800},
    {"p": 131072, "replication": false, "capped": false, "slots": 1, "seconds": 1.0, "slots_per_sec": 700.0, "peak_rss_bytes": 209715200},
    {"p": 131072, "replication": true, "capped": false, "slots": 1, "seconds": 1.0, "slots_per_sec": 400.0, "peak_rss_bytes": 209715200},
    {"p": 131072, "replication": false, "capped": true, "slots": 1, "seconds": 1.0, "slots_per_sec": 1100.0, "peak_rss_bytes": 209715200},
    {"p": 131072, "replication": true, "capped": true, "slots": 1, "seconds": 1.0, "slots_per_sec": 600.0, "peak_rss_bytes": 209715200}
  ]
}"#;

    #[test]
    fn parses_the_slotloop_format() {
        let cells = parse_cells(SAMPLE);
        assert_eq!(cells.len(), 13);
        // The footprint field rides along without disturbing the parse.
        assert_eq!(
            cells[5],
            CellPerf {
                p: 16384,
                replication: false,
                capped: false,
                threads: 1,
                slots_per_sec: 2900.0
            }
        );
        assert_eq!(
            cells[2],
            CellPerf {
                p: 1024,
                replication: true,
                capped: false,
                threads: 1,
                slots_per_sec: 1600.0
            }
        );
        assert_eq!(
            cells[4],
            CellPerf {
                p: 1024,
                replication: true,
                capped: true,
                threads: 1,
                slots_per_sec: 2600.0
            }
        );
    }

    #[test]
    fn rows_without_a_threads_field_parse_as_single_threaded() {
        let cells = parse_cells(SAMPLE);
        assert!(
            cells.iter().all(|c| c.threads == 1),
            "legacy rows must default to threads=1"
        );
        let threaded = r#"{"p": 1024, "replication": true, "threads": 4, "slots": 1, "seconds": 1.0, "slots_per_sec": 1600.0}"#;
        assert_eq!(parse_cells(threaded)[0].threads, 4);
    }

    #[test]
    fn thread_mismatched_cells_are_skipped_not_gated() {
        // A cell measured with a different worker-pool size carries no
        // regression signal: even a catastrophic ratio must pass — and the
        // same artifact with matching thread counts must fail, proving the
        // skip is the thread field's doing.
        let dir = std::env::temp_dir().join("vg_bench_guard_threads");
        std::fs::create_dir_all(&dir).unwrap();
        let p32 = r#"    {"p": 32, "replication": false, "capped": false, "slots": 1, "seconds": 1.0, "slots_per_sec": 1000.0},"#;
        let base_threads = SAMPLE.replace(
            p32,
            r#"    {"p": 32, "replication": false, "capped": false, "threads": 4, "slots": 1, "seconds": 1.0, "slots_per_sec": 1000.0},"#,
        );
        let cand_regressed = SAMPLE.replace(
            p32,
            r#"    {"p": 32, "replication": false, "capped": false, "threads": 1, "slots": 1, "seconds": 1.0, "slots_per_sec": 10.0},"#,
        );
        let base = dir.join("base.json");
        let cand = dir.join("cand.json");
        std::fs::write(&base, &base_threads).unwrap();
        std::fs::write(&cand, &cand_regressed).unwrap();
        assert!(
            run(
                base.to_str().unwrap(),
                cand.to_str().unwrap(),
                0.85,
                0.90,
                None
            )
            .is_ok(),
            "thread-mismatched cell must be ignored"
        );
        // Same regression, matching thread counts (both default 1): gated
        // and failing.
        let base_plain = dir.join("base_plain.json");
        std::fs::write(&base_plain, SAMPLE).unwrap();
        let err = run(
            base_plain.to_str().unwrap(),
            cand.to_str().unwrap(),
            0.85,
            0.90,
            None,
        )
        .unwrap_err();
        assert!(err.contains("p=32"), "{err}");
    }

    #[test]
    fn rows_without_a_capped_field_parse_as_uncapped() {
        // Pre-cap artifacts (e.g. a merge-base baseline) have no "capped"
        // field; they must keep parsing as uncapped cells, not be dropped.
        let legacy = r#"{"p": 1024, "replication": true, "slots": 1, "seconds": 1.0, "slots_per_sec": 1600.0}"#;
        let cells = parse_cells(legacy);
        assert_eq!(cells.len(), 1);
        assert!(!cells[0].capped);
    }

    #[test]
    fn gate_logic_passes_and_fails_on_ratio() {
        let dir = std::env::temp_dir().join("vg_bench_guard_test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let good = dir.join("good.json");
        let bad = dir.join("bad.json");
        std::fs::write(&base, SAMPLE).unwrap();
        std::fs::write(&good, SAMPLE.replace("1600.0", "1700.0")).unwrap();
        std::fs::write(&bad, SAMPLE.replace("1600.0", "900.0")).unwrap();
        let b = base.to_str().unwrap();
        assert!(run(b, good.to_str().unwrap(), 0.85, 0.90, None).is_ok());
        assert!(run(b, bad.to_str().unwrap(), 0.85, 0.90, None).is_err());
        // Candidate faster than baseline on one gated cell but regressed on
        // the other must still fail.
        let mixed = dir.join("mixed.json");
        std::fs::write(
            &mixed,
            SAMPLE
                .replace("3000.0", "9000.0")
                .replace("1600.0", "100.0"),
        )
        .unwrap();
        assert!(run(b, mixed.to_str().unwrap(), 0.85, 0.90, None).is_err());
        // A capped-cell regression gates exactly like an uncapped one.
        let capped_bad = dir.join("capped_bad.json");
        std::fs::write(&capped_bad, SAMPLE.replace("2600.0", "1000.0")).unwrap();
        let err = run(b, capped_bad.to_str().unwrap(), 0.85, 0.90, None).unwrap_err();
        assert!(err.contains("capped=true"), "{err}");
    }

    #[test]
    fn small_cells_gate_at_their_own_floor() {
        // A p = 32 regression below min_small_ratio must fail even with
        // both p = 1024 cells healthy — the selector crossover must not
        // quietly tax the linear-scan band — while a small dip inside the
        // noise margin passes.
        let dir = std::env::temp_dir().join("vg_bench_guard_small_cells");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        std::fs::write(&base, SAMPLE).unwrap();
        let b = base.to_str().unwrap();
        let dipped = dir.join("dipped.json");
        std::fs::write(
            &dipped,
            SAMPLE.replace("\"slots_per_sec\": 1000.0", "\"slots_per_sec\": 930.0"),
        )
        .unwrap();
        assert!(run(b, dipped.to_str().unwrap(), 0.85, 0.90, None).is_ok());
        let regressed = dir.join("regressed.json");
        std::fs::write(
            &regressed,
            SAMPLE.replace("\"slots_per_sec\": 1000.0", "\"slots_per_sec\": 500.0"),
        )
        .unwrap();
        let err = run(b, regressed.to_str().unwrap(), 0.85, 0.90, None).unwrap_err();
        assert!(err.contains("p=32"), "{err}");
        // A small cell the candidate stopped emitting must fail loudly —
        // un-gating by omission is the failure mode this guard exists
        // for — while extra candidate-only cells (a grown grid) pass.
        let dropped = dir.join("dropped.json");
        std::fs::write(
            &dropped,
            SAMPLE
                .lines()
                .filter(|l| !l.contains("\"p\": 32"))
                .collect::<Vec<_>>()
                .join("\n"),
        )
        .unwrap();
        let err = run(b, dropped.to_str().unwrap(), 0.85, 0.90, None).unwrap_err();
        assert!(err.contains("missing the baseline cell p=32"), "{err}");
        assert!(run(dropped.to_str().unwrap(), b, 0.85, 0.90, None).is_ok());
    }

    #[test]
    fn missing_gated_cell_fails_instead_of_ungating() {
        // Regression guard for the guard: dropping the replication-on
        // p = 1024 cell from either artifact must be an error, not a pass
        // with one fewer gated cell.
        let dir = std::env::temp_dir().join("vg_bench_guard_missing_cell");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        std::fs::write(&base, SAMPLE).unwrap();
        let rep_line = r#"    {"p": 1024, "replication": true, "capped": false, "slots": 1, "seconds": 1.0, "slots_per_sec": 1600.0}"#;
        for (name, json) in [
            ("norep.json", SAMPLE.replace(rep_line, "")),
            (
                "norep_at_all.json",
                SAMPLE
                    .lines()
                    .filter(|l| !l.contains("1024"))
                    .collect::<Vec<_>>()
                    .join("\n"),
            ),
        ] {
            let cand = dir.join(name);
            std::fs::write(&cand, json).unwrap();
            let err = run(
                base.to_str().unwrap(),
                cand.to_str().unwrap(),
                0.85,
                0.90,
                None,
            )
            .unwrap_err();
            assert!(err.contains("missing the gated cell"), "{name}: {err}");
            // And a candidate baseline missing the cell fails symmetrically.
            let err = run(
                cand.to_str().unwrap(),
                base.to_str().unwrap(),
                0.85,
                0.90,
                None,
            )
            .unwrap_err();
            assert!(err.contains("missing the gated cell"), "{name}: {err}");
        }
    }

    #[test]
    fn capped_cells_required_of_the_candidate_only() {
        // A merge-base baseline predating the placement-budget grid has no
        // capped cells: that must pass (its cells gate ungated). The
        // *candidate* dropping a capped p = 1024 cell must fail loudly.
        let dir = std::env::temp_dir().join("vg_bench_guard_capped_cells");
        std::fs::create_dir_all(&dir).unwrap();
        let precap: String = SAMPLE
            .lines()
            .filter(|l| !l.contains("\"capped\": true"))
            .collect::<Vec<_>>()
            .join("\n")
            .replace("\"slots_per_sec\": 1600.0},", "\"slots_per_sec\": 1600.0}");
        let base = dir.join("precap_base.json");
        let cand = dir.join("cand.json");
        std::fs::write(&base, &precap).unwrap();
        std::fs::write(&cand, SAMPLE).unwrap();
        assert!(run(
            base.to_str().unwrap(),
            cand.to_str().unwrap(),
            0.85,
            0.90,
            None
        )
        .is_ok());
        // Symmetric direction: the candidate without capped cells fails.
        let err = run(
            cand.to_str().unwrap(),
            base.to_str().unwrap(),
            0.85,
            0.90,
            None,
        )
        .unwrap_err();
        assert!(err.contains("missing the capped cell p=1024"), "{err}");
    }

    #[test]
    fn platform_scale_cells_required_of_the_candidate_only() {
        // A merge-base baseline predating the platform-scale grid has no
        // p ≥ 16384 cells: that must pass (nothing to gate against). The
        // *candidate* dropping any platform-scale cell must fail loudly —
        // that is how the chunked-pass regression gate would silently
        // retire itself.
        let dir = std::env::temp_dir().join("vg_bench_guard_platform_cells");
        std::fs::create_dir_all(&dir).unwrap();
        let prescale: String = SAMPLE
            .lines()
            .filter(|l| !l.contains("16384") && !l.contains("131072"))
            .collect::<Vec<_>>()
            .join("\n");
        let base = dir.join("prescale_base.json");
        let cand = dir.join("cand.json");
        std::fs::write(&base, &prescale).unwrap();
        std::fs::write(&cand, SAMPLE).unwrap();
        assert!(run(
            base.to_str().unwrap(),
            cand.to_str().unwrap(),
            0.85,
            0.90,
            None
        )
        .is_ok());
        // Candidate missing one platform-scale cell (here the capped
        // replication-on p = 131072 one) fails loudly.
        let dropped: String = SAMPLE
            .lines()
            .filter(|l| {
                !(l.contains("131072")
                    && l.contains("\"replication\": true")
                    && l.contains("\"capped\": true"))
            })
            .collect::<Vec<_>>()
            .join("\n");
        let partial = dir.join("partial.json");
        std::fs::write(&partial, &dropped).unwrap();
        let err = run(
            base.to_str().unwrap(),
            partial.to_str().unwrap(),
            0.85,
            0.90,
            None,
        )
        .unwrap_err();
        assert!(err.contains("platform-scale cell p=131072"), "{err}");
        // And when the baseline *did* measure the platform-scale cells, a
        // regression below min_small_ratio on one of them fails the gate.
        let full_base = dir.join("full_base.json");
        std::fs::write(&full_base, SAMPLE).unwrap();
        let regressed = dir.join("regressed.json");
        std::fs::write(
            &regressed,
            SAMPLE.replace("\"slots_per_sec\": 2900.0", "\"slots_per_sec\": 2000.0"),
        )
        .unwrap();
        let err = run(
            full_base.to_str().unwrap(),
            regressed.to_str().unwrap(),
            0.85,
            0.90,
            None,
        )
        .unwrap_err();
        assert!(err.contains("p=16384"), "{err}");
    }

    #[test]
    fn phase_profile_artifact_must_carry_the_capped_row() {
        let dir = std::env::temp_dir().join("vg_bench_guard_phase_profile");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        std::fs::write(&base, SAMPLE).unwrap();
        let b = base.to_str().unwrap();
        let with = dir.join("profile_with.json");
        std::fs::write(
            &with,
            r#"{"p": 1024, "capped": true, "slots": 1, "total_seconds": 1.0}"#,
        )
        .unwrap();
        assert!(run(b, b, 0.85, 0.90, Some(with.to_str().unwrap())).is_ok());
        let without = dir.join("profile_without.json");
        std::fs::write(
            &without,
            r#"{"p": 1024, "capped": false, "slots": 1, "total_seconds": 1.0}"#,
        )
        .unwrap();
        let err = run(b, b, 0.85, 0.90, Some(without.to_str().unwrap())).unwrap_err();
        assert!(err.contains("capped p=1024 phase-profile row"), "{err}");
    }
}
