//! Bench-regression gate over `BENCH_slotloop.json` artifacts.
//!
//! ```text
//! bench_guard <baseline.json> <candidate.json> [min_ratio]
//! ```
//!
//! Compares the freshly measured slot-loop throughput against a baseline
//! measurement and **exits non-zero** if the candidate's slots/sec at
//! `p = 1024` (either replication setting) drops below `min_ratio ×
//! baseline` (default 0.85 — runners are noisy; a real regression from a
//! hot-path change shows up far below that). Absolute slots/sec vary with
//! hardware, so the baseline must come from the **same machine** — CI
//! benches the merge-base revision in the same job and passes that file
//! here (the committed `BENCH_slotloop.json` is a recorded trajectory, not
//! a cross-machine gate). All shared cells are printed; only the p = 1024
//! cells gate, since that is the scale the SoA layout and the lazy-heap
//! placement exist for — and **both** p = 1024 cells (replication off AND
//! on) must be present in both files: a cell silently missing from either
//! artifact would otherwise un-gate itself, which is exactly how a
//! replication-path regression slips through.
//!
//! The parser is deliberately tiny and fixed to the one-object-per-line
//! format `slotloop` emits — no serde needed for a CI gate.

use std::process::ExitCode;

/// One `{"p": …, "replication": …, …, "slots_per_sec": …}` cell.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CellPerf {
    p: u64,
    replication: bool,
    slots_per_sec: f64,
}

/// Extracts the JSON number (or bare token) following `"key": `.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let rest = rest.trim_start();
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// Parses every benchmark cell out of a `BENCH_slotloop.json` body.
fn parse_cells(json: &str) -> Vec<CellPerf> {
    json.lines()
        .filter_map(|line| {
            Some(CellPerf {
                p: field(line, "p")?.parse().ok()?,
                replication: field(line, "replication")? == "true",
                slots_per_sec: field(line, "slots_per_sec")?.parse().ok()?,
            })
        })
        .collect()
}

fn run(baseline_path: &str, candidate_path: &str, min_ratio: f64) -> Result<(), String> {
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let baseline = parse_cells(&read(baseline_path)?);
    let candidate = parse_cells(&read(candidate_path)?);
    if baseline.is_empty() || candidate.is_empty() {
        return Err(format!(
            "no benchmark cells parsed ({} baseline, {} candidate)",
            baseline.len(),
            candidate.len()
        ));
    }
    // The gate is only meaningful if every gated cell actually exists in
    // both artifacts — a missing cell must fail loudly, not un-gate itself.
    for replication in [false, true] {
        for (file, cells) in [(baseline_path, &baseline), (candidate_path, &candidate)] {
            if !cells
                .iter()
                .any(|c| c.p == 1024 && c.replication == replication)
            {
                return Err(format!(
                    "{file} is missing the gated cell p=1024 replication={replication}"
                ));
            }
        }
    }
    let mut gated = 0usize;
    let mut failures = Vec::new();
    for base in &baseline {
        let Some(cand) = candidate
            .iter()
            .find(|c| c.p == base.p && c.replication == base.replication)
        else {
            continue;
        };
        let ratio = cand.slots_per_sec / base.slots_per_sec;
        let gates = base.p == 1024;
        println!(
            "p={:<5} replication={:<5} baseline={:>12.1} candidate={:>12.1} ratio={:.3}{}",
            base.p,
            base.replication,
            base.slots_per_sec,
            cand.slots_per_sec,
            ratio,
            if gates { "  [gated]" } else { "" }
        );
        if gates {
            gated += 1;
            if ratio < min_ratio {
                failures.push(format!(
                    "p={} replication={}: {:.1} slots/sec is {:.3}× the committed {:.1} \
                     (floor {min_ratio})",
                    base.p, base.replication, cand.slots_per_sec, ratio, base.slots_per_sec
                ));
            }
        }
    }
    if gated == 0 {
        return Err("no shared p=1024 cells to gate on".into());
    }
    if failures.is_empty() {
        println!("bench guard OK ({gated} gated cells ≥ {min_ratio}× baseline)");
        Ok(())
    } else {
        Err(format!(
            "slot-loop regression:\n  {}",
            failures.join("\n  ")
        ))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 || args.len() > 4 {
        eprintln!("usage: bench_guard <baseline.json> <candidate.json> [min_ratio]");
        return ExitCode::FAILURE;
    }
    let min_ratio = args
        .get(3)
        .map(|s| s.parse::<f64>().expect("min_ratio must be a float"))
        .unwrap_or(0.85);
    match run(&args[1], &args[2], min_ratio) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bench_guard: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "benchmarks": [
    {"p": 32, "replication": false, "slots": 1, "seconds": 1.0, "slots_per_sec": 1000.0},
    {"p": 1024, "replication": false, "slots": 1, "seconds": 1.0, "slots_per_sec": 3000.0},
    {"p": 1024, "replication": true, "slots": 1, "seconds": 1.0, "slots_per_sec": 1600.0}
  ]
}"#;

    #[test]
    fn parses_the_slotloop_format() {
        let cells = parse_cells(SAMPLE);
        assert_eq!(cells.len(), 3);
        assert_eq!(
            cells[2],
            CellPerf {
                p: 1024,
                replication: true,
                slots_per_sec: 1600.0
            }
        );
    }

    #[test]
    fn gate_logic_passes_and_fails_on_ratio() {
        let dir = std::env::temp_dir().join("vg_bench_guard_test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        let good = dir.join("good.json");
        let bad = dir.join("bad.json");
        std::fs::write(&base, SAMPLE).unwrap();
        std::fs::write(&good, SAMPLE.replace("1600.0", "1700.0")).unwrap();
        std::fs::write(&bad, SAMPLE.replace("1600.0", "900.0")).unwrap();
        let b = base.to_str().unwrap();
        assert!(run(b, good.to_str().unwrap(), 0.85).is_ok());
        assert!(run(b, bad.to_str().unwrap(), 0.85).is_err());
        // Candidate faster than baseline on one gated cell but regressed on
        // the other must still fail.
        let mixed = dir.join("mixed.json");
        std::fs::write(
            &mixed,
            SAMPLE
                .replace("3000.0", "9000.0")
                .replace("1600.0", "100.0"),
        )
        .unwrap();
        assert!(run(b, mixed.to_str().unwrap(), 0.85).is_err());
    }

    #[test]
    fn missing_gated_cell_fails_instead_of_ungating() {
        // Regression guard for the guard: dropping the replication-on
        // p = 1024 cell from either artifact must be an error, not a pass
        // with one fewer gated cell.
        let dir = std::env::temp_dir().join("vg_bench_guard_missing_cell");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        std::fs::write(&base, SAMPLE).unwrap();
        let rep_line = r#"    {"p": 1024, "replication": true, "slots": 1, "seconds": 1.0, "slots_per_sec": 1600.0}"#;
        for (name, json) in [
            ("norep.json", SAMPLE.replace(rep_line, "")),
            (
                "norep_at_all.json",
                SAMPLE
                    .lines()
                    .filter(|l| !l.contains("1024"))
                    .collect::<Vec<_>>()
                    .join("\n"),
            ),
        ] {
            let cand = dir.join(name);
            std::fs::write(&cand, json).unwrap();
            let err = run(base.to_str().unwrap(), cand.to_str().unwrap(), 0.85).unwrap_err();
            assert!(err.contains("missing the gated cell"), "{name}: {err}");
            // And a candidate baseline missing the cell fails symmetrically.
            let err = run(cand.to_str().unwrap(), base.to_str().unwrap(), 0.85).unwrap_err();
            assert!(err.contains("missing the gated cell"), "{name}: {err}");
        }
    }
}
