//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **replication cap** — 0 / 1 / 2 extra copies (Section 6.1 fixes 2);
//! * **master channel width** — `ncom ∈ {1, 5, 20}` on a fixed platform
//!   (the constraint whose presence makes the problem NP-hard);
//! * **contention correction** — Equation (1) vs Equation (2) on a
//!   communication-heavy cell.
//!
//! The throughput numbers double as outcome probes: each bench returns the
//! makespan, so `--verbose` runs expose how the knob moves the result.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vg_bench::{paper_app, paper_platform};
use vg_core::HeuristicKind;
use vg_des::rng::SeedPath;
use vg_sim::{PlacementBudget, SimOptions, Simulation};

fn bench_replication_cap(c: &mut Criterion) {
    let platform = paper_platform(20, 5, 3, 31);
    let app = paper_app(10, 5, 3, 1);
    let mut g = c.benchmark_group("ablation_replication_cap");
    g.warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    for (label, replication, cap) in [
        ("off", false, 0u8),
        ("one_extra", true, 1),
        ("paper_two_extra", true, 2),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let r = Simulation::run_seeded(
                    &platform,
                    &app,
                    HeuristicKind::Emct.build(SeedPath::root(1).rng()),
                    SeedPath::root(2),
                    SimOptions {
                        max_slots: 1_000_000,
                        replication,
                        max_extra_replicas: cap,
                        record_timeline: false,
                        placement_budget: PlacementBudget::Uncapped,
                    },
                )
                .expect("valid");
                black_box(r.makespan_or_cap())
            });
        });
    }
    g.finish();
}

fn bench_channel_width(c: &mut Criterion) {
    let app = paper_app(20, 5, 2, 1);
    let mut g = c.benchmark_group("ablation_ncom");
    g.warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    for ncom in [1usize, 5, 20] {
        let platform = paper_platform(20, ncom, 2, 33);
        g.bench_with_input(BenchmarkId::from_parameter(ncom), &ncom, |b, _| {
            b.iter(|| {
                let r = Simulation::run_seeded(
                    &platform,
                    &app,
                    HeuristicKind::MctStar.build(SeedPath::root(1).rng()),
                    SeedPath::root(2),
                    SimOptions::default(),
                )
                .expect("valid");
                black_box(r.makespan_or_cap())
            });
        });
    }
    g.finish();
}

fn bench_contention_correction(c: &mut Criterion) {
    // Communication-heavy: comm_scale 10 on a narrow master.
    let platform = paper_platform(20, 5, 1, 35);
    let app = paper_app(20, 5, 1, 10);
    let mut g = c.benchmark_group("ablation_eq1_vs_eq2");
    g.warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    for kind in [
        HeuristicKind::Mct,
        HeuristicKind::MctStar,
        HeuristicKind::Ud,
        HeuristicKind::UdStar,
    ] {
        g.bench_function(kind.name(), |b| {
            b.iter(|| {
                let r = Simulation::run_seeded(
                    &platform,
                    &app,
                    kind.build(SeedPath::root(1).rng()),
                    SeedPath::root(2),
                    SimOptions::default(),
                )
                .expect("valid");
                black_box(r.makespan_or_cap())
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_replication_cap,
    bench_channel_width,
    bench_contention_correction
);
criterion_main!(benches);
