//! Mirrors **Figure 1** (the Theorem-1 gadget): cost of the executable
//! reduction pipeline — DPLL solve, 3-SAT → Off-Line reduction, schedule
//! materialization + validation — plus the exact branch-and-bound on the
//! Section-4 counter-example and a tiny reduced instance.
//! `cargo run -p vg-exp --release --bin figure1` prints the real figure.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vg_des::rng::SeedPath;
use vg_offline::reduction::{figure1_formula, reduce, schedule_from_assignment};
use vg_offline::sat::{dpll, Cnf};
use vg_offline::{bnb, OfflineInstance};
use vg_platform::Trace;

fn bench_reduction(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure1");
    g.warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);

    let cnf = figure1_formula();
    g.bench_function("dpll_figure1_formula", |b| {
        b.iter(|| black_box(dpll(black_box(&cnf))));
    });
    g.bench_function("reduce_figure1_formula", |b| {
        b.iter(|| black_box(reduce(black_box(&cnf))));
    });
    let assignment = dpll(&cnf).expect("satisfiable");
    let inst = reduce(&cnf);
    g.bench_function("materialize_and_validate", |b| {
        b.iter(|| {
            let s = schedule_from_assignment(&cnf, &assignment).expect("sat");
            black_box(s.validate(&inst).expect("feasible"))
        });
    });

    g.bench_function("dpll_random_3sat_8v_32c", |b| {
        let mut rng = SeedPath::root(5).rng();
        let formulas: Vec<Cnf> = (0..16).map(|_| Cnf::random_3sat(8, 32, &mut rng)).collect();
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % formulas.len();
            black_box(dpll(&formulas[i]))
        });
    });

    let counterexample = OfflineInstance::uniform(
        2,
        2,
        2,
        2,
        Some(1),
        9,
        vec![
            Trace::parse("uuuuuurrr").expect("trace"),
            Trace::parse("ruuuuuuuu").expect("trace"),
        ],
    );
    g.bench_function("bnb_section4_counterexample", |b| {
        b.iter(|| black_box(bnb::min_makespan(&counterexample, 10_000_000)));
    });

    let tiny = reduce(&Cnf::random_3sat(3, 3, &mut SeedPath::root(6).rng()));
    g.bench_function("bnb_reduced_3sat_n3_m3", |b| {
        b.iter(|| black_box(bnb::feasible_within(&tiny, tiny.horizon, 50_000_000)));
    });
    g.finish();
}

criterion_group!(benches, bench_reduction);
criterion_main!(benches);
