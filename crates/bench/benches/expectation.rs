//! Micro-benchmarks of the Section-5 mathematics: the closed forms that the
//! EMCT/LW/UD heuristics evaluate in their inner loops, their numeric
//! re-derivations, and the `ChainStats` cache that makes per-slot scheduling
//! cheap.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vg_bench::sample_chain;
use vg_markov::availability::ChainStats;

fn bench_expectation(c: &mut Criterion) {
    let chain = sample_chain(7);
    let stats = ChainStats::new(chain.clone());
    let mut g = c.benchmark_group("section5");
    g.warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(30);

    g.bench_function("p_plus_closed_form", |b| {
        b.iter(|| black_box(chain.p_plus()));
    });
    g.bench_function("p_plus_series", |b| {
        b.iter(|| black_box(chain.p_plus_numeric()));
    });
    g.bench_function("e_w_closed_form_w100", |b| {
        b.iter(|| black_box(chain.e_w(black_box(100))));
    });
    g.bench_function("e_w_series_w100", |b| {
        b.iter(|| black_box(chain.e_w_numeric(black_box(100))));
    });
    g.bench_function("p_ud_exact_k50", |b| {
        b.iter(|| black_box(chain.p_ud_exact(black_box(50))));
    });
    g.bench_function("p_ud_approx_k50_uncached", |b| {
        b.iter(|| black_box(chain.p_ud_approx(black_box(50))));
    });
    g.bench_function("p_ud_approx_k50_cached", |b| {
        b.iter(|| black_box(stats.p_ud_approx(black_box(50))));
    });
    g.bench_function("stationary_solve", |b| {
        b.iter(|| black_box(chain.stationary()));
    });
    g.bench_function("chain_stats_build", |b| {
        b.iter_batched(
            || chain.clone(),
            |c| black_box(ChainStats::new(c)),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_expectation);
criterion_main!(benches);
