//! Campaign throughput: instances simulated per second through the batched,
//! arena-reusing pipeline (`run_campaign`) versus the PR 1 per-unit runner
//! (`run_campaign_reference`), at sequential and auto parallelism — the
//! numerator of every "how long will the paper-scale campaign take"
//! estimate.
//!
//! Like `slotloop`, this target emits machine-readable JSON
//! (`BENCH_campaign.json`, override with `BENCH_CAMPAIGN_OUT`) so CI can
//! track the campaign-throughput trajectory across PRs. The `speedup` field
//! of the batched/auto row is relative to the per-unit runner at the same
//! parallelism — the acceptance metric of the batching work.

use std::fmt::Write as _;
use std::time::Instant;
use vg_core::HeuristicKind;
use vg_des::par::ParallelismConfig;
use vg_exp::campaign::{run_campaign, run_campaign_reference, CampaignConfig, CampaignResult};
use vg_exp::scenario::ScenarioParams;

struct Cell {
    runner: &'static str,
    parallelism: &'static str,
    /// Worker threads the row actually ran with (`ParallelismConfig::
    /// threads()` at measurement time) — recorded in the artifact so a
    /// baseline from a machine with a different core count is recognizably
    /// incomparable (bench_guard skips thread-mismatched cells).
    threads: usize,
    instances: usize,
    seconds: f64,
}

impl Cell {
    fn instances_per_sec(&self) -> f64 {
        self.instances as f64 / self.seconds
    }
}

fn time_runner(
    label: (&'static str, &'static str),
    cells: &[ScenarioParams],
    cfg: &CampaignConfig,
    run: impl Fn(&[ScenarioParams], &CampaignConfig) -> CampaignResult,
) -> Cell {
    // One warm-up pass at reduced size (allocator and branch predictors).
    let warm_cfg = CampaignConfig {
        scenarios_per_cell: 1,
        trials: 1,
        ..cfg.clone()
    };
    let warm = run(cells, &warm_cfg);
    assert!(warm.instances > 0);

    let start = Instant::now();
    let result = run(cells, cfg);
    let seconds = start.elapsed().as_secs_f64();
    assert_eq!(result.capped_instances(), 0, "bench cells must complete");
    Cell {
        runner: label.0,
        parallelism: label.1,
        threads: cfg.parallelism.threads(),
        instances: result.instances,
        seconds,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Two representative Table-1 cells: the smallest (setup-dominated) and a
    // mid-grid one (simulation-dominated), so the batching win is averaged
    // over both regimes rather than cherry-picked.
    let grid = vec![
        ScenarioParams::paper(5, 5, 1),
        ScenarioParams::paper(10, 10, 2),
    ];
    let cfg = CampaignConfig {
        heuristics: HeuristicKind::ALL.to_vec(),
        scenarios_per_cell: if quick { 2 } else { 8 },
        trials: if quick { 2 } else { 5 },
        master_seed: 42,
        parallelism: ParallelismConfig::Sequential,
        ..CampaignConfig::default()
    };

    let mut rows = Vec::new();
    // The fixed(4) row deliberately oversubscribes a 1-core container:
    // ROADMAP notes BENCH_campaign.json was measured on one core, where
    // "auto" degenerates to a single worker. A pinned multi-worker cell
    // keeps the thread-pool + channel machinery (claim contention, in-order
    // consume) on the measured path regardless of the host's core count.
    for (parallelism, label) in [
        (ParallelismConfig::Sequential, "sequential"),
        (ParallelismConfig::Auto, "auto"),
        (ParallelismConfig::fixed(4), "fixed4"),
    ] {
        let cfg = CampaignConfig {
            parallelism,
            ..cfg.clone()
        };
        rows.push(time_runner(
            ("per_unit", label),
            &grid,
            &cfg,
            run_campaign_reference,
        ));
        rows.push(time_runner(("batched", label), &grid, &cfg, run_campaign));
    }
    for c in &rows {
        println!(
            "campaign runner={:<9} parallelism={:<10} threads={} {:>8.1} instances/sec ({} instances in {:.3}s)",
            c.runner,
            c.parallelism,
            c.threads,
            c.instances_per_sec(),
            c.instances,
            c.seconds,
        );
    }

    let speedup_of = |runner: &str, par: &str| {
        rows.iter()
            .find(|c| c.runner == runner && c.parallelism == par)
            .map(Cell::instances_per_sec)
            .unwrap_or(f64::NAN)
    };
    let speedup_auto = speedup_of("batched", "auto") / speedup_of("per_unit", "auto");
    println!("batched vs per-unit at auto parallelism: {speedup_auto:.2}x");

    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, c) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"runner\": \"{}\", \"parallelism\": \"{}\", \"threads\": {}, \"instances\": {}, \"seconds\": {:.6}, \"instances_per_sec\": {:.2}}}{}",
            c.runner,
            c.parallelism,
            c.threads,
            c.instances,
            c.seconds,
            c.instances_per_sec(),
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    let _ = writeln!(
        json,
        "  ],\n  \"batched_vs_per_unit_auto_speedup\": {speedup_auto:.3}\n}}"
    );
    // Default under the workspace target/ so local runs don't dirty the
    // tracked BENCH_campaign.json trajectory anchor; CI overrides via the
    // env var. (Bench binaries run with the package dir as cwd, so the
    // default is anchored to the manifest, not the cwd.)
    let out = std::env::var("BENCH_CAMPAIGN_OUT").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_campaign.json"
        )
        .into()
    });
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create bench output dir");
        }
    }
    std::fs::write(&out, &json).expect("write bench output");
    println!("wrote {out}");
}
