//! Mirrors **Table 2** at bench scale: one full dfb instance — all 17
//! heuristics on identical availability — for a representative grid cell.
//! `cargo run -p vg-exp --release --bin table2` regenerates the real table;
//! this bench tracks the cost (and, via the printed summary, the outcome)
//! of its atomic unit.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vg_core::HeuristicKind;
use vg_des::rng::SeedPath;
use vg_exp::campaign::run_instance;
use vg_exp::scenario::{make_scenario, ScenarioParams};
use vg_sim::SimOptions;

fn bench_table2_instance(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5))
        .sample_size(10);

    for (label, n, ncom, wmin) in [
        ("cell_n5_ncom5_w1", 5usize, 5usize, 1u64),
        ("cell_n20_ncom10_w5", 20, 10, 5),
    ] {
        let params = ScenarioParams::paper(n, ncom, wmin);
        let scenario = make_scenario(params, SeedPath::root(5).child(1));
        let heuristics = HeuristicKind::ALL.to_vec();
        g.bench_function(label, |b| {
            b.iter(|| {
                black_box(run_instance(
                    &scenario,
                    &heuristics,
                    42,
                    0,
                    0,
                    0,
                    SimOptions::default(),
                ))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table2_instance);
criterion_main!(benches);
