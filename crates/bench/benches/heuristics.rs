//! Per-decision cost of every heuristic family: `place_into` on views of
//! several sizes — the inner loop of the whole evaluation campaign.
//!
//! The 20-processor group mirrors the paper's platforms; the scaling group
//! (p ∈ {32, 256, 1024}) tracks the per-slot scheduling cost the slot-loop
//! throughput bench (`slotloop`) aggregates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vg_bench::sample_chain;
use vg_core::view::{OwnedSchedView, SchedViewBuilder};
use vg_core::HeuristicKind;
use vg_des::rng::SeedPath;
use vg_markov::ProcState;
use vg_platform::ProcessorId;

fn view_p(p: usize, seed: u64) -> OwnedSchedView {
    let mut b = SchedViewBuilder::new(10, 2, (p / 4).max(2));
    for q in 0..p as u64 {
        b = b.proc(
            if q % 5 == 4 {
                ProcState::Reclaimed
            } else {
                ProcState::Up
            },
            2 + q % 8,
            q % 3 != 0,
            q % 7,
            sample_chain(seed + q),
        );
    }
    b.build()
}

fn bench_heuristics(c: &mut Criterion) {
    let owned = view_p(20, 100);
    let view = owned.view();
    let mut g = c.benchmark_group("place_20tasks_20procs");
    g.warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(30);
    for kind in [
        HeuristicKind::Random,
        HeuristicKind::Random2w,
        HeuristicKind::Mct,
        HeuristicKind::MctStar,
        HeuristicKind::Emct,
        HeuristicKind::EmctStar,
        HeuristicKind::Lw,
        HeuristicKind::UdStar,
    ] {
        g.bench_function(kind.name(), |b| {
            let mut sched = kind.build(SeedPath::root(1).rng());
            let mut out: Vec<ProcessorId> = Vec::with_capacity(20);
            b.iter(|| {
                out.clear();
                sched.place_into(black_box(&view), 20, &mut out);
                black_box(out.len())
            });
        });
    }
    g.finish();
}

fn bench_place_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("place_scaling");
    g.warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(20);
    for p in [32usize, 256, 1024] {
        let owned = view_p(p, 7);
        let view = owned.view();
        let count = p / 4; // a paper-ratio batch of tasks to place
        for kind in [HeuristicKind::Mct, HeuristicKind::EmctStar] {
            g.bench_with_input(BenchmarkId::new(kind.name(), p), &count, |b, &count| {
                let mut sched = kind.build(SeedPath::root(1).rng());
                let mut out: Vec<ProcessorId> = Vec::with_capacity(count);
                b.iter(|| {
                    out.clear();
                    sched.place_into(black_box(&view), count, &mut out);
                    black_box(out.len())
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_heuristics, bench_place_scaling);
criterion_main!(benches);
