//! Per-decision cost of every heuristic family: one `place()` call on a
//! 20-processor view with 20 tasks to place — the inner loop of the whole
//! evaluation campaign.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vg_bench::sample_chain;
use vg_core::view::SchedViewBuilder;
use vg_core::{HeuristicKind, SchedView};
use vg_des::rng::SeedPath;
use vg_markov::ProcState;

fn view_20(seed: u64) -> SchedView {
    let mut b = SchedViewBuilder::new(10, 2, 5);
    for q in 0..20u64 {
        b = b.proc(
            if q % 5 == 4 { ProcState::Reclaimed } else { ProcState::Up },
            2 + q % 8,
            q % 3 != 0,
            q % 7,
            sample_chain(seed + q),
        );
    }
    b.build()
}

fn bench_heuristics(c: &mut Criterion) {
    let view = view_20(100);
    let mut g = c.benchmark_group("place_20tasks_20procs");
    g.warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(30);
    for kind in [
        HeuristicKind::Random,
        HeuristicKind::Random2w,
        HeuristicKind::Mct,
        HeuristicKind::MctStar,
        HeuristicKind::Emct,
        HeuristicKind::EmctStar,
        HeuristicKind::Lw,
        HeuristicKind::UdStar,
    ] {
        g.bench_function(kind.name(), |b| {
            let mut sched = kind.build(SeedPath::root(1).rng());
            b.iter(|| black_box(sched.place(black_box(&view), 20)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_heuristics);
criterion_main!(benches);
