//! Per-placement cost of the argmin selectors, head to head — the
//! measurement behind `SelectorKind::choose`'s crossover thresholds
//! (including the `SHARD_MIN_UPS` monolithic/sharded boundary).
//!
//! For a grid of `(u, count)` cells (UP candidates × placements per
//! round), an `EMCT*` scheduler pinned to each selector replays the same
//! placement rounds over a paper-style platform view; every selector
//! produces the identical placement sequence (asserted here, pinned by the
//! vg-core proptest), so the wall-clock ratio isolates the selector's
//! access pattern. Emits machine-readable JSON (`BENCH_selector.json`,
//! override with `BENCH_SELECTOR_OUT`) so CI can track the crossover's
//! trajectory next to the slotloop artifact.

use std::fmt::Write as _;
use std::time::Instant;
use vg_bench::sample_chain;
use vg_core::greedy::{GreedyObjective, GreedyScheduler};
use vg_core::{OwnedSchedView, SchedViewBuilder, Scheduler, SelectorKind};
use vg_markov::ProcState;
use vg_platform::ProcessorId;

/// A paper-style view with `u` UP processors (heterogeneous speeds and
/// chains, a few distinct delays so rounds exercise real ties and
/// re-orderings).
fn view(u: usize) -> OwnedSchedView {
    let mut b = SchedViewBuilder::new(10, 2, (u / 10).max(2));
    for i in 0..u {
        b = b.proc(
            ProcState::Up,
            2 + (i as u64 * 7) % 19,
            i % 5 != 0,
            (i as u64 * 3) % 11,
            sample_chain(i as u64),
        );
    }
    b.build()
}

struct Cell {
    u: usize,
    count: usize,
    selector: &'static str,
    ns_per_placement: f64,
}

fn run_cell(
    owned: &OwnedSchedView,
    u: usize,
    count: usize,
    kind: Option<SelectorKind>,
    rounds: usize,
    expected: &[ProcessorId],
) -> Cell {
    let mut sched = GreedyScheduler::new(GreedyObjective::Emct, true, "EMCT*");
    sched.force_selector(kind);
    let mut out = Vec::with_capacity(count);
    // Warm the scratch (and verify the decisions once, outside the timed
    // window): every selector must reproduce the same placement sequence.
    out.clear();
    sched.place_into(&owned.view(), count, &mut out);
    assert_eq!(out, expected, "selector diverged: u={u} count={count}");
    let start = Instant::now();
    for _ in 0..rounds {
        out.clear();
        sched.place_into(&owned.view(), count, &mut out);
    }
    let seconds = start.elapsed().as_secs_f64();
    Cell {
        u,
        count,
        selector: match kind {
            None => "policy",
            Some(SelectorKind::Linear) => "linear",
            Some(SelectorKind::LazyHeap) => "lazy_heap",
            Some(SelectorKind::LoserTree) => "loser_tree",
            Some(SelectorKind::ShardedTree) => "sharded_tree",
        },
        ns_per_placement: seconds * 1e9 / (rounds * count) as f64,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // u = 1000 keeps a non-power-of-two tournament in the measured set.
    let grid: &[(usize, &[usize])] = &[
        (64, &[16, 128]),
        (256, &[16, 64, 512]),
        (1000, &[8, 64, 2000]),
        (1024, &[8, 64, 256, 2048]),
        // The sharded band: at and above SHARD_MIN_UPS the policy picks
        // per-shard trees; these cells measure the crossover directly
        // (monolithic vs sharded at identical u).
        (16_384, &[64, 1024]),
        (65_536, &[256]),
    ];
    let mut cells = Vec::new();
    for &(u, counts) in grid {
        let owned = view(u);
        for &count in counts {
            // Aim for a few tens of milliseconds per cell.
            let budget: usize = if quick { 2_000_000 } else { 20_000_000 };
            let rounds = (budget / (count * u.min(4 * count))).clamp(3, 20_000);
            let mut reference = GreedyScheduler::new(GreedyObjective::Emct, true, "EMCT*");
            reference.force_selector(Some(SelectorKind::Linear));
            let expected = reference.place(&owned.view(), count);
            for kind in [
                Some(SelectorKind::Linear),
                Some(SelectorKind::LazyHeap),
                Some(SelectorKind::LoserTree),
                Some(SelectorKind::ShardedTree),
                None,
            ] {
                let cell = run_cell(&owned, u, count, kind, rounds, &expected);
                println!(
                    "selector u={:<5} count={:<5} {:<10} {:>8.1} ns/placement",
                    cell.u, cell.count, cell.selector, cell.ns_per_placement
                );
                cells.push(cell);
            }
        }
    }

    let mut json = String::from("{\n  \"selector\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"u\": {}, \"count\": {}, \"selector\": \"{}\", \"ns_per_placement\": {:.2}}}{}",
            c.u,
            c.count,
            c.selector,
            c.ns_per_placement,
            if i + 1 == cells.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    // Default under the workspace target/ (anchored to the manifest — bench
    // binaries run with the package dir as cwd); CI overrides via the env
    // var, same pattern as the slotloop artifact.
    let out = std::env::var("BENCH_SELECTOR_OUT").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_selector.json"
        )
        .into()
    });
    std::fs::write(&out, &json).expect("write selector bench output");
    println!("wrote {out}");
}
