//! Per-phase wall-clock split of the slot loop, at several platform sizes.
//!
//! Run with:
//! `cargo bench -p vg-bench --features phase-profile --bench phase_profile`
//!
//! Backs the ROADMAP's per-phase cost-split claims (which phase is the next
//! lever) with a reproducible measurement instead of ad-hoc instrumentation.
//! Without the feature this target is a no-op stub, so plain
//! `cargo bench -p vg-bench` still builds everything.

#[cfg(not(feature = "phase-profile"))]
fn main() {
    eprintln!(
        "phase_profile needs the instrumented engine:\n  \
         cargo bench -p vg-bench --features phase-profile --bench phase_profile"
    );
}

#[cfg(feature = "phase-profile")]
fn main() {
    use vg_bench::{paper_app, paper_platform};
    use vg_core::HeuristicKind;
    use vg_des::rng::SeedPath;
    use vg_platform::source::AvailabilitySource;
    use vg_sim::engine::phase_profile;
    use vg_sim::{SimOptions, Simulation};

    let quick = std::env::args().any(|a| a == "--quick");
    for p in [20usize, 32, 256, 1024] {
        let platform = paper_platform(p, (p / 10).max(2), 2, 11);
        let budget: u64 = if quick { 100_000 } else { 1_000_000 };
        let max_slots = (budget / p as u64).max(100);
        let app = paper_app(2 * p, max_slots, 2, 1);
        let sources: Vec<Box<dyn AvailabilitySource>> = platform
            .processors
            .iter()
            .enumerate()
            .map(|(q, pc)| {
                pc.avail
                    .build_source(SeedPath::root(2).child(q as u64).rng())
            })
            .collect();
        let mut sim = Simulation::new(
            &platform,
            &app,
            HeuristicKind::EmctStar.build(SeedPath::root(1).rng()),
            sources,
            SimOptions {
                max_slots,
                replication: true,
                max_extra_replicas: 2,
                record_timeline: false,
            },
        )
        .expect("valid configuration");
        // Warm up outside the measured window, then profile the remainder.
        for _ in 0..(max_slots / 10).max(10) {
            sim.step();
        }
        phase_profile::reset();
        while !sim.is_done() {
            sim.step();
        }
        let nanos = phase_profile::snapshot();
        let total: u64 = nanos.iter().sum();
        print!("phase_profile p={p:<5}");
        for (name, n) in phase_profile::NAMES.iter().zip(nanos) {
            print!(" {name}={:.1}%", 100.0 * n as f64 / total.max(1) as f64);
        }
        println!(
            " (total {:.3}s over {} slots)",
            total as f64 / 1e9,
            sim.slots_run()
        );
    }
}
