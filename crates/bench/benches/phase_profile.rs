//! Per-phase wall-clock split of the slot loop, at several platform sizes.
//!
//! Run with:
//! `cargo bench -p vg-bench --features phase-profile --bench phase_profile`
//!
//! Backs the ROADMAP's per-phase cost-split claims (which phase is the next
//! lever) with a reproducible measurement instead of ad-hoc instrumentation,
//! including the schedule phase's sub-split (snapshot consult / pool
//! placement / free-mask + candidates / replica placement). Besides the
//! human-readable lines it emits a machine-readable JSON artifact
//! (`target/BENCH_phase_profile.json`, override with
//! `BENCH_PHASE_PROFILE_OUT`) that CI uploads next to `BENCH_slotloop.json`
//! so the split's trajectory is tracked across PRs. Without the feature
//! this target is a no-op stub, so plain `cargo bench -p vg-bench` still
//! builds everything.

#[cfg(not(feature = "phase-profile"))]
fn main() {
    eprintln!(
        "phase_profile needs the instrumented engine:\n  \
         cargo bench -p vg-bench --features phase-profile --bench phase_profile"
    );
}

#[cfg(feature = "phase-profile")]
fn main() {
    use std::fmt::Write as _;
    use vg_bench::{paper_app, paper_platform};
    use vg_core::HeuristicKind;
    use vg_des::rng::SeedPath;
    use vg_sim::engine::phase_profile;
    use vg_sim::{PlacementBudget, SimOptions, Simulation};

    let quick = std::env::args().any(|a| a == "--quick");
    let mut rows: Vec<String> = Vec::new();
    // The uncapped sweep carries the historical split; the capped p = 1024
    // cell shows where the slot budget goes once demand-driven placement
    // has collapsed the pool_place bucket.
    let grid = [
        (20usize, PlacementBudget::Uncapped),
        (32, PlacementBudget::Uncapped),
        (256, PlacementBudget::Uncapped),
        (1024, PlacementBudget::Uncapped),
        (1024, PlacementBudget::BindCapacity),
        // Platform-scale rows: where the chunked passes and the sharded
        // selector live or die.
        (16_384, PlacementBudget::Uncapped),
        (16_384, PlacementBudget::BindCapacity),
    ];
    for (p, placement) in grid {
        let capped = placement == PlacementBudget::BindCapacity;
        let platform = paper_platform(p, (p / 10).max(2), 2, 11);
        let budget: u64 = if quick { 100_000 } else { 1_000_000 };
        let max_slots = (budget / p as u64).max(100);
        // Same application regime as the slotloop cells: `m = 2p` for the
        // historical small-p trajectory, a fixed volunteer-grid app at
        // platform scale.
        let m = if p > 1024 { 2048 } else { 2 * p };
        let app = paper_app(m, max_slots, 2, 1);
        // Seeded construction picks the dense Markov bank — the same
        // source path the slotloop cells measure.
        let mut sim: Simulation = Simulation::new_seeded(
            &platform,
            &app,
            HeuristicKind::EmctStar.build(SeedPath::root(1).rng()),
            SeedPath::root(2),
            SimOptions {
                max_slots,
                replication: true,
                max_extra_replicas: 2,
                record_timeline: false,
                placement_budget: placement,
            },
        )
        .expect("valid configuration");
        // Warm up outside the measured window, then profile the remainder.
        for _ in 0..(max_slots / 10).max(10) {
            sim.step();
        }
        phase_profile::reset();
        while !sim.is_done() {
            sim.step();
        }
        let nanos = phase_profile::snapshot();
        let sub = phase_profile::sub_snapshot();
        let total: u64 = nanos.iter().sum();
        let pct = |n: u64| 100.0 * n as f64 / total.max(1) as f64;
        print!("phase_profile p={p:<5} capped={capped:<5}");
        for (name, n) in phase_profile::NAMES.iter().zip(nanos) {
            print!(" {name}={:.1}%", pct(n));
        }
        println!(
            " (total {:.3}s over {} slots)",
            total as f64 / 1e9,
            sim.slots_run()
        );
        print!("  sched sub:");
        for (name, n) in phase_profile::SUB_NAMES.iter().zip(sub) {
            print!(" {name}={:.1}%", pct(n));
        }
        println!();

        let mut row = format!(
            "    {{\"p\": {p}, \"capped\": {capped}, \"slots\": {}, \"total_seconds\": {:.6}",
            sim.slots_run(),
            total as f64 / 1e9
        );
        for (name, n) in phase_profile::NAMES.iter().zip(nanos) {
            let _ = write!(row, ", \"{name}_pct\": {:.2}", pct(n));
        }
        for (name, n) in phase_profile::SUB_NAMES.iter().zip(sub) {
            let _ = write!(row, ", \"schedule.{name}_pct\": {:.2}", pct(n));
        }
        row.push('}');
        rows.push(row);
    }

    let json = format!(
        "{{\n  \"phase_profile\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    // Default under the workspace target/ (anchored to the manifest — bench
    // binaries run with the package dir as cwd); CI overrides via the env
    // var, same pattern as the slotloop artifact.
    let out = std::env::var("BENCH_PHASE_PROFILE_OUT").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_phase_profile.json"
        )
        .into()
    });
    std::fs::write(&out, &json).expect("write phase-profile output");
    println!("wrote {out}");
}
