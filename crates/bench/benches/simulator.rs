//! Simulator throughput: complete runs on paper-sized platforms. The
//! per-run wall time here, multiplied by 296,400, is what a paper-scale
//! campaign costs.
//!
//! Worker count and replication are parameterized separately so a
//! regression in either path (the base slot loop vs the replica placement
//! path) is visible on its own axis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use vg_bench::{paper_app, paper_platform};
use vg_core::HeuristicKind;
use vg_des::rng::SeedPath;
use vg_sim::{SimOptions, Simulation};

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_run");
    g.warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);

    for (label, p, n, wmin, iters) in [
        ("small_p6_n5_w1", 6usize, 5usize, 1u64, 3u64),
        ("paper_p20_n20_w1", 20, 20, 1, 10),
        ("volatile_p20_n20_w5", 20, 20, 5, 10),
    ] {
        let platform = paper_platform(p, 5, wmin, 11);
        let app = paper_app(n, iters, wmin, 1);
        for kind in [HeuristicKind::Mct, HeuristicKind::EmctStar] {
            for replication in [false, true] {
                let rep_label = if replication { "rep" } else { "norep" };
                g.bench_with_input(
                    BenchmarkId::new(label, format!("{}/{rep_label}", kind.name())),
                    &kind,
                    |b, &kind| {
                        b.iter(|| {
                            let report = Simulation::run_seeded(
                                &platform,
                                &app,
                                kind.build(SeedPath::root(1).rng()),
                                SeedPath::root(2),
                                SimOptions {
                                    replication,
                                    ..SimOptions::default()
                                },
                            )
                            .expect("valid");
                            black_box(report.makespan_or_cap())
                        });
                    },
                );
            }
        }
    }
    g.finish();
}

fn bench_simulator_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_run_scaling");
    g.warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);

    for p in [32usize, 128] {
        let platform = paper_platform(p, (p / 10).max(2), 2, 11);
        let app = paper_app(2 * p, 2, 2, 1);
        for replication in [false, true] {
            let rep_label = if replication { "rep" } else { "norep" };
            g.bench_with_input(
                BenchmarkId::new(rep_label, p),
                &replication,
                |b, &replication| {
                    b.iter(|| {
                        let report = Simulation::run_seeded(
                            &platform,
                            &app,
                            HeuristicKind::EmctStar.build(SeedPath::root(1).rng()),
                            SeedPath::root(2),
                            SimOptions {
                                max_slots: 100_000,
                                replication,
                                ..SimOptions::default()
                            },
                        )
                        .expect("valid");
                        black_box(report.makespan_or_cap())
                    });
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_simulator, bench_simulator_scaling);
criterion_main!(benches);
