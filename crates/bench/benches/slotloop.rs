//! Slot-loop throughput: slots simulated per second at several platform
//! sizes, with replication on and off — the denominator of every campaign
//! cost estimate, and the regression gate for hot-path work.
//!
//! Unlike the criterion benches this target emits machine-readable JSON
//! (`BENCH_slotloop.json`, override with `BENCH_SLOTLOOP_OUT`) so CI can
//! track a perf trajectory across PRs.

use std::fmt::Write as _;
use std::time::Instant;
use vg_bench::{paper_app, paper_platform, peak_rss_bytes};
use vg_core::HeuristicKind;
use vg_des::rng::SeedPath;
use vg_sim::{PlacementBudget, SimOptions, Simulation};

struct Cell {
    p: usize,
    replication: bool,
    capped: bool,
    slots: u64,
    seconds: f64,
    /// Process-wide peak RSS (`VmHWM`) sampled right after the cell ran.
    /// The kernel counter is monotone, so this bounds the footprint of
    /// everything up to and including this cell — cells run in ascending
    /// `p`, so each platform size's first cell is the meaningful reading.
    peak_rss_bytes: u64,
}

impl Cell {
    fn slots_per_sec(&self) -> f64 {
        self.slots as f64 / self.seconds
    }
}

fn run_cell(
    p: usize,
    m: usize,
    replication: bool,
    budget: PlacementBudget,
    max_slots: u64,
) -> Cell {
    let ncom = (p / 10).max(2);
    let platform = paper_platform(p, ncom, 2, 11);
    // Enough work to keep the scheduler busy for the whole horizon: an
    // iteration needs at least one slot, so `max_slots` iterations can
    // never finish before the cap.
    let app = paper_app(m, max_slots, 2, 1);
    let options = SimOptions {
        max_slots,
        replication,
        max_extra_replicas: 2,
        record_timeline: false,
        placement_budget: budget,
    };
    // One warm-up run (allocator warm, branch predictors settled).
    let warm = Simulation::run_seeded(
        &platform,
        &app,
        HeuristicKind::EmctStar.build(SeedPath::root(1).rng()),
        SeedPath::root(2),
        SimOptions {
            max_slots: (max_slots / 10).max(10),
            ..options
        },
    )
    .expect("valid");
    assert!(warm.slots_run > 0);

    let start = Instant::now();
    let report = Simulation::run_seeded(
        &platform,
        &app,
        HeuristicKind::EmctStar.build(SeedPath::root(1).rng()),
        SeedPath::root(2),
        options,
    )
    .expect("valid");
    let seconds = start.elapsed().as_secs_f64();
    Cell {
        p,
        replication,
        capped: budget == PlacementBudget::BindCapacity,
        slots: report.slots_run,
        seconds,
        peak_rss_bytes: peak_rss_bytes(),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut cells = Vec::new();
    // The platform-scale cells (p ≥ 16384) run reduced slot counts — the
    // constant worker-slot budget floors them near 100 slots — and a
    // *fixed* application size instead of the small cells' `m = 2p`: the
    // production regime those cells model is a volunteer grid whose
    // platform dwarfs any one application (the paper's apps are hundreds
    // of tasks), so most workers are idle most slots and the chunked
    // passes + incremental candidate generation are what keep per-slot
    // cost sub-linear in `p`. The same app as the p = 1024 cell makes the
    // naive-extrapolation comparison (same work, 16×/128× the platform)
    // direct. The small cells keep `m = 2p` — their committed trajectory
    // predates this PR and must stay comparable.
    for p in [32usize, 256, 1024, 16_384, 131_072] {
        // Constant total worker-slot budget so each cell costs about the same
        // wall time regardless of platform size.
        let budget: u64 = if quick { 200_000 } else { 4_000_000 };
        let max_slots = (budget / p as u64).max(100);
        let m = if p > 1024 { 2048 } else { 2 * p };
        // Each (p, replication) point runs under both placement budgets:
        // the uncapped cells carry the historical trajectory, the capped
        // ones track the demand-driven placement win.
        for replication in [false, true] {
            for placement in [PlacementBudget::Uncapped, PlacementBudget::BindCapacity] {
                let cell = run_cell(p, m, replication, placement, max_slots);
                println!(
                    "slotloop p={:<6} replication={:<5} capped={:<5} {:>12.0} slots/sec ({} slots in {:.3}s, peak rss {} MiB)",
                    cell.p,
                    cell.replication,
                    cell.capped,
                    cell.slots_per_sec(),
                    cell.slots,
                    cell.seconds,
                    cell.peak_rss_bytes >> 20,
                );
                cells.push(cell);
            }
        }
    }

    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"p\": {}, \"replication\": {}, \"capped\": {}, \"slots\": {}, \"seconds\": {:.6}, \"slots_per_sec\": {:.1}, \"peak_rss_bytes\": {}}}{}",
            c.p,
            c.replication,
            c.capped,
            c.slots,
            c.seconds,
            c.slots_per_sec(),
            c.peak_rss_bytes,
            if i + 1 == cells.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");
    // Default under the workspace target/ so local runs don't dirty the
    // tracked BENCH_slotloop.json trajectory anchor; CI overrides via the
    // env var. (Bench binaries run with the package dir as cwd, so the
    // default is anchored to the manifest, not the cwd.)
    let out = std::env::var("BENCH_SLOTLOOP_OUT").unwrap_or_else(|_| {
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/BENCH_slotloop.json"
        )
        .into()
    });
    std::fs::write(&out, &json).expect("write bench output");
    println!("wrote {out}");
}
