//! # vg-platform — the volatile desktop-grid platform model
//!
//! Implements Section 3.2 of Casanova, Dufossé, Robert & Vivien (IPDPS 2011):
//! `p` volatile processors, each alternating between `UP`, `RECLAIMED` and
//! `DOWN`, served by an always-up master whose outgoing bandwidth follows the
//! *bounded multi-port* model (`n_prog + n_data ≤ ncom`).
//!
//! * [`processor`] — processor identities and per-processor speed `w_q`;
//! * [`trace`] — realized availability vectors `S_q` (dense, RLE, textual);
//! * [`source`] — per-slot state generators: Markov, semi-Markov, replay;
//! * [`fault`] — the scripted chaos DSL (`kill 30% at 100 for 50`);
//! * [`volatility`] — scripted overlays and correlated/diurnal models;
//! * [`network`] — the master's channel ledger enforcing `ncom`;
//! * [`config`] — serde-serializable platform/application descriptions.

pub mod config;
pub mod fault;
pub mod network;
pub mod processor;
pub mod source;
pub mod trace;
pub mod trace_io;
pub mod volatility;

pub use config::{
    validate_processor_count, AppConfig, AvailabilityModelConfig, ConfigError, PlatformConfig,
    ProcessorConfig, MAX_PROCESSORS,
};
pub use fault::{CompiledScript, FaultScript, FaultScriptError};
pub use network::{BandwidthLedger, TransferKind};
pub use processor::{ProcessorId, ProcessorSpec};
pub use source::{
    AvailabilitySource, MarkovSourceBank, ReplaySource, RowSource, SharedTraceMatrix, StartPolicy,
    TailBehavior,
};
pub use trace::{RleTrace, Trace};
pub use trace_io::TraceSet;
pub use volatility::{CorrelatedModel, CorrelatedSource, DiurnalSpec, GroupSpec, ScriptedOverlay};
