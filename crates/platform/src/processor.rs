//! Processor identities and static characteristics.

use serde::{Deserialize, Serialize};
use vg_des::SlotSpan;

/// Index of a processor within a platform (`P_1 … P_p` in the paper; we use
/// zero-based indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProcessorId(pub u32);

impl ProcessorId {
    /// Zero-based index as `usize` for slice access.
    #[inline]
    #[must_use]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ProcessorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Static description of one processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessorSpec {
    /// `w_q`: number of `UP` slots needed to compute one task (Section 3.2).
    /// Smaller is faster. Must be ≥ 1.
    pub w: SlotSpan,
}

impl ProcessorSpec {
    /// Creates a spec, validating `w ≥ 1`.
    ///
    /// # Panics
    /// Panics if `w == 0`.
    #[must_use]
    pub fn new(w: SlotSpan) -> Self {
        assert!(w >= 1, "a task cannot take zero compute slots");
        Self { w }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        let id = ProcessorId(3);
        assert_eq!(id.to_string(), "P3");
        assert_eq!(id.idx(), 3);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ProcessorId(1) < ProcessorId(2));
    }

    #[test]
    #[should_panic(expected = "zero compute slots")]
    fn zero_speed_rejected() {
        let _ = ProcessorSpec::new(0);
    }
}
