//! Scripted fault injection: a tiny deterministic chaos DSL.
//!
//! Chaos-mesh-style campaigns stress-test a scheduler with *scripted*
//! volatility — "kill 30% of the workers at slot 100 for 50 slots" — instead
//! of (or on top of) stochastic chains. The script is a line-oriented text
//! format, parsed by a hand-rolled parser with exact line/column error
//! positions:
//!
//! ```text
//! # declare a named worker group (half-open index range)
//! group rack0 = 0..8
//!
//! kill 30% at 100 for 50       # force 30% of workers DOWN
//! kill 3 at 200                # 3 workers, default duration 1 slot
//! kill group rack0 at 300 for 25
//! degrade group rack0 at 400 for 10   # force RECLAIMED
//! recover group rack0 at 410 for 5    # force UP
//! ```
//!
//! Percent and count targets pick workers by a deterministic even spread
//! (`⌊i·p/k⌋` for the `i`-th of `k` victims), so a script is reproducible
//! on any platform of the same size without an RNG. A parsed
//! [`FaultScript`] is compiled against a concrete platform size into a
//! [`CompiledScript`] — a flat span list that the engine's overlay (or the
//! per-source wrappers from [`CompiledScript::wrap_sources`]) applies after
//! the base availability row is sampled. An **empty script compiles to a
//! passthrough**: it forces nothing, and the overlay contract pins the
//! resulting runs byte-identical to the unwrapped base.

use vg_markov::availability::ProcState;

use crate::source::AvailabilitySource;

/// Parse or compile error with exact position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultScriptError {
    /// 1-based line number (0 for whole-script compile errors).
    pub line: usize,
    /// 1-based column of the offending token (0 when not applicable).
    pub col: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for FaultScriptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "fault script: {}", self.message)
        } else {
            write!(f, "line {}, col {}: {}", self.line, self.col, self.message)
        }
    }
}

impl std::error::Error for FaultScriptError {}

/// What a scripted event forces its victims into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Force `DOWN` (crash: running work on the victims is lost).
    Kill,
    /// Force `RECLAIMED` (the owner takes the machine back; work survives).
    Degrade,
    /// Force `UP` (scripted recovery window).
    Recover,
}

impl FaultAction {
    /// The forced processor state.
    #[must_use]
    pub fn forced_state(self) -> ProcState {
        match self {
            Self::Kill => ProcState::Down,
            Self::Degrade => ProcState::Reclaimed,
            Self::Recover => ProcState::Up,
        }
    }
}

/// Which workers an event hits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultTarget {
    /// A percentage of the platform, `0..=100`, rounded half-up to a count.
    Fraction(u32),
    /// An absolute worker count.
    Count(u64),
    /// A named group declared with `group <name> = <lo>..<hi>`.
    Group(String),
}

/// One scripted event: `<action> <target> at <slot> [for <duration>]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// What state the victims are forced into.
    pub action: FaultAction,
    /// Who is hit.
    pub target: FaultTarget,
    /// First affected slot.
    pub at: u64,
    /// Number of affected slots (≥ 1; the grammar default is 1).
    pub duration: u64,
}

/// A parsed (but not yet platform-bound) fault script.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultScript {
    /// Declared groups, in declaration order: `(name, lo..hi)` half-open.
    groups: Vec<(String, std::ops::Range<u32>)>,
    /// Events in script order.
    events: Vec<FaultEvent>,
}

/// One compiled forcing window: `workers` are forced into `state` for every
/// slot in `start..end`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForcedSpan {
    /// First affected slot.
    pub start: u64,
    /// One past the last affected slot.
    pub end: u64,
    /// The forced state.
    pub state: ProcState,
    /// Victim worker indices, strictly increasing.
    pub workers: Vec<u32>,
}

/// A fault script bound to a platform of `p` workers: a flat list of
/// forcing spans ready to apply to sampled state rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledScript {
    p: usize,
    spans: Vec<ForcedSpan>,
}

impl FaultScript {
    /// Parses the script text. Errors carry the exact 1-based line and
    /// column of the offending token.
    pub fn parse(text: &str) -> Result<Self, FaultScriptError> {
        let mut script = Self::default();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let mut toks = Tokens::new(raw, line_no);
            let Some((col, word)) = toks.next() else {
                continue; // blank or comment-only line
            };
            match word {
                "group" => script.parse_group(&mut toks)?,
                "kill" | "degrade" | "recover" => {
                    let action = match word {
                        "kill" => FaultAction::Kill,
                        "degrade" => FaultAction::Degrade,
                        _ => FaultAction::Recover,
                    };
                    script.parse_event(action, &mut toks)?;
                }
                other => {
                    return Err(FaultScriptError {
                        line: line_no,
                        col,
                        message: format!(
                            "unknown directive {other:?} (expected group/kill/degrade/recover)"
                        ),
                    })
                }
            }
        }
        Ok(script)
    }

    /// `group <name> = <lo>..<hi>` (indices half-open, `lo < hi`).
    fn parse_group(&mut self, toks: &mut Tokens<'_>) -> Result<(), FaultScriptError> {
        let (ncol, name) = toks.expect_any("group name")?;
        if name == "=" || name.contains("..") {
            return Err(toks.err(ncol, "expected a group name before `=`".into()));
        }
        toks.expect_word("=")?;
        let (rcol, range) = toks.expect_any("index range `<lo>..<hi>`")?;
        let Some((lo, hi)) = range.split_once("..") else {
            return Err(toks.err(rcol, format!("expected `<lo>..<hi>`, got {range:?}")));
        };
        let lo: u32 = parse_int(toks, rcol, lo, "range start")?;
        let hi: u32 = parse_int(toks, rcol, hi, "range end")?;
        if lo >= hi {
            return Err(toks.err(rcol, format!("empty range {lo}..{hi}")));
        }
        if self.groups.iter().any(|(n, _)| n == name) {
            return Err(toks.err(ncol, format!("group {name:?} declared twice")));
        }
        toks.expect_end()?;
        self.groups.push((name.to_string(), lo..hi));
        Ok(())
    }

    /// `<action> <target> at <slot> [for <duration>]`.
    fn parse_event(
        &mut self,
        action: FaultAction,
        toks: &mut Tokens<'_>,
    ) -> Result<(), FaultScriptError> {
        let (tcol, tword) = toks.expect_any("target (count, percent or `group <name>`)")?;
        let target = if tword == "group" {
            let (_, name) = toks.expect_any("group name")?;
            if !self.groups.iter().any(|(n, _)| n == name) {
                return Err(toks.err(tcol, format!("undeclared group {name:?}")));
            }
            FaultTarget::Group(name.to_string())
        } else if let Some(pct) = tword.strip_suffix('%') {
            let pct: u32 = parse_int(toks, tcol, pct, "percentage")?;
            if pct > 100 {
                return Err(toks.err(tcol, format!("{pct}% exceeds 100%")));
            }
            FaultTarget::Fraction(pct)
        } else {
            FaultTarget::Count(parse_int(toks, tcol, tword, "worker count")?)
        };
        toks.expect_word("at")?;
        let (scol, sword) = toks.expect_any("slot number")?;
        let at: u64 = parse_int(toks, scol, sword, "slot number")?;
        let duration = match toks.next() {
            None => 1,
            Some((_, "for")) => {
                let (dcol, dword) = toks.expect_any("duration in slots")?;
                let d: u64 = parse_int(toks, dcol, dword, "duration")?;
                if d == 0 {
                    return Err(toks.err(dcol, "duration must be ≥ 1".into()));
                }
                toks.expect_end()?;
                d
            }
            Some((c, other)) => {
                return Err(toks.err(c, format!("expected `for` or end of line, got {other:?}")))
            }
        };
        self.events.push(FaultEvent {
            action,
            target,
            at,
            duration,
        });
        Ok(())
    }

    /// Declared groups (name, half-open index range).
    #[must_use]
    pub fn groups(&self) -> &[(String, std::ops::Range<u32>)] {
        &self.groups
    }

    /// Parsed events in script order.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when the script forces nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Binds the script to a platform of `p` workers, resolving every
    /// target to concrete indices. Fails loudly on out-of-range groups or
    /// counts exceeding `p`.
    pub fn compile(&self, p: usize) -> Result<CompiledScript, FaultScriptError> {
        let whole = |message: String| FaultScriptError {
            line: 0,
            col: 0,
            message,
        };
        if p == 0 || p > u32::MAX as usize {
            return Err(whole(format!("platform size {p} out of range")));
        }
        let mut spans = Vec::with_capacity(self.events.len());
        for ev in &self.events {
            let workers = match &ev.target {
                FaultTarget::Group(name) => {
                    let Some((_, range)) = self.groups.iter().find(|(n, _)| n == name) else {
                        return Err(whole(format!("undeclared group {name:?}")));
                    };
                    if range.end as usize > p {
                        return Err(whole(format!(
                            "group {name:?} spans {}..{} but the platform has only {p} workers",
                            range.start, range.end
                        )));
                    }
                    range.clone().collect()
                }
                FaultTarget::Count(k) => {
                    if *k > p as u64 {
                        return Err(whole(format!(
                            "event targets {k} workers but the platform has only {p}"
                        )));
                    }
                    spread(p, *k as usize)
                }
                FaultTarget::Fraction(pct) => {
                    // Round half-up: 30% of 20 → 6, 1% of 20 → 0 (too small
                    // to hit anyone on this platform).
                    let k = (*pct as usize * p + 50) / 100;
                    spread(p, k)
                }
            };
            if workers.is_empty() {
                continue; // a 0-victim event forces nothing
            }
            spans.push(ForcedSpan {
                start: ev.at,
                end: ev.at.saturating_add(ev.duration),
                state: ev.action.forced_state(),
                workers,
            });
        }
        spans.sort_by_key(|s| (s.start, s.end));
        Ok(CompiledScript { p, spans })
    }
}

/// `k` victims spread evenly across `p` workers: the `i`-th victim is
/// `⌊i·p/k⌋`. Deterministic, strictly increasing, RNG-free.
fn spread(p: usize, k: usize) -> Vec<u32> {
    (0..k).map(|i| (i * p / k.max(1)) as u32).collect()
}

impl CompiledScript {
    /// The passthrough script for a `p`-worker platform: forces nothing.
    #[must_use]
    pub fn empty(p: usize) -> Self {
        Self {
            p,
            spans: Vec::new(),
        }
    }

    /// Platform size this script was compiled against.
    #[must_use]
    pub fn p(&self) -> usize {
        self.p
    }

    /// The compiled forcing spans, sorted by start slot.
    #[must_use]
    pub fn spans(&self) -> &[ForcedSpan] {
        &self.spans
    }

    /// True when the script forces nothing — the overlay contract pins this
    /// case byte-identical to the unwrapped base source.
    #[must_use]
    pub fn is_passthrough(&self) -> bool {
        self.spans.is_empty()
    }

    /// One past the last scripted slot (0 for a passthrough).
    #[must_use]
    pub fn horizon(&self) -> u64 {
        self.spans.iter().map(|s| s.end).max().unwrap_or(0)
    }

    /// Wraps one boxed source per worker so that each emits the scripted
    /// states over its base stream — the out-of-engine composition path
    /// (the engine's `ScriptedOverlay` is the row-level equivalent).
    ///
    /// # Panics
    /// Panics when `sources.len()` differs from the compiled platform size.
    #[must_use]
    pub fn wrap_sources(
        &self,
        sources: Vec<Box<dyn AvailabilitySource>>,
    ) -> Vec<Box<dyn AvailabilitySource>> {
        assert_eq!(
            sources.len(),
            self.p,
            "script compiled for {} workers, got {} sources",
            self.p,
            sources.len()
        );
        sources
            .into_iter()
            .enumerate()
            .map(|(q, inner)| {
                let spans: Vec<(u64, u64, ProcState)> = self
                    .spans
                    .iter()
                    .filter(|s| s.workers.binary_search(&(q as u32)).is_ok())
                    .map(|s| (s.start, s.end, s.state))
                    .collect();
                Box::new(ScriptedSource {
                    inner,
                    spans,
                    slot: 0,
                }) as Box<dyn AvailabilitySource>
            })
            .collect()
    }
}

/// A per-worker wrapper: samples the base source every slot (keeping its
/// RNG stream aligned with the unwrapped run), then forces the scripted
/// state when a span covers the current slot.
struct ScriptedSource {
    inner: Box<dyn AvailabilitySource>,
    /// This worker's forcing windows: `(start, end, state)`, sorted.
    spans: Vec<(u64, u64, ProcState)>,
    slot: u64,
}

impl AvailabilitySource for ScriptedSource {
    fn next_state(&mut self) -> ProcState {
        let base = self.inner.next_state();
        let slot = self.slot;
        self.slot += 1;
        for &(start, end, state) in &self.spans {
            if start > slot {
                break;
            }
            if slot < end {
                return state;
            }
        }
        base
    }
}

/// Whitespace tokenizer with 1-based byte-column tracking; `#` starts a
/// comment running to end of line.
struct Tokens<'a> {
    rest: &'a str,
    /// Byte offset of `rest` within the original line.
    offset: usize,
    line: usize,
    /// Column of the most recently produced token (for trailing errors).
    last_col: usize,
}

impl<'a> Tokens<'a> {
    fn new(line: &'a str, line_no: usize) -> Self {
        Self {
            rest: line,
            offset: 0,
            line: line_no,
            last_col: 1,
        }
    }

    fn err(&self, col: usize, message: String) -> FaultScriptError {
        FaultScriptError {
            line: self.line,
            col,
            message,
        }
    }

    fn expect_any(&mut self, what: &str) -> Result<(usize, &'a str), FaultScriptError> {
        match self.next() {
            Some(t) => Ok(t),
            None => Err(self.err(
                self.last_col,
                format!("unexpected end of line, expected {what}"),
            )),
        }
    }

    fn expect_word(&mut self, word: &str) -> Result<(), FaultScriptError> {
        let (col, got) = self.expect_any(&format!("`{word}`"))?;
        if got == word {
            Ok(())
        } else {
            Err(self.err(col, format!("expected `{word}`, got {got:?}")))
        }
    }

    fn expect_end(&mut self) -> Result<(), FaultScriptError> {
        match self.next() {
            None => Ok(()),
            Some((col, tok)) => Err(self.err(col, format!("trailing token {tok:?}"))),
        }
    }
}

impl<'a> Iterator for Tokens<'a> {
    type Item = (usize, &'a str);

    fn next(&mut self) -> Option<(usize, &'a str)> {
        let trimmed = self.rest.trim_start();
        self.offset += self.rest.len() - trimmed.len();
        self.rest = trimmed;
        if self.rest.is_empty() || self.rest.starts_with('#') {
            return None;
        }
        let end = self
            .rest
            .find(char::is_whitespace)
            .unwrap_or(self.rest.len());
        let (tok, rest) = self.rest.split_at(end);
        let col = self.offset + 1;
        self.offset += end;
        self.rest = rest;
        self.last_col = col + tok.len();
        Some((col, tok))
    }
}

/// Parses an integer token, reporting the token's column on failure.
fn parse_int<T: std::str::FromStr>(
    toks: &Tokens<'_>,
    col: usize,
    text: &str,
    what: &str,
) -> Result<T, FaultScriptError> {
    text.parse()
        .map_err(|_| toks.err(col, format!("{what} expects an integer, got {text:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::markov_source;
    use crate::StartPolicy;
    use vg_des::rng::SeedPath;
    use vg_markov::AvailabilityChain;
    use ProcState::{Down as D, Reclaimed as R, Up as U};

    #[test]
    fn parses_the_doc_example() {
        let s = FaultScript::parse(
            "# header comment\n\
             group rack0 = 0..8\n\
             \n\
             kill 30% at 100 for 50   # mass kill\n\
             kill 3 at 200\n\
             degrade group rack0 at 400 for 10\n\
             recover group rack0 at 410 for 5\n",
        )
        .unwrap();
        assert_eq!(s.groups(), &[("rack0".to_string(), 0..8)]);
        assert_eq!(s.events().len(), 4);
        assert_eq!(
            s.events()[0],
            FaultEvent {
                action: FaultAction::Kill,
                target: FaultTarget::Fraction(30),
                at: 100,
                duration: 50,
            }
        );
        assert_eq!(s.events()[1].duration, 1, "default duration");
        assert_eq!(s.events()[2].action, FaultAction::Degrade);
        assert_eq!(s.events()[3].action, FaultAction::Recover);
    }

    #[test]
    fn error_positions_are_exact() {
        // (script, line, col, message fragment)
        let cases = [
            ("bogus 3 at 1", 1, 1, "unknown directive"),
            ("kill 30% at 100\nkill x at 5", 2, 6, "integer"),
            ("kill 130% at 0", 1, 6, "exceeds 100%"),
            ("kill 3 al 100", 1, 8, "expected `at`"),
            ("kill 3 at 100 for 0", 1, 19, "duration must be"),
            ("kill 3 at 100 maybe", 1, 15, "expected `for`"),
            ("kill group ghosts at 4", 1, 6, "undeclared group"),
            ("group a = 5..5", 1, 11, "empty range"),
            ("group a = 0..4\ngroup a = 4..8", 2, 7, "declared twice"),
            ("kill 3 at", 1, 10, "slot number"),
            (
                "group a = 0..2\nkill group a at 7 for 2 extra",
                2,
                25,
                "trailing",
            ),
        ];
        for (text, line, col, frag) in cases {
            let e = FaultScript::parse(text).unwrap_err();
            assert_eq!((e.line, e.col), (line, col), "{text:?}: {e}");
            assert!(e.message.contains(frag), "{text:?}: {e}");
        }
    }

    #[test]
    fn compile_resolves_targets_deterministically() {
        let s =
            FaultScript::parse("group left = 0..3\nkill 50% at 10 for 2\nkill group left at 20")
                .unwrap();
        let c = s.compile(6).unwrap();
        assert_eq!(c.p(), 6);
        assert_eq!(c.spans().len(), 2);
        // 50% of 6 → 3 victims spread as ⌊i·6/3⌋ = 0, 2, 4.
        assert_eq!(c.spans()[0].workers, vec![0, 2, 4]);
        assert_eq!((c.spans()[0].start, c.spans()[0].end), (10, 12));
        assert_eq!(c.spans()[1].workers, vec![0, 1, 2]);
        assert_eq!(c.horizon(), 21);
        // Same script, same platform → identical compilation.
        assert_eq!(c, s.compile(6).unwrap());
    }

    #[test]
    fn compile_rejects_oversized_targets() {
        let s = FaultScript::parse("group big = 0..10\nkill group big at 0").unwrap();
        let e = s.compile(4).unwrap_err();
        assert!(e.message.contains("only 4 workers"), "{e}");
        let s = FaultScript::parse("kill 9 at 0").unwrap();
        assert!(s.compile(4).is_err());
        assert!(s.compile(9).is_ok());
        assert!(s.compile(0).is_err());
    }

    #[test]
    fn empty_script_is_passthrough() {
        let c = FaultScript::parse("# nothing\n\n")
            .unwrap()
            .compile(5)
            .unwrap();
        assert!(c.is_passthrough());
        assert_eq!(c, CompiledScript::empty(5));
        assert_eq!(c.horizon(), 0);
        // Zero-victim fractions compile away entirely.
        let tiny = FaultScript::parse("kill 1% at 5")
            .unwrap()
            .compile(20)
            .unwrap();
        assert!(tiny.is_passthrough());
    }

    fn test_chain() -> AvailabilityChain {
        AvailabilityChain::new([[0.9, 0.05, 0.05], [0.1, 0.85, 0.05], [0.05, 0.05, 0.9]]).unwrap()
    }

    #[test]
    fn wrapped_sources_force_scripted_states_and_keep_base_stream() {
        let p = 4;
        let script = FaultScript::parse("kill 2 at 3 for 2\nrecover 100% at 8 for 1")
            .unwrap()
            .compile(p)
            .unwrap();
        let build = || -> Vec<Box<dyn AvailabilitySource>> {
            (0..p)
                .map(|q| {
                    markov_source(
                        test_chain(),
                        StartPolicy::Up,
                        SeedPath::root(5).child(q as u64).rng(),
                    )
                })
                .collect()
        };
        let base: Vec<Vec<ProcState>> = build()
            .into_iter()
            .map(|mut s| (0..12).map(|_| s.next_state()).collect())
            .collect();
        let wrapped = script.wrap_sources(build());
        let got: Vec<Vec<ProcState>> = wrapped
            .into_iter()
            .map(|mut s| (0..12).map(|_| s.next_state()).collect())
            .collect();
        // Victims of `kill 2` on p=4: spread(4, 2) = {0, 2}.
        for q in 0..p {
            for t in 0..12 {
                let expect = if (3..5).contains(&t) && (q == 0 || q == 2) {
                    D
                } else if t == 8 {
                    U
                } else {
                    base[q][t]
                };
                assert_eq!(got[q][t], expect, "proc {q} slot {t}");
            }
        }
        // Forcing is an overlay: off-span slots equal the base stream, so
        // the wrapper provably advanced the base RNG every slot.
        assert!(base.iter().flatten().any(|&s| s == R || s == D));
    }

    #[test]
    fn passthrough_wrap_is_byte_identical() {
        let script = CompiledScript::empty(3);
        let build = || -> Vec<Box<dyn AvailabilitySource>> {
            (0..3)
                .map(|q| {
                    markov_source(
                        test_chain(),
                        StartPolicy::Up,
                        SeedPath::root(2).child(q).rng(),
                    )
                })
                .collect()
        };
        let mut plain = build();
        let mut wrapped = script.wrap_sources(build());
        for _ in 0..200 {
            for (a, b) in plain.iter_mut().zip(wrapped.iter_mut()) {
                assert_eq!(a.next_state(), b.next_state());
            }
        }
    }
}
