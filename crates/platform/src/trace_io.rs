//! Persistence for platform trace sets.
//!
//! A *trace set* bundles per-processor speeds with recorded availability
//! traces — everything needed to replay a platform deterministically (e.g.
//! logs converted from the Failure Trace Archive, or a simulated campaign's
//! availability archived for later inspection). The format is line-oriented
//! text, RLE-compressed, diff-friendly and versioned:
//!
//! ```text
//! # volatile-grid traces v1
//! slots 86400
//! proc 0 w 4
//! u3600 r120 u7200 d600 …
//! proc 1 w 12
//! u86400
//! ```
//!
//! An empty trace is written as a single `-` (a blank line would be
//! indistinguishable from formatting). Comments (`#`) and blank lines are
//! ignored outside of run lines.
//!
//! [`TraceSet::from_fta_text`] additionally imports Failure Trace
//! Archive-style event logs (`node_id interval_start interval_end` per
//! line, each interval an availability window) into the same structure, so
//! recorded real-world volatility feeds the replay path unchanged.

use crate::processor::ProcessorSpec;
use crate::trace::{RleTrace, Trace};
use vg_des::SlotSpan;
use vg_markov::ProcState;

/// A persisted platform recording: speeds plus availability traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSet {
    /// Nominal trace length in slots (traces may individually be shorter;
    /// replay pads per [`crate::source::TailBehavior`]).
    pub slots: u64,
    /// Per-processor `(spec, trace)` in processor order.
    pub entries: Vec<(ProcessorSpec, Trace)>,
}

/// Parse error with exact position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSetParseError {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the offending token (0 when the error concerns
    /// the whole line, e.g. a missing trailing line).
    pub col: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for TraceSetParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.col == 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "line {}, col {}: {}", self.line, self.col, self.message)
        }
    }
}

impl std::error::Error for TraceSetParseError {}

const HEADER: &str = "# volatile-grid traces v1";

/// Marker for an empty trace on a run line.
const EMPTY_TRACE: &str = "-";

/// Tokenizes a line into `(1-based byte column, token)` pairs.
fn tokens(line: &str) -> impl Iterator<Item = (usize, &str)> + '_ {
    let base = line.as_ptr() as usize;
    line.split_whitespace()
        .map(move |tok| (tok.as_ptr() as usize - base + 1, tok))
}

impl TraceSet {
    /// Builds a trace set; `slots` defaults to the longest trace.
    #[must_use]
    pub fn new(entries: Vec<(ProcessorSpec, Trace)>) -> Self {
        let slots = entries
            .iter()
            .map(|(_, t)| t.len() as u64)
            .max()
            .unwrap_or(0);
        Self { slots, entries }
    }

    /// Number of processors.
    #[must_use]
    pub fn p(&self) -> usize {
        self.entries.len()
    }

    /// Serializes to the versioned text format.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&format!("slots {}\n", self.slots));
        for (q, (spec, trace)) in self.entries.iter().enumerate() {
            out.push_str(&format!("proc {q} w {}\n", spec.w));
            if trace.is_empty() {
                // A blank line would vanish in parsing; mark emptiness.
                out.push_str(EMPTY_TRACE);
            } else {
                out.push_str(&trace.to_rle().to_compact_string());
            }
            out.push('\n');
        }
        out
    }

    /// Parses the text format. Errors carry the exact 1-based line and
    /// column of the offending token.
    pub fn from_text(text: &str) -> Result<Self, TraceSetParseError> {
        let err =
            |line: usize, col: usize, message: String| TraceSetParseError { line, col, message };
        let mut lines = text.lines().enumerate().peekable();

        // Header.
        let (n, first) = lines
            .next()
            .ok_or_else(|| err(1, 0, "empty input".into()))?;
        if first.trim() != HEADER {
            return Err(err(n + 1, 1, format!("expected header {HEADER:?}")));
        }

        let mut slots: Option<u64> = None;
        let mut entries: Vec<(ProcessorSpec, Trace)> = Vec::new();
        while let Some((n, raw)) = lines.next() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut toks = tokens(raw);
            let Some((dcol, directive)) = toks.next() else {
                continue;
            };
            match directive {
                "slots" => {
                    let (vcol, v) = toks
                        .next()
                        .ok_or_else(|| err(n + 1, dcol, "slots needs a value".into()))?;
                    let v: u64 = v
                        .parse()
                        .map_err(|_| err(n + 1, vcol, "slots expects an integer".into()))?;
                    slots = Some(v);
                }
                "proc" => {
                    let (icol, itok) = toks
                        .next()
                        .ok_or_else(|| err(n + 1, dcol, "proc needs an index".into()))?;
                    let idx: usize = itok
                        .parse()
                        .map_err(|_| err(n + 1, icol, "proc index must be an integer".into()))?;
                    if idx != entries.len() {
                        return Err(err(
                            n + 1,
                            icol,
                            format!("proc {idx} out of order (expected {})", entries.len()),
                        ));
                    }
                    let w: SlotSpan = match (toks.next(), toks.next()) {
                        (Some((_, "w")), Some((wcol, v))) => v
                            .parse()
                            .map_err(|_| err(n + 1, wcol, "w expects an integer".into()))?,
                        (Some((c, _)), _) | (None, Some((c, _))) => {
                            return Err(err(n + 1, c, "expected `w <speed>`".into()))
                        }
                        (None, None) => {
                            return Err(err(n + 1, dcol, "expected `w <speed>`".into()))
                        }
                    };
                    if w == 0 {
                        let wcol = tokens(raw).nth(3).map_or(dcol, |(c, _)| c);
                        return Err(err(n + 1, wcol, "w must be ≥ 1".into()));
                    }
                    // Next non-comment line is the RLE trace (`-` = empty).
                    let (rn, run_raw) = loop {
                        match lines.next() {
                            Some((rn, l)) => {
                                let t = l.trim();
                                if t.is_empty() || t.starts_with('#') {
                                    continue;
                                }
                                break (rn, l);
                            }
                            None => {
                                return Err(err(n + 1, 0, format!("proc {idx} has no trace line")))
                            }
                        }
                    };
                    let run_line = run_raw.trim();
                    let trace = if run_line == EMPTY_TRACE {
                        Trace::default()
                    } else {
                        let lead = run_raw.len() - run_raw.trim_start().len();
                        let rle = RleTrace::parse(run_line)
                            .map_err(|e| err(rn + 1, lead + e.at + 1, format!("bad trace: {e}")))?;
                        rle.to_dense()
                    };
                    entries.push((ProcessorSpec::new(w), trace));
                }
                other => {
                    return Err(err(n + 1, dcol, format!("unknown directive {other:?}")));
                }
            }
        }
        let slots = slots.ok_or_else(|| err(1, 0, "missing `slots` directive".into()))?;
        Ok(Self { slots, entries })
    }

    /// Imports a Failure Trace Archive-style availability log.
    ///
    /// Each non-comment line is `node_id interval_start interval_end`: one
    /// availability interval (slots, half-open `[start, end)`) during which
    /// `node_id` was `UP`. Gaps between intervals are `DOWN`. Node ids are
    /// arbitrary tokens, mapped to processor indices in first-appearance
    /// order; a node's intervals must be chronological and non-overlapping.
    /// Every trace spans the global horizon (the largest interval end), and
    /// speeds default to `w = 1` (the archive records availability, not
    /// performance).
    pub fn from_fta_text(text: &str) -> Result<Self, TraceSetParseError> {
        let err =
            |line: usize, col: usize, message: String| TraceSetParseError { line, col, message };
        let mut order: Vec<String> = Vec::new();
        let mut intervals: Vec<Vec<(u64, u64)>> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let n = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut toks = tokens(raw);
            let Some((idcol, id)) = toks.next() else {
                continue;
            };
            let (scol, stok) = toks
                .next()
                .ok_or_else(|| err(n, idcol, "expected `node start end`".into()))?;
            let start: u64 = stok.parse().map_err(|_| {
                err(
                    n,
                    scol,
                    format!("interval start expects an integer, got {stok:?}"),
                )
            })?;
            let (ecol, etok) = toks
                .next()
                .ok_or_else(|| err(n, scol, "interval needs an end".into()))?;
            let end: u64 = etok.parse().map_err(|_| {
                err(
                    n,
                    ecol,
                    format!("interval end expects an integer, got {etok:?}"),
                )
            })?;
            if let Some((c, extra)) = toks.next() {
                return Err(err(n, c, format!("trailing token {extra:?}")));
            }
            if start >= end {
                return Err(err(n, ecol, format!("empty interval {start}..{end}")));
            }
            let node = match order.iter().position(|o| o == id) {
                Some(i) => i,
                None => {
                    order.push(id.to_string());
                    intervals.push(Vec::new());
                    order.len() - 1
                }
            };
            if let Some(&(_, prev_end)) = intervals[node].last() {
                if start < prev_end {
                    return Err(err(
                        n,
                        scol,
                        format!(
                            "node {id:?}: interval {start}..{end} overlaps or precedes \
                             the previous interval ending at {prev_end}"
                        ),
                    ));
                }
            }
            intervals[node].push((start, end));
        }
        let horizon = intervals
            .iter()
            .flatten()
            .map(|&(_, e)| e)
            .max()
            .unwrap_or(0);
        let entries = intervals
            .into_iter()
            .map(|ivs| {
                let mut runs: Vec<(ProcState, u64)> = Vec::new();
                let mut cursor = 0u64;
                for (start, end) in ivs {
                    if start > cursor {
                        runs.push((ProcState::Down, start - cursor));
                    }
                    runs.push((ProcState::Up, end - start));
                    cursor = end;
                }
                if cursor < horizon {
                    runs.push((ProcState::Down, horizon - cursor));
                }
                (ProcessorSpec::new(1), RleTrace::new(runs).to_dense())
            })
            .collect();
        Ok(Self {
            slots: horizon,
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use vg_markov::ProcState;

    fn t(s: &str) -> Trace {
        Trace::parse(s).unwrap()
    }

    fn sample() -> TraceSet {
        TraceSet::new(vec![
            (ProcessorSpec::new(4), t("uuurrduu")),
            (ProcessorSpec::new(12), t("uuuuuuuu")),
        ])
    }

    #[test]
    fn text_roundtrip() {
        let ts = sample();
        let text = ts.to_text();
        let back = TraceSet::from_text(&text).unwrap();
        assert_eq!(back, ts);
    }

    #[test]
    fn empty_traces_roundtrip() {
        // Regression: an empty trace used to serialize as a blank line,
        // which the parser skipped — `proc 0 has no trace line` (or worse,
        // it consumed the next proc's run line). The `-` marker pins it.
        let ts = TraceSet::new(vec![
            (ProcessorSpec::new(3), Trace::default()),
            (ProcessorSpec::new(4), t("ur")),
            (ProcessorSpec::new(5), Trace::default()),
        ]);
        let text = ts.to_text();
        assert!(
            text.contains("\n-\n"),
            "empty traces need a marker:\n{text}"
        );
        let back = TraceSet::from_text(&text).unwrap();
        assert_eq!(back, ts);
        assert_eq!(back.slots, 2);
    }

    #[test]
    fn format_is_human_readable() {
        let text = sample().to_text();
        assert!(text.starts_with(HEADER));
        assert!(text.contains("slots 8"));
        assert!(text.contains("proc 0 w 4"));
        assert!(text.contains("u3 r2 d1 u2"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text =
            format!("{HEADER}\n# a comment\n\nslots 4\nproc 0 w 2\n# trace follows\nu2 r2\n");
        let ts = TraceSet::from_text(&text).unwrap();
        assert_eq!(ts.p(), 1);
        assert_eq!(ts.entries[0].1, t("uurr"));
    }

    #[test]
    fn missing_header_rejected() {
        let e = TraceSet::from_text("slots 4\n").unwrap_err();
        assert!(e.message.contains("header"), "{e}");
        assert_eq!((e.line, e.col), (1, 1));
    }

    #[test]
    fn missing_slots_rejected() {
        let e = TraceSet::from_text(&format!("{HEADER}\nproc 0 w 1\nu4\n")).unwrap_err();
        assert!(e.message.contains("slots"), "{e}");
    }

    #[test]
    fn out_of_order_proc_rejected() {
        let e = TraceSet::from_text(&format!("{HEADER}\nslots 4\nproc 1 w 1\nu4\n")).unwrap_err();
        assert!(e.message.contains("out of order"), "{e}");
        assert_eq!((e.line, e.col), (3, 6), "{e}");
    }

    #[test]
    fn bad_speed_rejected() {
        let e = TraceSet::from_text(&format!("{HEADER}\nslots 4\nproc 0 w 0\nu4\n")).unwrap_err();
        assert!(e.message.contains('w'), "{e}");
        assert_eq!((e.line, e.col), (3, 10), "{e}");
    }

    #[test]
    fn missing_trace_line_rejected() {
        let e = TraceSet::from_text(&format!("{HEADER}\nslots 4\nproc 0 w 1\n")).unwrap_err();
        assert!(e.message.contains("no trace"), "{e}");
        assert_eq!((e.line, e.col), (3, 0), "{e}");
    }

    #[test]
    fn garbage_directive_rejected() {
        let e = TraceSet::from_text(&format!("{HEADER}\nslots 4\nbogus\n")).unwrap_err();
        assert!(e.message.contains("unknown directive"), "{e}");
        assert_eq!(e.line, 3);
        assert_eq!(e.col, 1);
    }

    #[test]
    fn malformed_lines_pin_exact_columns() {
        // (body after header, line, col, message fragment)
        let cases = [
            ("slots x", 2, 7, "integer"),
            ("slots", 2, 1, "needs a value"),
            ("slots 4\nproc zero w 1\nu4", 3, 6, "must be an integer"),
            ("slots 4\nproc 0 q 1\nu4", 3, 8, "expected `w <speed>`"),
            ("slots 4\nproc 0 w x\nu4", 3, 10, "integer"),
            ("slots 4\nproc 0 w 1\n  u3 z9", 4, 6, "bad trace"),
        ];
        for (body, line, col, frag) in cases {
            let e = TraceSet::from_text(&format!("{HEADER}\n{body}\n")).unwrap_err();
            assert_eq!((e.line, e.col), (line, col), "{body:?}: {e}");
            assert!(e.message.contains(frag), "{body:?}: {e}");
        }
    }

    #[test]
    fn slots_default_is_longest_trace() {
        let ts = TraceSet::new(vec![
            (ProcessorSpec::new(1), t("uu")),
            (ProcessorSpec::new(1), t("uuuuu")),
        ]);
        assert_eq!(ts.slots, 5);
        let empty = TraceSet::new(vec![]);
        assert_eq!(empty.slots, 0);
    }

    #[test]
    fn fta_import_builds_gap_filled_traces() {
        let ts = TraceSet::from_fta_text(
            "# node start end\n\
             alpha 0 3\n\
             beta 2 5\n\
             alpha 4 6\n\
             # trailing comment\n",
        )
        .unwrap();
        assert_eq!(ts.slots, 6);
        assert_eq!(ts.p(), 2);
        // alpha: up [0,3), down [3,4), up [4,6).
        assert_eq!(ts.entries[0].1, t("uuuduu"));
        // beta: down [0,2), up [2,5), down [5,6).
        assert_eq!(ts.entries[1].1, t("dduuud"));
        assert!(ts.entries.iter().all(|(spec, _)| spec.w == 1));
    }

    #[test]
    fn fta_import_roundtrips_through_the_text_format() {
        let ts = TraceSet::from_fta_text("n1 0 4\nn2 1 2\n").unwrap();
        let back = TraceSet::from_text(&ts.to_text()).unwrap();
        assert_eq!(back, ts);
    }

    #[test]
    fn fta_import_rejects_malformed_lines_with_positions() {
        let cases = [
            ("alpha 5", 1, 7, "needs an end"),
            ("alpha", 1, 1, "expected `node start end`"),
            ("alpha x 5", 1, 7, "integer"),
            ("alpha 0 y", 1, 9, "integer"),
            ("alpha 5 5", 1, 9, "empty interval"),
            ("alpha 0 5\nalpha 3 8", 2, 7, "overlaps"),
            ("alpha 0 5 extra", 1, 11, "trailing"),
        ];
        for (text, line, col, frag) in cases {
            let e = TraceSet::from_fta_text(text).unwrap_err();
            assert_eq!((e.line, e.col), (line, col), "{text:?}: {e}");
            assert!(e.message.contains(frag), "{text:?}: {e}");
        }
        // Touching intervals are chronological, not overlapping.
        assert!(TraceSet::from_fta_text("a 0 5\na 5 9\n").is_ok());
        // An empty log is an empty (zero-horizon) set, not an error.
        let empty = TraceSet::from_fta_text("# nothing\n").unwrap();
        assert_eq!((empty.slots, empty.p()), (0, 0));
    }

    proptest! {
        #[test]
        fn prop_roundtrip(
            specs in proptest::collection::vec((1u64..50, proptest::collection::vec(0usize..3, 0..100)), 0..6)
        ) {
            // Trace lengths start at 0: the empty-trace `-` marker is part
            // of the round-trip contract.
            let entries: Vec<(ProcessorSpec, Trace)> = specs
                .iter()
                .map(|(w, codes)| {
                    let trace: Trace = codes.iter().map(|&c| ProcState::from_index(c)).collect();
                    (ProcessorSpec::new(*w), trace)
                })
                .collect();
            let ts = TraceSet::new(entries);
            let back = TraceSet::from_text(&ts.to_text()).unwrap();
            prop_assert_eq!(back, ts);
        }
    }
}
